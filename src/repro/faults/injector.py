"""The fault injector: applies a schedule to the simulated world.

One :class:`FaultInjector` owns the ground-truth fault state derived
from its :class:`~repro.faults.schedule.FaultSchedule` at the current
simulated time.  It perturbs the *true* world — the cluster's link
conditions and per-device compute scale — and answers the data plane's
physical questions (is this peer reachable? did this message survive?).

The decision layer never calls these queries.  It sees faults only
through their observable consequences: degraded links show up in the
network monitor's (noisy) probes, crashes show up as transport timeouts
feeding the :class:`~repro.faults.health.DeviceHealth` breaker.

Message-loss draws come from the injector's own seeded RNG, so a fixed
``(schedule, seed)`` pair replays the identical fault trace.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..netsim.topology import Cluster, NetworkCondition
from ..telemetry import Telemetry
from .schedule import (CorrelatedFailure, DeviceCrash, FaultEvent,
                       FaultSchedule, Partition)

__all__ = ["FaultInjector"]


class FaultInjector:
    """Deterministic fault application + ground-truth queries."""

    def __init__(self, schedule: FaultSchedule, seed: int = 0,
                 telemetry: Optional[Telemetry] = None):
        if not isinstance(schedule, FaultSchedule):
            schedule = FaultSchedule(schedule)
        self.schedule = schedule
        self._rng = np.random.default_rng(seed)
        self.now = 0.0
        self._active: frozenset = frozenset()
        self._applied_key: Optional[tuple] = None
        # bound by apply_to() when the cluster has a link surface; lets
        # reachable() answer path-level questions and advance() meter
        # per-link downtime
        self._mesh = None
        self._m_link_down: Dict[Tuple[int, int], object] = {}
        self.telemetry = telemetry
        if telemetry is not None:
            self._reg = telemetry.registry.child("faults")
            self._m_events: Dict[str, object] = {}
            self._m_device_up: Dict[int, object] = {}
            for dev in sorted(self._fault_devices()):
                self._m_device_up[dev] = self._reg.gauge(
                    "device_up", help="1 while the device is reachable",
                    device=str(dev))
                self._m_device_up[dev].set(1.0)

    def _fault_devices(self) -> set:
        out = set()
        for e in self.schedule:
            if isinstance(e, DeviceCrash):
                out.add(e.device)
            elif isinstance(e, (Partition, CorrelatedFailure)):
                out.update(e.devices)
        return out

    # -- time -------------------------------------------------------------
    def transition_times(self) -> Tuple[float, ...]:
        """The schedule's onset/recovery instants (for the event core:
        one scheduled world re-application per instant)."""
        return self.schedule.transition_times()

    def advance(self, now: float) -> List[FaultEvent]:
        """Move the injector's clock; returns events that just became
        active (fault onsets) for logging/telemetry."""
        if (self.telemetry is not None and self._mesh is not None
                and now > self.now):
            self._meter_link_downtime(float(now) - self.now)
        self.now = float(now)
        active = frozenset(self.schedule.active(self.now))
        started = active - self._active
        ended = self._active - active
        self._active = active
        if self.telemetry is not None and (started or ended):
            for e in started:
                counter = self._m_events.get(e.kind)
                if counter is None:
                    counter = self._reg.counter(
                        "events_total", help="fault onsets by kind",
                        kind=e.kind)
                    self._m_events[e.kind] = counter
                counter.inc()
            iso = self.schedule.unreachable_devices(self.now)
            for dev, gauge in self._m_device_up.items():
                gauge.set(0.0 if dev in iso else 1.0)
        return sorted(started, key=lambda e: (e.start, e.kind))

    def _meter_link_downtime(self, dt_s: float) -> None:
        """Credit ``dt_s`` of downtime to every link down at the current
        clock (piecewise-constant sampling between ``advance`` calls —
        a flap shorter than one serving step can be under-counted, which
        is the same resolution the serving loop itself experiences)."""
        for edge in self.schedule.down_links(self.now,
                                             self._mesh.base_edges):
            counter = self._m_link_down.get(edge)
            if counter is None:
                counter = self._reg.counter(
                    "link_down_seconds",
                    help="simulated seconds each link spent down",
                    link=f"{edge[0]}-{edge[1]}")
                self._m_link_down[edge] = counter
            counter.inc(dt_s)

    # -- world application ------------------------------------------------
    def apply_to(self, cluster: Cluster,
                 base_condition: Optional[NetworkCondition] = None) -> None:
        """Overwrite the cluster's true state with the faulted view.

        A star :class:`Cluster` gets the degraded condition vector; a
        :class:`~repro.netsim.mesh.MeshCluster` (anything exposing
        ``apply_link_faults``) gets the link-level overlay — down edges
        leave its routing graph, degraded edges are repriced — and the
        mesh invalidates its own route cache when the overlay changes.

        Idempotent per (active events, base condition): repeated calls
        between transitions skip the rebuild.
        """
        if hasattr(cluster, "apply_link_faults"):
            self._mesh = cluster
            edges = cluster.base_edges
            down = self.schedule.down_links(self.now, edges)
            degraded = self.schedule.link_degradations(self.now, edges)
            # key on the computed overlay, not the active event set: a
            # LinkFlap transitions up/down *within* one active window
            key = (down, tuple(sorted(degraded.items())))
            if key == self._applied_key:
                return
            cluster.apply_link_faults(down=down, degraded=degraded)
            cluster.compute_scale = self.schedule.compute_scale(self.now)
            self._applied_key = key
            return
        if base_condition is None:
            raise TypeError("a star cluster needs its base condition")
        key = (self._active, base_condition)
        if key == self._applied_key:
            return
        cluster.set_condition(self.schedule.degrade(base_condition, self.now))
        cluster.compute_scale = self.schedule.compute_scale(self.now)
        self._applied_key = key

    # -- ground-truth queries (data plane only) ---------------------------
    def is_down(self, device: int) -> bool:
        return device in self.schedule.unreachable_devices(self.now)

    def reachable(self, src: int, dst: int) -> bool:
        """Can a message physically travel ``src -> dst`` right now?

        Device-level first (crashed/partitioned endpoints); on a mesh,
        additionally requires a surviving path under the current fault
        overlay — no route means no delivery even with both endpoints
        alive.
        """
        if not self.schedule.reachable(src, dst, self.now):
            return False
        if self._mesh is not None and src != dst:
            return self._mesh.has_route(src, dst)
        return True

    def loss_prob(self, src: int, dst: int) -> float:
        return self.schedule.loss_prob(src, dst, self.now)

    def message_lost(self, src: int, dst: int) -> bool:
        """Draw one message's fate on the current link conditions."""
        p = self.schedule.loss_prob(src, dst, self.now)
        if p <= 0.0:
            return False
        return bool(self._rng.random() < p)

    def compute_scale(self) -> Dict[int, float]:
        return self.schedule.compute_scale(self.now)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"FaultInjector(now={self.now:.3f}, "
                f"active={len(self._active)}/{len(self.schedule)})")
