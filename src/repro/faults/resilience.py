"""Resilience policy: timeouts, retries, and what to do when they fail.

A :class:`RetryPolicy` prices the *sender's* view of a fault: a lost or
undeliverable message is only detected when its ack timeout expires, so
every failed attempt costs the attempt's timeout (exponentially backed
off), and a successful retry re-pays the full transfer time — retries
are visible in end-to-end latency, not hidden.

:class:`ResilienceConfig` bundles the runtime's reaction knobs: the
retry policy, whether the executor may fail over to surviving devices,
whether it may gracefully degrade to the smallest feasible submodel on
the gateway, and the circuit-breaker thresholds fed to
:class:`~repro.faults.health.DeviceHealth`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RetryPolicy", "ResilienceConfig", "TransportError",
           "NoRouteError", "DeviceUnreachableError", "ExecutionFailedError"]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout + exponential-backoff retry schedule for one message.

    Attempt ``i`` (0-based) is declared lost after
    ``timeout_s * backoff**i`` simulated seconds; ``max_retries``
    re-transmissions follow the first attempt before the sender gives
    up and reports the peer unreachable.
    """

    timeout_s: float = 0.05
    max_retries: int = 2
    backoff: float = 2.0

    def __post_init__(self):
        if self.timeout_s <= 0:
            raise ValueError("timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff < 1.0:
            raise ValueError("backoff factor must be >= 1")

    @property
    def attempts(self) -> int:
        return self.max_retries + 1

    def timeout_of(self, attempt: int) -> float:
        """Seconds attempt ``attempt`` waits before declaring loss."""
        return self.timeout_s * self.backoff ** attempt

    def give_up_cost(self) -> float:
        """Total simulated time wasted when every attempt times out."""
        return sum(self.timeout_of(i) for i in range(self.attempts))


@dataclass(frozen=True)
class ResilienceConfig:
    """How the runtime reacts to the faults it experiences."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: re-plan the remaining work onto surviving devices
    failover: bool = True
    #: last resort: smallest feasible submodel entirely on the gateway
    degradation: bool = True
    #: consecutive failures before a device's circuit opens
    failure_threshold: int = 3
    #: open -> half-open probe window, simulated seconds
    cooldown_s: float = 2.0

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError("failure threshold must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown must be non-negative")


class TransportError(RuntimeError):
    """Base class for data-plane delivery failures."""


class NoRouteError(TransportError):
    """The routing layer has no surviving path between two devices.

    Raised by :meth:`~repro.netsim.mesh.MeshCluster.transfer_time` when
    every path between ``src`` and ``dst`` crosses a failed link (or the
    pair was never connected).  It is the mesh-level sibling of
    :class:`DeviceUnreachableError`: the executor treats both as "this
    endpoint cannot be used right now" and fails over, charging the
    retry schedule's give-up cost — the sender still discovers the dead
    path by timing out, even though the local routing table reported it
    first.
    """

    def __init__(self, src: int, dst: int):
        super().__init__(
            f"no surviving route between device {src} and device {dst}")
        self.src = src
        self.dst = dst

    @property
    def device(self) -> int:
        """The blamed endpoint (never the gateway — that is the caller)."""
        return self.dst if self.dst != 0 else self.src


class DeviceUnreachableError(TransportError):
    """Every retry to a peer timed out.

    ``wasted_s`` is the simulated time the sender burned discovering the
    failure (the full retry schedule); ``retries`` the re-transmissions
    performed.  Both must be charged to the request that fails over.
    """

    def __init__(self, device: int, wasted_s: float, retries: int):
        super().__init__(
            f"device {device} unreachable after {retries} retries "
            f"({wasted_s * 1e3:.1f} ms wasted)")
        self.device = device
        self.wasted_s = wasted_s
        self.retries = retries


class ExecutionFailedError(RuntimeError):
    """A request could not be completed (failover disabled or exhausted).

    Carries the accounting the serving loop needs to record the failed
    request: wasted discovery time and retries performed.
    """

    def __init__(self, device: int, wasted_s: float, retries: int):
        super().__init__(
            f"execution failed: device {device} unreachable "
            f"({wasted_s * 1e3:.1f} ms wasted, failover disabled)")
        self.device = device
        self.wasted_s = wasted_s
        self.retries = retries
