"""Per-device health tracking with circuit-breaker semantics.

The decision layer may not peek at the fault schedule; what it *may* do
is remember how its own sends went.  :class:`DeviceHealth` is that
memory: a per-device breaker that opens after ``failure_threshold``
consecutive delivery failures, rejects the device while open (so cached
or freshly decided strategies routing through it are rerouted without
re-paying timeouts), half-opens after ``cooldown_s`` of simulated time
to let one trial request probe the device, and closes again on success.

State machine (per remote device)::

    CLOSED --(threshold consecutive failures)--> OPEN
    OPEN   --(cooldown_s elapsed)-------------> HALF_OPEN
    HALF_OPEN --success--> CLOSED
    HALF_OPEN --failure--> OPEN (cooldown restarts)

The gateway (device 0) is the coordinator itself and is always CLOSED.

On a mesh the same machine also runs per device *pair*: a link breaker
(keyed on the unordered endpoint pair) remembers how sends between two
specific devices went, so "the path to device 2 via this route is dead"
is tracked separately from "device 2 is dead".  Link breakers are
created lazily on first observation — a pair that never fails costs
nothing.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from ..telemetry import Telemetry

__all__ = ["CircuitState", "DeviceHealth"]


class CircuitState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


#: numeric encoding for the per-device circuit-state gauge
_GAUGE_VALUE = {CircuitState.CLOSED: 0.0, CircuitState.HALF_OPEN: 1.0,
                CircuitState.OPEN: 2.0}


class _Breaker:
    __slots__ = ("state", "consecutive_failures", "opened_at")

    def __init__(self):
        self.state = CircuitState.CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0


class DeviceHealth:
    """Circuit breakers for every device in a cluster."""

    def __init__(self, num_devices: int, failure_threshold: int = 3,
                 cooldown_s: float = 2.0,
                 telemetry: Optional[Telemetry] = None):
        if num_devices < 1:
            raise ValueError("need at least one device")
        if failure_threshold < 1:
            raise ValueError("failure threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown must be non-negative")
        self.num_devices = num_devices
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._breakers = [_Breaker() for _ in range(num_devices)]
        self._newly_opened: List[int] = []
        # per device-pair breakers, created lazily on first observation
        self._link_breakers: Dict[Tuple[int, int], _Breaker] = {}
        self._newly_opened_links: List[Tuple[int, int]] = []
        self.telemetry = telemetry
        if telemetry is not None:
            self._reg = telemetry.registry.child("health")
            self._m_failures = self._reg.counter(
                "failures_total", help="delivery failures recorded")
            self._m_successes = self._reg.counter(
                "successes_total", help="delivery successes recorded")
            self._m_transitions: Dict[tuple, object] = {}
            self._m_state = {
                d: self._reg.gauge("circuit_state",
                                   help="0=closed 1=half-open 2=open",
                                   device=str(d))
                for d in range(num_devices)}

    # -- telemetry helpers ------------------------------------------------
    def _transition(self, device: int, to: CircuitState) -> None:
        if self.telemetry is None:
            return
        key = (device, to.value)
        counter = self._m_transitions.get(key)
        if counter is None:
            counter = self._reg.counter(
                "circuit_transitions_total",
                help="circuit-breaker state changes",
                device=str(device), to=to.value)
            self._m_transitions[key] = counter
        counter.inc()
        self._m_state[device].set(_GAUGE_VALUE[to])

    # -- queries ----------------------------------------------------------
    def state(self, device: int, now: float) -> CircuitState:
        """Current state, resolving open -> half-open on cooldown expiry."""
        b = self._breakers[device]
        if (b.state is CircuitState.OPEN
                and now >= b.opened_at + self.cooldown_s):
            b.state = CircuitState.HALF_OPEN
            self._transition(device, CircuitState.HALF_OPEN)
        return b.state

    def allow(self, device: int, now: float) -> bool:
        """May the runtime route work through ``device`` right now?

        Closed and half-open circuits allow (half-open = trial probe);
        open circuits reject.
        """
        if device == 0:
            return True
        return self.state(device, now) is not CircuitState.OPEN

    def snapshot(self, now: float) -> Dict[int, str]:
        return {d: self.state(d, now).value for d in range(self.num_devices)}

    # -- observations -----------------------------------------------------
    def record_failure(self, device: int, now: float) -> bool:
        """Record one delivery failure; returns True if the circuit
        newly opened."""
        if device == 0:
            return False
        if self.telemetry is not None:
            self._m_failures.inc()
        b = self._breakers[device]
        state = self.state(device, now)
        b.consecutive_failures += 1
        opens = (state is CircuitState.HALF_OPEN
                 or (state is CircuitState.CLOSED
                     and b.consecutive_failures >= self.failure_threshold))
        if opens and state is not CircuitState.OPEN:
            b.state = CircuitState.OPEN
            b.opened_at = now
            self._newly_opened.append(device)
            self._transition(device, CircuitState.OPEN)
            return True
        return False

    def record_success(self, device: int, now: float) -> None:
        if device == 0:
            return
        if self.telemetry is not None:
            self._m_successes.inc()
        b = self._breakers[device]
        state = self.state(device, now)
        b.consecutive_failures = 0
        if state is not CircuitState.CLOSED:
            b.state = CircuitState.CLOSED
            self._transition(device, CircuitState.CLOSED)

    def drain_opened(self) -> List[int]:
        """Devices whose circuit opened since the last drain.

        The facade uses this to invalidate cached strategies that route
        through newly opened devices.
        """
        out, self._newly_opened = self._newly_opened, []
        return out

    # -- per-link breakers (mesh) -----------------------------------------
    @staticmethod
    def _pair(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    def _link_breaker(self, a: int, b: int) -> _Breaker:
        return self._link_breakers.setdefault(self._pair(a, b), _Breaker())

    def _link_transition(self, pair: Tuple[int, int],
                         to: CircuitState) -> None:
        if self.telemetry is None:
            return
        key = (pair, to.value)
        counter = self._m_transitions.get(key)
        if counter is None:
            counter = self._reg.counter(
                "link_circuit_transitions_total",
                help="per-link circuit-breaker state changes",
                link=f"{pair[0]}-{pair[1]}", to=to.value)
            self._m_transitions[key] = counter
        counter.inc()

    def link_state(self, a: int, b: int, now: float) -> CircuitState:
        """Current state of the pair's breaker (CLOSED if never observed),
        resolving open -> half-open on cooldown expiry."""
        br = self._link_breakers.get(self._pair(a, b))
        if br is None:
            return CircuitState.CLOSED
        if (br.state is CircuitState.OPEN
                and now >= br.opened_at + self.cooldown_s):
            br.state = CircuitState.HALF_OPEN
            self._link_transition(self._pair(a, b), CircuitState.HALF_OPEN)
        return br.state

    def allow_link(self, a: int, b: int, now: float) -> bool:
        """May the runtime route a transfer between ``a`` and ``b``?"""
        if a == b:
            return True
        return self.link_state(a, b, now) is not CircuitState.OPEN

    def record_link_failure(self, a: int, b: int, now: float) -> bool:
        """Record one failed delivery between a pair; returns True if
        the pair's circuit newly opened."""
        if a == b:
            return False
        pair = self._pair(a, b)
        br = self._link_breaker(a, b)
        state = self.link_state(a, b, now)
        br.consecutive_failures += 1
        opens = (state is CircuitState.HALF_OPEN
                 or (state is CircuitState.CLOSED
                     and br.consecutive_failures >= self.failure_threshold))
        if opens and state is not CircuitState.OPEN:
            br.state = CircuitState.OPEN
            br.opened_at = now
            self._newly_opened_links.append(pair)
            self._link_transition(pair, CircuitState.OPEN)
            return True
        return False

    def record_link_success(self, a: int, b: int, now: float) -> None:
        if a == b:
            return
        br = self._link_breakers.get(self._pair(a, b))
        if br is None:
            return  # nothing to reset; don't allocate on the happy path
        state = self.link_state(a, b, now)
        br.consecutive_failures = 0
        if state is not CircuitState.CLOSED:
            br.state = CircuitState.CLOSED
            self._link_transition(self._pair(a, b), CircuitState.CLOSED)

    def drain_opened_links(self) -> List[Tuple[int, int]]:
        """Device pairs whose link circuit opened since the last drain."""
        out, self._newly_opened_links = self._newly_opened_links, []
        return out
