"""Per-device health tracking with circuit-breaker semantics.

The decision layer may not peek at the fault schedule; what it *may* do
is remember how its own sends went.  :class:`DeviceHealth` is that
memory: a per-device breaker that opens after ``failure_threshold``
consecutive delivery failures, rejects the device while open (so cached
or freshly decided strategies routing through it are rerouted without
re-paying timeouts), half-opens after ``cooldown_s`` of simulated time
to let one trial request probe the device, and closes again on success.

State machine (per remote device)::

    CLOSED --(threshold consecutive failures)--> OPEN
    OPEN   --(cooldown_s elapsed)-------------> HALF_OPEN
    HALF_OPEN --success--> CLOSED
    HALF_OPEN --failure--> OPEN (cooldown restarts)

The gateway (device 0) is the coordinator itself and is always CLOSED.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from ..telemetry import Telemetry

__all__ = ["CircuitState", "DeviceHealth"]


class CircuitState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


#: numeric encoding for the per-device circuit-state gauge
_GAUGE_VALUE = {CircuitState.CLOSED: 0.0, CircuitState.HALF_OPEN: 1.0,
                CircuitState.OPEN: 2.0}


class _Breaker:
    __slots__ = ("state", "consecutive_failures", "opened_at")

    def __init__(self):
        self.state = CircuitState.CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0


class DeviceHealth:
    """Circuit breakers for every device in a cluster."""

    def __init__(self, num_devices: int, failure_threshold: int = 3,
                 cooldown_s: float = 2.0,
                 telemetry: Optional[Telemetry] = None):
        if num_devices < 1:
            raise ValueError("need at least one device")
        if failure_threshold < 1:
            raise ValueError("failure threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown must be non-negative")
        self.num_devices = num_devices
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._breakers = [_Breaker() for _ in range(num_devices)]
        self._newly_opened: List[int] = []
        self.telemetry = telemetry
        if telemetry is not None:
            self._reg = telemetry.registry.child("health")
            self._m_failures = self._reg.counter(
                "failures_total", help="delivery failures recorded")
            self._m_successes = self._reg.counter(
                "successes_total", help="delivery successes recorded")
            self._m_transitions: Dict[tuple, object] = {}
            self._m_state = {
                d: self._reg.gauge("circuit_state",
                                   help="0=closed 1=half-open 2=open",
                                   device=str(d))
                for d in range(num_devices)}

    # -- telemetry helpers ------------------------------------------------
    def _transition(self, device: int, to: CircuitState) -> None:
        if self.telemetry is None:
            return
        key = (device, to.value)
        counter = self._m_transitions.get(key)
        if counter is None:
            counter = self._reg.counter(
                "circuit_transitions_total",
                help="circuit-breaker state changes",
                device=str(device), to=to.value)
            self._m_transitions[key] = counter
        counter.inc()
        self._m_state[device].set(_GAUGE_VALUE[to])

    # -- queries ----------------------------------------------------------
    def state(self, device: int, now: float) -> CircuitState:
        """Current state, resolving open -> half-open on cooldown expiry."""
        b = self._breakers[device]
        if (b.state is CircuitState.OPEN
                and now >= b.opened_at + self.cooldown_s):
            b.state = CircuitState.HALF_OPEN
            self._transition(device, CircuitState.HALF_OPEN)
        return b.state

    def allow(self, device: int, now: float) -> bool:
        """May the runtime route work through ``device`` right now?

        Closed and half-open circuits allow (half-open = trial probe);
        open circuits reject.
        """
        if device == 0:
            return True
        return self.state(device, now) is not CircuitState.OPEN

    def snapshot(self, now: float) -> Dict[int, str]:
        return {d: self.state(d, now).value for d in range(self.num_devices)}

    # -- observations -----------------------------------------------------
    def record_failure(self, device: int, now: float) -> bool:
        """Record one delivery failure; returns True if the circuit
        newly opened."""
        if device == 0:
            return False
        if self.telemetry is not None:
            self._m_failures.inc()
        b = self._breakers[device]
        state = self.state(device, now)
        b.consecutive_failures += 1
        opens = (state is CircuitState.HALF_OPEN
                 or (state is CircuitState.CLOSED
                     and b.consecutive_failures >= self.failure_threshold))
        if opens and state is not CircuitState.OPEN:
            b.state = CircuitState.OPEN
            b.opened_at = now
            self._newly_opened.append(device)
            self._transition(device, CircuitState.OPEN)
            return True
        return False

    def record_success(self, device: int, now: float) -> None:
        if device == 0:
            return
        if self.telemetry is not None:
            self._m_successes.inc()
        b = self._breakers[device]
        state = self.state(device, now)
        b.consecutive_failures = 0
        if state is not CircuitState.CLOSED:
            b.state = CircuitState.CLOSED
            self._transition(device, CircuitState.CLOSED)

    def drain_opened(self) -> List[int]:
        """Devices whose circuit opened since the last drain.

        The facade uses this to invalidate cached strategies that route
        through newly opened devices.
        """
        out, self._newly_opened = self._newly_opened, []
        return out
