"""Timed fault schedules: *what* goes wrong in the world, and *when*.

A :class:`FaultSchedule` is a plain, immutable list of timed events —
device crashes, stragglers, link degradation, message loss, network
partitions — each active over a ``[start, end)`` window of simulated
time.  The schedule is pure ground truth: only the data plane (the
transport and the executor, i.e. code that would physically notice a
dead peer) may consult it, through the
:class:`~repro.faults.injector.FaultInjector`.  The decision layer
learns about faults the honest way — timeouts, retries and the
circuit-breaker state they feed.

Schedules are deterministic values: the same events (or the same
generator seed) replay the same world, which is what makes the chaos
benchmarks reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..netsim.topology import NetworkCondition

__all__ = ["FaultEvent", "DeviceCrash", "Straggler", "LinkDegradation",
           "MessageLoss", "Partition", "LinkFailure", "LinkFlap",
           "CorrelatedFailure", "FaultSchedule",
           "crash_and_recover_schedule", "chaos_schedule"]

Edge = Tuple[int, int]


def _norm_edge(a: int, b: int) -> Edge:
    """Canonical (sorted) form of an undirected link."""
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class FaultEvent:
    """Base: something is wrong during ``[start, end)`` simulated seconds."""

    start: float
    end: float

    kind = "event"

    def __post_init__(self):
        if not (self.start >= 0.0 and self.end > self.start):
            raise ValueError(
                f"need 0 <= start < end, got [{self.start}, {self.end})")

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass(frozen=True)
class DeviceCrash(FaultEvent):
    """A remote device is down (process crash, battery death, walk-away).

    The gateway (device 0) is the coordinator holding the input and
    serving the result; it cannot crash — if it did there would be no
    request to fail.
    """

    device: int = 1
    kind = "crash"

    def __post_init__(self):
        super().__post_init__()
        if self.device < 1:
            raise ValueError("only remote devices (id >= 1) can crash")


@dataclass(frozen=True)
class Straggler(FaultEvent):
    """A device computes ``slowdown``x slower (thermal throttling,
    co-tenant contention)."""

    device: int = 1
    slowdown: float = 2.0
    kind = "straggler"

    def __post_init__(self):
        super().__post_init__()
        if self.device < 0:
            raise ValueError("device id must be non-negative")
        if self.slowdown < 1.0:
            raise ValueError("slowdown is a compute-time multiplier >= 1")


@dataclass(frozen=True)
class LinkDegradation(FaultEvent):
    """A link collapses: bandwidth scaled by ``bw_factor``,
    ``extra_delay_ms`` added (interference, congestion, rate limiting).

    Star-addressed (the default): ``device=k`` degrades remote ``k``'s
    link to the switch — on a mesh this reads as "device k's radio
    degrades", hitting every edge incident to ``k``.  Mesh-addressed:
    ``link=(a, b)`` pins the event to that one edge; on a star cluster a
    gateway-incident ``link=(0, k)`` degrades remote ``k`` and
    remote-remote links are ignored (the star has no such edge).
    """

    device: int = 1
    bw_factor: float = 1.0
    extra_delay_ms: float = 0.0
    link: Optional[Edge] = None
    kind = "degradation"

    def __post_init__(self):
        super().__post_init__()
        if self.link is not None:
            a, b = self.link
            if a == b or a < 0 or b < 0:
                raise ValueError("link must join two distinct devices")
            object.__setattr__(self, "link", _norm_edge(int(a), int(b)))
        elif self.device < 1:
            raise ValueError("degradation applies to a remote link (id >= 1)")
        if not (0.0 < self.bw_factor <= 1.0):
            raise ValueError("bw_factor must be in (0, 1]")
        if self.extra_delay_ms < 0.0:
            raise ValueError("extra delay must be non-negative")


@dataclass(frozen=True)
class MessageLoss(FaultEvent):
    """Messages crossing a link are dropped with probability ``prob``.

    ``device=None`` applies to every remote link.
    """

    prob: float = 0.0
    device: Optional[int] = None
    kind = "loss"

    def __post_init__(self):
        super().__post_init__()
        if not (0.0 <= self.prob < 1.0):
            raise ValueError("loss probability must be in [0, 1)")
        if self.device is not None and self.device < 1:
            raise ValueError("loss applies to a remote link (id >= 1)")


@dataclass(frozen=True)
class Partition(FaultEvent):
    """A set of remote devices is cut off from the star's switch.

    Devices inside the partition are unreachable from everything else
    (including each other: remote-remote traffic relays through the
    switch they lost).
    """

    devices: Tuple[int, ...] = ()
    kind = "partition"

    def __post_init__(self):
        super().__post_init__()
        if not self.devices:
            raise ValueError("partition needs at least one device")
        if any(d < 1 for d in self.devices):
            raise ValueError("the gateway (device 0) cannot be partitioned "
                             "away from itself")


@dataclass(frozen=True)
class LinkFailure(FaultEvent):
    """One mesh link is hard-down for the whole window (cable pull,
    radio shadowing, switch-port death).

    Link-addressed, so only meaningful on a mesh cluster; a star
    schedule models the same thing as :class:`DeviceCrash` because the
    star has exactly one path per device.
    """

    a: int = 0
    b: int = 1
    kind = "link_failure"

    def __post_init__(self):
        super().__post_init__()
        if self.a == self.b or self.a < 0 or self.b < 0:
            raise ValueError("a link joins two distinct devices")

    @property
    def edge(self) -> Edge:
        return _norm_edge(self.a, self.b)


@dataclass(frozen=True)
class LinkFlap(FaultEvent):
    """A link flaps through correlated up/down bursts (Gilbert–Elliott).

    Inside ``[start, end)`` the link walks a two-state Markov chain
    sampled every ``step_s`` simulated seconds: from UP it fails with
    ``p_fail``, from DOWN it recovers with ``p_recover``.  Small
    ``p_recover`` yields long correlated outage bursts — the signature
    of marginal radio links — rather than i.i.d. loss.

    The chain starts DOWN at ``start`` (the event's onset *is* the
    first outage) and the state sequence is memoized from a seeded
    generator, so the same event replays the same burst pattern no
    matter in which order times are queried.
    """

    a: int = 0
    b: int = 1
    p_fail: float = 0.3
    p_recover: float = 0.3
    step_s: float = 0.5
    seed: int = 0
    kind = "link_flap"

    def __post_init__(self):
        super().__post_init__()
        if self.a == self.b or self.a < 0 or self.b < 0:
            raise ValueError("a link joins two distinct devices")
        if not (0.0 < self.p_fail <= 1.0 and 0.0 < self.p_recover <= 1.0):
            raise ValueError("transition probabilities must be in (0, 1]")
        if self.step_s <= 0:
            raise ValueError("step must be positive")
        # memoized chain state; non-field attrs stay out of eq/hash
        object.__setattr__(self, "_states", [False])  # False = DOWN
        object.__setattr__(self, "_rng",
                           np.random.default_rng(self.seed))

    @property
    def edge(self) -> Edge:
        return _norm_edge(self.a, self.b)

    def down_at(self, now: float) -> bool:
        """Is the link down at ``now``?  (False outside the window.)"""
        if not self.active(now):
            return False
        k = int((now - self.start) / self.step_s)
        states: List[bool] = self._states  # type: ignore[attr-defined]
        while len(states) <= k:  # extend sequentially: order-independent
            up = states[-1]
            p = self._rng.random()  # type: ignore[attr-defined]
            states.append(not (p < self.p_fail) if up
                          else (p < self.p_recover))
        return not states[k]


@dataclass(frozen=True)
class CorrelatedFailure(FaultEvent):
    """A failure *domain*: one shared dependency (rack PDU, switch,
    relay node) dies and takes its devices and links down atomically.

    Unlike independent :class:`DeviceCrash` + :class:`LinkFailure`
    events, everything in the blast radius fails and recovers on the
    same clock edge — the correlation is what defeats redundancy sized
    for independent faults.
    """

    devices: Tuple[int, ...] = ()
    links: Tuple[Edge, ...] = ()
    domain: str = "rack"
    kind = "correlated"

    def __post_init__(self):
        super().__post_init__()
        if not self.devices and not self.links:
            raise ValueError("a failure domain must contain at least one "
                             "device or link")
        if any(d < 1 for d in self.devices):
            raise ValueError("the gateway (device 0) cannot be in a failure "
                             "domain — it is the coordinator")
        object.__setattr__(
            self, "devices", tuple(int(d) for d in self.devices))
        norm = []
        for a, b in self.links:
            if a == b or a < 0 or b < 0:
                raise ValueError("a link joins two distinct devices")
            norm.append(_norm_edge(int(a), int(b)))
        object.__setattr__(self, "links", tuple(norm))


class FaultSchedule:
    """An immutable, queryable set of timed fault events."""

    def __init__(self, events: Sequence[FaultEvent] = ()):
        for e in events:
            if not isinstance(e, FaultEvent):
                raise TypeError(f"not a FaultEvent: {e!r}")
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.start, e.end, e.kind)))

    # -- container protocol ----------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def horizon(self) -> float:
        """Latest finite event end (0.0 for an empty schedule)."""
        ends = [e.end for e in self.events if math.isfinite(e.end)]
        starts = [e.start for e in self.events]
        return max(ends) if ends else (max(starts) if starts else 0.0)

    def transition_times(self) -> Tuple[float, ...]:
        """Sorted, deduplicated onset/recovery instants.

        Every ``start`` and every finite ``end`` — the instants at
        which the schedule's active set (and hence the world overlay)
        can change.  A :class:`LinkFlap`'s internal up/down bursts are
        *not* listed: the flap's memoized burst pattern is a property
        of query time, not a schedulable transition.  The event core
        schedules one world re-application per listed instant.
        """
        times = {float(e.start) for e in self.events}
        times.update(float(e.end) for e in self.events
                     if math.isfinite(e.end))
        return tuple(sorted(times))

    # -- point-in-time queries -------------------------------------------
    def active(self, now: float) -> Tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if e.active(now))

    def down_devices(self, now: float) -> frozenset:
        """Devices that are crashed at ``now`` (individually or as part
        of an active failure domain)."""
        out = {e.device for e in self.events
               if isinstance(e, DeviceCrash) and e.active(now)}
        for e in self.events:
            if isinstance(e, CorrelatedFailure) and e.active(now):
                out.update(e.devices)
        return frozenset(out)

    def unreachable_devices(self, now: float) -> frozenset:
        """Crashed or partitioned-away devices at ``now``."""
        out = set(self.down_devices(now))
        for e in self.events:
            if isinstance(e, Partition) and e.active(now):
                out.update(e.devices)
        return frozenset(out)

    # -- mesh (link-level) queries ----------------------------------------
    def down_links(self, now: float,
                   edges: Optional[Sequence[Edge]] = None) -> frozenset:
        """Links that are hard-down at ``now``.

        Collects explicitly failed edges (:class:`LinkFailure`, a
        :class:`LinkFlap` currently in its DOWN state, a
        :class:`CorrelatedFailure`'s links).  When the mesh's ``edges``
        are supplied, every edge incident to an unreachable device is
        down too: a crashed or partitioned relay cannot forward, so a
        link-level partition must sever *all* of a device's edges —
        never silently collapse to the star's "remote k is gone"
        semantics.
        """
        out = set()
        for e in self.events:
            if not e.active(now):
                continue
            if isinstance(e, LinkFailure):
                out.add(e.edge)
            elif isinstance(e, LinkFlap) and e.down_at(now):
                out.add(e.edge)
            elif isinstance(e, CorrelatedFailure):
                out.update(e.links)
        if edges is not None:
            iso = self.unreachable_devices(now)
            if iso:
                out.update(_norm_edge(a, b) for a, b in edges
                           if a in iso or b in iso)
        return frozenset(out)

    def link_degradations(self, now: float,
                          edges: Sequence[Edge],
                          ) -> Dict[Edge, Tuple[float, float]]:
        """Active per-edge ``(bw_factor, extra_delay_ms)`` over ``edges``.

        Mesh-addressed events (``link=(a, b)``) hit exactly that edge;
        star-addressed events (``device=k``) hit every edge incident to
        ``k`` — the device's radio degrades, so every path through it
        pays.  Overlapping events compound (factors multiply, delays
        add), matching the star's :meth:`degrade` semantics.
        """
        edge_set = {_norm_edge(a, b) for a, b in edges}
        out: Dict[Edge, Tuple[float, float]] = {}

        def _hit(edge: Edge, e: LinkDegradation) -> None:
            f, x = out.get(edge, (1.0, 0.0))
            out[edge] = (f * e.bw_factor, x + e.extra_delay_ms)

        for e in self.events:
            if not (isinstance(e, LinkDegradation) and e.active(now)):
                continue
            if e.link is not None:
                if e.link in edge_set:
                    _hit(e.link, e)
            else:
                for edge in edge_set:
                    if e.device in edge:
                        _hit(edge, e)
        return out

    def reachable(self, src: int, dst: int, now: float) -> bool:
        """Can a message physically travel ``src -> dst`` at ``now``?"""
        if src == dst:
            return True
        iso = self.unreachable_devices(now)
        return src not in iso and dst not in iso

    def compute_scale(self, now: float) -> Dict[int, float]:
        """Per-device compute-time multipliers from active stragglers."""
        out: Dict[int, float] = {}
        for e in self.events:
            if isinstance(e, Straggler) and e.active(now):
                out[e.device] = out.get(e.device, 1.0) * e.slowdown
        return out

    def loss_prob(self, src: int, dst: int, now: float) -> float:
        """Combined drop probability for one ``src -> dst`` message.

        Every remote endpoint's link is crossed once (remote-remote
        relays through the switch); independent loss events compound.
        """
        if src == dst:
            return 0.0
        links = {d for d in (src, dst) if d != 0}
        p_keep = 1.0
        for e in self.events:
            if not (isinstance(e, MessageLoss) and e.active(now)):
                continue
            hits = len(links) if e.device is None else (e.device in links)
            for _ in range(int(hits)):
                p_keep *= 1.0 - e.prob
        return 1.0 - p_keep

    def degrade(self, condition: NetworkCondition,
                now: float) -> NetworkCondition:
        """Apply active link degradations on top of a base condition."""
        bws = list(condition.bandwidths_mbps)
        delays = list(condition.delays_ms)
        changed = False
        for e in self.events:
            if not (isinstance(e, LinkDegradation) and e.active(now)):
                continue
            if e.link is not None:
                # mesh-addressed: a star only has gateway-incident links
                if 0 not in e.link:
                    continue
                i = max(e.link) - 1
            else:
                i = e.device - 1
            if i >= len(bws):
                continue  # schedule written for a larger cluster
            bws[i] *= e.bw_factor
            delays[i] += e.extra_delay_ms
            changed = True
        if not changed:
            return condition
        return NetworkCondition(tuple(bws), tuple(delays))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kinds: Dict[str, int] = {}
        for e in self.events:
            kinds[e.kind] = kinds.get(e.kind, 0) + 1
        return f"FaultSchedule({len(self.events)} events, {kinds})"


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------

def crash_and_recover_schedule(device: int, crash_at: float,
                               recover_at: float) -> FaultSchedule:
    """The canonical trace: one remote device dies, then comes back."""
    return FaultSchedule([DeviceCrash(crash_at, recover_at, device=device)])


def chaos_schedule(num_remote: int, duration_s: float, seed: int = 0,
                   crash_rate_hz: float = 0.05,
                   mean_outage_s: float = 4.0,
                   straggler_rate_hz: float = 0.05,
                   max_slowdown: float = 4.0,
                   loss_prob: float = 0.0) -> FaultSchedule:
    """A seeded random fault mix over ``[0, duration_s)``.

    Crash and straggler windows arrive per device as Poisson processes;
    an optional all-link :class:`MessageLoss` covers the whole horizon.
    Same seed, same chaos — the benchmarks depend on that.
    """
    if num_remote < 1:
        raise ValueError("need at least one remote device")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    rng = np.random.default_rng(seed)
    events: List[FaultEvent] = []
    for dev in range(1, num_remote + 1):
        t = float(rng.exponential(1.0 / crash_rate_hz)) if crash_rate_hz > 0 \
            else duration_s
        while t < duration_s:
            outage = float(rng.exponential(mean_outage_s))
            events.append(DeviceCrash(t, min(t + outage, duration_s + outage),
                                      device=dev))
            t += outage + float(rng.exponential(1.0 / crash_rate_hz))
        t = float(rng.exponential(1.0 / straggler_rate_hz)) \
            if straggler_rate_hz > 0 else duration_s
        while t < duration_s:
            span = float(rng.exponential(mean_outage_s))
            slow = 1.0 + float(rng.uniform(0.5, max_slowdown - 1.0))
            events.append(Straggler(t, t + span, device=dev, slowdown=slow))
            t += span + float(rng.exponential(1.0 / straggler_rate_hz))
    if loss_prob > 0.0:
        events.append(MessageLoss(0.0, duration_s, prob=loss_prob))
    return FaultSchedule(events)
