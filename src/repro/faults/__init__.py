"""repro.faults — fault injection, retry/failover, graceful degradation.

The robustness layer for the distributed runtime.  Four pieces:

* :mod:`~repro.faults.schedule` — timed, immutable fault events
  (crashes, stragglers, link degradation, message loss, partitions) in
  a :class:`FaultSchedule`, plus seeded generators;
* :mod:`~repro.faults.injector` — :class:`FaultInjector`, which applies
  the schedule to the simulated world and answers the data plane's
  ground-truth queries (the decision layer never peeks);
* :mod:`~repro.faults.health` — :class:`DeviceHealth`, per-device
  circuit breakers built from the runtime's own delivery outcomes;
* :mod:`~repro.faults.resilience` — :class:`RetryPolicy` (timeout +
  exponential backoff), :class:`ResilienceConfig` (failover/degradation
  knobs), and the transport/executor error types.

Everything is opt-in: ``faults=None`` (the default everywhere) leaves
the runtime's behaviour and latency accounting bit-identical to a
fault-free build, same discipline as ``telemetry=None``::

    from repro.faults import (DeviceCrash, FaultInjector, FaultSchedule,
                              ResilienceConfig)
    schedule = FaultSchedule([DeviceCrash(2.0, 5.0, device=1)])
    injector = FaultInjector(schedule, seed=0)
    system = Murmuration(..., faults=injector,
                         resilience=ResilienceConfig())
"""

from .health import CircuitState, DeviceHealth
from .injector import FaultInjector
from .resilience import (DeviceUnreachableError, ExecutionFailedError,
                         NoRouteError, ResilienceConfig, RetryPolicy,
                         TransportError)
from .schedule import (CorrelatedFailure, DeviceCrash, FaultEvent,
                       FaultSchedule, LinkDegradation, LinkFailure, LinkFlap,
                       MessageLoss, Partition, Straggler, chaos_schedule,
                       crash_and_recover_schedule)

__all__ = [
    "FaultEvent",
    "DeviceCrash",
    "Straggler",
    "LinkDegradation",
    "MessageLoss",
    "Partition",
    "LinkFailure",
    "LinkFlap",
    "CorrelatedFailure",
    "FaultSchedule",
    "crash_and_recover_schedule",
    "chaos_schedule",
    "FaultInjector",
    "DeviceHealth",
    "CircuitState",
    "RetryPolicy",
    "ResilienceConfig",
    "TransportError",
    "NoRouteError",
    "DeviceUnreachableError",
    "ExecutionFailedError",
]
