"""Synthetic image-classification dataset.

Stand-in for ImageNet (see DESIGN.md substitutions): class-conditional
images composed of fixed per-class spatial frequency patterns + color
biases + additive noise.  The task is learnable by a small CNN but not
trivially (noise keeps accuracies below 100 %), which is what supernet
training and the elastic-accuracy tests need.

Images are generated at the maximum resolution of a search space and
downsampled by average pooling for the elastic-resolution path — the
same image content at every resolution, as with real resized photos.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

__all__ = ["SyntheticImageDataset", "downsample"]


def downsample(x: np.ndarray, resolution: int) -> np.ndarray:
    """Average-pool (N, C, H, W) images to ``resolution`` (must divide H)."""
    n, c, h, w = x.shape
    if h == resolution:
        return x
    if h % resolution:
        raise ValueError(f"resolution {resolution} does not divide {h}")
    f = h // resolution
    return x.reshape(n, c, resolution, f, resolution, f).mean(axis=(3, 5))


@dataclass
class SyntheticImageDataset:
    """Deterministic synthetic dataset.

    Parameters
    ----------
    num_classes : number of classes.
    resolution : native (maximum) image size.
    train_size, val_size : split sizes.
    noise : additive Gaussian noise std (task difficulty knob).
    seed : generator seed (same seed -> identical dataset).
    """

    num_classes: int = 10
    resolution: int = 32
    train_size: int = 512
    val_size: int = 256
    noise: float = 0.55
    seed: int = 0

    def __post_init__(self):
        rng = np.random.default_rng(self.seed)
        r = self.resolution
        yy, xx = np.mgrid[0:r, 0:r] / r
        # Per-class signature: two plane waves + a color bias.
        self._patterns = np.zeros((self.num_classes, 3, r, r))
        for k in range(self.num_classes):
            f1, f2 = rng.uniform(1.0, 4.0, 2)
            th1, th2 = rng.uniform(0, np.pi, 2)
            wave = (np.sin(2 * np.pi * f1 * (xx * np.cos(th1) + yy * np.sin(th1)))
                    + np.cos(2 * np.pi * f2 * (xx * np.cos(th2) + yy * np.sin(th2))))
            color = rng.normal(0, 1.0, 3)
            self._patterns[k] = wave[None] * 0.5 + color[:, None, None] * 0.4
        self.x_train, self.y_train = self._make(rng, self.train_size)
        self.x_val, self.y_val = self._make(rng, self.val_size)

    def _make(self, rng: np.random.Generator,
              n: int) -> Tuple[np.ndarray, np.ndarray]:
        y = rng.integers(0, self.num_classes, n)
        x = self._patterns[y] + rng.normal(0, self.noise,
                                           (n, 3, self.resolution, self.resolution))
        return x, y

    # -- iteration -------------------------------------------------------
    def batches(self, batch_size: int, rng: np.random.Generator,
                resolution: int = None) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Shuffled training batches (optionally downsampled)."""
        idx = rng.permutation(self.train_size)
        res = resolution or self.resolution
        for start in range(0, self.train_size - batch_size + 1, batch_size):
            sel = idx[start:start + batch_size]
            yield downsample(self.x_train[sel], res), self.y_train[sel]

    def val_batch(self, resolution: int = None,
                  limit: int = None) -> Tuple[np.ndarray, np.ndarray]:
        res = resolution or self.resolution
        n = limit or self.val_size
        return downsample(self.x_val[:n], res), self.y_val[:n]
