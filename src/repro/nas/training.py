"""Progressive-shrinking supernet training (paper Stage 1).

Implements the OFA-style recipe the paper builds on:

1. **Warmup** — train only the max submodel.
2. **Progressive shrinking** — phase by phase, open up elastic kernel,
   then depth, then expand (and resolution throughout), sampling random
   submodels each step.
3. **In-place distillation** — sampled submodels are trained against the
   soft labels of the max submodel, which stabilizes weight sharing.
4. **Partition/quantization awareness** — with some probability a step
   runs the submodel with FDSP fake-partitioning and wire fake-
   quantization, so shared weights stay robust to the runtime settings
   (this is the paper's "partition-ready" addition to one-shot NAS).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..nn import functional as F
from ..nn.optim import SGD, CosineLR, clip_grad_norm
from ..nn.quantize import fake_quantize
from ..partition.spatial import Grid, merge_tiles, split_tiles
from .arch import ArchConfig, max_arch, random_arch
from .dataset import SyntheticImageDataset, downsample
from .search_space import SearchSpace
from .supernet import Supernet

__all__ = ["TrainConfig", "TrainResult", "SupernetTrainer",
           "evaluate_arch", "recalibrate_bn", "partition_aware_forward"]


@dataclass
class TrainConfig:
    warmup_steps: int = 80
    steps_per_phase: int = 50
    batch_size: int = 32
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    distill_weight: float = 0.5
    max_net_prob: float = 0.3   # fraction of phase steps training the max net
    partition_prob: float = 0.25
    quantize_prob: float = 0.25
    seed: int = 0


@dataclass
class TrainResult:
    phase_names: List[str] = field(default_factory=list)
    losses: List[float] = field(default_factory=list)
    val_accuracy: Dict[str, float] = field(default_factory=dict)


def partition_aware_forward(net: Supernet, x: np.ndarray, arch: ArchConfig,
                            grid: Grid, halo: int = 1) -> np.ndarray:
    """Eval-style forward with the stem FDSP-partitioned into ``grid``.

    Each tile runs the stem independently with zero-padded borders (the
    FDSP approximation); the merged feature map continues through the
    rest of the network.  Used during training to expose shared weights
    to partitioning noise; the real distributed executor does the same
    per-plan.
    """
    if grid.ntiles == 1:
        return net.forward_arch(x, arch)
    units = net.active_units(arch)
    stem = units[0]
    tiles = split_tiles(x, grid, halo=halo)
    outs = [net.units[stem].run(t, arch, net.space) for t in tiles]
    # Stem has stride 2: the output halo shrinks accordingly.
    out_h = x.shape[2] // 2
    out_halo = max(halo // 2, 0)
    merged = merge_tiles([o for o in outs], grid, (out_h, out_h),
                         halo=out_halo)
    return net.run_units(merged, arch, units[1:])


def recalibrate_bn(net: Supernet, dataset: SyntheticImageDataset,
                   arch: ArchConfig, batches: int = 3,
                   batch_size: int = 32, seed: int = 0) -> None:
    """Refresh batch-norm running statistics for one submodel.

    Weight-sharing corrupts BN statistics: each sampled submodel sees a
    different channel slice, so the shared running mean/var drift away
    from any *particular* submodel's activation statistics.  OFA-style
    recalibration — a few training-mode forward passes of the target
    submodel over training data, with no weight updates — restores them
    before evaluation or deployment.
    """
    rng = np.random.default_rng(seed)
    # Blend quickly toward this submodel's statistics.
    bns = [m for m in net.modules() if hasattr(m, "running_mean")]
    old_momentum = [getattr(m, "momentum", None) for m in bns]
    for m in bns:
        m.momentum = 0.4
    net.train()
    for _ in range(batches):
        idx = rng.integers(0, dataset.train_size, batch_size)
        x = downsample(dataset.x_train[idx], arch.resolution)
        net.forward_arch(x, arch)
    for m, mom in zip(bns, old_momentum):
        m.momentum = mom


def evaluate_arch(net: Supernet, dataset: SyntheticImageDataset,
                  arch: ArchConfig, limit: Optional[int] = None,
                  recalibrate: bool = True) -> float:
    """Validation top-1 accuracy (percent) of one submodel.

    BN statistics are recalibrated for the submodel first (OFA recipe);
    pass ``recalibrate=False`` to measure with the shared stats as-is.
    """
    if recalibrate:
        recalibrate_bn(net, dataset, arch)
    net.eval()
    x, y = dataset.val_batch(resolution=arch.resolution, limit=limit)
    logits = net.forward_arch(x, arch)
    acc = float((logits.argmax(axis=1) == y).mean() * 100.0)
    net.train()
    return acc


class SupernetTrainer:
    """Progressive-shrinking trainer with in-place distillation."""

    def __init__(self, net: Supernet, dataset: SyntheticImageDataset,
                 config: Optional[TrainConfig] = None):
        self.net = net
        self.space = net.space
        self.dataset = dataset
        self.cfg = config or TrainConfig()
        self.rng = np.random.default_rng(self.cfg.seed)
        self.opt = SGD(net.parameters(), lr=self.cfg.lr,
                       momentum=self.cfg.momentum,
                       weight_decay=self.cfg.weight_decay)
        total = self.cfg.warmup_steps + 3 * self.cfg.steps_per_phase
        self.sched = CosineLR(self.opt, total_steps=total, min_lr=self.cfg.lr / 20)
        self._max = max_arch(self.space)

    # -- sampling ------------------------------------------------------------
    def _sample_arch(self, phase: str) -> ArchConfig:
        """Sample within the elastic dimensions opened so far."""
        a = random_arch(self.space, self.rng)
        mx = self._max
        if phase == "warmup" or self.rng.random() < self.cfg.max_net_prob:
            # OFA keeps training the max net throughout shrinking so the
            # distillation teacher stays sharp.
            return mx
        kernels = a.kernels if phase in ("kernel", "depth", "expand") else mx.kernels
        depths = a.depths if phase in ("depth", "expand") else mx.depths
        expands = a.expands if phase == "expand" else mx.expands
        return ArchConfig(a.resolution, depths, kernels, expands)

    # -- steps ----------------------------------------------------------------
    def _soft_labels(self, x: np.ndarray) -> np.ndarray:
        self.net.eval()
        logits = self.net.forward_arch(x, self._max)
        self.net.train()
        return F.softmax(logits, axis=-1)

    def train_step(self, x: np.ndarray, y: np.ndarray,
                   arch: ArchConfig, distill: bool) -> float:
        cfg = self.cfg
        if cfg.quantize_prob > 0 and self.rng.random() < cfg.quantize_prob:
            bits = int(self.rng.choice([8, 16]))
            x = fake_quantize(x, bits)
        soft = None
        if distill and cfg.distill_weight > 0:
            soft = self._soft_labels(x)
        logits = self.net.forward_arch(x, arch)
        loss_hard, cache_hard = F.cross_entropy(logits, y)
        grad = F.cross_entropy_backward(cache_hard)
        loss = loss_hard
        if soft is not None:
            loss_soft, cache_soft = F.cross_entropy(logits, y, soft_targets=soft)
            w = cfg.distill_weight
            grad = (1 - w) * grad + w * F.cross_entropy_backward(cache_soft)
            loss = (1 - w) * loss_hard + w * loss_soft
        self.opt.zero_grad()
        self.net.backward(grad)
        clip_grad_norm(self.net.parameters(), 5.0)
        self.opt.step()
        self.sched.step()
        return float(loss)

    # -- driver -----------------------------------------------------------------
    def train(self, phases: Sequence[str] = ("warmup", "kernel", "depth",
                                             "expand")) -> TrainResult:
        result = TrainResult()
        cfg = self.cfg
        for phase in phases:
            steps = cfg.warmup_steps if phase == "warmup" else cfg.steps_per_phase
            done = 0
            while done < steps:
                for x, y in self.dataset.batches(cfg.batch_size, self.rng):
                    arch = self._sample_arch(phase)
                    if arch.resolution != x.shape[2]:
                        x = downsample(
                            x, arch.resolution) if arch.resolution < x.shape[2] else x
                    loss = self.train_step(x, y, arch,
                                           distill=(phase != "warmup"))
                    result.phase_names.append(phase)
                    result.losses.append(loss)
                    done += 1
                    if done >= steps:
                        break
        # Headline validation numbers.
        from .arch import min_arch
        result.val_accuracy["max"] = evaluate_arch(self.net, self.dataset,
                                                   self._max)
        result.val_accuracy["min"] = evaluate_arch(self.net, self.dataset,
                                                   min_arch(self.space))
        return result
