"""Learned accuracy predictor.

During RL policy training the paper never runs the supernet: an accuracy
predictor maps an architecture encoding to expected top-1 accuracy.  We
fit a small MLP (NumPy engine) on samples of the ground-truth accuracy
source — the calibrated analytical model for ImageNet-scale spaces, or
measured supernet validation accuracy for the executable tiny space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.layers import Linear, Module, ReLU, Sequential
from ..nn.optim import Adam
from .accuracy_model import arch_accuracy
from .arch import ArchConfig, random_arch
from .search_space import SearchSpace

__all__ = ["AccuracyPredictor", "fit_predictor"]


class AccuracyPredictor(Module):
    """MLP: arch encoding -> accuracy (percent)."""

    def __init__(self, space: SearchSpace, hidden: int = 64, seed: int = 0):
        super().__init__()
        self.space = space
        rng = np.random.default_rng(seed)
        in_dim = ArchConfig.encoding_length(space)
        self.mlp = Sequential(
            Linear(in_dim, hidden, rng=rng), ReLU(),
            Linear(hidden, hidden, rng=rng), ReLU(),
            Linear(hidden, 1, rng=rng),
        )
        # Output normalization constants (set during fit).
        self.mean = 75.0
        self.std = 2.0

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.mlp(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self.mlp.backward(grad)

    def predict(self, arch: ArchConfig) -> float:
        x = arch.encode(self.space)[None, :]
        out = self.mlp(x)
        return float(out[0, 0] * self.std + self.mean)

    def predict_batch(self, archs: List[ArchConfig]) -> np.ndarray:
        x = np.stack([a.encode(self.space) for a in archs])
        out = self.mlp(x)
        return out[:, 0] * self.std + self.mean


def fit_predictor(space: SearchSpace,
                  oracle: Optional[Callable[[ArchConfig], float]] = None,
                  n_samples: int = 800, epochs: int = 120, lr: float = 3e-3,
                  seed: int = 0,
                  predictor: Optional[AccuracyPredictor] = None,
                  ) -> Tuple[AccuracyPredictor, float]:
    """Fit a predictor against an accuracy oracle.

    Returns ``(predictor, validation MAE in percentage points)``.
    The default oracle is the calibrated analytical model.
    """
    oracle = oracle or (lambda a: arch_accuracy(a, space))
    rng = np.random.default_rng(seed)
    archs = [random_arch(space, rng) for _ in range(n_samples)]
    x = np.stack([a.encode(space) for a in archs])
    y = np.array([oracle(a) for a in archs])

    pred = predictor or AccuracyPredictor(space, seed=seed)
    pred.mean = float(y.mean())
    pred.std = float(y.std() + 1e-8)
    t = (y - pred.mean) / pred.std

    n_val = max(1, n_samples // 5)
    xv, tv = x[:n_val], t[:n_val]
    xt, tt = x[n_val:], t[n_val:]

    opt = Adam(pred.parameters(), lr=lr)
    batch = min(64, len(xt))
    for _ in range(epochs):
        idx = rng.permutation(len(xt))
        for s in range(0, len(xt) - batch + 1, batch):
            sel = idx[s:s + batch]
            out = pred.mlp(xt[sel])
            diff = out[:, 0] - tt[sel]
            grad = (2.0 * diff / len(sel))[:, None]
            opt.zero_grad()
            pred.mlp.backward(grad)
            opt.step()

    out_v = pred.mlp(xv)[:, 0]
    mae = float(np.abs((out_v - tv) * pred.std).mean())
    return pred, mae
