"""The partition-ready one-shot NAS search space (paper Sec. 4.1).

Six customizable settings per the paper: spatial partitioning (1x1-2x2),
input feature quantization (8/16/32 bit), image resolution (160-224),
block depth (2-4 per stage), kernel size (3-7) and channel/expansion
size.  The first two are *runtime placement* settings (they live in the
:class:`~repro.partition.plan.ExecutionPlan`); the last four define the
submodel architecture (:class:`~repro.nas.arch.ArchConfig`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..nn.quantize import SUPPORTED_BITS
from ..partition.spatial import GRIDS, Grid

__all__ = ["StageSpec", "SearchSpace", "MBV3_SPACE", "tiny_space"]


@dataclass(frozen=True)
class StageSpec:
    """Macro definition of one supernet stage (fixed across submodels)."""

    out_ch: int
    stride: int
    use_se: bool
    activation: str  # "relu" | "hswish"


@dataclass(frozen=True)
class SearchSpace:
    """All elastic dimensions plus the fixed macro-skeleton.

    The skeleton is a MobileNetV3-style stack: a stem conv, ``stages``
    inverted-residual stages, a final 1x1 conv and a two-layer head.
    """

    stages: Tuple[StageSpec, ...]
    kernel_options: Tuple[int, ...] = (3, 5, 7)
    expand_options: Tuple[int, ...] = (3, 4, 6)
    depth_options: Tuple[int, ...] = (2, 3, 4)
    resolution_options: Tuple[int, ...] = (160, 176, 192, 208, 224)
    grid_options: Tuple[Grid, ...] = GRIDS
    bits_options: Tuple[int, ...] = SUPPORTED_BITS
    stem_ch: int = 16
    final_ch: int = 960
    head_hidden: int = 1280
    num_classes: int = 1000

    def __post_init__(self):
        if not self.stages:
            raise ValueError("search space needs at least one stage")
        for opts, name in [(self.kernel_options, "kernel"),
                           (self.expand_options, "expand"),
                           (self.depth_options, "depth"),
                           (self.resolution_options, "resolution")]:
            if len(opts) == 0 or sorted(set(opts)) != sorted(opts):
                raise ValueError(f"{name}_options must be unique and non-empty")

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def max_depth(self) -> int:
        return max(self.depth_options)

    @property
    def min_depth(self) -> int:
        return min(self.depth_options)

    @property
    def max_blocks(self) -> int:
        return self.num_stages * self.max_depth

    def num_submodels(self) -> int:
        """Count of distinct architectures (ignoring runtime settings)."""
        per_block = len(self.kernel_options) * len(self.expand_options)
        total = 0
        # For each stage, sum over depth choices of per-block combos.
        per_stage = sum(per_block ** d for d in self.depth_options)
        return len(self.resolution_options) * per_stage ** self.num_stages


#: ImageNet-scale MobileNetV3-style space used for cost modelling and the
#: paper-scale experiments.
MBV3_SPACE = SearchSpace(stages=(
    StageSpec(out_ch=24, stride=2, use_se=False, activation="relu"),
    StageSpec(out_ch=40, stride=2, use_se=True, activation="relu"),
    StageSpec(out_ch=80, stride=2, use_se=False, activation="hswish"),
    StageSpec(out_ch=112, stride=1, use_se=True, activation="hswish"),
    StageSpec(out_ch=160, stride=2, use_se=True, activation="hswish"),
))


def tiny_space(num_classes: int = 10) -> SearchSpace:
    """A reduced space whose supernet is cheap enough to *actually train*
    with the NumPy engine (used by tests, examples and the training demo).
    """
    return SearchSpace(
        stages=(
            StageSpec(out_ch=16, stride=2, use_se=False, activation="relu"),
            StageSpec(out_ch=24, stride=2, use_se=True, activation="hswish"),
            StageSpec(out_ch=32, stride=2, use_se=True, activation="hswish"),
        ),
        kernel_options=(3, 5),
        expand_options=(2, 3),
        depth_options=(1, 2),
        resolution_options=(16, 32),
        stem_ch=8,
        final_ch=64,
        head_hidden=48,
        num_classes=num_classes,
    )
