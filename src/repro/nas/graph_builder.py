"""Lower an :class:`~repro.nas.arch.ArchConfig` to a cost
:class:`~repro.models.graph.ModelGraph`.

The resulting graph feeds the same latency simulator as the fixed
baseline models, so Murmuration submodels and baselines are priced
identically.
"""

from __future__ import annotations

from typing import List, Optional

from ..models.graph import ComputeBlock, ModelGraph, conv_flops, linear_flops
from .accuracy_model import arch_accuracy
from .arch import ArchConfig
from .search_space import SearchSpace

__all__ = ["build_graph"]

_FP32 = 4


def _mbconv(h: int, w: int, in_ch: int, expand_ratio: int, out_ch: int,
            kernel: int, stride: int, use_se: bool):
    """FLOPs + params of one inverted-residual block (expand ratio form)."""
    exp = in_ch * expand_ratio
    f = conv_flops(h, w, in_ch, exp, 1)
    f += conv_flops(h, w, exp, exp, kernel, stride, groups=exp)
    oh, ow = h // stride, w // stride
    f += conv_flops(oh, ow, exp, out_ch, 1)
    params = in_ch * exp + exp * kernel * kernel + exp * out_ch
    if use_se:
        hid = max(1, exp // 4)
        f += 2.0 * (exp * hid * 2) + 2.0 * oh * ow * exp
        params += 2 * exp * hid + hid + exp
    return f, params * _FP32


def build_graph(arch: ArchConfig, space: SearchSpace,
                accuracy: Optional[float] = None) -> ModelGraph:
    """Build the cost graph of a submodel.

    ``accuracy`` defaults to the calibrated analytical model; pass an
    explicit value to tag the graph with a measured/predicted accuracy.
    """
    arch.validate(space)
    if accuracy is None:
        accuracy = arch_accuracy(arch, space)

    res = arch.resolution
    blocks: List[ComputeBlock] = []
    h = w = res // 2
    blocks.append(ComputeBlock(
        "stem", flops=conv_flops(res, res, 3, space.stem_ch, 3, 2),
        out_hw=(h, w), out_ch=space.stem_ch,
        weight_bytes=3 * space.stem_ch * 9 * _FP32, stage=0))
    in_ch = space.stem_ch
    for s, spec in enumerate(space.stages):
        for b in range(arch.depths[s]):
            slot = arch.slot(space, s, b)
            stride = spec.stride if b == 0 else 1
            f, p = _mbconv(h, w, in_ch, arch.expands[slot], spec.out_ch,
                           arch.kernels[slot], stride, spec.use_se)
            h, w = h // stride, w // stride
            blocks.append(ComputeBlock(
                f"stage{s}.block{b}", flops=f, out_hw=(h, w),
                out_ch=spec.out_ch, weight_bytes=p, stage=s + 1,
                halo=arch.kernels[slot] // 2, depthwise=True))
            in_ch = spec.out_ch
    blocks.append(ComputeBlock(
        "conv_last", flops=conv_flops(h, w, in_ch, space.final_ch, 1),
        out_hw=(h, w), out_ch=space.final_ch,
        weight_bytes=in_ch * space.final_ch * _FP32,
        stage=space.num_stages + 1))
    hh = space.head_hidden
    nc = space.num_classes
    head_flops = linear_flops(space.final_ch, hh) + linear_flops(hh, nc)
    head_params = (space.final_ch * hh + hh + hh * nc + nc) * _FP32
    blocks.append(ComputeBlock(
        "head.pool", flops=2.0 * h * w * space.final_ch, out_hw=(1, 1),
        out_ch=space.final_ch, partitionable=False, fused=True,
        stage=space.num_stages + 2))
    blocks.append(ComputeBlock(
        "head.fc", flops=head_flops, out_hw=(1, 1), out_ch=nc,
        weight_bytes=head_params, partitionable=False, fused=True,
        stage=space.num_stages + 2))
    return ModelGraph("murmuration_subnet", blocks, accuracy,
                      input_hw=(res, res))
