"""Stage 1: partition-ready one-shot NAS.

Search space, architecture configs, the executable weight-sharing
supernet, progressive-shrinking training, accuracy models/predictors,
cost-graph lowering, and the evolutionary-search baseline.
"""

from .accuracy_model import (
    ACC_MAX,
    arch_accuracy,
    plan_accuracy_penalty,
    strategy_accuracy,
)
from .accuracy_predictor import AccuracyPredictor, fit_predictor
from .arch import (
    ArchConfig,
    crossover_arch,
    max_arch,
    min_arch,
    mutate_arch,
    random_arch,
)
from .dataset import SyntheticImageDataset, downsample
from .evolution import (
    EvolutionConfig,
    EvolutionResult,
    candidate_plans,
    evolutionary_search,
)
from .graph_builder import build_graph
from .search_space import MBV3_SPACE, SearchSpace, StageSpec, tiny_space
from .supernet import Supernet
from .training import (
    SupernetTrainer,
    TrainConfig,
    TrainResult,
    evaluate_arch,
    partition_aware_forward,
    recalibrate_bn,
)

__all__ = [
    "SearchSpace",
    "StageSpec",
    "MBV3_SPACE",
    "tiny_space",
    "ArchConfig",
    "max_arch",
    "min_arch",
    "random_arch",
    "mutate_arch",
    "crossover_arch",
    "Supernet",
    "SupernetTrainer",
    "TrainConfig",
    "TrainResult",
    "evaluate_arch",
    "recalibrate_bn",
    "partition_aware_forward",
    "SyntheticImageDataset",
    "downsample",
    "ACC_MAX",
    "arch_accuracy",
    "plan_accuracy_penalty",
    "strategy_accuracy",
    "AccuracyPredictor",
    "fit_predictor",
    "build_graph",
    "EvolutionConfig",
    "EvolutionResult",
    "candidate_plans",
    "evolutionary_search",
]
