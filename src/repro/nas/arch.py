"""Submodel architecture configurations.

An :class:`ArchConfig` pins every *model* dimension of the search space:
input resolution, per-stage depth, and per-active-block kernel size and
expansion ratio.  Runtime dimensions (spatial grid, wire bits, placement)
live in the :class:`~repro.partition.plan.ExecutionPlan` instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .search_space import SearchSpace

__all__ = ["ArchConfig", "max_arch", "min_arch", "random_arch",
           "mutate_arch", "crossover_arch"]


@dataclass(frozen=True)
class ArchConfig:
    """One submodel of the supernet.

    ``kernels``/``expands`` are per *slot* (stage-major, ``max_depth``
    slots per stage); entries beyond a stage's chosen depth are inactive
    but kept so encodings are fixed-length.
    """

    resolution: int
    depths: Tuple[int, ...]
    kernels: Tuple[int, ...]
    expands: Tuple[int, ...]

    def validate(self, space: SearchSpace) -> None:
        if self.resolution not in space.resolution_options:
            raise ValueError(f"resolution {self.resolution} not in space")
        if len(self.depths) != space.num_stages:
            raise ValueError(
                f"need {space.num_stages} stage depths, got {len(self.depths)}")
        for d in self.depths:
            if d not in space.depth_options:
                raise ValueError(f"depth {d} not in {space.depth_options}")
        slots = space.num_stages * space.max_depth
        if len(self.kernels) != slots or len(self.expands) != slots:
            raise ValueError(f"need {slots} kernel/expand slots")
        for k in self.kernels:
            if k not in space.kernel_options:
                raise ValueError(f"kernel {k} not in {space.kernel_options}")
        for e in self.expands:
            if e not in space.expand_options:
                raise ValueError(f"expand {e} not in {space.expand_options}")

    # -- slot helpers ----------------------------------------------------
    def slot(self, space: SearchSpace, stage: int, block: int) -> int:
        return stage * space.max_depth + block

    def active_slots(self, space: SearchSpace) -> List[int]:
        out = []
        for s in range(space.num_stages):
            for b in range(self.depths[s]):
                out.append(self.slot(space, s, b))
        return out

    def num_blocks(self) -> int:
        return int(sum(self.depths))

    # -- encoding ---------------------------------------------------------
    def encode(self, space: SearchSpace) -> np.ndarray:
        """Fixed-length normalized feature vector (for the accuracy
        predictor and the RL state)."""
        res_max = max(space.resolution_options)
        parts = [self.resolution / res_max]
        dmax = space.max_depth
        parts += [d / dmax for d in self.depths]
        kmax = max(space.kernel_options)
        emax = max(space.expand_options)
        active = set(self.active_slots(space))
        for i in range(space.num_stages * space.max_depth):
            if i in active:
                parts.append(self.kernels[i] / kmax)
                parts.append(self.expands[i] / emax)
            else:
                parts.append(0.0)
                parts.append(0.0)
        return np.asarray(parts, dtype=np.float64)

    @staticmethod
    def encoding_length(space: SearchSpace) -> int:
        return 1 + space.num_stages + 2 * space.num_stages * space.max_depth

    def canonical_key(self, space: SearchSpace) -> tuple:
        """Hashable identity ignoring inactive-slot values."""
        active = self.active_slots(space)
        return (self.resolution, self.depths,
                tuple(self.kernels[i] for i in active),
                tuple(self.expands[i] for i in active))


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------

def max_arch(space: SearchSpace) -> ArchConfig:
    """The largest submodel (distillation teacher / upper accuracy bound)."""
    slots = space.num_stages * space.max_depth
    return ArchConfig(
        resolution=max(space.resolution_options),
        depths=(space.max_depth,) * space.num_stages,
        kernels=(max(space.kernel_options),) * slots,
        expands=(max(space.expand_options),) * slots,
    )


def min_arch(space: SearchSpace) -> ArchConfig:
    """The smallest submodel (fastest / lowest accuracy bound)."""
    slots = space.num_stages * space.max_depth
    return ArchConfig(
        resolution=min(space.resolution_options),
        depths=(space.min_depth,) * space.num_stages,
        kernels=(min(space.kernel_options),) * slots,
        expands=(min(space.expand_options),) * slots,
    )


def random_arch(space: SearchSpace,
                rng: Optional[np.random.Generator] = None) -> ArchConfig:
    rng = rng or np.random.default_rng()
    slots = space.num_stages * space.max_depth
    return ArchConfig(
        resolution=int(rng.choice(space.resolution_options)),
        depths=tuple(int(rng.choice(space.depth_options))
                     for _ in range(space.num_stages)),
        kernels=tuple(int(rng.choice(space.kernel_options))
                      for _ in range(slots)),
        expands=tuple(int(rng.choice(space.expand_options))
                      for _ in range(slots)),
    )


def mutate_arch(arch: ArchConfig, space: SearchSpace,
                rate: float = 0.15,
                rng: Optional[np.random.Generator] = None) -> ArchConfig:
    """Independently resample each dimension with probability ``rate``."""
    rng = rng or np.random.default_rng()
    res = arch.resolution
    if rng.random() < rate:
        res = int(rng.choice(space.resolution_options))
    depths = tuple(
        int(rng.choice(space.depth_options)) if rng.random() < rate else d
        for d in arch.depths)
    kernels = tuple(
        int(rng.choice(space.kernel_options)) if rng.random() < rate else k
        for k in arch.kernels)
    expands = tuple(
        int(rng.choice(space.expand_options)) if rng.random() < rate else e
        for e in arch.expands)
    return ArchConfig(res, depths, kernels, expands)


def crossover_arch(a: ArchConfig, b: ArchConfig,
                   rng: Optional[np.random.Generator] = None) -> ArchConfig:
    """Uniform crossover of two parents (evolutionary-search operator)."""
    rng = rng or np.random.default_rng()

    def pick(x, y):
        return x if rng.random() < 0.5 else y

    return ArchConfig(
        resolution=pick(a.resolution, b.resolution),
        depths=tuple(pick(x, y) for x, y in zip(a.depths, b.depths)),
        kernels=tuple(pick(x, y) for x, y in zip(a.kernels, b.kernels)),
        expands=tuple(pick(x, y) for x, y in zip(a.expands, b.expands)),
    )
