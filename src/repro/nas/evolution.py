"""Evolutionary submodel search (the Fig. 18 runtime baseline).

Standard OFA-style evolutionary search: maintain a population of
architectures, evaluate accuracy via the predictor and latency via the
distributed-execution simulator (over a small set of candidate plan
templates), keep the Pareto-feasible elite, and produce the next
generation by mutation + crossover.

This is exactly the "commonly used technique for finding submodels in a
supernet" the paper measures against its RL policy — and the reason the
comparison favors RL: a fresh evolutionary run per network-condition
change costs seconds-to-minutes while one policy forward pass costs
milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..netsim.topology import Cluster
from ..partition.plan import (ExecutionPlan, greedy_spatial_plan,
                              layerwise_split_plan, single_device_plan,
                              spatial_front_plan, spatial_plan)
from ..partition.simulate import simulate_latency
from ..partition.spatial import Grid
from .accuracy_model import plan_accuracy_penalty, strategy_accuracy
from .arch import ArchConfig, crossover_arch, mutate_arch, random_arch
from .graph_builder import build_graph
from .search_space import SearchSpace

__all__ = ["EvolutionConfig", "EvolutionResult", "candidate_plans",
           "evolutionary_search"]


@dataclass
class EvolutionConfig:
    population: int = 40
    generations: int = 12
    parent_fraction: float = 0.25
    mutate_prob: float = 0.5
    mutate_rate: float = 0.15
    seed: int = 0


@dataclass
class EvolutionResult:
    arch: Optional[ArchConfig]
    plan: Optional[ExecutionPlan]
    accuracy: float
    latency_s: float
    evaluations: int
    feasible: bool


def candidate_plans(graph, cluster: Cluster,
                    bits_options: Sequence[int] = (32, 8)) -> List[ExecutionPlan]:
    """Plan templates a (non-RL) searcher considers for one submodel:
    local-only, all-remote per device, best layer splits, and spatial
    grids over available devices."""
    plans: List[ExecutionPlan] = [single_device_plan(graph, 0)]
    n = cluster.num_devices
    for bits in bits_options:
        for remote in range(1, n):
            plans.append(layerwise_split_plan(graph, 0, remote=remote,
                                              bits=bits))
            mid = len(graph) // 3
            plans.append(layerwise_split_plan(graph, mid, remote=remote,
                                              bits=bits))
        if n >= 2:
            plans.append(spatial_plan(graph, Grid(1, 2), [0, 1], bits=bits))
            plans.append(spatial_front_plan(graph, Grid(1, 2), [0, 1],
                                            bits=bits))
        if n >= 3:
            plans.append(spatial_plan(graph, Grid(1, 2), [1, 2], bits=bits))
        if n >= 4:
            plans.append(spatial_plan(graph, Grid(2, 2), [0, 1, 2, 3],
                                      bits=bits))
            plans.append(spatial_front_plan(graph, Grid(2, 2), [0, 1, 2, 3],
                                            bits=bits))
        if n >= 5:
            plans.append(spatial_plan(graph, Grid(2, 2), [1, 2, 3, 4],
                                      bits=bits))
            plans.append(spatial_front_plan(graph, Grid(2, 2), [1, 2, 3, 4],
                                            bits=bits))
        # Larger swarms (Fig. 17) use larger grids; the paper's "1x2,
        # 2x2, etc." search space extends to the device count at hand.
        if n >= 6:
            devs = list(range(6))
            plans.append(spatial_plan(graph, Grid(2, 3), devs, bits=bits))
            plans.append(spatial_front_plan(graph, Grid(2, 3), devs,
                                            bits=bits))
        if n >= 9:
            devs = list(range(9))
            plans.append(spatial_plan(graph, Grid(3, 3), devs, bits=bits))
            plans.append(spatial_front_plan(graph, Grid(3, 3), devs,
                                            bits=bits))
        if n >= 2:
            plans.append(greedy_spatial_plan(graph, list(range(n)),
                                             bits=bits))
            if n >= 3:
                plans.append(greedy_spatial_plan(graph, list(range(1, n)),
                                                 bits=bits))
    return plans


def _evaluate(arch: ArchConfig, space: SearchSpace, cluster: Cluster,
              latency_slo_s: float,
              accuracy_fn: Callable[[ArchConfig], float],
              ) -> Tuple[float, float, Optional[ExecutionPlan], int]:
    """Best (accuracy, latency, plan) for one arch under the SLO.

    Returns (score, latency, plan, evals); infeasible archs score the
    negative latency slack so evolution can climb toward feasibility.
    """
    graph = build_graph(arch, space)
    base_acc = accuracy_fn(arch)
    best = (-np.inf, np.inf, None)
    evals = 0
    for plan in candidate_plans(graph, cluster):
        rep = simulate_latency(graph, plan, cluster)
        evals += 1
        acc = base_acc - plan_accuracy_penalty(plan)
        if rep.total_s <= latency_slo_s and acc > best[0]:
            best = (acc, rep.total_s, plan)
        elif best[2] is None and -rep.total_s > best[0]:
            best = (-rep.total_s, rep.total_s, None)
    return best[0], best[1], best[2], evals


def evolutionary_search(space: SearchSpace, cluster: Cluster,
                        latency_slo_s: float,
                        accuracy_fn: Optional[Callable[[ArchConfig], float]] = None,
                        config: Optional[EvolutionConfig] = None,
                        ) -> EvolutionResult:
    """Search for the most accurate (arch, plan) meeting a latency SLO."""
    cfg = config or EvolutionConfig()
    rng = np.random.default_rng(cfg.seed)
    accuracy_fn = accuracy_fn or (lambda a: strategy_accuracy(a, space))

    population = [random_arch(space, rng) for _ in range(cfg.population)]
    total_evals = 0
    scored: List[Tuple[float, ArchConfig, float, Optional[ExecutionPlan]]] = []

    for _ in range(cfg.generations):
        scored = []
        for arch in population:
            score, lat, plan, evals = _evaluate(
                arch, space, cluster, latency_slo_s, accuracy_fn)
            total_evals += evals
            scored.append((score, arch, lat, plan))
        scored.sort(key=lambda t: t[0], reverse=True)
        n_parents = max(2, int(cfg.parent_fraction * cfg.population))
        parents = [s[1] for s in scored[:n_parents]]
        children: List[ArchConfig] = list(parents)
        while len(children) < cfg.population:
            if rng.random() < cfg.mutate_prob:
                base = parents[int(rng.integers(len(parents)))]
                children.append(mutate_arch(base, space, cfg.mutate_rate, rng))
            else:
                a = parents[int(rng.integers(len(parents)))]
                b = parents[int(rng.integers(len(parents)))]
                children.append(crossover_arch(a, b, rng))
        population = children

    best_score, best_arch, best_lat, best_plan = scored[0]
    feasible = best_plan is not None
    return EvolutionResult(
        arch=best_arch if feasible else None,
        plan=best_plan,
        accuracy=best_score if feasible else 0.0,
        latency_s=best_lat,
        evaluations=total_evals,
        feasible=feasible,
    )
