"""The executable weight-sharing supernet.

A real (NumPy-engine) elastic MobileNetV3-style network: every submodel
of the :class:`~repro.nas.search_space.SearchSpace` is a *view* over one
shared parameter set —

* **elastic kernel**: smaller kernels are the center crop of the largest
  depthwise kernel;
* **elastic expand**: smaller expansion ratios use the first channels of
  the widest expansion;
* **elastic depth**: shallower stages skip their trailing blocks;
* **elastic resolution**: the input is simply given at a smaller size.

Units are indexed identically to the blocks of
:func:`~repro.nas.graph_builder.build_graph`, so an
:class:`~repro.partition.plan.ExecutionPlan` addresses cost blocks and
executable units interchangeably — that is what lets the distributed
executor run plan-sliced pieces of the supernet for real.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.init import he_normal, xavier_uniform
from ..nn.layers import Module, Parameter
from .arch import ArchConfig
from .search_space import SearchSpace

__all__ = ["Supernet", "ElasticConv2d", "ElasticDepthwiseConv2d",
           "ElasticBatchNorm2d", "ElasticLinear", "ElasticMBConv"]


# ---------------------------------------------------------------------------
# Elastic primitive layers
# ---------------------------------------------------------------------------

class ElasticConv2d(Module):
    """1x1/3x3 conv whose active in/out channels are a prefix slice."""

    def __init__(self, max_in: int, max_out: int, kernel: int = 1,
                 stride: int = 1, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.max_in, self.max_out = max_in, max_out
        self.kernel, self.stride = kernel, stride
        self.weight = Parameter(he_normal(
            (max_out, max_in, kernel, kernel), fan_in=max_in * kernel * kernel,
            rng=rng))
        self._cache = None
        self._active = None

    def forward_active(self, x: np.ndarray, in_ch: int, out_ch: int) -> np.ndarray:
        if in_ch > self.max_in or out_ch > self.max_out:
            raise ValueError(f"active channels ({in_ch},{out_ch}) exceed "
                             f"({self.max_in},{self.max_out})")
        w = np.ascontiguousarray(self.weight.data[:out_ch, :in_ch])
        out, self._cache = F.conv2d(x, w, None, self.stride, self.kernel // 2)
        self._active = (in_ch, out_ch)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        in_ch, out_ch = self._active
        gx, gw, _ = F.conv2d_backward(grad, self._cache)
        self.weight.grad[:out_ch, :in_ch] += gw
        return gx


class ElasticDepthwiseConv2d(Module):
    """Depthwise conv with elastic channel prefix and center-cropped kernel."""

    def __init__(self, max_ch: int, max_kernel: int, stride: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.max_ch, self.max_kernel, self.stride = max_ch, max_kernel, stride
        self.weight = Parameter(he_normal(
            (max_ch, 1, max_kernel, max_kernel), fan_in=max_kernel ** 2, rng=rng))
        self._cache = None
        self._active = None

    def forward_active(self, x: np.ndarray, ch: int, kernel: int) -> np.ndarray:
        if kernel > self.max_kernel or (self.max_kernel - kernel) % 2:
            raise ValueError(f"kernel {kernel} incompatible with max "
                             f"{self.max_kernel}")
        off = (self.max_kernel - kernel) // 2
        w = np.ascontiguousarray(
            self.weight.data[:ch, :, off:off + kernel, off:off + kernel])
        out, self._cache = F.depthwise_conv2d(x, w, None, self.stride,
                                              kernel // 2)
        self._active = (ch, kernel, off)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        ch, kernel, off = self._active
        gx, gw, _ = F.depthwise_conv2d_backward(grad, self._cache)
        self.weight.grad[:ch, :, off:off + kernel, off:off + kernel] += gw
        return gx


class ElasticBatchNorm2d(Module):
    """BatchNorm over the active channel prefix (running stats sliced)."""

    def __init__(self, max_ch: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.max_ch = max_ch
        self.momentum, self.eps = momentum, eps
        self.gamma = Parameter(np.ones(max_ch))
        self.beta = Parameter(np.zeros(max_ch))
        self.running_mean = np.zeros(max_ch)
        self.running_var = np.ones(max_ch)
        self._cache = None
        self._active = None

    def forward_active(self, x: np.ndarray, ch: int) -> np.ndarray:
        out, self._cache = F.batchnorm2d(
            x, self.gamma.data[:ch], self.beta.data[:ch],
            self.running_mean[:ch], self.running_var[:ch],
            self.training, self.momentum, self.eps)
        self._active = ch
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        ch = self._active
        gx, gg, gb = F.batchnorm2d_backward(grad, self._cache)
        self.gamma.grad[:ch] += gg
        self.beta.grad[:ch] += gb
        return gx


class ElasticLinear(Module):
    """Linear layer with elastic input/output prefixes."""

    def __init__(self, max_in: int, max_out: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.max_in, self.max_out = max_in, max_out
        self.weight = Parameter(xavier_uniform(
            (max_out, max_in), fan_in=max_in, fan_out=max_out, rng=rng))
        self.bias = Parameter(np.zeros(max_out))
        self._cache = None
        self._active = None

    def forward_active(self, x: np.ndarray, in_f: int, out_f: int) -> np.ndarray:
        w = np.ascontiguousarray(self.weight.data[:out_f, :in_f])
        out, self._cache = F.linear(x, w, self.bias.data[:out_f])
        self._active = (in_f, out_f)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        in_f, out_f = self._active
        gx, gw, gb = F.linear_backward(grad, self._cache)
        self.weight.grad[:out_f, :in_f] += gw
        self.bias.grad[:out_f] += gb
        return gx


def _act_forward(name: str, x: np.ndarray):
    return F.relu(x) if name == "relu" else F.hswish(x)


def _act_backward(name: str, grad: np.ndarray, cache) -> np.ndarray:
    return (F.relu_backward(grad, cache) if name == "relu"
            else F.hswish_backward(grad, cache))


# ---------------------------------------------------------------------------
# Elastic MBConv block
# ---------------------------------------------------------------------------

class ElasticMBConv(Module):
    """Inverted-residual block with elastic kernel and expansion.

    Residual connections apply when stride == 1 and in/out channels match
    (i.e. every non-first block in a stage).
    """

    def __init__(self, in_ch: int, out_ch: int, max_expand: int,
                 max_kernel: int, stride: int, use_se: bool, activation: str,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_ch, self.out_ch = in_ch, out_ch
        self.max_expand, self.max_kernel = max_expand, max_kernel
        self.stride, self.use_se, self.activation = stride, use_se, activation
        max_exp_ch = in_ch * max_expand
        self.expand = ElasticConv2d(in_ch, max_exp_ch, 1, 1, rng=rng)
        self.bn1 = ElasticBatchNorm2d(max_exp_ch)
        self.dw = ElasticDepthwiseConv2d(max_exp_ch, max_kernel, stride, rng=rng)
        self.bn2 = ElasticBatchNorm2d(max_exp_ch)
        if use_se:
            se_hidden = max(1, max_exp_ch // 4)
            self.se_fc1 = ElasticLinear(max_exp_ch, se_hidden, rng=rng)
            self.se_fc2 = ElasticLinear(se_hidden, max_exp_ch, rng=rng)
        self.project = ElasticConv2d(max_exp_ch, out_ch, 1, 1, rng=rng)
        self.bn3 = ElasticBatchNorm2d(out_ch)
        self._tape = None

    @property
    def has_residual(self) -> bool:
        return self.stride == 1 and self.in_ch == self.out_ch

    def forward_active(self, x: np.ndarray, kernel: int,
                       expand_ratio: int) -> np.ndarray:
        exp_ch = self.in_ch * expand_ratio
        tape = {}
        h = self.expand.forward_active(x, self.in_ch, exp_ch)
        h = self.bn1.forward_active(h, exp_ch)
        h, tape["act1"] = _act_forward(self.activation, h)
        h = self.dw.forward_active(h, exp_ch, kernel)
        h = self.bn2.forward_active(h, exp_ch)
        h, tape["act2"] = _act_forward(self.activation, h)
        if self.use_se:
            se_hidden = max(1, exp_ch // 4)
            s, tape["se_pool"] = F.global_avg_pool(h)
            s = self.se_fc1.forward_active(s, exp_ch, se_hidden)
            s, tape["se_relu"] = F.relu(s)
            s = self.se_fc2.forward_active(s, se_hidden, exp_ch)
            s, tape["se_gate"] = F.hsigmoid(s)
            tape["se_input"] = h
            tape["se_scale"] = s
            h = h * s[:, :, None, None]
        h = self.project.forward_active(h, exp_ch, self.out_ch)
        h = self.bn3.forward_active(h, self.out_ch)
        if self.has_residual:
            h = h + x
        self._tape = tape
        return h

    def backward(self, grad: np.ndarray) -> np.ndarray:
        tape = self._tape
        g = self.bn3.backward(grad)
        g = self.project.backward(g)
        if self.use_se:
            h, s = tape["se_input"], tape["se_scale"]
            g_h = g * s[:, :, None, None]
            g_s = (g * h).sum(axis=(2, 3))
            gs = F.hsigmoid_backward(g_s, tape["se_gate"])
            gs = self.se_fc2.backward(gs)
            gs = F.relu_backward(gs, tape["se_relu"])
            gs = self.se_fc1.backward(gs)
            g = g_h + F.global_avg_pool_backward(gs, tape["se_pool"])
        g = _act_backward(self.activation, g, tape["act2"])
        g = self.bn2.backward(g)
        g = self.dw.backward(g)
        g = _act_backward(self.activation, g, tape["act1"])
        g = self.bn1.backward(g)
        g = self.expand.backward(g)
        if self.has_residual:
            g = g + grad
        return g


# ---------------------------------------------------------------------------
# Unit wrappers (align with ModelGraph block indices)
# ---------------------------------------------------------------------------

class _StemUnit(Module):
    def __init__(self, out_ch: int, rng=None):
        super().__init__()
        self.conv = ElasticConv2d(3, out_ch, 3, 2, rng=rng)
        self.bn = ElasticBatchNorm2d(out_ch)
        self.out_ch = out_ch
        self._act = None

    def run(self, x, arch, space):
        h = self.conv.forward_active(x, 3, self.out_ch)
        h = self.bn.forward_active(h, self.out_ch)
        h, self._act = F.hswish(h)
        return h

    def backward(self, grad):
        g = F.hswish_backward(grad, self._act)
        g = self.bn.backward(g)
        return self.conv.backward(g)


class _BlockUnit(Module):
    def __init__(self, stage: int, block: int, mbconv: ElasticMBConv):
        super().__init__()
        self.stage_idx, self.block_idx = stage, block
        self.mbconv = mbconv

    def run(self, x, arch: ArchConfig, space: SearchSpace):
        slot = arch.slot(space, self.stage_idx, self.block_idx)
        return self.mbconv.forward_active(x, arch.kernels[slot],
                                          arch.expands[slot])

    def backward(self, grad):
        return self.mbconv.backward(grad)


class _FinalConvUnit(Module):
    def __init__(self, in_ch: int, out_ch: int, rng=None):
        super().__init__()
        self.conv = ElasticConv2d(in_ch, out_ch, 1, 1, rng=rng)
        self.bn = ElasticBatchNorm2d(out_ch)
        self.in_ch, self.out_ch = in_ch, out_ch
        self._act = None

    def run(self, x, arch, space):
        h = self.conv.forward_active(x, self.in_ch, self.out_ch)
        h = self.bn.forward_active(h, self.out_ch)
        h, self._act = F.hswish(h)
        return h

    def backward(self, grad):
        g = F.hswish_backward(grad, self._act)
        g = self.bn.backward(g)
        return self.conv.backward(g)


class _PoolUnit(Module):
    def run(self, x, arch, space):
        out, self._shape = F.global_avg_pool(x)
        return out

    def backward(self, grad):
        return F.global_avg_pool_backward(grad, self._shape)


class _HeadUnit(Module):
    def __init__(self, in_f: int, hidden: int, classes: int, rng=None):
        super().__init__()
        self.fc1 = ElasticLinear(in_f, hidden, rng=rng)
        self.fc2 = ElasticLinear(hidden, classes, rng=rng)
        self.in_f, self.hidden, self.classes = in_f, hidden, classes
        self._act = None

    def run(self, x, arch, space):
        h = self.fc1.forward_active(x, self.in_f, self.hidden)
        h, self._act = F.hswish(h)
        return self.fc2.forward_active(h, self.hidden, self.classes)

    def backward(self, grad):
        g = self.fc2.backward(grad)
        g = F.hswish_backward(g, self._act)
        return self.fc1.backward(g)


# ---------------------------------------------------------------------------
# The supernet
# ---------------------------------------------------------------------------

class Supernet(Module):
    """Weight-sharing supernet over a :class:`SearchSpace`.

    ``units`` is indexed exactly like the blocks of
    :func:`~repro.nas.graph_builder.build_graph` for the *max-depth*
    architecture; :meth:`active_units` maps an arch to its active unit
    indices (inactive depth slots are skipped).
    """

    def __init__(self, space: SearchSpace, seed: int = 0):
        super().__init__()
        self.space = space
        rng = np.random.default_rng(seed)
        units: List[Module] = [_StemUnit(space.stem_ch, rng=rng)]
        in_ch = space.stem_ch
        max_k = max(space.kernel_options)
        max_e = max(space.expand_options)
        for s, spec in enumerate(space.stages):
            for b in range(space.max_depth):
                stride = spec.stride if b == 0 else 1
                mb = ElasticMBConv(in_ch, spec.out_ch, max_e, max_k, stride,
                                   spec.use_se, spec.activation, rng=rng)
                units.append(_BlockUnit(s, b, mb))
                in_ch = spec.out_ch
        units.append(_FinalConvUnit(in_ch, space.final_ch, rng=rng))
        units.append(_PoolUnit())
        units.append(_HeadUnit(space.final_ch, space.head_hidden,
                               space.num_classes, rng=rng))
        self.units = units
        for i, u in enumerate(units):
            self.register_module(f"unit{i}", u)
        self._active_run: List[Module] = []

    # -- unit indexing -----------------------------------------------------
    def active_units(self, arch: ArchConfig) -> List[int]:
        """Indices into ``self.units`` active under ``arch``, in order."""
        arch.validate(self.space)
        idx = [0]  # stem
        base = 1
        for s in range(self.space.num_stages):
            for b in range(arch.depths[s]):
                idx.append(base + s * self.space.max_depth + b)
        n = len(self.units)
        idx += [n - 3, n - 2, n - 1]  # final conv, pool, head
        return idx

    # -- execution -----------------------------------------------------------
    def forward_arch(self, x: np.ndarray, arch: ArchConfig) -> np.ndarray:
        """Full submodel forward; records the unit tape for backward."""
        self._active_run = []
        for i in self.active_units(arch):
            unit = self.units[i]
            x = unit.run(x, arch, self.space)
            self._active_run.append(unit)
        return x

    def run_units(self, x: np.ndarray, arch: ArchConfig,
                  unit_indices: List[int]) -> np.ndarray:
        """Run a contiguous slice of active units (distributed executor)."""
        for i in unit_indices:
            x = self.units[i].run(x, arch, self.space)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for unit in reversed(self._active_run):
            grad = unit.backward(grad)
        return grad

    def logits(self, x: np.ndarray, arch: ArchConfig) -> np.ndarray:
        """Inference convenience (eval mode, no tape kept by callers)."""
        return self.forward_arch(x, arch)
