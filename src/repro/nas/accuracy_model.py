"""Calibrated analytical accuracy model.

The paper trains its supernet on ImageNet and uses an accuracy predictor
during RL training.  We have no ImageNet here, so the "ground truth" the
predictor (and the RL reward) consumes is this analytical model, anchored
to published OFA/MobileNetV3 numbers:

* the max submodel (res 224, depth 4, k7, e6) reaches ~78.6 % top-1,
  just below ResNeXt101's 79.3 % — matching Fig. 15 where only
  Neurosurgeon+ResNeXt covers the highest accuracy constraint;
* the min submodel (res 160, depth 2, k3, e3) lands near 71 %, below
  MobileNetV3-Large's 75.2 %;
* effects are monotone in every dimension with magnitudes in line with
  the OFA paper's reported deltas (resolution and width dominate, kernel
  size is mild);
* FDSP spatial partitioning and 8-bit wire quantization cost a small,
  bounded amount (Sec. 4.1 calls this "a small impact on accuracy"),
  which creates the accuracy<->latency trade-off the RL policy navigates.

A deterministic per-architecture residual (hash-seeded, ±0.15 %) gives
the landscape realistic texture so search methods cannot exploit exact
linearity.
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np

from ..partition.plan import ExecutionPlan
from .arch import ArchConfig
from .search_space import SearchSpace

__all__ = ["ACC_MAX", "arch_accuracy", "plan_accuracy_penalty",
           "strategy_accuracy"]

#: Top-1 accuracy of the max submodel (percent).
ACC_MAX = 78.6

# Penalty weights (percentage points at the extreme of each dimension).
_W_RESOLUTION = 2.2
_W_DEPTH = 2.4
_W_KERNEL = 1.3
_W_EXPAND = 1.9
_RESIDUAL_SCALE = 0.15

# Runtime-setting penalties.
_P_GRID_1X2 = 0.45   # all blocks partitioned 1x2
_P_GRID_2X2 = 0.95   # all blocks partitioned 2x2
_P_BITS_8 = 0.45     # all device-crossing inputs quantized to 8 bit
_P_BITS_16 = 0.12


def _unit_penalty(value: float, lo: float, hi: float) -> float:
    """Map value in [lo, hi] to a penalty fraction in [0, 1] (1 at lo)."""
    if hi == lo:
        return 0.0
    return (hi - value) / (hi - lo)


def _residual(arch: ArchConfig, space: SearchSpace) -> float:
    key = repr(arch.canonical_key(space)).encode()
    digest = hashlib.sha256(key).digest()
    u = int.from_bytes(digest[:8], "little") / 2 ** 64
    return (2.0 * u - 1.0) * _RESIDUAL_SCALE


def arch_accuracy(arch: ArchConfig, space: SearchSpace) -> float:
    """Top-1 accuracy (percent) of a submodel, independent of placement."""
    arch.validate(space)
    res_pen = _unit_penalty(arch.resolution, min(space.resolution_options),
                            max(space.resolution_options))
    depth_pen = float(np.mean([
        _unit_penalty(d, space.min_depth, space.max_depth)
        for d in arch.depths]))
    klo, khi = min(space.kernel_options), max(space.kernel_options)
    elo, ehi = min(space.expand_options), max(space.expand_options)
    active = arch.active_slots(space)
    kernel_pen = float(np.mean([
        _unit_penalty(arch.kernels[i], klo, khi) for i in active]))
    expand_pen = float(np.mean([
        _unit_penalty(arch.expands[i], elo, ehi) for i in active]))
    acc = (ACC_MAX
           - _W_RESOLUTION * res_pen
           - _W_DEPTH * depth_pen
           - _W_KERNEL * kernel_pen
           - _W_EXPAND * expand_pen
           + _residual(arch, space))
    return float(acc)


def plan_accuracy_penalty(plan: ExecutionPlan) -> float:
    """Accuracy cost (percentage points) of the runtime settings.

    FDSP zero padding perturbs tile borders; low-precision wire transfer
    adds quantization noise.  Both penalties scale with the fraction of
    blocks affected.
    """
    n = len(plan)
    frac_1x2 = sum(1 for bp in plan if bp.grid.ntiles == 2) / n
    frac_2x2 = sum(1 for bp in plan if bp.grid.ntiles >= 4) / n
    # Quantization only matters where the input actually crosses devices.
    crossings8 = crossings16 = 0
    prev_devices = (0,)
    for bp in plan:
        crosses = tuple(bp.devices) != prev_devices
        if crosses:
            if bp.bits == 8:
                crossings8 += 1
            elif bp.bits == 16:
                crossings16 += 1
        prev_devices = tuple(bp.devices)
    pen = (_P_GRID_1X2 * frac_1x2 + _P_GRID_2X2 * frac_2x2
           + _P_BITS_8 * min(1.0, crossings8 / 4.0)
           + _P_BITS_16 * min(1.0, crossings16 / 4.0))
    return float(pen)


def strategy_accuracy(arch: ArchConfig, space: SearchSpace,
                      plan: Optional[ExecutionPlan] = None) -> float:
    """End-to-end accuracy of (submodel, placement) — what the user sees."""
    acc = arch_accuracy(arch, space)
    if plan is not None:
        acc -= plan_accuracy_penalty(plan)
    return float(acc)
