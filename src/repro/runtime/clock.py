"""Simulated wall clock for the runtime.

The distributed executor performs *real* NumPy computation but accounts
*modelled* time (device latency model + network simulator), advancing a
:class:`SimulatedClock`.  This is the standard discrete-event trick that
lets a laptop reproduce a five-Raspberry-Pi testbed's timing behaviour.
"""

from __future__ import annotations

__all__ = ["SimulatedClock"]


class SimulatedClock:
    """Monotonically advancing simulated time in seconds."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ValueError(f"cannot advance time by {dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        if t < self._now:
            raise ValueError(f"cannot rewind clock from {self._now} to {t}")
        self._now = t
        return self._now

    def reset(self, t: float) -> float:
        """Explicitly move the clock to ``t`` — the *only* entry point
        that may rewind.

        One caller is legitimate: the batched facade's overlap path
        (:meth:`Murmuration.infer_batch`) starts batch ``k+1``'s
        decision while batch ``k`` still executes, so its clock restarts
        at the decision instant, before the previous batch's finish —
        pipeline time, not a causality violation (decision starts are
        monotone across batches).  Everything else must go through
        :meth:`advance` / :meth:`advance_to`, which guard monotonicity.
        """
        self._now = float(t)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimulatedClock(now={self._now:.6f})"
