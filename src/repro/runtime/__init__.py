"""Stage 3 runtime: simulated clock, RPC substitute, the distributed
executor, model reconfiguration and the monitoring predictor."""

from .batching import (BatchedServingStats, BatchingInferenceServer,
                       BatchPolicy, BatchRecord)
from .clock import SimulatedClock
from .executor import DistributedExecutor, ExecutionResult
from .predictor import LinearPredictor, MonitoringPredictor
from .reconfig import FixedModelStore, ModelReconfig, SwitchRecord
from .rpc import Message, Transport
from .server import InferenceServer, RequestRecord, ServingStats

__all__ = [
    "SimulatedClock",
    "Transport",
    "Message",
    "DistributedExecutor",
    "ExecutionResult",
    "ModelReconfig",
    "FixedModelStore",
    "SwitchRecord",
    "LinearPredictor",
    "MonitoringPredictor",
    "InferenceServer",
    "RequestRecord",
    "ServingStats",
    "BatchingInferenceServer",
    "BatchPolicy",
    "BatchRecord",
    "BatchedServingStats",
]
