"""A serving loop on top of the Murmuration facade (extension).

The paper's runtime decides per request; this module adds the missing
piece a deployment needs around that: a request arrival process, a FIFO
queue on the local device, and end-to-end statistics (queueing + decision
+ switch + inference), all on simulated time.

Useful for studying what SLO compliance means under load: an adaptation
policy that picks slightly faster submodels can dominate a higher-
accuracy one once queueing delay is counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from typing import TYPE_CHECKING

from ..netsim.topology import NetworkCondition

if TYPE_CHECKING:  # avoid core <-> runtime circular import at runtime
    from ..core.murmuration import InferenceRecord, Murmuration

__all__ = ["RequestRecord", "ServingStats", "InferenceServer"]


@dataclass(frozen=True)
class RequestRecord:
    """Timeline of one served request (simulated seconds)."""

    arrival: float
    start: float
    finish: float
    inference_s: float
    decision_s: float
    switch_s: float
    satisfied: bool

    @property
    def queue_wait_s(self) -> float:
        return self.start - self.arrival

    @property
    def end_to_end_s(self) -> float:
        return self.finish - self.arrival


@dataclass
class ServingStats:
    records: List[RequestRecord] = field(default_factory=list)

    def _e2e(self) -> np.ndarray:
        return np.array([r.end_to_end_s for r in self.records])

    @property
    def throughput_rps(self) -> float:
        if not self.records:
            return 0.0
        span = self.records[-1].finish - self.records[0].arrival
        return len(self.records) / span if span > 0 else 0.0

    def percentile_ms(self, q: float) -> float:
        return float(np.percentile(self._e2e(), q) * 1e3)

    @property
    def mean_queue_wait_ms(self) -> float:
        return float(np.mean([r.queue_wait_s for r in self.records]) * 1e3)

    @property
    def slo_compliance(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.satisfied for r in self.records) / len(self.records)

    def summary(self) -> str:
        return (f"{len(self.records)} requests, "
                f"{self.throughput_rps:.1f} rps, "
                f"p50={self.percentile_ms(50):.1f}ms "
                f"p95={self.percentile_ms(95):.1f}ms, "
                f"queue={self.mean_queue_wait_ms:.1f}ms, "
                f"compliance={self.slo_compliance:.0%}")


class InferenceServer:
    """Poisson arrivals -> FIFO queue -> per-request adaptation."""

    def __init__(self, system: "Murmuration", arrival_rate_hz: float,
                 seed: int = 0):
        if arrival_rate_hz <= 0:
            raise ValueError("arrival rate must be positive")
        self.system = system
        self.rate = arrival_rate_hz
        self.rng = np.random.default_rng(seed)

    def run(self, num_requests: int,
            condition_trace: Optional[Sequence[NetworkCondition]] = None,
            trace_period_s: float = 1.0) -> ServingStats:
        """Serve ``num_requests``; returns the timeline statistics.

        ``condition_trace`` (optional) switches the true network state
        every ``trace_period_s`` of simulated time.
        """
        stats = ServingStats()
        arrivals = np.cumsum(self.rng.exponential(1.0 / self.rate,
                                                  num_requests))
        server_free = 0.0
        for arrival in arrivals:
            if condition_trace:
                idx = min(int(arrival / trace_period_s),
                          len(condition_trace) - 1)
                self.system.update_condition(condition_trace[idx])
            start = max(float(arrival), server_free)
            record: "InferenceRecord" = self.system.infer(now=start)
            service = (record.decision_time_s + record.switch_time_s
                       + record.latency_s)
            finish = start + service
            server_free = finish
            stats.records.append(RequestRecord(
                arrival=float(arrival), start=start, finish=finish,
                inference_s=record.latency_s,
                decision_s=record.decision_time_s,
                switch_s=record.switch_time_s,
                satisfied=record.satisfied))
        return stats
