"""A serving loop on top of the Murmuration facade (extension).

The paper's runtime decides per request; this module adds the missing
piece a deployment needs around that: a request arrival process, a FIFO
queue on the local device, and end-to-end statistics (queueing + decision
+ switch + inference), all on simulated time.

Useful for studying what SLO compliance means under load: an adaptation
policy that picks slightly faster submodels can dominate a higher-
accuracy one once queueing delay is counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from typing import TYPE_CHECKING

from ..netsim.topology import NetworkCondition
from ..netsim.traces import condition_at
from ..telemetry import Telemetry
from ..telemetry.recorder import RunRecorder

if TYPE_CHECKING:  # avoid core <-> runtime circular import at runtime
    from ..core.murmuration import InferenceRecord, Murmuration

__all__ = ["RequestRecord", "ServingStats", "InferenceServer"]


@dataclass(frozen=True)
class RequestRecord:
    """Timeline of one served request (simulated seconds).

    A request shed at admission gets ``start == finish == arrival`` and
    all-zero service components: it never occupied the pipeline.
    """

    arrival: float
    start: float
    finish: float
    inference_s: float
    decision_s: float
    switch_s: float
    satisfied: bool
    #: "ok" | "retried" | "degraded" | "failed" | "shed"
    outcome: str = "ok"
    retries: int = 0
    failovers: int = 0
    #: tenant the request belongs to (None = single-tenant serving)
    tenant: Optional[str] = None

    @property
    def queue_wait_s(self) -> float:
        return self.start - self.arrival

    @property
    def end_to_end_s(self) -> float:
        return self.finish - self.arrival


@dataclass
class ServingStats:
    records: List[RequestRecord] = field(default_factory=list)

    def _served(self) -> List[RequestRecord]:
        """Records that actually occupied the pipeline.

        Shed requests have all-zero timelines; folding them into
        latency/queue aggregates would make p50/p95 *improve* the more
        admission drops — a dashboard reading that rewards shedding.
        They still count against :meth:`e2e_compliance`.
        """
        return [r for r in self.records if r.outcome != "shed"]

    @property
    def throughput_rps(self) -> float:
        if not self.records:
            return 0.0
        # max over all finishes, not the last record's: a shed request
        # has finish == arrival, so a trailing shed would shrink the
        # span and inflate throughput.
        span = (max(r.finish for r in self.records)
                - self.records[0].arrival)
        return len(self.records) / span if span > 0 else 0.0

    def percentile_ms(self, q: float) -> float:
        served = self._served()
        if not served:
            return 0.0
        return float(np.percentile([r.end_to_end_s for r in served],
                                   q) * 1e3)

    @property
    def mean_queue_wait_ms(self) -> float:
        served = self._served()
        if not served:
            return 0.0
        return float(np.mean([r.queue_wait_s for r in served]) * 1e3)

    @property
    def slo_compliance(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.satisfied for r in self.records) / len(self.records)

    def outcome_counts(self) -> dict:
        """Requests by outcome ("ok"/"retried"/"degraded"/"failed").

        "shed" appears as a fifth key only when admission control
        actually shed requests — keeping it out of the base dict keeps
        control-free recordings (and their golden fixtures) unchanged.
        """
        counts = {"ok": 0, "retried": 0, "degraded": 0, "failed": 0}
        for r in self.records:
            counts[r.outcome] = counts.get(r.outcome, 0) + 1
        return counts

    @property
    def shed_count(self) -> int:
        """Requests rejected at admission (never served)."""
        return sum(r.outcome == "shed" for r in self.records)

    @property
    def completion_rate(self) -> float:
        """Fraction of requests that produced a result (any outcome but
        "failed" or "shed")."""
        if not self.records:
            return 0.0
        return (sum(r.outcome not in ("failed", "shed")
                    for r in self.records) / len(self.records))

    def e2e_compliance(self, slo_s: float) -> float:
        """Fraction of *submitted* requests answered within ``slo_s``
        end to end (queueing included).

        This is the deployment-facing compliance number: a shed or
        failed request counts against it, and so does a completed
        request whose queue wait pushed it past the deadline — unlike
        :attr:`slo_compliance`, which scores the runtime's per-request
        promise on execution latency alone.
        """
        if not self.records:
            return 0.0
        ok = sum(r.outcome not in ("failed", "shed")
                 and r.end_to_end_s <= slo_s for r in self.records)
        return ok / len(self.records)

    def tenants(self) -> List[str]:
        """Tenant names present in the record stream, first-seen order."""
        seen: List[str] = []
        for r in self.records:
            if r.tenant is not None and r.tenant not in seen:
                seen.append(r.tenant)
        return seen

    def per_tenant(self) -> "dict":
        """Per-tenant filtered views (plain :class:`ServingStats`).

        Untagged records are excluded; a single-tenant run returns an
        empty dict.
        """
        return {t: ServingStats(records=[r for r in self.records
                                         if r.tenant == t])
                for t in self.tenants()}

    def worst_tenant_e2e_compliance(self, slo_s: float) -> float:
        """The *worst* tenant's e2e compliance — the fairness headline.

        A throughput-greedy admission policy can keep the aggregate
        number high while starving one tenant; the min over tenants is
        what a per-tenant SLO contract actually binds.  Falls back to
        the aggregate when no record is tenant-tagged.
        """
        views = self.per_tenant()
        if not views:
            return self.e2e_compliance(slo_s)
        return min(v.e2e_compliance(slo_s) for v in views.values())

    def summary(self) -> str:
        base = (f"{len(self.records)} requests, "
                f"{self.throughput_rps:.1f} rps, "
                f"p50={self.percentile_ms(50):.1f}ms "
                f"p95={self.percentile_ms(95):.1f}ms, "
                f"queue={self.mean_queue_wait_ms:.1f}ms, "
                f"compliance={self.slo_compliance:.0%}")
        counts = self.outcome_counts()
        faulty = {k: v for k, v in counts.items() if k != "ok" and v}
        if faulty:
            detail = " ".join(f"{k}={v}" for k, v in sorted(faulty.items()))
            base += f", outcomes: {detail}"
        return base


class InferenceServer:
    """Poisson arrivals -> FIFO queue -> per-request adaptation."""

    def __init__(self, system: "Murmuration", arrival_rate_hz: float,
                 seed: int = 0, telemetry: Optional[Telemetry] = None,
                 recorder: Optional[RunRecorder] = None,
                 control=None, arrival_process=None, ingress=None,
                 events=None):
        """``control`` (a :class:`~repro.control.ControlLoop`) lets the
        server drive the control cadence with queue context and consult
        admission per request; None keeps serving byte-identical.

        ``arrival_process`` overrides Poisson arrivals: a callable
        ``(rng, num_requests) -> array of arrival times`` (sorted,
        seconds).  Used by overload-burst scenarios.

        ``ingress`` (a :class:`~repro.netsim.contention.SharedIngress`)
        models the shared last-mile uplink request payloads cross
        before service can start; concurrent tenants fair-share it —
        arrival-order snapshot with a ``ContentionTracker`` attached,
        event-driven max-min with a
        :class:`~repro.netsim.fluid.FluidTracker` (either way the
        fluid/snapshot upload time feeds ``ready`` and therefore the
        queue-wait prediction the admission controller triages on).
        None keeps serving byte-identical.

        ``events`` (a :class:`~repro.sim.events.EventLoop`, ideally
        sharing the facade's :class:`~repro.runtime.clock
        .SimulatedClock`) makes the server advance time *through* the
        loop: every scheduled world event (condition step, fault
        transition, control tick, capacity update) due at or before
        each admission instant and each service start fires first, at
        its own scheduled time.  None — or a loop with nothing
        scheduled — keeps serving byte-identical.
        """
        if arrival_rate_hz <= 0:
            raise ValueError("arrival rate must be positive")
        self.system = system
        self.rate = arrival_rate_hz
        self.rng = np.random.default_rng(seed)
        self.telemetry = telemetry
        self.recorder = recorder
        self.control = control
        self.arrival_process = arrival_process
        self.ingress = ingress
        #: optional EventLoop the serving loop advances through
        self.events = events
        self._last_trace_idx: Optional[int] = None
        if control is not None:
            control.attach(system=system, server=self)
        if telemetry is not None:
            reg = telemetry.registry.child("server")
            self._m_requests = reg.counter(
                "requests_total", help="requests served")
            self._m_satisfied = reg.counter(
                "slo_satisfied_total", help="requests meeting the SLO")
            self._m_violated = reg.counter(
                "slo_violated_total", help="requests missing the SLO")
            self._m_queue = reg.histogram(
                "queue_wait_s", help="simulated FIFO queue wait")
            self._m_e2e = reg.histogram(
                "e2e_s", help="simulated end-to-end latency")
            self._m_compliance = reg.gauge(
                "slo_compliance", help="running SLO compliance rate")
            # outcomes_total counters resolved once per outcome string
            self._m_outcomes: dict = {}
            # per-tenant counters resolved once per (metric, tenant)
            self._m_tenants: dict = {}
            self._reg = reg
            # snapshot gauge: refreshed at export time, not per request
            reg.add_collect_hook(self._sync_compliance)

    def _sync_compliance(self) -> None:
        total = self._m_requests.value
        if total:
            self._m_compliance.value = self._m_satisfied.value / total

    def _apply_trace(self, condition_trace, trace_period_s: float,
                     start: float) -> None:
        """Switch the true world to the trace cell the request *starts*
        in.

        Indexed by service start, not arrival: under queueing a request
        executes later than it arrived, and the runtime must see the
        network as it is then, not a stale snapshot.  This is the
        boundary-only model — the world changes when a request touches
        it; schedule the trace on an event loop
        (:func:`~repro.sim.sources.schedule_condition_trace`) to apply
        steps at their true instants instead.
        """
        if condition_trace:
            idx, condition = condition_at(condition_trace, start,
                                          trace_period_s)
            self.system.update_condition(condition)
            if self.recorder is not None and idx != self._last_trace_idx:
                self._last_trace_idx = idx
                self.recorder.on_condition(start, idx, condition)

    def _observe_request(self, stats: ServingStats, rr: RequestRecord,
                         batch: Optional[int] = None) -> None:
        """Append one finished request and update serving telemetry."""
        if self.recorder is not None:
            self.recorder.on_request(len(stats.records), rr, batch=batch)
        stats.records.append(rr)
        if self.telemetry is not None:
            self._m_requests.inc()
            (self._m_satisfied if rr.satisfied
             else self._m_violated).inc()
            self._m_queue.observe(rr.queue_wait_s)
            self._m_e2e.observe(rr.end_to_end_s)
            counter = self._m_outcomes.get(rr.outcome)
            if counter is None:
                counter = self._reg.counter(
                    "outcomes_total", help="requests by outcome",
                    outcome=rr.outcome)
                self._m_outcomes[rr.outcome] = counter
            counter.inc()
            if rr.tenant is not None:
                self._tenant_counter("tenant_requests_total",
                                     "requests per tenant",
                                     rr.tenant).inc()
                if rr.satisfied:
                    self._tenant_counter("tenant_satisfied_total",
                                         "SLO-satisfied requests per tenant",
                                         rr.tenant).inc()
                if rr.outcome == "shed":
                    self._tenant_counter("tenant_shed_total",
                                         "admission-shed requests per tenant",
                                         rr.tenant).inc()

    def _tenant_counter(self, name: str, help_text: str, tenant: str):
        key = (name, tenant)
        counter = self._m_tenants.get(key)
        if counter is None:
            counter = self._reg.counter(name, help=help_text, tenant=tenant)
            self._m_tenants[key] = counter
        return counter

    def _arrivals(self, num_requests: int) -> np.ndarray:
        """Arrival times: Poisson by default, or the injected process."""
        if self.arrival_process is not None:
            arrivals = np.asarray(
                self.arrival_process(self.rng, num_requests), dtype=float)
            if len(arrivals) != num_requests:
                raise ValueError(
                    f"arrival_process returned {len(arrivals)} times "
                    f"for num_requests={num_requests}")
            return arrivals
        return np.cumsum(self.rng.exponential(1.0 / self.rate,
                                              num_requests))

    def _shed(self, stats: ServingStats, arrival: float,
              batch: Optional[int] = None,
              tenant: Optional[str] = None) -> None:
        """Account one admission-shed request: zero service, not
        satisfied, pipeline untouched."""
        self._observe_request(stats, RequestRecord(
            arrival=arrival, start=arrival, finish=arrival,
            inference_s=0.0, decision_s=0.0, switch_s=0.0,
            satisfied=False, outcome="shed", tenant=tenant), batch=batch)

    @staticmethod
    def _tenant_of(tenants, i: int) -> Optional[str]:
        return tenants[i] if tenants is not None else None

    @staticmethod
    def _backlog(arrivals: np.ndarray, i: int, busy_until: float) -> int:
        """Requests from ``i`` on that arrive before the pipeline frees
        — the queue the server must drain before catching up."""
        depth = int(np.searchsorted(arrivals, busy_until, side="right")) - i
        return max(depth, 0)

    def run(self, num_requests: int,
            condition_trace: Optional[Sequence[NetworkCondition]] = None,
            trace_period_s: float = 1.0,
            tenants: Optional[Sequence[Optional[str]]] = None,
            ) -> ServingStats:
        """Serve ``num_requests``; returns the timeline statistics.

        ``condition_trace`` (optional) switches the true network state
        every ``trace_period_s`` of simulated time.

        ``tenants`` (optional) tags request ``i`` with ``tenants[i]``;
        the tag rides through admission, the facade, records, and
        telemetry.  None keeps single-tenant serving byte-identical.
        """
        if num_requests <= 0:
            raise ValueError(
                f"num_requests must be positive, got {num_requests}")
        if tenants is not None and len(tenants) != num_requests:
            raise ValueError(
                f"tenants covers {len(tenants)} requests but "
                f"num_requests is {num_requests}")
        stats = ServingStats()
        self._last_trace_idx = None
        arrivals = self._arrivals(num_requests)
        server_free = 0.0
        tracer = Telemetry.tracer_of(self.telemetry)
        for i, arrival in enumerate(arrivals):
            arrival = float(arrival)
            tenant = self._tenant_of(tenants, i)
            if self.events is not None:
                # every world event due by this admission instant fires
                # first (at its own scheduled time), so the ingress and
                # the admission peek see the instant's true world
                self.events.advance_to(arrival)
            ready = arrival
            if self.ingress is not None:
                # the payload crosses the shared uplink before service
                # can start; concurrent tenants fair-share the wire
                ready = arrival + self.ingress.upload_time(arrival, tenant)
            start = max(ready, server_free)
            if self.control is not None:
                self.control.maybe_tick(
                    arrival, stats=stats,
                    queue_depth=self._backlog(arrivals, i, server_free))
                verdict = self.control.admit(arrival, start,
                                             self.system.slo,
                                             tenant=tenant)
                if verdict == "shed":
                    self._shed(stats, arrival, tenant=tenant)
                    continue
            else:
                verdict = "serve"
            if self.ingress is not None:
                # only admitted requests occupy the uplink
                self.ingress.admit(arrival, tenant)
            self._apply_trace(condition_trace, trace_period_s, start)
            if self.events is not None:
                # events between admission and service start (queueing)
                # fire before the decision observes the world
                self.events.advance_to(start)
            with tracer.span("request", sim_time=arrival,
                             request=i) as root:
                with tracer.span("queue", sim_time=arrival) as qs:
                    qs.set_sim_end(start)
                record: "InferenceRecord" = self.system.infer(
                    now=start, request_id=i,
                    degraded=(verdict == "degrade"), tenant=tenant)
                # Summed left-to-right in pipeline order (decision,
                # switch, execute) so the batched server's size-1
                # degenerate case reproduces these floats bit-exactly.
                finish = (start + record.decision_time_s
                          + record.switch_time_s + record.latency_s)
                root.set_sim_end(finish)
                root.annotate(satisfied=record.satisfied,
                              cache_hit=record.cache_hit)
                if tenant is not None:
                    root.annotate(tenant=tenant)
                if record.outcome != "ok":
                    root.annotate(outcome=record.outcome)
            server_free = finish
            self._observe_request(stats, RequestRecord(
                arrival=arrival, start=start, finish=finish,
                inference_s=record.latency_s,
                decision_s=record.decision_time_s,
                switch_s=record.switch_time_s,
                satisfied=record.satisfied,
                outcome=record.outcome,
                retries=record.retries,
                failovers=record.failovers,
                tenant=tenant))
        return stats
