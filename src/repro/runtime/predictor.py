"""Monitoring-data predictor (paper Sec. 5).

A lightweight per-metric linear regression over the recent monitoring
window forecasts near-future bandwidth/delay, letting the decision
module *precompute* strategies before conditions actually change.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..netsim.monitor import Measurement
from ..netsim.topology import NetworkCondition

__all__ = ["LinearPredictor", "MonitoringPredictor"]


class LinearPredictor:
    """Line fit over a sliding window of (t, value).

    ``robust=True`` switches from least squares to the Theil-Sen
    estimator (scipy), which shrugs off the occasional wildly wrong
    probe — a real failure mode of active measurements sharing a link
    with inference traffic.
    """

    def __init__(self, window: int = 8, robust: bool = False):
        if window < 2:
            raise ValueError("window must be >= 2")
        self.window = window
        self.robust = robust
        self._ts: Deque[float] = deque(maxlen=window)
        self._vs: Deque[float] = deque(maxlen=window)

    def observe(self, t: float, value: float) -> None:
        self._ts.append(float(t))
        self._vs.append(float(value))

    @property
    def n(self) -> int:
        return len(self._vs)

    def predict(self, t: float) -> Optional[float]:
        """Forecast the value at time ``t`` (None until 2+ samples)."""
        if self.n == 0:
            return None
        if self.n == 1:
            return self._vs[0]
        ts = np.asarray(self._ts)
        vs = np.asarray(self._vs)
        if np.ptp(ts) == 0:
            return float(vs.mean())
        if self.robust and len(vs) >= 3:
            from scipy.stats import theilslopes
            slope, intercept, _, _ = theilslopes(vs, ts)
        else:
            slope, intercept = np.polyfit(ts, vs, 1)
        return float(slope * t + intercept)


class MonitoringPredictor:
    """Forecasts the full network condition from monitoring history."""

    def __init__(self, num_remote: int, window: int = 8,
                 bw_range: Tuple[float, float] = (1.0, 1000.0),
                 delay_range: Tuple[float, float] = (0.0, 500.0),
                 robust: bool = False):
        self.num_remote = num_remote
        self.bw_range = bw_range
        self.delay_range = delay_range
        self._bw: Dict[int, LinearPredictor] = {
            d: LinearPredictor(window, robust)
            for d in range(1, num_remote + 1)}
        self._delay: Dict[int, LinearPredictor] = {
            d: LinearPredictor(window, robust)
            for d in range(1, num_remote + 1)}

    def observe(self, m: Measurement) -> None:
        if m.device not in self._bw:
            raise ValueError(f"device {m.device} out of range")
        self._bw[m.device].observe(m.timestamp, m.bandwidth_mbps)
        self._delay[m.device].observe(m.timestamp, m.delay_ms)

    def observe_all(self, measurements: List[Measurement]) -> None:
        for m in measurements:
            self.observe(m)

    def predict(self, t: float,
                fallback: Optional[NetworkCondition] = None,
                ) -> Optional[NetworkCondition]:
        """Predicted condition at time ``t``.

        Metrics without history fall back to ``fallback`` (or None is
        returned if no fallback covers them).  Predictions are clamped to
        physical ranges.
        """
        bws, delays = [], []
        for d in range(1, self.num_remote + 1):
            b = self._bw[d].predict(t)
            l = self._delay[d].predict(t)
            if b is None or l is None:
                if fallback is None:
                    return None
                b = fallback.bandwidths_mbps[d - 1] if b is None else b
                l = fallback.delays_ms[d - 1] if l is None else l
            bws.append(float(np.clip(b, *self.bw_range)))
            delays.append(float(np.clip(l, *self.delay_range)))
        return NetworkCondition(tuple(bws), tuple(delays))
