"""Model reconfiguration (paper Sec. 5.1 / Fig. 19).

Murmuration keeps the *entire supernet* resident in memory and switches
submodels by flipping the active architecture config — no weight copies,
no disk access.  The alternative (what fixed-model baselines must do
when they change models under a memory budget) reloads weights from
storage.  Both paths are implemented so Fig. 19 can be regenerated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..devices.latency import model_switch_time, supernet_reconfig_time
from ..devices.profiles import DeviceProfile
from ..models.graph import ModelGraph
from ..nas.arch import ArchConfig
from ..nas.graph_builder import build_graph
from ..nas.search_space import SearchSpace
from ..nas.supernet import Supernet

__all__ = ["SwitchRecord", "ModelReconfig", "FixedModelStore"]


@dataclass(frozen=True)
class SwitchRecord:
    """One model switch with both measured and device-modelled cost."""

    kind: str                  # "supernet" | "reload"
    wall_time_s: float         # measured on this host
    modeled_time_s: float      # projected onto the target device
    model_name: str


class ModelReconfig:
    """In-memory supernet submodel switching."""

    def __init__(self, supernet: Supernet, device: DeviceProfile):
        self.net = supernet
        self.device = device
        self.active_arch: Optional[ArchConfig] = None
        self._active_units: List[int] = []
        self.history: List[SwitchRecord] = []

    def switch(self, arch: ArchConfig) -> SwitchRecord:
        """Activate a submodel: recompute the active-unit view only."""
        t0 = time.perf_counter()
        arch.validate(self.net.space)
        self._active_units = self.net.active_units(arch)
        self.active_arch = arch
        wall = time.perf_counter() - t0
        modeled = supernet_reconfig_time(len(self._active_units), self.device)
        rec = SwitchRecord("supernet", wall, modeled, "murmuration_subnet")
        self.history.append(rec)
        return rec

    @property
    def active_units(self) -> List[int]:
        if self.active_arch is None:
            raise RuntimeError("no submodel active; call switch() first")
        return list(self._active_units)


class FixedModelStore:
    """Baseline model switching: weights must be (re)loaded from storage.

    Models the memory-constrained regime of Fig. 19 — at most
    ``resident_budget`` bytes of weights stay in RAM, so switching to a
    non-resident model pays the full weight-load cost.
    """

    def __init__(self, device: DeviceProfile,
                 resident_budget: Optional[int] = None):
        self.device = device
        self.resident_budget = (resident_budget if resident_budget is not None
                                else device.memory_bytes // 8)
        self._resident: Dict[str, int] = {}  # name -> weight bytes
        self.history: List[SwitchRecord] = []

    def _evict_until_fits(self, need: int) -> None:
        while (sum(self._resident.values()) + need > self.resident_budget
               and self._resident):
            self._resident.pop(next(iter(self._resident)))

    def switch(self, graph: ModelGraph) -> SwitchRecord:
        """Switch to ``graph``; free if already resident, else reload."""
        nbytes = graph.total_weight_bytes
        if graph.name in self._resident:
            modeled = 1e-4  # pointer swap
        else:
            modeled = model_switch_time(graph, self.device, in_memory=False)
            self._evict_until_fits(nbytes)
            self._resident[graph.name] = nbytes
        rec = SwitchRecord("reload", 0.0, modeled, graph.name)
        self.history.append(rec)
        return rec
