"""In-process RPC substitute for gRPC.

The paper's devices exchange activation tensors over gRPC; here the
"wire" is a function call whose cost is charged to the simulated clock
via the cluster's link model — and whose payload really is the
(optionally quantized) tensor, so precision loss is physically incurred,
not just priced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..netsim.topology import Cluster
from ..nn.quantize import QuantizedTensor, dequantize, quantize

__all__ = ["Message", "Transport"]


@dataclass
class Message:
    """One delivered payload with accounting metadata."""

    src: int
    dst: int
    payload: Any
    nbytes: int
    sent_at: float
    delivered_at: float


class Transport:
    """Message channel between cluster devices with full accounting."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.log: List[Message] = []

    def send_tensor(self, x: np.ndarray, src: int, dst: int, bits: int,
                    now: float) -> Message:
        """Quantize, 'transmit', dequantize.

        Returns the delivered message; ``payload`` is the tensor as seen
        by the receiver (with real quantization error for bits < 32).
        """
        qt = quantize(x, bits)
        nbytes = qt.nbytes
        if src == dst:
            delivered = now
            payload = x
        else:
            delivered = now + self.cluster.transfer_time(src, dst, nbytes)
            payload = dequantize(qt)
        msg = Message(src, dst, payload, nbytes, now, delivered)
        self.log.append(msg)
        return msg

    def send_control(self, src: int, dst: int, payload: Any, now: float,
                     nbytes: int = 256) -> Message:
        """Small control-plane message (strategy updates, probes)."""
        delivered = (now if src == dst
                     else now + self.cluster.transfer_time(src, dst, nbytes))
        msg = Message(src, dst, payload, nbytes, now, delivered)
        self.log.append(msg)
        return msg

    @property
    def total_bytes(self) -> int:
        return sum(m.nbytes for m in self.log if m.src != m.dst)

    @property
    def num_messages(self) -> int:
        return sum(1 for m in self.log if m.src != m.dst)

    def reset_log(self) -> None:
        self.log.clear()
