"""In-process RPC substitute for gRPC.

The paper's devices exchange activation tensors over gRPC; here the
"wire" is a function call whose cost is charged to the simulated clock
via the cluster's link model — and whose payload really is the
(optionally quantized) tensor, so precision loss is physically incurred,
not just priced.

Failure semantics (opt-in via ``faults=``): each cross-device send may
be lost or the peer may be unreachable.  The sender only learns this
when its ack timeout expires, so every failed attempt costs the
attempt's timeout (exponential backoff across attempts), and the
successful retry re-pays the full transfer time — retries show up in
delivered-at timestamps, latency, and telemetry.  When every attempt
times out, :class:`~repro.faults.resilience.DeviceUnreachableError`
carries the wasted time for the caller to charge to the request.

On a mesh cluster the wire is a *path*: when the current route differs
from the fault-free one the transport has transparently failed over to
the next-best path — the transfer already paid that path's honest
latency via ``transfer_time`` — and the reroute is counted
(``transport_reroute_total``, per-link ``link_reroutes_total``) so the
dashboards show which pairs are living on their backup routes.  Health
observations are recorded per endpoint *and* per endpoint pair, feeding
the device- and link-level circuit breakers separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..faults.resilience import DeviceUnreachableError, RetryPolicy
from ..netsim.topology import Cluster
from ..nn.quantize import QuantizedTensor, dequantize, quantize
from ..telemetry import Telemetry

__all__ = ["Message", "Transport"]


@dataclass
class Message:
    """One delivered payload with accounting metadata.

    ``request_id`` stitches cross-device messages back to the serving
    request that caused them; ``retries`` counts the re-transmissions
    this delivery needed (0 on a clean first attempt).
    """

    src: int
    dst: int
    payload: Any
    nbytes: int
    sent_at: float
    delivered_at: float
    request_id: Optional[int] = None
    retries: int = 0


class Transport:
    """Message channel between cluster devices with full accounting.

    ``total_bytes``/``num_messages``/``num_retries`` are O(1) running
    aggregates over the current log window; :meth:`reset_log` clears the
    log *and* these aggregates together, so they always agree with
    ``self.log``.  Telemetry counters (``transport_bytes_total``,
    ``transport_retries_total``, ...) are monotonic by design — they
    survive resets, tracking the unbounded-horizon totals.
    """

    def __init__(self, cluster: Cluster,
                 telemetry: Optional[Telemetry] = None,
                 faults=None, health=None,
                 retry: Optional[RetryPolicy] = None):
        self.cluster = cluster
        self.log: List[Message] = []
        self.telemetry = telemetry
        self.faults = faults
        self.health = health
        self.retry = retry if retry is not None else RetryPolicy()
        #: request id stamped onto every message until changed
        self.request_id: Optional[int] = None
        #: tenant tag attributed to every transfer until changed
        #: (feeds the contention tracker's per-tenant accounting)
        self.tenant: Optional[str] = None
        self._total_bytes = 0
        self._num_messages = 0
        self._num_retries = 0
        self._num_reroutes = 0
        self._wasted_s = 0.0
        if telemetry is not None:
            self._reg = telemetry.registry.child("transport")
            self._m_bytes = self._reg.counter(
                "bytes_total", help="payload bytes on the wire")
            self._m_messages = self._reg.counter(
                "messages_total", help="cross-device messages")
            self._m_transfer = self._reg.histogram(
                "transfer_s", help="simulated per-message transfer time")
            self._m_retries = self._reg.counter(
                "retries_total", help="message re-transmissions")
            self._m_unreachable = self._reg.counter(
                "unreachable_total", help="sends that exhausted every retry")
            self._m_reroutes = self._reg.counter(
                "reroute_total",
                help="deliveries that travelled a non-base path")

    def _account(self, msg: Message, bits: Optional[int] = None) -> None:
        """Record one cross-device delivery in the telemetry registry."""
        self._m_bytes.inc(msg.nbytes)
        self._m_messages.inc()
        self._m_transfer.observe(msg.delivered_at - msg.sent_at)
        link = f"{msg.src}-{msg.dst}"
        self._reg.counter("link_bytes_total",
                          help="payload bytes per link", link=link,
                          ).inc(msg.nbytes)
        self._reg.histogram("link_transfer_s",
                            help="simulated transfer time per link",
                            link=link).observe(msg.delivered_at - msg.sent_at)
        if bits is not None:
            self._reg.counter("quantized_messages_total",
                              help="tensor messages by wire precision",
                              bits=bits).inc()
        if msg.retries:
            self._m_retries.inc(msg.retries)

    def _contend(self, src: int, dst: int, now: float) -> Tuple[float, int]:
        """Fight the injected faults for one delivery.

        Returns ``(wasted_s, retries)`` on eventual success; raises
        :class:`DeviceUnreachableError` when every attempt times out.
        The blamed device is the remote endpoint (the peer we cannot
        reach — never the gateway, which is the caller itself).
        """
        faults = self.faults
        policy = self.retry
        wasted = 0.0
        for attempt in range(policy.attempts):
            delivered = (faults.reachable(src, dst)
                         and not faults.message_lost(src, dst))
            if delivered:
                if self.health is not None:
                    for d in (src, dst):
                        if d != 0:
                            self.health.record_success(d, now)
                    self.health.record_link_success(src, dst, now)
                return wasted, attempt
            wasted += policy.timeout_of(attempt)
        device = dst if dst != 0 else src
        self._num_retries += policy.max_retries
        if self.health is not None:
            self.health.record_failure(device, now)
            self.health.record_link_failure(src, dst, now)
        if self.telemetry is not None:
            self._m_retries.inc(policy.max_retries)
            self._m_unreachable.inc()
        raise DeviceUnreachableError(device, wasted, policy.max_retries)

    def _wire_time(self, src: int, dst: int, nbytes: float,
                   now: float) -> float:
        """Transfer time at ``now``: contention-aware when the cluster
        tracks flows (snapshot :class:`ContentionTracker` or fluid
        max-min :class:`~repro.netsim.fluid.FluidTracker` — the cluster
        picks), else the classic un-shared pricing (clusters without
        ``timed_transfer`` — test doubles — keep working)."""
        timed = getattr(self.cluster, "timed_transfer", None)
        if timed is not None:
            return timed(src, dst, nbytes, now, tenant=self.tenant)
        return self.cluster.transfer_time(src, dst, nbytes)

    def _note_route(self, src: int, dst: int) -> None:
        """Count deliveries riding a backup path (mesh clusters only).

        Called after a successful transfer; on a mesh whose current
        route for this pair differs from the fault-free base path, the
        delivery was transparently rerouted — the extra latency was
        already paid in ``transfer_time``, this just makes it visible.
        """
        route_info = getattr(self.cluster, "route_info", None)
        if route_info is None:
            return
        if not route_info(src, dst).rerouted:
            return
        self._num_reroutes += 1
        if self.telemetry is not None:
            self._m_reroutes.inc()
            self._reg.counter("link_reroutes_total",
                              help="rerouted deliveries per device pair",
                              link=f"{src}-{dst}").inc()

    def send_tensor(self, x: np.ndarray, src: int, dst: int, bits: int,
                    now: float) -> Message:
        """Quantize, 'transmit', dequantize.

        Returns the delivered message; ``payload`` is the tensor as seen
        by the receiver (with real quantization error for bits < 32).
        """
        qt = quantize(x, bits)
        nbytes = qt.nbytes
        if src == dst:
            delivered = now
            payload = x
            retries = 0
        else:
            wasted = 0.0
            retries = 0
            if self.faults is not None:
                wasted, retries = self._contend(src, dst, now)
            delivered = (now + wasted
                         + self._wire_time(src, dst, nbytes, now + wasted))
            payload = dequantize(qt)
        msg = Message(src, dst, payload, nbytes, now, delivered,
                      request_id=self.request_id, retries=retries)
        self.log.append(msg)
        if src != dst:
            self._total_bytes += nbytes
            self._num_messages += 1
            self._num_retries += retries
            if retries:
                self._wasted_s += wasted
            self._note_route(src, dst)
            if self.telemetry is not None:
                self._account(msg, bits=bits)
        return msg

    def send_control(self, src: int, dst: int, payload: Any, now: float,
                     nbytes: int = 256) -> Message:
        """Small control-plane message (strategy updates, probes)."""
        retries = 0
        if src == dst:
            delivered = now
        else:
            wasted = 0.0
            if self.faults is not None:
                wasted, retries = self._contend(src, dst, now)
            delivered = (now + wasted
                         + self._wire_time(src, dst, nbytes, now + wasted))
        msg = Message(src, dst, payload, nbytes, now, delivered,
                      request_id=self.request_id, retries=retries)
        self.log.append(msg)
        if src != dst:
            self._total_bytes += nbytes
            self._num_messages += 1
            self._num_retries += retries
            if retries:
                self._wasted_s += wasted
            self._note_route(src, dst)
            if self.telemetry is not None:
                self._account(msg)
        return msg

    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    @property
    def num_messages(self) -> int:
        return self._num_messages

    @property
    def num_retries(self) -> int:
        return self._num_retries

    @property
    def num_reroutes(self) -> int:
        """Deliveries in the current log window that rode a backup path."""
        return self._num_reroutes

    @property
    def wasted_s(self) -> float:
        """Simulated seconds burned on timeouts by *successful* sends in
        the current log window (give-up waste travels in the raised
        :class:`DeviceUnreachableError` instead)."""
        return self._wasted_s

    def reset_log(self) -> None:
        """Clear the message log and its derived aggregates together.

        ``total_bytes``/``num_messages``/``num_retries``/``wasted_s``
        always describe the current ``log`` window; telemetry counters
        are monotonic by design and deliberately unaffected.
        """
        self.log.clear()
        self._total_bytes = 0
        self._num_messages = 0
        self._num_retries = 0
        self._num_reroutes = 0
        self._wasted_s = 0.0
