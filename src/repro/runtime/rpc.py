"""In-process RPC substitute for gRPC.

The paper's devices exchange activation tensors over gRPC; here the
"wire" is a function call whose cost is charged to the simulated clock
via the cluster's link model — and whose payload really is the
(optionally quantized) tensor, so precision loss is physically incurred,
not just priced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..netsim.topology import Cluster
from ..nn.quantize import QuantizedTensor, dequantize, quantize
from ..telemetry import Telemetry

__all__ = ["Message", "Transport"]


@dataclass
class Message:
    """One delivered payload with accounting metadata."""

    src: int
    dst: int
    payload: Any
    nbytes: int
    sent_at: float
    delivered_at: float


class Transport:
    """Message channel between cluster devices with full accounting."""

    def __init__(self, cluster: Cluster,
                 telemetry: Optional[Telemetry] = None):
        self.cluster = cluster
        self.log: List[Message] = []
        self.telemetry = telemetry
        if telemetry is not None:
            self._reg = telemetry.registry.child("transport")
            self._m_bytes = self._reg.counter(
                "bytes_total", help="payload bytes on the wire")
            self._m_messages = self._reg.counter(
                "messages_total", help="cross-device messages")
            self._m_transfer = self._reg.histogram(
                "transfer_s", help="simulated per-message transfer time")

    def _account(self, msg: Message, bits: Optional[int] = None) -> None:
        """Record one cross-device delivery in the telemetry registry."""
        self._m_bytes.inc(msg.nbytes)
        self._m_messages.inc()
        self._m_transfer.observe(msg.delivered_at - msg.sent_at)
        link = f"{msg.src}-{msg.dst}"
        self._reg.counter("link_bytes_total",
                          help="payload bytes per link", link=link,
                          ).inc(msg.nbytes)
        self._reg.histogram("link_transfer_s",
                            help="simulated transfer time per link",
                            link=link).observe(msg.delivered_at - msg.sent_at)
        if bits is not None:
            self._reg.counter("quantized_messages_total",
                              help="tensor messages by wire precision",
                              bits=bits).inc()

    def send_tensor(self, x: np.ndarray, src: int, dst: int, bits: int,
                    now: float) -> Message:
        """Quantize, 'transmit', dequantize.

        Returns the delivered message; ``payload`` is the tensor as seen
        by the receiver (with real quantization error for bits < 32).
        """
        qt = quantize(x, bits)
        nbytes = qt.nbytes
        if src == dst:
            delivered = now
            payload = x
        else:
            delivered = now + self.cluster.transfer_time(src, dst, nbytes)
            payload = dequantize(qt)
        msg = Message(src, dst, payload, nbytes, now, delivered)
        self.log.append(msg)
        if self.telemetry is not None and src != dst:
            self._account(msg, bits=bits)
        return msg

    def send_control(self, src: int, dst: int, payload: Any, now: float,
                     nbytes: int = 256) -> Message:
        """Small control-plane message (strategy updates, probes)."""
        delivered = (now if src == dst
                     else now + self.cluster.transfer_time(src, dst, nbytes))
        msg = Message(src, dst, payload, nbytes, now, delivered)
        self.log.append(msg)
        if self.telemetry is not None and src != dst:
            self._account(msg)
        return msg

    @property
    def total_bytes(self) -> int:
        return sum(m.nbytes for m in self.log if m.src != m.dst)

    @property
    def num_messages(self) -> int:
        return sum(1 for m in self.log if m.src != m.dst)

    def reset_log(self) -> None:
        self.log.clear()
