"""Batched, overlapped serving on top of the Murmuration facade.

:class:`~repro.runtime.server.InferenceServer` decides and executes one
request at a time; under heavy traffic the per-request decision (and
model switch) is pure overhead — every queued request pays it again even
though the SLO and the observed condition snap to the same strategy-
cache cell.  This module adds the two standard serving optimizations on
the simulated clock:

* **Batching** — requests that arrive while the pipeline is busy
  accumulate into a batch (bounded by :attr:`BatchPolicy.max_batch`,
  with a :attr:`BatchPolicy.max_wait_s` fill timeout anchored at the
  oldest queued request).  One decision and one model switch are
  amortized across the whole batch, which is sound because all items
  share the SLO and the condition observed at decision time — the batch
  occupies a single :class:`~repro.core.strategy_cache.StrategyCache`
  cell.
* **Overlap** — the decision for batch *k+1* runs on the gateway while
  batch *k* still executes on the cluster, so decision latency leaves
  the critical path exactly when the cache misses (a cache hit costs no
  decision time to begin with).  The model switch cannot overlap — the
  weights are in use until batch *k* drains — so it is charged after
  ``max(decision end, executor free)``.

With ``max_batch=1`` the policy degenerates to the FIFO server: a batch
is full at its first member (the fill timeout never engages) and there
is no second in-flight batch to pipeline against, so overlap is
disabled and the produced :class:`ServingStats` records are bit-
identical to :meth:`InferenceServer.run` (enforced by test).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..netsim.topology import NetworkCondition
from ..telemetry import Telemetry
from .server import InferenceServer, RequestRecord, ServingStats

__all__ = ["BatchPolicy", "BatchRecord", "BatchedServingStats",
           "BatchingInferenceServer"]


@dataclass(frozen=True)
class BatchPolicy:
    """When a forming batch stops admitting and dispatches.

    A batch dispatches at the earliest of: the cap is reached, or the
    fill timeout (anchored at the batch's *oldest* request) expires.
    Requests already queued when the pipeline frees are admitted
    immediately up to the cap.
    """

    #: hard cap on batch size
    max_batch: int = 8
    #: how long an under-full batch may wait for companions, measured
    #: from its oldest member's arrival (0 = never wait)
    max_wait_s: float = 0.0
    #: pipeline the next batch's decision under the current execution
    overlap: bool = True

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(
                f"max_batch must be positive, got {self.max_batch}")
        if self.max_wait_s < 0:
            raise ValueError(
                f"max_wait_s must be non-negative, got {self.max_wait_s}")


@dataclass(frozen=True)
class BatchRecord:
    """Timeline of one dispatched batch (simulated seconds)."""

    index: int
    size: int
    #: membership known (cap reached / timeout fired / queue drained)
    close_s: float
    decision_start_s: float
    decision_s: float
    switch_s: float
    exec_start_s: float
    finish_s: float
    cache_hit: bool
    #: decision seconds hidden under the previous batch's execution
    overlap_saved_s: float


@dataclass
class BatchedServingStats(ServingStats):
    """Per-request records plus the batch-level timeline."""

    batches: List[BatchRecord] = field(default_factory=list)

    @property
    def mean_batch_size(self) -> float:
        if not self.batches:
            return 0.0
        return float(np.mean([b.size for b in self.batches]))

    @property
    def amortized_decisions(self) -> int:
        """Decisions *saved* vs the FIFO loop (one per extra item)."""
        return sum(b.size - 1 for b in self.batches)

    @property
    def overlap_saved_s(self) -> float:
        return sum(b.overlap_saved_s for b in self.batches)

    def summary(self) -> str:
        base = super().summary()
        if self.batches:
            base += (f", batches={len(self.batches)} "
                     f"(mean size {self.mean_batch_size:.1f}, "
                     f"{self.amortized_decisions} decisions amortized, "
                     f"{self.overlap_saved_s * 1e3:.1f}ms overlapped)")
        return base


class BatchingInferenceServer(InferenceServer):
    """Poisson arrivals -> batch accumulation -> amortized adaptation.

    Same arrival process, statistics, and telemetry as the FIFO
    :class:`InferenceServer` (same seed => same arrival times), plus the
    batch pipeline described in the module docstring.
    """

    def __init__(self, system, arrival_rate_hz: float,
                 policy: Optional[BatchPolicy] = None, seed: int = 0,
                 telemetry: Optional[Telemetry] = None,
                 recorder=None, control=None, arrival_process=None,
                 events=None):
        super().__init__(system, arrival_rate_hz, seed=seed,
                         telemetry=telemetry, recorder=recorder,
                         control=control, arrival_process=arrival_process,
                         events=events)
        #: re-read at every batch boundary — a BatchPolicyController may
        #: replace it mid-run
        self.policy = policy if policy is not None else BatchPolicy()
        if telemetry is not None:
            reg = telemetry.registry.child("server")
            self._m_batch_size = reg.histogram(
                "batch_size", help="requests per dispatched batch",
                lo=1.0, hi=4096.0)
            self._m_amortized = reg.counter(
                "amortized_decisions_total",
                help="decisions saved by batching (batch size - 1 each)")
            self._m_overlap_saved = reg.gauge(
                "overlap_saved_s",
                help="cumulative decision seconds hidden under execution")

    # -- batch formation ---------------------------------------------------
    def _close_batch(self, arrivals: np.ndarray, i: int, exec_free: float,
                     early: bool) -> "tuple":
        """Pick the members of the batch led by request ``i``.

        Returns ``(j, close)``: members are ``arrivals[i:j]`` and the
        batch's membership is known at simulated time ``close``.

        ``early`` (overlap mode): a batch whose cap fills while the
        previous batch still executes closes the moment its last seat is
        taken — membership is identical to waiting for the executor, but
        the decision can start immediately and overlap the ongoing
        execution.
        """
        n = len(arrivals)
        a_first = float(arrivals[i])
        # Everything queued by the time the pipeline could take the
        # batch is admitted immediately, up to the cap.
        natural = max(a_first, exec_free)
        cap_idx = i + self.policy.max_batch - 1
        if early and cap_idx < n and float(arrivals[cap_idx]) <= natural:
            return i + self.policy.max_batch, float(arrivals[cap_idx])
        j = i + 1
        while j < n and j - i < self.policy.max_batch \
                and float(arrivals[j]) <= natural:
            j += 1
        close = natural
        if j - i < self.policy.max_batch and self.policy.max_wait_s > 0:
            # Under-full: hold the batch open until the fill timeout
            # (anchored at the oldest member) or the cap, whichever
            # fires first.  The timer runs to its deadline — a real
            # server cannot know no further request is coming.
            deadline = a_first + self.policy.max_wait_s
            if deadline > natural:
                while j < n and j - i < self.policy.max_batch \
                        and float(arrivals[j]) <= deadline:
                    j += 1
                if j - i == self.policy.max_batch:
                    close = max(natural, float(arrivals[j - 1]))
                else:
                    close = deadline
        return j, close

    # -- serving loop ------------------------------------------------------
    def run(self, num_requests: int,
            condition_trace: Optional[Sequence[NetworkCondition]] = None,
            trace_period_s: float = 1.0,
            tenants: Optional[Sequence[Optional[str]]] = None,
            ) -> BatchedServingStats:
        """Serve ``num_requests`` through the batched pipeline.

        ``tenants`` tags request ``i`` with ``tenants[i]`` exactly as in
        :meth:`InferenceServer.run`; a batch may mix tenants (they share
        the SLO and the condition cell, which is all batching needs).
        """
        if num_requests <= 0:
            raise ValueError(
                f"num_requests must be positive, got {num_requests}")
        if tenants is not None and len(tenants) != num_requests:
            raise ValueError(
                f"tenants covers {len(tenants)} requests but "
                f"num_requests is {num_requests}")
        if self.ingress is not None:
            raise ValueError(
                "the batched pipeline does not model a shared ingress; "
                "use InferenceServer for ingress-contended serving")
        stats = BatchedServingStats()
        self._last_trace_idx = None
        arrivals = self._arrivals(num_requests)
        exec_free = 0.0    # when the executor (cluster + model) frees
        dec_free = 0.0     # when the gateway's decision engine frees
        tracer = Telemetry.tracer_of(self.telemetry)
        i = 0
        k = 0
        while i < len(arrivals):
            degraded = False
            if self.events is not None:
                # world events due by the batch leader's arrival fire
                # first (at their own scheduled times)
                self.events.advance_to(float(arrivals[i]))
            if self.control is not None:
                self.control.maybe_tick(
                    float(arrivals[i]), stats=stats,
                    queue_depth=self._backlog(arrivals, i, exec_free))
                # Shed hopeless leading requests before they anchor a
                # batch; the surviving leader's verdict decides whether
                # the whole batch degrades (all members share its
                # strategy anyway).
                while i < len(arrivals):
                    a = float(arrivals[i])
                    verdict = self.control.admit(
                        a, max(a, exec_free), self.system.slo,
                        tenant=self._tenant_of(tenants, i))
                    if verdict != "shed":
                        degraded = verdict == "degrade"
                        break
                    self._shed(stats, a, tenant=self._tenant_of(tenants, i))
                    i += 1
                if i >= len(arrivals):
                    break
            # Policy is re-read each batch: a BatchPolicyController may
            # have replaced it at the tick above.  A size-1 batch has
            # nothing to amortize and no second in-flight batch to hide
            # a decision under: serial, FIFO-identical.
            pol = self.policy
            overlap = pol.overlap and pol.max_batch > 1
            j, close = self._close_batch(arrivals, i, exec_free,
                                         early=overlap)
            size = j - i
            # Overlapped: decide as soon as membership is known and the
            # engine is free.  Serial: the whole pipeline is the unit —
            # close already includes exec_free.
            d_start = max(close, dec_free) if overlap else close
            self._apply_trace(condition_trace, trace_period_s, d_start)
            if self.events is not None:
                # events up to the decision instant fire before the
                # batch's decision observes the world; d_start can lag
                # the loop after a long batch — the advance clamps
                self.events.advance_to(d_start)
            with tracer.span("batch", sim_time=d_start, index=k,
                             size=size) as bs:
                res = self.system.infer_batch(
                    batch_size=size, now=d_start,
                    request_ids=list(range(i, j)),
                    exec_not_before=(exec_free if overlap else None),
                    degraded=degraded)
                bs.set_sim_end(res.finish_s)
                bs.annotate(cache_hit=res.cache_hit)
            # What a serial pipeline would have charged: decision at
            # max(close, exec_free), execution right after.
            serial_exec_start = (max(close, exec_free)
                                 + res.decision_time_s + res.switch_time_s)
            saved = max(0.0, serial_exec_start - res.exec_start_s)
            dec_free = d_start + res.decision_time_s
            exec_free = res.finish_s
            batch = BatchRecord(
                index=k, size=size, close_s=close, decision_start_s=d_start,
                decision_s=res.decision_time_s, switch_s=res.switch_time_s,
                exec_start_s=res.exec_start_s, finish_s=res.finish_s,
                cache_hit=res.cache_hit, overlap_saved_s=saved)
            stats.batches.append(batch)
            if self.recorder is not None:
                self.recorder.on_batch(batch)
            for m, record in enumerate(res.items):
                arrival = float(arrivals[i + m])
                tenant = self._tenant_of(tenants, i + m)
                with tracer.span("request", sim_time=arrival,
                                 request=i + m) as root:
                    with tracer.span("queue", sim_time=arrival) as qs:
                        qs.set_sim_end(d_start)
                    root.set_sim_end(res.item_finish_s[m])
                    root.annotate(satisfied=record.satisfied,
                                  cache_hit=record.cache_hit, batch=k)
                    if tenant is not None:
                        root.annotate(tenant=tenant)
                    if record.outcome != "ok":
                        root.annotate(outcome=record.outcome)
                self._observe_request(stats, RequestRecord(
                    arrival=arrival, start=d_start,
                    finish=res.item_finish_s[m],
                    inference_s=record.latency_s,
                    decision_s=record.decision_time_s,
                    switch_s=record.switch_time_s,
                    satisfied=record.satisfied,
                    outcome=record.outcome,
                    retries=record.retries,
                    failovers=record.failovers,
                    tenant=tenant), batch=k)
            if self.telemetry is not None:
                self._m_batch_size.observe(float(size))
                if size > 1:
                    self._m_amortized.inc(size - 1)
                if saved > 0:
                    self._m_overlap_saved.inc(saved)
            i = j
            k += 1
        return stats
