"""The distributed executor: really runs plan-partitioned submodels.

Real NumPy inference through the elastic supernet, sliced according to
an :class:`~repro.partition.plan.ExecutionPlan`:

* consecutive blocks with the same (grid, devices, bits) form a
  *segment*;
* spatially partitioned segments split the activation into FDSP tiles
  (zero-padded borders, no halo exchange) and run each tile through the
  segment's units independently — bit-exact with what separate devices
  would compute;
* activations crossing a device boundary travel through the
  :class:`~repro.runtime.rpc.Transport`, incurring *real* quantization
  error at the plan's wire precision;
* timing comes from the same latency simulator the RL reward uses, so
  executed latencies and planned latencies agree by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..models.graph import ModelGraph
from ..nas.arch import ArchConfig
from ..nas.graph_builder import build_graph
from ..nas.supernet import Supernet
from ..netsim.topology import Cluster
from ..partition.plan import BlockPlan, ExecutionPlan
from ..partition.simulate import LatencyReport, simulate_latency
from ..partition.spatial import Grid, merge_tiles, split_tiles
from ..telemetry import Telemetry
from .rpc import Transport

__all__ = ["ExecutionResult", "DistributedExecutor"]


@dataclass
class ExecutionResult:
    logits: np.ndarray
    report: LatencyReport
    comm_bytes: int
    num_messages: int
    partitioned_segments: int

    @property
    def latency_ms(self) -> float:
        return self.report.total_ms


@dataclass
class _Segment:
    start: int                # first graph-block index
    stop: int                 # one past last
    plan: BlockPlan


def _segments(plan: ExecutionPlan) -> List[_Segment]:
    segs: List[_Segment] = []
    start = 0
    for i in range(1, len(plan) + 1):
        if i == len(plan) or plan[i] != plan[start]:
            segs.append(_Segment(start, i, plan[start]))
            start = i
    return segs


class DistributedExecutor:
    """Execute (arch, plan) on a cluster, for real."""

    def __init__(self, supernet: Supernet, cluster: Cluster,
                 telemetry: Optional[Telemetry] = None):
        self.net = supernet
        self.cluster = cluster
        self.telemetry = telemetry
        self.transport = Transport(cluster, telemetry=telemetry)
        if telemetry is not None:
            reg = telemetry.registry.child("executor")
            self._m_segments = reg.counter(
                "segments_total", help="plan segments executed")
            self._m_partitioned = reg.counter(
                "partitioned_segments_total",
                help="segments run under spatial partitioning")
            self._m_segment_wall = reg.histogram(
                "segment_compute_wall_s",
                help="wall-clock NumPy compute per segment")

    def execute(self, x: np.ndarray, arch: ArchConfig,
                plan: ExecutionPlan,
                graph: Optional[ModelGraph] = None,
                sim_time: float = 0.0) -> ExecutionResult:
        """Run one batch through the partitioned submodel.

        ``x`` must be (N, 3, R, R) with R = arch.resolution.
        """
        if x.shape[2] != arch.resolution:
            raise ValueError(
                f"input resolution {x.shape[2]} != arch resolution "
                f"{arch.resolution}")
        graph = graph or build_graph(arch, self.net.space)
        plan.validate_for(graph, self.cluster.num_devices)
        unit_ids = self.net.active_units(arch)
        if len(unit_ids) != len(graph):
            raise RuntimeError("unit/graph index misalignment")

        self.net.eval()
        self.transport.reset_log()
        tel = self.telemetry
        tracer = Telemetry.tracer_of(tel)
        # Modelled timing is deterministic in (graph, plan, cluster), so
        # pricing it up front lets each segment span carry its simulated
        # interval as well as its measured wall time.
        report = simulate_latency(graph, plan, self.cluster)
        done = report.per_block_done
        start_msgs = 0
        partitioned = 0
        loc = 0  # device currently holding the activation
        for seg in _segments(plan):
            bp = seg.plan
            units = [unit_ids[i] for i in range(seg.start, seg.stop)]
            seg_sim_start = sim_time + (done[seg.start - 1] if seg.start
                                        else 0.0)
            with tracer.span("segment", sim_time=seg_sim_start,
                             blocks=f"{seg.start}:{seg.stop}",
                             tiles=bp.grid.ntiles) as sp:
                sp.set_sim_end(sim_time + done[seg.stop - 1])
                if bp.grid.ntiles == 1:
                    dst = bp.devices[0]
                    if dst != loc:
                        msg = self.transport.send_tensor(x, loc, dst,
                                                         bp.bits, 0.0)
                        x = msg.payload
                        loc = dst
                    x = self.net.run_units(x, arch, units)
                else:
                    partitioned += 1
                    x = self._run_partitioned(x, arch, units, bp,
                                              graph, seg, loc)
                    # After the merge the activation conceptually sits on
                    # the first tile's device (the merger).
                    loc = bp.devices[0]
            if tel is not None:
                self._m_segments.inc()
                if bp.grid.ntiles > 1:
                    self._m_partitioned.inc()
                self._m_segment_wall.observe(sp.wall_duration_s)
        # Result returns to the output device (tiny logits).
        if loc != plan.output_device:
            msg = self.transport.send_tensor(x, loc, plan.output_device,
                                             32, 0.0)
            x = msg.payload
            loc = plan.output_device

        return ExecutionResult(
            logits=x,
            report=report,
            comm_bytes=self.transport.total_bytes,
            num_messages=self.transport.num_messages,
            partitioned_segments=partitioned,
        )

    def _run_partitioned(self, x: np.ndarray, arch: ArchConfig,
                         units: Sequence[int], bp: BlockPlan,
                         graph: ModelGraph, seg: _Segment,
                         loc: int) -> np.ndarray:
        """FDSP-execute one spatially partitioned segment."""
        grid = bp.grid
        in_h = x.shape[2]
        out_hw = graph[seg.stop - 1].out_hw
        if in_h % grid.rows or x.shape[3] % grid.cols:
            raise ValueError(
                f"activation {x.shape} not divisible by grid {grid}")
        tiles = split_tiles(x, grid, halo=0)
        out_tiles: List[np.ndarray] = []
        for j, tile in enumerate(tiles):
            dst = bp.devices[j]
            if dst != loc:
                msg = self.transport.send_tensor(tile, loc, dst, bp.bits, 0.0)
                tile = msg.payload
            y = self.net.run_units(tile, arch, units)
            # Ship the tile result to the merge device (tile 0's device).
            if dst != bp.devices[0]:
                msg = self.transport.send_tensor(y, dst, bp.devices[0],
                                                 bp.bits, 0.0)
                y = msg.payload
            out_tiles.append(y)
        return merge_tiles(out_tiles, grid, out_hw, halo=0)
