"""The distributed executor: really runs plan-partitioned submodels.

Real NumPy inference through the elastic supernet, sliced according to
an :class:`~repro.partition.plan.ExecutionPlan`:

* consecutive blocks with the same (grid, devices, bits) form a
  *segment*;
* spatially partitioned segments split the activation into FDSP tiles
  (zero-padded borders, no halo exchange) and run each tile through the
  segment's units independently — bit-exact with what separate devices
  would compute;
* activations crossing a device boundary travel through the
  :class:`~repro.runtime.rpc.Transport`, incurring *real* quantization
  error at the plan's wire precision;
* timing comes from the same latency simulator the RL reward uses, so
  executed latencies and planned latencies agree by construction.

Failure semantics (opt-in via ``faults=``): when a send exhausts its
retries mid-plan, the executor fails over — it restarts the request on
the best surviving device (re-paying the wasted discovery time), and
when no remote survives it gracefully degrades to the smallest feasible
submodel entirely on the gateway: accuracy drops, the request still
completes.  With failover disabled the request fails with
:class:`~repro.faults.resilience.ExecutionFailedError`.

On a mesh the failure taxonomy splits in two.  *Path dead with an
alternative*: the routing layer transparently fails over inside
``transfer_time`` — the plan keeps its placement, the transfer pays the
backup path's honest latency, and no exception is raised.  *Path dead
with no alternative* (:class:`~repro.faults.resilience.NoRouteError`):
operationally the same as a dead device — the endpoint cannot be used —
so the executor charges the retry give-up cost the sender would have
burned discovering it and runs the same failover/degradation ladder.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..faults.resilience import (DeviceUnreachableError, ExecutionFailedError,
                                 NoRouteError, ResilienceConfig)
from ..models.graph import ModelGraph
from ..nas.arch import ArchConfig, min_arch
from ..nas.graph_builder import build_graph
from ..nas.supernet import Supernet
from ..netsim.topology import Cluster
from ..partition.plan import BlockPlan, ExecutionPlan, single_device_plan
from ..partition.simulate import LatencyReport, simulate_latency
from ..partition.spatial import Grid, merge_tiles, split_tiles
from ..telemetry import Telemetry
from .rpc import Transport

__all__ = ["ExecutionResult", "DistributedExecutor"]


@dataclass
class ExecutionResult:
    logits: np.ndarray
    report: LatencyReport
    comm_bytes: int
    num_messages: int
    partitioned_segments: int
    #: "ok" | "retried" | "degraded" — what it took to complete
    outcome: str = "ok"
    retries: int = 0
    failovers: int = 0
    #: the architecture actually executed (differs from the planned one
    #: only after graceful degradation)
    executed_arch: Optional[ArchConfig] = None
    #: the plan actually executed (differs from the planned one after a
    #: failover or degradation); batch serving reuses it so one batch
    #: fails over as a unit instead of re-discovering per item
    executed_plan: Optional[ExecutionPlan] = None
    #: simulated seconds wasted discovering failures (already included
    #: in ``report.total_s``)
    penalty_s: float = 0.0

    @property
    def latency_ms(self) -> float:
        return self.report.total_ms


@dataclass
class _Segment:
    start: int                # first graph-block index
    stop: int                 # one past last
    plan: BlockPlan


def _segments(plan: ExecutionPlan) -> List[_Segment]:
    segs: List[_Segment] = []
    start = 0
    for i in range(1, len(plan) + 1):
        if i == len(plan) or plan[i] != plan[start]:
            segs.append(_Segment(start, i, plan[start]))
            start = i
    return segs


class DistributedExecutor:
    """Execute (arch, plan) on a cluster, for real."""

    def __init__(self, supernet: Supernet, cluster: Cluster,
                 telemetry: Optional[Telemetry] = None,
                 faults=None, health=None,
                 resilience: Optional[ResilienceConfig] = None):
        self.net = supernet
        self.cluster = cluster
        self.telemetry = telemetry
        self.faults = faults
        self.health = health
        self.resilience = (resilience if resilience is not None
                           else (ResilienceConfig() if faults is not None
                                 else None))
        retry = self.resilience.retry if self.resilience is not None else None
        self.transport = Transport(cluster, telemetry=telemetry,
                                   faults=faults, health=health, retry=retry)
        if telemetry is not None:
            reg = telemetry.registry.child("executor")
            self._m_segments = reg.counter(
                "segments_total", help="plan segments executed")
            self._m_partitioned = reg.counter(
                "partitioned_segments_total",
                help="segments run under spatial partitioning")
            self._m_segment_wall = reg.histogram(
                "segment_compute_wall_s",
                help="wall-clock NumPy compute per segment")
            self._m_failovers = reg.counter(
                "failovers_total", help="mid-plan failovers")
            self._m_degraded = reg.counter(
                "degraded_total", help="gateway-degraded executions")

    def execute(self, x: np.ndarray, arch: ArchConfig,
                plan: ExecutionPlan,
                graph: Optional[ModelGraph] = None,
                sim_time: float = 0.0,
                request_id: Optional[int] = None) -> ExecutionResult:
        """Run one batch through the partitioned submodel.

        ``x`` must be (N, 3, R, R) with R = arch.resolution.
        """
        if x.shape[2] != arch.resolution:
            raise ValueError(
                f"input resolution {x.shape[2]} != arch resolution "
                f"{arch.resolution}")
        graph = graph or build_graph(arch, self.net.space)
        plan.validate_for(graph, self.cluster.num_devices)
        self.transport.request_id = request_id
        if self.faults is None:
            return self._run_plan(x, arch, plan, graph, sim_time, request_id)
        return self._run_resilient(x, arch, plan, graph, sim_time, request_id)

    # -- fault-aware outer loop -------------------------------------------
    def _run_resilient(self, x: np.ndarray, arch: ArchConfig,
                       plan: ExecutionPlan, graph: ModelGraph,
                       sim_time: float,
                       request_id: Optional[int]) -> ExecutionResult:
        res = self.resilience
        cur_arch, cur_plan, cur_graph = arch, plan, graph
        excluded: set = set()
        penalty = 0.0
        retries = 0
        failovers = 0
        degraded = False
        while True:
            try:
                result = self._run_plan(x, cur_arch, cur_plan, cur_graph,
                                        sim_time + penalty, request_id)
            except (DeviceUnreachableError, NoRouteError) as e:
                if isinstance(e, NoRouteError):
                    # Pricing walked a dead path before any send went
                    # out.  The sender would have discovered this by
                    # timing out, so charge the full give-up schedule
                    # and teach the breakers, same as an exhausted
                    # retry loop — the accounting matches what the
                    # transport would have reported.
                    penalty += res.retry.give_up_cost()
                    retries += res.retry.max_retries
                    if self.health is not None:
                        self.health.record_failure(
                            e.device, sim_time + penalty)
                        self.health.record_link_failure(
                            e.src, e.dst, sim_time + penalty)
                else:
                    penalty += e.wasted_s
                    retries += self.transport.num_retries
                if not res.failover:
                    raise ExecutionFailedError(e.device, penalty,
                                               retries) from e
                excluded.add(e.device)
                failovers += 1
                if self.telemetry is not None:
                    self._m_failovers.inc()
                target = self._failover_target(excluded, sim_time)
                if target is None and res.degradation:
                    # Graceful degradation: smallest feasible submodel,
                    # entirely on the gateway.  No cross-device sends, so
                    # this attempt cannot fail again.
                    cur_arch = replace(min_arch(self.net.space),
                                       resolution=arch.resolution)
                    cur_graph = build_graph(cur_arch, self.net.space)
                    cur_plan = single_device_plan(cur_graph, device=0)
                    degraded = True
                    if self.telemetry is not None:
                        self._m_degraded.inc()
                else:
                    dev = target if target is not None else 0
                    cur_plan = single_device_plan(cur_graph, device=dev)
                continue
            retries += self.transport.num_retries
            penalty += self.transport.wasted_s
            result.retries = retries
            result.failovers = failovers
            result.executed_arch = cur_arch
            result.penalty_s = penalty
            if penalty:
                result.report.total_s += penalty
            result.outcome = ("degraded" if degraded
                              else "retried" if (retries or failovers)
                              else "ok")
            return result

    def _failover_target(self, excluded: set, now: float) -> Optional[int]:
        """Best surviving remote candidate by static compute capability.

        Consults only the runtime's own knowledge (exclusions from this
        request's failures plus the circuit breaker) — never the fault
        schedule.  Returns ``None`` when no remote candidate remains.
        """
        candidates = [d for d in range(1, self.cluster.num_devices)
                      if d not in excluded
                      and (self.health is None or self.health.allow(d, now))]
        if not candidates:
            return None
        return max(candidates,
                   key=lambda d: self.cluster.device(d).effective_flops)

    # -- one plan attempt --------------------------------------------------
    def _run_plan(self, x: np.ndarray, arch: ArchConfig,
                  plan: ExecutionPlan, graph: ModelGraph,
                  sim_time: float,
                  request_id: Optional[int]) -> ExecutionResult:
        unit_ids = self.net.active_units(arch)
        if len(unit_ids) != len(graph):
            raise RuntimeError("unit/graph index misalignment")

        self.net.eval()
        self.transport.reset_log()
        tel = self.telemetry
        tracer = Telemetry.tracer_of(tel)
        # Modelled timing is deterministic in (graph, plan, cluster), so
        # pricing it up front lets each segment span carry its simulated
        # interval as well as its measured wall time.
        report = simulate_latency(graph, plan, self.cluster)
        done = report.per_block_done
        partitioned = 0
        loc = 0  # device currently holding the activation
        for seg in _segments(plan):
            bp = seg.plan
            units = [unit_ids[i] for i in range(seg.start, seg.stop)]
            seg_sim_start = sim_time + (done[seg.start - 1] if seg.start
                                        else 0.0)
            attrs = dict(blocks=f"{seg.start}:{seg.stop}",
                         tiles=bp.grid.ntiles)
            if request_id is not None:
                attrs["request"] = request_id
            with tracer.span("segment", sim_time=seg_sim_start,
                             **attrs) as sp:
                sp.set_sim_end(sim_time + done[seg.stop - 1])
                if bp.grid.ntiles == 1:
                    dst = bp.devices[0]
                    if dst != loc:
                        msg = self.transport.send_tensor(x, loc, dst,
                                                         bp.bits, 0.0)
                        x = msg.payload
                        loc = dst
                    x = self.net.run_units(x, arch, units)
                else:
                    partitioned += 1
                    x = self._run_partitioned(x, arch, units, bp,
                                              graph, seg, loc)
                    # After the merge the activation conceptually sits on
                    # the first tile's device (the merger).
                    loc = bp.devices[0]
            if tel is not None:
                self._m_segments.inc()
                if bp.grid.ntiles > 1:
                    self._m_partitioned.inc()
                self._m_segment_wall.observe(sp.wall_duration_s)
        # Result returns to the output device (tiny logits).
        if loc != plan.output_device:
            msg = self.transport.send_tensor(x, loc, plan.output_device,
                                             32, 0.0)
            x = msg.payload
            loc = plan.output_device

        return ExecutionResult(
            logits=x,
            report=report,
            comm_bytes=self.transport.total_bytes,
            num_messages=self.transport.num_messages,
            partitioned_segments=partitioned,
            executed_arch=arch,
            executed_plan=plan,
        )

    def _run_partitioned(self, x: np.ndarray, arch: ArchConfig,
                         units: Sequence[int], bp: BlockPlan,
                         graph: ModelGraph, seg: _Segment,
                         loc: int) -> np.ndarray:
        """FDSP-execute one spatially partitioned segment."""
        grid = bp.grid
        in_h = x.shape[2]
        out_hw = graph[seg.stop - 1].out_hw
        if in_h % grid.rows or x.shape[3] % grid.cols:
            raise ValueError(
                f"activation {x.shape} not divisible by grid {grid}")
        tiles = split_tiles(x, grid, halo=0)
        out_tiles: List[np.ndarray] = []
        for j, tile in enumerate(tiles):
            dst = bp.devices[j]
            if dst != loc:
                msg = self.transport.send_tensor(tile, loc, dst, bp.bits, 0.0)
                tile = msg.payload
            y = self.net.run_units(tile, arch, units)
            # Ship the tile result to the merge device (tile 0's device).
            if dst != bp.devices[0]:
                msg = self.transport.send_tensor(y, dst, bp.devices[0],
                                                 bp.bits, 0.0)
                y = msg.payload
            out_tiles.append(y)
        return merge_tiles(out_tiles, grid, out_hw, halo=0)
