"""Checkpointing: save/load any :class:`~repro.nn.layers.Module`.

Trained supernets and RL policies are plain parameter dictionaries, so a
single compressed ``.npz`` holds them.  BatchNorm running statistics
(which are state but not Parameters) are captured too — without them a
restored supernet would need recalibration before every use.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from ..nn.layers import Module

__all__ = ["save_module", "load_module", "module_arrays"]

_STAT_ATTRS = ("running_mean", "running_var")


def module_arrays(module: Module) -> Dict[str, np.ndarray]:
    """All persistent arrays of a module: parameters + BN statistics."""
    out: Dict[str, np.ndarray] = dict(module.state_dict())
    for i, m in enumerate(module.modules()):
        for attr in _STAT_ATTRS:
            if hasattr(m, attr):
                out[f"__stat{i}.{attr}"] = getattr(m, attr).copy()
    return out


def save_module(module: Module, path: str) -> str:
    """Write a module checkpoint; returns the path written."""
    arrays = module_arrays(module)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path if path.endswith(".npz") else path + ".npz"


def load_module(module: Module, path: str) -> Module:
    """Restore a checkpoint into a structurally identical module."""
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    with np.load(path) as data:
        params = {k: data[k] for k in data.files
                  if not k.startswith("__stat")}
        module.load_state_dict(params)
        mods = list(module.modules())
        for k in data.files:
            if not k.startswith("__stat"):
                continue
            head, attr = k[len("__stat"):].split(".", 1)
            target = getattr(mods[int(head)], attr)
            if target.shape != data[k].shape:
                raise ValueError(
                    f"statistic shape mismatch for {k}: "
                    f"{data[k].shape} vs {target.shape}")
            target[...] = data[k]
    return module
