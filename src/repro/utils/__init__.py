"""Utility helpers: module checkpointing."""

from .checkpoint import load_module, module_arrays, save_module

__all__ = ["save_module", "load_module", "module_arrays"]
