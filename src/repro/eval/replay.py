"""Re-derive evaluation outputs from a recorded serving run.

The inverse of :mod:`repro.telemetry.recorder`: given a recording (the
versioned JSONL stream a :class:`~repro.telemetry.recorder.RunRecorder`
captured), reconstruct :class:`~repro.runtime.server.ServingStats` /
:class:`~repro.runtime.batching.BatchedServingStats` — and therefore
every latency/compliance figure derived from them — **without
re-simulating anything**.

This is the regression-testing lever of the test archetype: a seeded
scenario becomes a golden recording checked into ``tests/fixtures/``,
and any clock or accounting drift in the serving stack shows up as

* a replay/live mismatch (``replay_stats`` no longer equals the stats
  the live run produced), or
* a broken invariant (``verify_invariants`` — arrival ≤ start ≤ finish,
  batch amortization sums, simulated-time conservation), or
* a byte diff against the golden fixture (``rerecord``).

All comparisons on the stats themselves are exact — JSON round-trips
floats losslessly, so replay equality is ``==``, not a tolerance.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Union

from ..runtime.batching import BatchedServingStats, BatchRecord
from ..runtime.server import RequestRecord, ServingStats
from ..telemetry.recorder import Recording, RunRecorder, read_recordings

__all__ = ["load_recordings", "replay_stats", "replay_serving_load",
           "verify_invariants", "rerecord", "format_replay"]

# re-exported so eval code can speak "recordings" without importing
# telemetry internals
load_recordings = read_recordings

_REL = 1e-9
_ABS = 1e-12


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=_REL, abs_tol=_ABS)


def replay_stats(rec: Recording) -> ServingStats:
    """Reconstruct the run's ServingStats from its request records.

    Returns :class:`BatchedServingStats` (records + batch timeline)
    when the recording contains batch records, else plain
    :class:`ServingStats`.  Field-for-field equal to what the live run
    returned — floats survive the JSON round trip exactly.
    """
    requests = sorted(rec.requests, key=lambda r: r["id"])
    records = [RequestRecord(
        arrival=r["arrival"], start=r["start"], finish=r["finish"],
        inference_s=r["inference_s"], decision_s=r["decision_s"],
        switch_s=r["switch_s"], satisfied=r["satisfied"],
        outcome=r["outcome"], retries=r["retries"],
        failovers=r["failovers"],
        tenant=r.get("tenant")) for r in requests]
    if not rec.batches:
        return ServingStats(records=records)
    batches = [BatchRecord(
        index=b["index"], size=b["size"], close_s=b["close_s"],
        decision_start_s=b["decision_start_s"], decision_s=b["decision_s"],
        switch_s=b["switch_s"], exec_start_s=b["exec_start_s"],
        finish_s=b["finish_s"], cache_hit=b["cache_hit"],
        overlap_saved_s=b["overlap_saved_s"])
        for b in sorted(rec.batches, key=lambda b: b["index"])]
    return BatchedServingStats(records=records, batches=batches)


def verify_invariants(rec: Recording) -> List[str]:
    """Check serving-accounting invariants; returns violations (empty
    = sound).

    * request ids are dense and arrivals non-decreasing;
    * every request obeys arrival ≤ service start ≤ finish;
    * un-batched requests conserve time exactly:
      ``finish == start + decision + switch + inference``;
    * per batch: member count matches the recorded size, the per-item
      amortized decision+switch costs sum back to the batch's full
      decision+switch cost, execution cannot start before the decision
      and switch are done, and simulated time is conserved across the
      batch (``finish == exec_start + Σ inference``, items back to
      back);
    * the stored summary (if any) agrees with the re-derived stats.
    """
    problems: List[str] = []
    requests = sorted(rec.requests, key=lambda r: r["id"])
    ids = [r["id"] for r in requests]
    if ids != list(range(len(ids))):
        problems.append(f"request ids not dense 0..{len(ids) - 1}: {ids}")
    arrivals = [r["arrival"] for r in requests]
    if any(b < a for a, b in zip(arrivals, arrivals[1:])):
        problems.append("arrivals are not non-decreasing in request id")
    for r in requests:
        rid = r["id"]
        if not (r["arrival"] <= r["start"] <= r["finish"]):
            problems.append(
                f"request {rid}: arrival <= start <= finish violated "
                f"({r['arrival']} / {r['start']} / {r['finish']})")
        if r["batch"] is None:
            served = (r["start"] + r["decision_s"] + r["switch_s"]
                      + r["inference_s"])
            if not _close(served, r["finish"]):
                problems.append(
                    f"request {rid}: finish {r['finish']} != start + "
                    f"decision + switch + inference {served}")
    by_batch: Dict[int, List[dict]] = {}
    for r in requests:
        if r["batch"] is not None:
            by_batch.setdefault(r["batch"], []).append(r)
    for b in sorted(rec.batches, key=lambda b: b["index"]):
        k = b["index"]
        members = by_batch.pop(k, [])
        if len(members) != b["size"]:
            problems.append(
                f"batch {k}: {len(members)} member requests recorded "
                f"but size is {b['size']}")
            continue
        amortized = sum(m["decision_s"] + m["switch_s"] for m in members)
        full = b["decision_s"] + b["switch_s"]
        if not _close(amortized, full):
            problems.append(
                f"batch {k}: per-item amortized decision+switch sums to "
                f"{amortized}, batch paid {full}")
        earliest = b["decision_start_s"] + b["decision_s"] + b["switch_s"]
        if b["exec_start_s"] < earliest - _ABS:
            problems.append(
                f"batch {k}: execution starts at {b['exec_start_s']} "
                f"before decision+switch end at {earliest}")
        t = b["exec_start_s"]
        for m in members:
            t += m["inference_s"]
            if m["finish"] > b["finish_s"] + _ABS:
                problems.append(
                    f"batch {k}: request {m['id']} finishes at "
                    f"{m['finish']} after the batch at {b['finish_s']}")
        if not _close(t, b["finish_s"]):
            problems.append(
                f"batch {k}: exec start + item inference sums to {t}, "
                f"batch finishes at {b['finish_s']} — simulated time "
                f"not conserved")
    for k, members in by_batch.items():
        problems.append(
            f"batch {k}: {len(members)} requests reference it but no "
            f"batch record exists")
    if rec.summary is not None:
        problems.extend(_check_summary(rec))
    return problems


def _check_summary(rec: Recording) -> List[str]:
    """Cross-check the recorded summary against re-derived stats."""
    problems: List[str] = []
    stats = replay_stats(rec)
    summary = rec.summary or {}
    derived = {
        "num_requests": len(stats.records),
        "throughput_rps": stats.throughput_rps,
        "p50_ms": stats.percentile_ms(50),
        "p95_ms": stats.percentile_ms(95),
        "mean_queue_wait_ms": stats.mean_queue_wait_ms,
        "slo_compliance": stats.slo_compliance,
        "completion_rate": stats.completion_rate,
    }
    if isinstance(stats, BatchedServingStats):
        derived.update(num_batches=len(stats.batches),
                       mean_batch_size=stats.mean_batch_size,
                       amortized_decisions=stats.amortized_decisions,
                       overlap_saved_s=stats.overlap_saved_s)
    for key, want in derived.items():
        got = summary.get(key)
        if got is None:
            problems.append(f"summary missing {key}")
        elif isinstance(want, (int,)) and not isinstance(want, bool):
            if int(got) != want:
                problems.append(f"summary {key}: recorded {got}, "
                                f"replay derives {want}")
        elif not _close(float(got), float(want)):
            problems.append(f"summary {key}: recorded {got}, "
                            f"replay derives {want}")
    tenants = summary.get("tenants")
    if tenants is not None:
        derived_tenants: Dict[str, int] = {}
        for r in stats.records:
            if r.tenant is not None:
                derived_tenants[r.tenant] = (
                    derived_tenants.get(r.tenant, 0) + 1)
        if {k: int(v) for k, v in tenants.items()} != derived_tenants:
            problems.append(
                f"summary tenants {tenants} != replay-derived "
                f"{derived_tenants}")
    outcomes = summary.get("outcomes")
    if outcomes is not None:
        derived_outcomes = {k: v for k, v
                            in stats.outcome_counts().items()}
        if {k: int(v) for k, v in outcomes.items()} != derived_outcomes:
            problems.append(
                f"summary outcomes {outcomes} != replay-derived "
                f"{derived_outcomes}")
    return problems


def replay_serving_load(
        source: Union[str, Sequence[Recording]],
        ) -> Dict[str, "ServingLoadReport"]:
    """Recording stream -> the dict ``run_serving_load`` would return.

    Accepts a path/file or already-parsed recordings; the result feeds
    :func:`repro.eval.serving_load.format_serving_load` directly, so
    the serving-load figure derives from the recording alone.
    """
    from .serving_load import ServingLoadReport
    recs = (source if isinstance(source, (list, tuple))
            else read_recordings(source))
    return {rec.variant: ServingLoadReport(name=rec.variant,
                                           stats=replay_stats(rec))
            for rec in recs}


def rerecord(rec: Recording) -> RunRecorder:
    """Re-run the recorded scenario live, capturing a fresh recording.

    Byte-comparing the result against the original is the determinism
    guard: with pinned decision costs a seeded ``serving_load``
    re-recording must be identical down to the last float.
    """
    scenario = rec.scenario
    config = rec.config
    if scenario == "serving_load":
        from .serving_load import ServingLoadConfig, run_serving_load
        reports = run_serving_load(ServingLoadConfig(**config), record=True)
        report = reports.get(rec.variant)
    elif scenario == "chaos":
        from .chaos import ChaosConfig, run_chaos
        cfg = ChaosConfig(**{k: tuple(v) if isinstance(v, list) else v
                             for k, v in config.items()})
        report = run_chaos(cfg, record=True).get(rec.variant)
    elif scenario == "mesh_chaos":
        from .mesh_chaos import MeshChaosConfig, run_mesh_chaos
        mcfg = MeshChaosConfig(
            **{k: tuple(v) if isinstance(v, list) else v
               for k, v in config.items()})
        report = run_mesh_chaos(mcfg, record=True).get(rec.variant)
    elif scenario == "multi_tenant":
        from .multi_tenant import MultiTenantConfig, run_multi_tenant
        tcfg = MultiTenantConfig.from_dict(config)
        report = run_multi_tenant(tcfg, record=True,
                                  variants=(rec.variant,)
                                  ).get(rec.variant)
    elif scenario == "event_core":
        from .event_core import EventCoreConfig, run_event_core
        ecfg = EventCoreConfig.from_dict(config)
        report = run_event_core(ecfg, record=True,
                                variants=(rec.variant,)).get(rec.variant)
    elif scenario == "adaptive":
        from .adaptive import AdaptiveConfig, run_adaptive
        acfg = AdaptiveConfig(
            **{k: tuple(v) if isinstance(v, list) else v
               for k, v in config.items()})
        report = run_adaptive(acfg, record=True).get(rec.variant)
    else:
        raise ValueError(f"cannot re-record unknown scenario {scenario!r}")
    if report is None or report.recorder is None:
        raise ValueError(
            f"scenario {scenario!r} did not produce variant "
            f"{rec.variant!r}")
    return report.recorder


def format_replay(recs: Sequence[Recording]) -> str:
    """Human-readable digest of replayed runs (scenario-agnostic)."""
    lines: List[str] = []
    for rec in recs:
        stats = replay_stats(rec)
        label = rec.variant or "(unnamed)"
        lines.append(f"{rec.scenario}/{label}: {stats.summary()}")
    return "\n".join(lines)
