"""Per-figure experiment drivers (paper Sec. 6).

Each ``figNN_*`` function regenerates the data behind one figure and
returns plain dict/list structures; :mod:`repro.eval.reporting` renders
them as the text tables the benchmarks print.  EXPERIMENTS.md records
paper-vs-measured for each.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines.registry import (AUGMENTED_BASELINES, SWARM_BASELINES,
                                  BaselineMethod)
from ..core.slo import SLO
from ..core.strategy import Strategy
from ..devices.latency import model_switch_time, supernet_reconfig_time
from ..devices.profiles import desktop_gtx1080, rpi4
from ..models.zoo import MODEL_ZOO, get_model
from ..nas.evolution import EvolutionConfig, evolutionary_search
from ..nas.graph_builder import build_graph
from ..nas.search_space import MBV3_SPACE, SearchSpace
from ..netsim.grids import (AUGMENTED_BANDWIDTHS, AUGMENTED_DELAYS,
                            SWARM_BANDWIDTHS, SWARM_DELAY)
from ..netsim.topology import Cluster, NetworkCondition
from ..rl.env import EnvConfig, MurmurationEnv, Task
from ..rl.policy import LSTMPolicy
from .murmuration_method import MurmurationOracle
from .scenarios import augmented_devices, swarm_devices

__all__ = [
    "MethodPoint",
    "fig13_augmented_accuracy",
    "fig14_swarm_accuracy",
    "fig15_accuracy_slo_latency",
    "fig16a_compliance_augmented",
    "fig16b_compliance_swarm",
    "fig17_scalability",
    "fig18_search_time",
    "fig19_switch_time",
]

DecideFn = Callable[[SLO, NetworkCondition], Optional[Strategy]]


@dataclass(frozen=True)
class MethodPoint:
    """One (method, condition) cell of a figure."""

    satisfied: bool
    accuracy: Optional[float]
    latency_ms: Optional[float]


def _murmuration_point(oracle: MurmurationOracle, slo: SLO,
                       condition: NetworkCondition,
                       accuracy_floor: Optional[float] = None) -> MethodPoint:
    s = oracle.decide(slo, condition)
    if s is None or (accuracy_floor is not None
                     and s.expected_accuracy < accuracy_floor):
        return MethodPoint(False, None, None)
    return MethodPoint(True, s.expected_accuracy,
                       s.expected_latency_s * 1e3)


def _baseline_point(method: BaselineMethod, cluster: Cluster, slo: SLO,
                    accuracy_floor: Optional[float] = None) -> MethodPoint:
    out = method.evaluate(cluster, slo)
    ok = out.satisfied and (accuracy_floor is None
                            or out.accuracy >= accuracy_floor)
    if not ok:
        return MethodPoint(False, None, None)
    return MethodPoint(True, out.accuracy, out.latency_s * 1e3)


# ---------------------------------------------------------------------------
# Fig. 13 — augmented computing, accuracy vs (bw, delay) @ latency SLO
# ---------------------------------------------------------------------------

def fig13_augmented_accuracy(latency_slo_ms: float = 140.0,
                             bandwidths: Sequence[float] = AUGMENTED_BANDWIDTHS,
                             delays: Sequence[float] = AUGMENTED_DELAYS,
                             space: SearchSpace = MBV3_SPACE,
                             ) -> Dict[str, Dict[Tuple[float, float], MethodPoint]]:
    """Accuracy achieved under a latency SLO across the (bw, delay) grid.

    Returns {method name: {(delay_ms, bw_mbps): MethodPoint}}.
    """
    slo = SLO.latency_ms(latency_slo_ms)
    devices = augmented_devices()
    oracle = MurmurationOracle(space, devices)
    results: Dict[str, Dict[Tuple[float, float], MethodPoint]] = {
        m.name: {} for m in AUGMENTED_BASELINES}
    results["Murmuration (Ours)"] = {}
    for delay in delays:
        for bw in bandwidths:
            condition = NetworkCondition((bw,), (delay,))
            cluster = Cluster(devices, condition)
            for m in AUGMENTED_BASELINES:
                results[m.name][(delay, bw)] = _baseline_point(m, cluster, slo)
            results["Murmuration (Ours)"][(delay, bw)] = _murmuration_point(
                oracle, slo, condition)
    return results


# ---------------------------------------------------------------------------
# Fig. 14 — device swarm, accuracy vs bw per latency SLO @ 20 ms delay
# ---------------------------------------------------------------------------

def fig14_swarm_accuracy(latency_slos_ms: Sequence[float] = (
        2000.0, 1000.0, 600.0, 500.0, 400.0),
        bandwidths: Sequence[float] = SWARM_BANDWIDTHS,
        delay_ms: float = SWARM_DELAY,
        space: SearchSpace = MBV3_SPACE,
        ) -> Dict[str, Dict[Tuple[float, float], MethodPoint]]:
    """Returns {method: {(latency_slo_ms, bw): MethodPoint}}."""
    devices = swarm_devices(5)
    oracle = MurmurationOracle(space, devices)
    results: Dict[str, Dict[Tuple[float, float], MethodPoint]] = {
        m.name: {} for m in SWARM_BASELINES}
    results["Murmuration (Ours)"] = {}
    for slo_ms in latency_slos_ms:
        slo = SLO.latency_ms(slo_ms)
        for bw in bandwidths:
            bws = [100.0] * 4
            bws[0] = bw
            condition = NetworkCondition(tuple(bws), (delay_ms,) * 4)
            cluster = Cluster(devices, condition)
            for m in SWARM_BASELINES:
                results[m.name][(slo_ms, bw)] = _baseline_point(m, cluster, slo)
            results["Murmuration (Ours)"][(slo_ms, bw)] = _murmuration_point(
                oracle, slo, condition)
    return results


# ---------------------------------------------------------------------------
# Fig. 15 — latency under an accuracy SLO (augmented computing)
# ---------------------------------------------------------------------------

def fig15_accuracy_slo_latency(
        accuracy_slos: Sequence[float] = (72.0, 73.0, 74.0, 75.0, 76.0,
                                          77.0, 78.0, 78.5),
        bandwidths: Sequence[float] = AUGMENTED_BANDWIDTHS,
        delay_ms: float = 20.0,
        space: SearchSpace = MBV3_SPACE,
        ) -> Dict[str, Dict[Tuple[float, float], MethodPoint]]:
    """Returns {method: {(bw, accuracy_slo): MethodPoint}} — Fig. 15 uses
    only the Neurosurgeon family plus Murmuration."""
    devices = augmented_devices()
    oracle = MurmurationOracle(space, devices)
    neuro = [m for m in AUGMENTED_BASELINES if m.framework == "neurosurgeon"]
    results: Dict[str, Dict[Tuple[float, float], MethodPoint]] = {
        m.name: {} for m in neuro}
    results["Murmuration (Ours)"] = {}
    for bw in bandwidths:
        condition = NetworkCondition((bw,), (delay_ms,))
        cluster = Cluster(devices, condition)
        for acc_slo in accuracy_slos:
            slo = SLO.accuracy(acc_slo)
            for m in neuro:
                results[m.name][(bw, acc_slo)] = _baseline_point(
                    m, cluster, slo)
            results["Murmuration (Ours)"][(bw, acc_slo)] = _murmuration_point(
                oracle, slo, condition)
    return results


# ---------------------------------------------------------------------------
# Fig. 16 — SLO compliance rates
# ---------------------------------------------------------------------------

def _compliance(points: Dict[Tuple, MethodPoint]) -> float:
    vals = list(points.values())
    return 100.0 * sum(p.satisfied for p in vals) / len(vals)


def fig16a_compliance_augmented(
        latency_slos_ms: Sequence[float] = (100.0, 120.0, 140.0),
        accuracy_floor: float = 75.0,
        space: SearchSpace = MBV3_SPACE) -> Dict[str, Dict[float, float]]:
    """Compliance over the 40 augmented network settings with a joint
    (latency <= L, accuracy >= 75%) SLO.  Methods: the paper's Fig. 16a
    trio."""
    devices = augmented_devices()
    oracle = MurmurationOracle(space, devices)
    methods = [m for m in AUGMENTED_BASELINES
               if m.name in ("Neurosurgeon + ResNet50",
                             "Neurosurgeon + Inception")]
    out: Dict[str, Dict[float, float]] = {m.name: {} for m in methods}
    out["Murmuration (Ours)"] = {}
    for slo_ms in latency_slos_ms:
        slo = SLO.latency_ms(slo_ms)
        cells: Dict[str, Dict[Tuple, MethodPoint]] = {
            m.name: {} for m in methods}
        cells["Murmuration (Ours)"] = {}
        for delay in AUGMENTED_DELAYS:
            for bw in AUGMENTED_BANDWIDTHS:
                condition = NetworkCondition((bw,), (delay,))
                cluster = Cluster(devices, condition)
                for m in methods:
                    cells[m.name][(delay, bw)] = _baseline_point(
                        m, cluster, slo, accuracy_floor)
                cells["Murmuration (Ours)"][(delay, bw)] = _murmuration_point(
                    oracle, slo, condition, accuracy_floor)
        for name, pts in cells.items():
            out[name][slo_ms] = _compliance(pts)
    return out


def fig16b_compliance_swarm(
        latency_slos_ms: Sequence[float] = (600.0, 1000.0),
        accuracy_floor: float = 74.0,
        space: SearchSpace = MBV3_SPACE) -> Dict[str, Dict[float, float]]:
    """Compliance over the 9 swarm settings (bw 5-500, delay 20 ms)."""
    devices = swarm_devices(5)
    oracle = MurmurationOracle(space, devices)
    methods = [m for m in SWARM_BASELINES
               if m.name in ("ADCNN + MobileNetV3", "ADCNN + ResNet50")]
    out: Dict[str, Dict[float, float]] = {m.name: {} for m in methods}
    out["Murmuration (Ours)"] = {}
    for slo_ms in latency_slos_ms:
        slo = SLO.latency_ms(slo_ms)
        cells: Dict[str, Dict[Tuple, MethodPoint]] = {
            m.name: {} for m in methods}
        cells["Murmuration (Ours)"] = {}
        for bw in SWARM_BANDWIDTHS:
            # Fig. 16b sweeps the whole swarm's links together.
            condition = NetworkCondition((bw,) * 4, (SWARM_DELAY,) * 4)
            cluster = Cluster(devices, condition)
            for m in methods:
                cells[m.name][(bw,)] = _baseline_point(m, cluster, slo,
                                                       accuracy_floor)
            cells["Murmuration (Ours)"][(bw,)] = _murmuration_point(
                oracle, slo, condition, accuracy_floor)
        for name, pts in cells.items():
            out[name][slo_ms] = _compliance(pts)
    return out


# ---------------------------------------------------------------------------
# Fig. 17 — scalability with device count
# ---------------------------------------------------------------------------

def fig17_scalability(accuracy_slos: Sequence[float] = (75.0, 76.0),
                      device_counts: Sequence[int] = tuple(range(1, 10)),
                      bandwidth_mbps: float = 1000.0, delay_ms: float = 2.0,
                      space: SearchSpace = MBV3_SPACE,
                      ) -> Dict[float, Dict[int, Optional[float]]]:
    """Murmuration latency (ms) vs swarm size under an accuracy SLO.

    Returns {accuracy_slo: {n_devices: latency_ms or None}}.
    """
    out: Dict[float, Dict[int, Optional[float]]] = {}
    for acc in accuracy_slos:
        slo = SLO.accuracy(acc)
        out[acc] = {}
        for n in device_counts:
            devices = swarm_devices(n)
            oracle = MurmurationOracle(space, devices)
            condition = NetworkCondition((bandwidth_mbps,) * (n - 1),
                                         (delay_ms,) * (n - 1))
            s = oracle.decide(slo, condition)
            out[acc][n] = None if s is None else s.expected_latency_s * 1e3
    return out


# ---------------------------------------------------------------------------
# Fig. 18 — decision time: evolutionary search vs the RL policy
# ---------------------------------------------------------------------------

def fig18_search_time(space: SearchSpace = MBV3_SPACE,
                      evolution_config: Optional[EvolutionConfig] = None,
                      repeats: int = 3) -> Dict[str, Dict[str, float]]:
    """Wall-clock decision time, projected onto the two device classes.

    Returns {"evolutionary": {device: seconds}, "rl": {device: seconds}}.
    """
    devices = augmented_devices()
    condition = NetworkCondition((200.0,), (20.0,))
    cluster = Cluster(devices, condition)
    cfg = evolution_config or EvolutionConfig(population=50, generations=15)

    t0 = time.perf_counter()
    evolutionary_search(space, cluster, latency_slo_s=0.14, config=cfg)
    evo_host = time.perf_counter() - t0

    env = MurmurationEnv(space, devices, EnvConfig())
    policy = LSTMPolicy.for_env(env)
    task = Task(0.14, condition)
    context = env.encode_task(task)
    t0 = time.perf_counter()
    for _ in range(repeats):
        actions = policy.greedy_actions(context, env.schedule)
        env.evaluate_actions(actions, task)
    rl_host = (time.perf_counter() - t0) / repeats

    out: Dict[str, Dict[str, float]] = {"evolutionary": {}, "rl": {}}
    for dev in (desktop_gtx1080(), rpi4()):
        out["evolutionary"][dev.name] = evo_host / dev.speed_factor
        out["rl"][dev.name] = rl_host / dev.speed_factor
    out["evolutionary"]["host"] = evo_host
    out["rl"]["host"] = rl_host
    return out


# ---------------------------------------------------------------------------
# Fig. 19 — model switch time
# ---------------------------------------------------------------------------

def fig19_switch_time(space: SearchSpace = MBV3_SPACE,
                      ) -> Dict[str, float]:
    """Seconds to switch models on a Raspberry Pi 4.

    Murmuration switches submodels inside the resident supernet; the
    fixed-model alternatives reload weights from storage.
    """
    pi = rpi4()
    from ..nas.arch import max_arch
    subnet_blocks = len(build_graph(max_arch(space), space))
    out = {"Murmuration (supernet reconfig)":
           supernet_reconfig_time(subnet_blocks, pi)}
    for name in MODEL_ZOO:
        graph = get_model(name)
        out[f"reload {graph.name}"] = model_switch_time(graph, pi,
                                                        in_memory=False)
    return out
