"""Adaptive-control scenario: static vs. controlled serving under stress.

Serves one seeded request stream through the batched pipeline twice over
the *same* world — a drifting mobility trace plus an overload burst in
the middle of the run — differing only in the ``control=`` parameter:

* ``static`` — ``control=None``: the construction-time cache
  granularity and batch policy hold for the whole run, and every
  request is admitted no matter how hopeless its deadline;
* ``controlled`` — a :class:`~repro.control.ControlLoop` stacking all
  four controllers: cache granularity retuning, batch-policy
  adaptation, SLO-aware admission (shed/degrade), and drift-directed
  cache precompute.

The burst is what separates them.  A static pipeline admits everything,
the queue grows without bound, and every request in and after the burst
finishes long past its deadline — per-request execution latency still
looks fine, which is exactly why the headline metric here is
:meth:`~repro.runtime.server.ServingStats.e2e_compliance` (queueing
included, sheds counted against).  The controlled pipeline sheds the
requests that cannot be saved and serves the borderline ones degraded
(min submodel, zero decision cost), so the queue drains and the stream
recovers.

Decision cost is pinned (``decision_time_s``) exactly as in
``serving_load``: the whole scenario is a pure function of its seeds.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..control import (AdmissionController, BatchPolicyController,
                       CacheGranularityController, ControlLoop,
                       PrecomputeScheduler)
from ..core.decision import SearchDecisionEngine
from ..core.murmuration import Murmuration
from ..core.slo import SLO
from ..devices.profiles import desktop_gtx1080, jetson_class, rpi4
from ..nas.search_space import MBV3_SPACE
from ..netsim.topology import NetworkCondition
from ..netsim.traces import TraceConfig, mobility_trace
from ..runtime.batching import BatchingInferenceServer, BatchPolicy
from ..runtime.server import ServingStats
from ..telemetry.recorder import RunRecorder
from .serving_load import _PinnedTimeEngine

__all__ = ["AdaptiveConfig", "AdaptiveReport", "burst_arrival_process",
           "run_adaptive", "format_adaptive"]


@dataclass(frozen=True)
class AdaptiveConfig:
    """One static-vs-controlled run (simulated seconds unless noted)."""

    num_requests: int = 240
    #: baseline arrival rate; sized so the pipeline keeps up off-burst
    arrival_rate_hz: float = 8.0
    #: burst window (simulated seconds) and rate multiplier inside it
    burst_window: tuple = (4.0, 6.0)
    burst_factor: float = 5.0
    slo_ms: float = 300.0
    seed: int = 0
    max_batch: int = 4
    #: fixed per-miss decision cost (None = measure wall clock;
    #: forfeits byte-reproducibility)
    decision_time_s: Optional[float] = 0.04
    #: drifting world: sinusoidal mobility keeps the cache under
    #: pressure and gives the precompute scheduler a signal
    trace_steps: int = 120
    trace_period_s: float = 0.25
    n_random_archs: int = 8
    #: control cadence (simulated seconds between ticks)
    control_period_s: float = 0.5


@dataclass
class AdaptiveReport:
    """Per-variant outcome of an adaptive run."""

    name: str
    stats: ServingStats
    slo_s: float
    #: the loop steering this variant (None for static)
    control: Optional[ControlLoop] = None
    #: populated when the run was captured (``record=True``)
    recorder: Optional[RunRecorder] = None

    @property
    def e2e_compliance(self) -> float:
        """Deployment-facing compliance: end-to-end, sheds counted."""
        return self.stats.e2e_compliance(self.slo_s)

    @property
    def shed(self) -> int:
        return self.stats.shed_count

    @property
    def degraded(self) -> int:
        return self.stats.outcome_counts().get("degraded", 0)


def burst_arrival_process(rate_hz: float, window: tuple,
                          factor: float) -> Callable:
    """Piecewise-Poisson arrivals: ``rate_hz``, times ``factor`` inside
    ``window``.  The rate applying to each gap is the rate at the gap's
    start, so the process is a pure function of the rng stream.
    """
    if rate_hz <= 0:
        raise ValueError(f"rate_hz must be positive, got {rate_hz}")
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    t0, t1 = window

    def process(rng: np.random.Generator, n: int) -> np.ndarray:
        t = 0.0
        out = np.empty(n)
        for i in range(n):
            r = rate_hz * factor if t0 <= t < t1 else rate_hz
            t += float(rng.exponential(1.0 / r))
            out[i] = t
        return out

    return process


def default_controllers() -> List:
    """The standard four-controller stack, scenario-tuned.

    The batch cap stays modest (8): this workload's per-item execution
    dominates its decision cost, so giant batches would trade a few
    amortized decision milliseconds for serialization delay that blows
    deadlines.
    """
    return [
        CacheGranularityController(),
        BatchPolicyController(max_batch=8),
        AdmissionController(),
        PrecomputeScheduler(),
    ]


def _make_system(cfg: AdaptiveConfig, control=None,
                 telemetry=None, recorder=None) -> Murmuration:
    devices = [rpi4(), desktop_gtx1080(), jetson_class()]
    condition = NetworkCondition((150.0, 80.0), (10.0, 20.0))
    engine = SearchDecisionEngine(MBV3_SPACE, devices,
                                  n_random_archs=cfg.n_random_archs,
                                  seed=cfg.seed)
    if cfg.decision_time_s is not None:
        engine = _PinnedTimeEngine(engine, cfg.decision_time_s)
    return Murmuration(MBV3_SPACE, devices, condition, engine,
                       slo=SLO.latency_ms(cfg.slo_ms), use_predictor=False,
                       monitor_noise=0.02, seed=cfg.seed,
                       telemetry=telemetry, control=control,
                       recorder=recorder)


def _trace(cfg: AdaptiveConfig):
    return mobility_trace(TraceConfig(
        num_remote=2, bw_range=(40.0, 400.0), delay_range=(5.0, 60.0),
        steps=cfg.trace_steps, seed=cfg.seed))


def run_adaptive(cfg: AdaptiveConfig = AdaptiveConfig(),
                 telemetry=None,
                 controllers=None,
                 record: bool = False) -> Dict[str, AdaptiveReport]:
    """Run both variants on the identical world; keyed by name.

    ``telemetry`` (optional) instruments only the controlled variant —
    one registry across both would conflate their counters — and also
    feeds the control loop's snapshot error signal.  ``controllers``
    (optional) overrides :func:`default_controllers` for ablations.
    ``record=True`` captures each variant into a
    :class:`~repro.telemetry.recorder.RunRecorder` for byte-stable
    replay (scenario name ``adaptive``).
    """
    trace = _trace(cfg)
    arrivals = burst_arrival_process(cfg.arrival_rate_hz,
                                     cfg.burst_window, cfg.burst_factor)
    slo_s = cfg.slo_ms / 1e3
    reports: Dict[str, AdaptiveReport] = {}
    for name in ("static", "controlled"):
        control = None
        tel = None
        if name == "controlled":
            tel = telemetry
            control = ControlLoop(
                controllers if controllers is not None
                else default_controllers(),
                period_s=cfg.control_period_s, telemetry=tel)
        rec = (RunRecorder("adaptive", variant=name,
                           config=asdict(cfg)) if record else None)
        system = _make_system(cfg, control=control, telemetry=tel,
                              recorder=rec)
        server = BatchingInferenceServer(
            system, arrival_rate_hz=cfg.arrival_rate_hz,
            policy=BatchPolicy(max_batch=cfg.max_batch, overlap=True),
            seed=cfg.seed + 1, telemetry=tel, control=control,
            recorder=rec, arrival_process=arrivals)
        stats = server.run(num_requests=cfg.num_requests,
                           condition_trace=trace,
                           trace_period_s=cfg.trace_period_s)
        if rec is not None:
            if tel is not None:
                rec.capture_timelines(tel.timelines)
            rec.finish(stats)
        reports[name] = AdaptiveReport(name=name, stats=stats,
                                       slo_s=slo_s, control=control,
                                       recorder=rec)
    return reports


def format_adaptive(reports: Dict[str, AdaptiveReport]) -> str:
    lines = [f"{'variant':>12s}{'e2e-comply':>11s}{'p95ms':>8s}"
             f"{'queue':>8s}{'shed':>6s}{'degr':>6s}{'batch':>7s}"]
    for rep in reports.values():
        st = rep.stats
        size = (f"{st.mean_batch_size:.1f}"
                if hasattr(st, "mean_batch_size") else "-")
        lines.append(
            f"{rep.name:>12s}{rep.e2e_compliance:>11.0%}"
            f"{st.percentile_ms(95):>8.0f}{st.mean_queue_wait_ms:>8.0f}"
            f"{rep.shed:>6d}{rep.degraded:>6d}{size:>7s}")
        if rep.control is not None:
            lines.append(f"             control: {rep.control.summary()}")
    return "\n".join(lines)
