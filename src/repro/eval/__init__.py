"""Evaluation drivers: scenarios, the Murmuration strategy oracle,
per-figure experiments and text reporting."""

from .experiments import (
    MethodPoint,
    fig13_augmented_accuracy,
    fig14_swarm_accuracy,
    fig15_accuracy_slo_latency,
    fig16a_compliance_augmented,
    fig16b_compliance_swarm,
    fig17_scalability,
    fig18_search_time,
    fig19_switch_time,
)
from .adaptive import (
    AdaptiveConfig,
    AdaptiveReport,
    burst_arrival_process,
    format_adaptive,
    run_adaptive,
)
from .chaos import (
    ChaosConfig,
    ChaosReport,
    chaos_crash_schedule,
    format_chaos,
    run_chaos,
)
from .murmuration_method import MurmurationOracle, lattice_archs, policy_method
from .replay import (
    format_replay,
    load_recordings,
    replay_serving_load,
    replay_stats,
    rerecord,
    verify_invariants,
)
from .serving_load import (
    ServingLoadConfig,
    ServingLoadReport,
    format_serving_load,
    run_serving_load,
)
from .reporting import (
    accuracy_grid_to_csv,
    compliance_to_csv,
    format_accuracy_grid,
    format_compliance,
    format_latency_grid,
    format_scalability,
    format_search_time,
    format_switch_time,
)
from .training_curves import format_training_curves, run_training_curves
from .scenarios import (
    augmented_cluster,
    augmented_devices,
    swarm_cluster,
    swarm_devices,
)

__all__ = [
    "MethodPoint",
    "fig13_augmented_accuracy",
    "fig14_swarm_accuracy",
    "fig15_accuracy_slo_latency",
    "fig16a_compliance_augmented",
    "fig16b_compliance_swarm",
    "fig17_scalability",
    "fig18_search_time",
    "fig19_switch_time",
    "AdaptiveConfig",
    "AdaptiveReport",
    "burst_arrival_process",
    "format_adaptive",
    "run_adaptive",
    "ChaosConfig",
    "ChaosReport",
    "chaos_crash_schedule",
    "format_chaos",
    "run_chaos",
    "ServingLoadConfig",
    "ServingLoadReport",
    "format_serving_load",
    "run_serving_load",
    "MurmurationOracle",
    "lattice_archs",
    "policy_method",
    "format_replay",
    "load_recordings",
    "replay_serving_load",
    "replay_stats",
    "rerecord",
    "verify_invariants",
    "augmented_devices",
    "swarm_devices",
    "augmented_cluster",
    "swarm_cluster",
    "format_accuracy_grid",
    "format_latency_grid",
    "format_compliance",
    "format_scalability",
    "format_search_time",
    "format_switch_time",
    "run_training_curves",
    "format_training_curves",
    "accuracy_grid_to_csv",
    "compliance_to_csv",
]
