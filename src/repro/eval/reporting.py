"""Text renderers for the figure data (paper-style series/tables)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from .experiments import MethodPoint

__all__ = ["format_accuracy_grid", "format_compliance", "format_scalability",
           "format_search_time", "format_switch_time", "format_latency_grid",
           "accuracy_grid_to_csv", "compliance_to_csv"]


def _cell(value: Optional[float], fmt: str = "{:6.1f}") -> str:
    return fmt.format(value) if value is not None else "     -"


def format_accuracy_grid(results: Dict[str, Dict[Tuple[float, float],
                                                 MethodPoint]],
                         row_label: str = "delay",
                         col_label: str = "bw") -> str:
    """Render {method: {(row, col): point}} as accuracy tables."""
    lines = []
    rows = sorted({k[0] for pts in results.values() for k in pts})
    cols = sorted({k[1] for pts in results.values() for k in pts})
    for method, pts in results.items():
        lines.append(f"== {method} (accuracy % | '-' = SLO missed) ==")
        header = f"{row_label:>10s}\\{col_label:<4s}" + "".join(
            f"{c:>8.0f}" for c in cols)
        lines.append(header)
        for r in rows:
            cells = "".join(
                _cell(pts.get((r, c), MethodPoint(False, None, None)).accuracy,
                      "{:8.1f}") for c in cols)
            lines.append(f"{r:>15.0f}" + cells)
        lines.append("")
    return "\n".join(lines)


def format_latency_grid(results: Dict[str, Dict[Tuple[float, float],
                                                MethodPoint]],
                        row_label: str = "bw",
                        col_label: str = "acc_slo") -> str:
    """Render {method: {(row, col): point}} as latency (ms) tables."""
    lines = []
    rows = sorted({k[0] for pts in results.values() for k in pts})
    cols = sorted({k[1] for pts in results.values() for k in pts})
    for method, pts in results.items():
        lines.append(f"== {method} (latency ms | '-' = SLO missed) ==")
        header = f"{row_label:>10s}\\{col_label:<7s}" + "".join(
            f"{c:>8.1f}" for c in cols)
        lines.append(header)
        for r in rows:
            cells = "".join(
                _cell(pts.get((r, c), MethodPoint(False, None, None)).latency_ms,
                      "{:8.1f}") for c in cols)
            lines.append(f"{r:>17.0f}" + cells)
        lines.append("")
    return "\n".join(lines)


def format_compliance(results: Dict[str, Dict[float, float]],
                      x_label: str = "latency SLO (ms)") -> str:
    lines = [f"SLO compliance rate (%) by {x_label}"]
    xs = sorted({x for pts in results.values() for x in pts})
    header = f"{'method':<28s}" + "".join(f"{x:>10.0f}" for x in xs)
    lines.append(header)
    for method, pts in results.items():
        cells = "".join(_cell(pts.get(x), "{:10.1f}") for x in xs)
        lines.append(f"{method:<28s}" + cells)
    return "\n".join(lines)


def format_scalability(results: Dict[float, Dict[int, Optional[float]]]) -> str:
    lines = ["Murmuration latency (ms) vs number of devices"]
    counts = sorted({n for pts in results.values() for n in pts})
    header = f"{'accuracy SLO':<14s}" + "".join(f"{n:>8d}" for n in counts)
    lines.append(header)
    for acc, pts in sorted(results.items()):
        cells = "".join(_cell(pts.get(n), "{:8.1f}") for n in counts)
        lines.append(f"{acc:<14.1f}" + cells)
    return "\n".join(lines)


def format_search_time(results: Dict[str, Dict[str, float]]) -> str:
    lines = ["Decision time (seconds)"]
    for method, per_device in results.items():
        for device, seconds in per_device.items():
            lines.append(f"{method:<14s} {device:<18s} {seconds:10.3f}s")
    return "\n".join(lines)


def format_switch_time(results: Dict[str, float]) -> str:
    lines = ["Model switch time on Raspberry Pi 4"]
    for name, seconds in results.items():
        lines.append(f"{name:<42s} {seconds * 1e3:10.2f} ms")
    return "\n".join(lines)


def accuracy_grid_to_csv(results: Dict[str, Dict[Tuple[float, float],
                                                 MethodPoint]],
                         path: str, row_label: str = "row",
                         col_label: str = "col") -> str:
    """Dump a figure's {method: {(row, col): point}} data as tidy CSV
    (one observation per line) for external plotting."""
    import csv

    with open(path, "w", newline="") as f:
        w = csv.writer(f)
        w.writerow(["method", row_label, col_label, "satisfied",
                    "accuracy", "latency_ms"])
        for method, pts in results.items():
            for (r, c), p in sorted(pts.items()):
                w.writerow([method, r, c, int(p.satisfied),
                            "" if p.accuracy is None else f"{p.accuracy:.3f}",
                            "" if p.latency_ms is None
                            else f"{p.latency_ms:.3f}"])
    return path


def compliance_to_csv(results: Dict[str, Dict[float, float]],
                      path: str, x_label: str = "slo_ms") -> str:
    """Dump compliance-bar data as tidy CSV."""
    import csv

    with open(path, "w", newline="") as f:
        w = csv.writer(f)
        w.writerow(["method", x_label, "compliance_pct"])
        for method, pts in results.items():
            for x, v in sorted(pts.items()):
                w.writerow([method, x, f"{v:.3f}"])
    return path
