"""Library driver for the RL training-curve experiments (Figs. 11/12).

Runs the paper's four training curves — full SUPREME, the intermediate
"Murmuration" variant (bucketed sharing only), GCSL and PPO — plus the
optional DQN baseline, on a given scenario, under one validation task
set, and returns their :class:`~repro.rl.common.TrainingHistory` curves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..devices.profiles import DeviceProfile
from ..nas.search_space import MBV3_SPACE, SearchSpace
from ..rl import (DQNConfig, DQNTrainer, EnvConfig, GCSLConfig, GCSLTrainer,
                  MurmurationEnv, PPOConfig, PPOTrainer, SupremeConfig,
                  SupremeTrainer, TrainingHistory, murmuration_basic_config,
                  satisfiable_mask)

__all__ = ["run_training_curves", "format_training_curves"]


def run_training_curves(devices: Sequence[DeviceProfile],
                        total_steps: int = 800, eval_every: int = 200,
                        seed: int = 0, space: SearchSpace = MBV3_SPACE,
                        slo_range=(0.05, 0.5), eval_points: int = 3,
                        include_dqn: bool = False,
                        methods: Optional[Sequence[str]] = None,
                        ) -> Dict[str, TrainingHistory]:
    """Train every requested method on one scenario.

    ``methods`` defaults to the paper's Fig. 11 roster; pass a subset
    (e.g. ``["SUPREME (Ours)", "PPO"]``) to save time.
    """
    env = MurmurationEnv(space, list(devices),
                         EnvConfig(slo_kind="latency", slo_range=slo_range))
    tasks = env.validation_tasks(points=eval_points)
    mask = satisfiable_mask(env, tasks)

    roster = list(methods) if methods is not None else [
        "SUPREME (Ours)", "Murmuration", "GCSL", "PPO"]
    if include_dqn and "DQN" not in roster:
        roster.append("DQN")

    histories: Dict[str, TrainingHistory] = {}
    for name in roster:
        if name == "SUPREME (Ours)":
            trainer = SupremeTrainer(env, SupremeConfig(
                total_steps=total_steps, eval_every=eval_every, seed=seed))
        elif name == "Murmuration":
            trainer = SupremeTrainer(env, murmuration_basic_config(
                total_steps=total_steps, eval_every=eval_every, seed=seed))
        elif name == "GCSL":
            trainer = GCSLTrainer(env, GCSLConfig(
                total_steps=total_steps, eval_every=eval_every, seed=seed))
        elif name == "PPO":
            trainer = PPOTrainer(env, PPOConfig(
                total_steps=total_steps, eval_every=eval_every, seed=seed))
        elif name == "DQN":
            trainer = DQNTrainer(env, DQNConfig(
                total_steps=total_steps, eval_every=eval_every, seed=seed))
        else:
            raise ValueError(f"unknown method {name!r}")
        histories[name] = trainer.train(tasks, mask)
    return histories


def format_training_curves(histories: Dict[str, TrainingHistory]) -> str:
    """Render reward and compliance curves as two aligned tables."""
    any_hist = next(iter(histories.values()))
    steps = any_hist.steps
    lines = ["-- average validation reward (Fig. 11) --"]
    header = f"{'method':<18s}" + "".join(f"{s:>8d}" for s in steps)
    lines.append(header)
    for name, h in histories.items():
        lines.append(f"{name:<18s}" + "".join(f"{r:8.3f}"
                                              for r in h.avg_reward))
    lines.append("-- normalized SLO compliance rate (Fig. 12) --")
    lines.append(header)
    for name, h in histories.items():
        lines.append(f"{name:<18s}" + "".join(f"{c:8.3f}"
                                              for c in h.compliance))
    return "\n".join(lines)
