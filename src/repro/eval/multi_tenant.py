"""Multi-tenant serving scenario: fairness under an asymmetric burst.

Several tenants share one serving gateway *and* one last-mile uplink
(:class:`~repro.netsim.contention.SharedIngress`): every request's
payload crosses the same wire before service can start, so concurrent
tenants fair-share its bandwidth through a
:class:`~repro.netsim.contention.ContentionTracker`.  One tenant bursts
(piecewise-Poisson, ``burst_factor`` x its base rate inside
``burst_window``); the others stay steady.

Three variants serve the *identical* merged request stream:

* ``fifo`` — no admission control: the burst fills the queue and every
  tenant's requests arriving behind it miss their deadlines — the
  burster starves the rest;
* ``admission`` — the tenant-blind
  :class:`~repro.control.AdmissionController`: deadline-only triage
  protects aggregate compliance but sheds whoever is late, which under
  an asymmetric burst is everyone *behind* the burster;
* ``fair`` — the :class:`~repro.control.TenantFairnessController`:
  per-tenant budgets shed the over-share tenant's requests first, so
  the headline metric —
  :meth:`~repro.runtime.server.ServingStats.worst_tenant_e2e_compliance`
  — recovers.

Decision cost is pinned (``decision_time_s``) exactly as in
``serving_load``: with ``record=True`` each variant's recording is a
byte-stable function of the config.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..control import (AdmissionController, ControlLoop,
                       TenantFairnessController)
from ..core.decision import SearchDecisionEngine
from ..core.murmuration import Murmuration
from ..core.slo import SLO
from ..devices.profiles import desktop_gtx1080, jetson_class, rpi4
from ..nas.search_space import MBV3_SPACE
from ..netsim.contention import ContentionTracker, SharedIngress
from ..netsim.fluid import FluidTracker
from ..netsim.link import Link
from ..netsim.topology import NetworkCondition
from ..netsim.traces import TraceConfig, mobility_trace
from ..runtime.server import InferenceServer, ServingStats
from ..sim import EventLoop, schedule_ingress_trace
from ..telemetry.recorder import RunRecorder
from .serving_load import _PinnedTimeEngine

__all__ = ["TenantSpec", "MultiTenantConfig", "MultiTenantReport",
           "default_tenants", "tenant_arrivals", "run_multi_tenant",
           "format_multi_tenant"]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic contract."""

    name: str
    #: base Poisson arrival rate
    rate_hz: float
    #: fair-share weight at admission (budget fraction)
    weight: float = 1.0
    #: request payload crossing the shared ingress
    payload_kb: float = 256.0
    #: optional overload burst: (t0, t1) simulated seconds
    burst_window: Optional[Tuple[float, float]] = None
    #: rate multiplier inside the burst window
    burst_factor: float = 1.0

    def __post_init__(self):
        if self.rate_hz <= 0:
            raise ValueError(f"rate_hz must be positive, got {self.rate_hz}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.burst_factor <= 0:
            raise ValueError(
                f"burst_factor must be positive, got {self.burst_factor}")


def default_tenants(n: int = 2) -> Tuple[TenantSpec, ...]:
    """``n`` tenants splitting the default load; the first one bursts."""
    if n < 1:
        raise ValueError(f"need at least one tenant, got {n}")
    specs = [TenantSpec("burst", rate_hz=4.0,
                        burst_window=(4.0, 8.0), burst_factor=8.0)]
    for k in range(1, n):
        name = "steady" if n == 2 else f"steady-{k}"
        specs.append(TenantSpec(name, rate_hz=4.0))
    return tuple(specs)


@dataclass(frozen=True)
class MultiTenantConfig:
    """One multi-tenant comparison run (simulated seconds unless noted)."""

    tenants: Tuple[TenantSpec, ...] = field(default_factory=default_tenants)
    num_requests: int = 240
    slo_ms: float = 300.0
    seed: int = 0
    #: fixed per-miss decision cost (None = measure wall clock;
    #: forfeits byte-reproducibility)
    decision_time_s: Optional[float] = 0.04
    trace_steps: int = 120
    trace_period_s: float = 0.25
    n_random_archs: int = 8
    control_period_s: float = 0.5
    #: the shared last-mile uplink all tenants upload over
    ingress_bw_mbps: float = 40.0
    ingress_delay_ms: float = 5.0
    #: False disables the flow tracker: uploads never contend
    contention: bool = True
    #: True prices the shared ingress with the fluid-flow (max-min)
    #: solver instead of the arrival-order snapshot tracker
    fluid: bool = False

    def __post_init__(self):
        if not self.tenants:
            raise ValueError("need at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique, got {names}")

    @staticmethod
    def from_dict(config: Dict[str, Any]) -> "MultiTenantConfig":
        """Rebuild from an ``asdict`` round trip (recording headers)."""
        cfg = dict(config)
        specs = []
        for t in cfg.pop("tenants", ()):
            t = dict(t)
            window = t.get("burst_window")
            if window is not None:
                t["burst_window"] = tuple(window)
            specs.append(TenantSpec(**t))
        return MultiTenantConfig(tenants=tuple(specs), **cfg)


@dataclass
class MultiTenantReport:
    """Per-variant outcome of a multi-tenant run."""

    name: str
    stats: ServingStats
    slo_s: float
    control: Optional[ControlLoop] = None
    tracker: Optional[ContentionTracker] = None
    recorder: Optional[RunRecorder] = None

    @property
    def e2e_compliance(self) -> float:
        return self.stats.e2e_compliance(self.slo_s)

    @property
    def worst_tenant_compliance(self) -> float:
        return self.stats.worst_tenant_e2e_compliance(self.slo_s)

    def tenant_compliance(self) -> Dict[str, float]:
        return {t: v.e2e_compliance(self.slo_s)
                for t, v in self.stats.per_tenant().items()}

    @property
    def shed(self) -> int:
        return self.stats.shed_count


def tenant_arrivals(cfg: MultiTenantConfig
                    ) -> Tuple[np.ndarray, List[str]]:
    """The merged request stream: arrival times + aligned tenant tags.

    Each tenant gets its own seeded piecewise-Poisson stream (rate
    ``rate_hz``, times ``burst_factor`` inside ``burst_window``); the
    streams are merge-sorted and truncated to ``num_requests``.  A pure
    function of the config — every variant (and every re-record) serves
    the identical stream.
    """
    merged: List[Tuple[float, str]] = []
    for k, spec in enumerate(cfg.tenants):
        rng = np.random.default_rng((cfg.seed, 17, k))
        t0, t1 = spec.burst_window if spec.burst_window else (0.0, 0.0)
        t = 0.0
        for _ in range(cfg.num_requests):
            r = (spec.rate_hz * spec.burst_factor
                 if t0 <= t < t1 else spec.rate_hz)
            t += float(rng.exponential(1.0 / r))
            merged.append((t, spec.name))
    merged.sort()
    merged = merged[:cfg.num_requests]
    return (np.array([t for t, _ in merged]),
            [name for _, name in merged])


def _make_system(cfg: MultiTenantConfig, control=None,
                 telemetry=None, recorder=None) -> Murmuration:
    devices = [rpi4(), desktop_gtx1080(), jetson_class()]
    condition = NetworkCondition((150.0, 80.0), (10.0, 20.0))
    engine = SearchDecisionEngine(MBV3_SPACE, devices,
                                  n_random_archs=cfg.n_random_archs,
                                  seed=cfg.seed)
    if cfg.decision_time_s is not None:
        engine = _PinnedTimeEngine(engine, cfg.decision_time_s)
    return Murmuration(MBV3_SPACE, devices, condition, engine,
                       slo=SLO.latency_ms(cfg.slo_ms), use_predictor=False,
                       monitor_noise=0.02, seed=cfg.seed,
                       telemetry=telemetry, control=control,
                       recorder=recorder)


def _trace(cfg: MultiTenantConfig):
    return mobility_trace(TraceConfig(
        num_remote=2, bw_range=(40.0, 400.0), delay_range=(5.0, 60.0),
        steps=cfg.trace_steps, seed=cfg.seed))


def _variant_control(name: str, cfg: MultiTenantConfig,
                     telemetry) -> Optional[ControlLoop]:
    if name == "fifo":
        return None
    if name == "admission":
        controllers = [AdmissionController()]
    elif name == "fair":
        controllers = [TenantFairnessController(
            weights={t.name: t.weight for t in cfg.tenants})]
    else:
        raise ValueError(f"unknown variant {name!r}")
    return ControlLoop(controllers, period_s=cfg.control_period_s,
                       telemetry=telemetry)


def run_multi_tenant(cfg: MultiTenantConfig = MultiTenantConfig(),
                     telemetry=None, record: bool = False,
                     variants: Tuple[str, ...] = ("fifo", "admission",
                                                  "fair"),
                     ingress_step_mbps: Optional[Sequence[float]] = None,
                     ingress_step_period_s: float = 1.0,
                     ) -> Dict[str, MultiTenantReport]:
    """Run the requested variants on the identical world; keyed by name.

    ``telemetry`` (optional) instruments only the ``fair`` variant —
    one registry across variants would conflate their counters.
    ``record=True`` captures each variant into a
    :class:`~repro.telemetry.recorder.RunRecorder` for byte-stable
    replay (scenario name ``multi_tenant``).

    ``ingress_step_mbps`` (optional) steps the shared uplink's capacity
    mid-flight: each trace-cell change is scheduled on an
    :class:`~repro.sim.EventLoop` sharing the system's clock and fires
    at its true instant, re-converging in-flight fluid uploads
    (``cfg.fluid=True``).  The steps are run-time inputs, not config —
    a recording's header cannot reproduce them, so combining with
    ``record=True`` is rejected.  None (the default) keeps every float
    byte-identical to the boundary-only build.
    """
    if ingress_step_mbps is not None and record:
        raise ValueError(
            "mid-flight ingress steps are not captured in recording "
            "headers; record a stepless run or use the event_core "
            "scenario instead")
    trace = _trace(cfg)
    arrivals, tenants = tenant_arrivals(cfg)
    slo_s = cfg.slo_ms / 1e3
    payload = {t.name: t.payload_kb * 1024.0 for t in cfg.tenants}
    reports: Dict[str, MultiTenantReport] = {}
    for name in variants:
        tel = telemetry if name == "fair" else None
        rec = (RunRecorder("multi_tenant", variant=name,
                           config=asdict(cfg)) if record else None)
        control = _variant_control(name, cfg, tel)
        if not cfg.contention:
            tracker = None
        elif cfg.fluid:
            tracker = FluidTracker(telemetry=tel)
        else:
            tracker = ContentionTracker(telemetry=tel)
        ingress = SharedIngress(
            Link(bandwidth_mbps=cfg.ingress_bw_mbps,
                 delay_ms=cfg.ingress_delay_ms),
            tracker, per_tenant_bytes=payload)
        system = _make_system(cfg, control=control, telemetry=tel,
                              recorder=rec)
        loop = None
        if ingress_step_mbps is not None:
            loop = EventLoop(system.clock)
            schedule_ingress_trace(loop, ingress, ingress_step_mbps,
                                   ingress_step_period_s)
        server = InferenceServer(
            system, arrival_rate_hz=sum(t.rate_hz for t in cfg.tenants),
            seed=cfg.seed + 1, telemetry=tel, recorder=rec,
            control=control, ingress=ingress, events=loop,
            arrival_process=lambda rng, n: arrivals)
        stats = server.run(num_requests=cfg.num_requests,
                           condition_trace=trace,
                           trace_period_s=cfg.trace_period_s,
                           tenants=tenants)
        if rec is not None:
            if tel is not None:
                rec.capture_timelines(tel.timelines)
            rec.finish(stats)
        reports[name] = MultiTenantReport(
            name=name, stats=stats, slo_s=slo_s, control=control,
            tracker=tracker, recorder=rec)
    return reports


def format_multi_tenant(reports: Dict[str, MultiTenantReport]) -> str:
    names: List[str] = []
    for rep in reports.values():
        for t in rep.stats.tenants():
            if t not in names:
                names.append(t)
    head = (f"{'variant':>10s}{'e2e':>7s}{'worst':>7s}"
            + "".join(f"{n:>10s}" for n in names)
            + f"{'shed':>6s}{'contended':>11s}")
    lines = [head]
    for rep in reports.values():
        per = rep.tenant_compliance()
        contended = (str(rep.tracker.contended_total)
                     if rep.tracker is not None else "-")
        lines.append(
            f"{rep.name:>10s}{rep.e2e_compliance:>7.0%}"
            f"{rep.worst_tenant_compliance:>7.0%}"
            + "".join(f"{per.get(n, float('nan')):>10.0%}" for n in names)
            + f"{rep.shed:>6d}{contended:>11s}")
        if rep.control is not None:
            lines.append(f"           control: {rep.control.summary()}")
    return "\n".join(lines)
