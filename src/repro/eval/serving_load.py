"""Serving-under-load scenario: FIFO vs the batched-overlapped pipeline.

Serves one seeded Poisson request stream through three server variants
over the *same* drifting network trace:

* ``fifo`` — the per-request :class:`~repro.runtime.server.InferenceServer`:
  every request pays its own decision;
* ``batched`` — the :class:`~repro.runtime.batching.BatchingInferenceServer`
  with overlap: one amortized decision per batch, pipelined under the
  previous batch's execution;
* ``batched-serial`` — the ablation: batching (amortization) without
  overlap, isolating where the win comes from.

The drifting trace keeps the strategy cache missing at a steady rate —
with a static network every variant hits the cache after one request
and there is no decision cost left to amortize or hide.

Decision cost is *pinned* by default (``decision_time_s``): the decision
engine's measured wall clock depends on host hardware, so the scenario
prices every cache-missing decision at a fixed representative cost and
the whole run becomes a pure function of its seeds.  Set
``decision_time_s=None`` to charge the honestly measured wall clock
instead (no longer bit-reproducible across hosts).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Dict, Optional

from ..core.decision import DecisionRecord, SearchDecisionEngine
from ..core.murmuration import Murmuration
from ..core.slo import SLO
from ..devices.profiles import desktop_gtx1080, jetson_class, rpi4
from ..nas.search_space import MBV3_SPACE
from ..netsim.topology import NetworkCondition
from ..netsim.traces import TraceConfig, random_walk_trace
from ..runtime.batching import BatchingInferenceServer, BatchPolicy
from ..runtime.server import InferenceServer, ServingStats
from ..telemetry.recorder import RunRecorder

__all__ = ["ServingLoadConfig", "ServingLoadReport", "run_serving_load",
           "format_serving_load"]


@dataclass(frozen=True)
class ServingLoadConfig:
    """One load-comparison run (simulated seconds unless noted)."""

    num_requests: int = 120
    #: arrival rate is chosen to saturate the pipeline — batching only
    #: matters when requests queue
    arrival_rate_hz: float = 40.0
    slo_ms: float = 300.0
    seed: int = 0
    max_batch: int = 8
    max_wait_s: float = 0.0
    #: fixed per-miss decision cost (None = measure wall clock)
    decision_time_s: Optional[float] = 0.04
    #: network drift that keeps the strategy cache missing
    trace_steps: int = 80
    trace_period_s: float = 0.25
    n_random_archs: int = 8


@dataclass
class ServingLoadReport:
    """Per-variant outcome of a load run."""

    name: str
    stats: ServingStats
    #: populated when the run was captured (``record=True``)
    recorder: Optional[RunRecorder] = None

    @property
    def throughput_rps(self) -> float:
        return self.stats.throughput_rps

    @property
    def p95_ms(self) -> float:
        return self.stats.percentile_ms(95)

    @property
    def compliance(self) -> float:
        return self.stats.slo_compliance


class _PinnedTimeEngine:
    """Price every engine decision at a fixed cost.

    Cache hits never reach the engine (they cost zero decision time), so
    only genuine misses are re-priced.
    """

    def __init__(self, inner, decision_time_s: float):
        self._inner = inner
        self._dt = decision_time_s

    def decide(self, slo: SLO, condition: NetworkCondition) -> DecisionRecord:
        rec = self._inner.decide(slo, condition)
        return replace(rec, decision_time_s=self._dt)


def _make_system(cfg: ServingLoadConfig, telemetry=None,
                 recorder=None) -> Murmuration:
    devices = [rpi4(), desktop_gtx1080(), jetson_class()]
    condition = NetworkCondition((150.0, 80.0), (10.0, 20.0))
    engine = SearchDecisionEngine(MBV3_SPACE, devices,
                                  n_random_archs=cfg.n_random_archs,
                                  seed=cfg.seed)
    if cfg.decision_time_s is not None:
        engine = _PinnedTimeEngine(engine, cfg.decision_time_s)
    return Murmuration(MBV3_SPACE, devices, condition, engine,
                       slo=SLO.latency_ms(cfg.slo_ms), use_predictor=False,
                       monitor_noise=0.02, seed=cfg.seed,
                       telemetry=telemetry, recorder=recorder)


def _trace(cfg: ServingLoadConfig):
    return random_walk_trace(TraceConfig(
        num_remote=2, bw_range=(40.0, 400.0), delay_range=(5.0, 60.0),
        steps=cfg.trace_steps, seed=cfg.seed))


def run_serving_load(cfg: ServingLoadConfig = ServingLoadConfig(),
                     telemetry=None,
                     record: bool = False) -> Dict[str, ServingLoadReport]:
    """Run all three variants on the identical world; keyed by name.

    ``telemetry`` (optional) instruments only the batched variant —
    one registry across all three would conflate their counters.

    ``record=True`` captures each variant into a
    :class:`~repro.telemetry.recorder.RunRecorder` (attached to its
    report) so :mod:`repro.eval.replay` can re-derive the statistics
    without re-simulating; with a pinned ``decision_time_s`` the
    resulting recordings are byte-stable functions of the seeds.
    """
    trace = _trace(cfg)
    reports: Dict[str, ServingLoadReport] = {}
    variants = {
        "fifo": lambda sys, tel, rec: InferenceServer(
            sys, arrival_rate_hz=cfg.arrival_rate_hz, seed=cfg.seed + 1,
            telemetry=tel, recorder=rec),
        "batched": lambda sys, tel, rec: BatchingInferenceServer(
            sys, arrival_rate_hz=cfg.arrival_rate_hz,
            policy=BatchPolicy(max_batch=cfg.max_batch,
                               max_wait_s=cfg.max_wait_s, overlap=True),
            seed=cfg.seed + 1, telemetry=tel, recorder=rec),
        "batched-serial": lambda sys, tel, rec: BatchingInferenceServer(
            sys, arrival_rate_hz=cfg.arrival_rate_hz,
            policy=BatchPolicy(max_batch=cfg.max_batch,
                               max_wait_s=cfg.max_wait_s, overlap=False),
            seed=cfg.seed + 1, telemetry=tel, recorder=rec),
    }
    for name, make in variants.items():
        tel = telemetry if name == "batched" else None
        rec = (RunRecorder("serving_load", variant=name,
                           config=asdict(cfg)) if record else None)
        server = make(_make_system(cfg, telemetry=tel, recorder=rec),
                      tel, rec)
        stats = server.run(num_requests=cfg.num_requests,
                           condition_trace=trace,
                           trace_period_s=cfg.trace_period_s)
        if rec is not None:
            if tel is not None:
                rec.capture_timelines(tel.timelines)
            rec.finish(stats)
        reports[name] = ServingLoadReport(name=name, stats=stats,
                                          recorder=rec)
    return reports


def format_serving_load(reports: Dict[str, ServingLoadReport]) -> str:
    lines = [f"{'variant':>15s}{'rps':>7s}{'p50ms':>8s}{'p95ms':>8s}"
             f"{'queue':>8s}{'comply':>8s}{'batch':>7s}{'saved':>8s}"]
    for rep in reports.values():
        st = rep.stats
        size = (f"{st.mean_batch_size:.1f}"
                if hasattr(st, "mean_batch_size") else "-")
        saved = (f"{st.overlap_saved_s * 1e3:.0f}ms"
                 if hasattr(st, "overlap_saved_s") else "-")
        lines.append(
            f"{rep.name:>15s}{rep.throughput_rps:>7.1f}"
            f"{st.percentile_ms(50):>8.0f}{rep.p95_ms:>8.0f}"
            f"{st.mean_queue_wait_ms:>8.0f}{rep.compliance:>8.0%}"
            f"{size:>7s}{saved:>8s}")
    return "\n".join(lines)
