"""Mesh chaos scenario: link-level faults on multi-hop topologies.

The star chaos scenario (:mod:`repro.eval.chaos`) kills *devices*; this
one kills *paths*.  A Poisson request stream is served over a multi-hop
mesh (ring, line, or partial mesh) while the world loses links: a hard
:class:`~repro.faults.schedule.LinkFailure` on the gateway's primary
edge, a Gilbert–Elliott :class:`~repro.faults.schedule.LinkFlap` burst
on the same edge, and a :class:`~repro.faults.schedule.CorrelatedFailure`
that takes a relay device and its incident links down atomically.

Three variants serve the identical world:

* ``murmuration`` — fault-aware routing *and* the full resilience
  ladder: transfers transparently fail over to the next-best surviving
  path (paying its honest latency), and when no path survives the
  executor replans/degrades;
* ``no-failover`` — rerouting enabled, replanning and degradation
  disabled: isolates how much of the resilience is pure routing;
* ``no-reroute`` — static routing tables (fault-free base paths only)
  and no failover: the ablation.  A request whose path crosses a dead
  link fails, which is what a star-minded runtime does on a mesh.

Everything is seeded — arrivals, monitor noise, flap bursts — so a
fixed configuration reproduces identical numbers, and with the default
pinned ``decision_time_s`` the recordings are byte-stable.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Optional

from ..core.decision import SearchDecisionEngine
from ..core.murmuration import Murmuration
from ..core.slo import SLO
from ..devices.profiles import desktop_gtx1080, jetson_class, rpi4
from ..faults.injector import FaultInjector
from ..faults.resilience import ResilienceConfig
from ..faults.schedule import (CorrelatedFailure, FaultSchedule, LinkFailure,
                               LinkFlap)
from ..nas.search_space import MBV3_SPACE
from ..netsim.mesh import (MeshCluster, line_topology, partial_mesh_topology,
                           ring_topology)
from ..runtime.server import InferenceServer, ServingStats
from ..telemetry.recorder import RunRecorder
from .chaos import _recovery_s
from .serving_load import _PinnedTimeEngine

__all__ = ["MeshChaosConfig", "MeshChaosReport", "mesh_chaos_schedule",
           "build_mesh", "run_mesh_chaos", "format_mesh_chaos"]

TOPOLOGIES = ("ring", "line", "mesh")


@dataclass(frozen=True)
class MeshChaosConfig:
    """One mesh chaos serving run (all times in simulated seconds)."""

    #: "ring" (two disjoint routes), "line" (no alternative — resilience
    #: must come from degradation), or "mesh" (ring + chord)
    topology: str = "ring"
    num_requests: int = 60
    arrival_rate_hz: float = 4.0
    slo_ms: float = 400.0
    seed: int = 0
    bandwidth_mbps: float = 150.0
    delay_ms: float = 10.0
    #: hard outage of the gateway's primary edge (0, 1)
    link_fail_window: tuple = (1.5, 8.0)
    #: Gilbert–Elliott flap burst on the same edge
    flap_window: tuple = (8.5, 12.5)
    flap_p_fail: float = 0.7
    flap_p_recover: float = 0.25
    flap_step_s: float = 0.25
    #: relay blast radius: device 2 and its incident links, atomically
    blast_window: tuple = (13.0, 15.5)
    n_random_archs: int = 4
    #: fixed per-miss decision cost (None = measure wall clock; forfeits
    #: byte-stable recordings)
    decision_time_s: Optional[float] = 0.03

    def __post_init__(self):
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"topology must be one of {TOPOLOGIES}, "
                f"got {self.topology!r}")


@dataclass
class MeshChaosReport:
    """Per-variant outcome of a mesh chaos run."""

    name: str
    topology: str
    stats: ServingStats
    #: simulated seconds from the last fault clearing until the first
    #: clean ("ok" + SLO-satisfied) request finished; None if never
    recovery_s: Optional[float]
    retries: int
    failovers: int
    #: requests served over a backup path (transport reroute count)
    reroutes: int
    #: populated when the run was captured (``record=True``)
    recorder: Optional[RunRecorder] = None

    @property
    def compliance(self) -> float:
        return self.stats.slo_compliance

    @property
    def completion(self) -> float:
        return self.stats.completion_rate

    @property
    def outcomes(self) -> dict:
        return self.stats.outcome_counts()


def build_mesh(cfg: MeshChaosConfig, reroute: bool = True) -> MeshCluster:
    """The scenario's four-device swarm on the configured topology.

    Device 0 (gateway) and device 3 (relay) are Raspberry Pis; device 1
    is the GPU desktop every nominal plan wants to reach; device 2 is a
    Jetson.  On the ring the gateway has two disjoint routes to the
    GPU (0-1 and 0-3-2-1); the line has exactly one; the partial mesh
    adds a (1, 3) chord for a third.
    """
    devices = [rpi4(), desktop_gtx1080(), jetson_class(), rpi4()]
    if cfg.topology == "line":
        return line_topology(devices, cfg.bandwidth_mbps, cfg.delay_ms,
                             reroute=reroute)
    if cfg.topology == "mesh":
        return partial_mesh_topology(devices, cfg.bandwidth_mbps,
                                     cfg.delay_ms, chords=((1, 3),),
                                     reroute=reroute)
    return ring_topology(devices, cfg.bandwidth_mbps, cfg.delay_ms,
                         reroute=reroute)


def mesh_chaos_schedule(cfg: MeshChaosConfig) -> FaultSchedule:
    """The scenario's ground-truth fault trace (all link-addressed)."""
    return FaultSchedule([
        LinkFailure(cfg.link_fail_window[0], cfg.link_fail_window[1],
                    a=0, b=1),
        LinkFlap(cfg.flap_window[0], cfg.flap_window[1], a=0, b=1,
                 p_fail=cfg.flap_p_fail, p_recover=cfg.flap_p_recover,
                 step_s=cfg.flap_step_s, seed=cfg.seed),
        CorrelatedFailure(cfg.blast_window[0], cfg.blast_window[1],
                          devices=(2,), links=((1, 2), (2, 3)),
                          domain="relay"),
    ])


def _run_variant(name: str, cfg: MeshChaosConfig,
                 resilience: ResilienceConfig, reroute: bool,
                 telemetry=None, record: bool = False) -> MeshChaosReport:
    mesh = build_mesh(cfg, reroute=reroute)
    schedule = mesh_chaos_schedule(cfg)
    faults = FaultInjector(schedule, seed=cfg.seed, telemetry=telemetry)
    devices = list(mesh.devices)
    engine = SearchDecisionEngine(MBV3_SPACE, devices,
                                  n_random_archs=cfg.n_random_archs,
                                  seed=cfg.seed)
    if cfg.decision_time_s is not None:
        engine = _PinnedTimeEngine(engine, cfg.decision_time_s)
    recorder = (RunRecorder("mesh_chaos", variant=name, config=asdict(cfg))
                if record else None)
    system = Murmuration(
        MBV3_SPACE, devices, None, engine,
        slo=SLO.latency_ms(cfg.slo_ms), use_predictor=False,
        monitor_noise=0.02, seed=cfg.seed, telemetry=telemetry,
        faults=faults, resilience=resilience, recorder=recorder,
        cluster=mesh)
    server = InferenceServer(system, arrival_rate_hz=cfg.arrival_rate_hz,
                             seed=cfg.seed + 1, telemetry=telemetry,
                             recorder=recorder)
    stats = server.run(num_requests=cfg.num_requests)
    if recorder is not None:
        if telemetry is not None:
            recorder.capture_timelines(telemetry.timelines)
        recorder.finish(stats)
    return MeshChaosReport(
        name=name, topology=cfg.topology, stats=stats,
        recovery_s=_recovery_s(stats, schedule.horizon),
        retries=sum(r.retries for r in stats.records),
        failovers=sum(r.failovers for r in stats.records),
        reroutes=system.path_reroutes, recorder=recorder)


def run_mesh_chaos(cfg: MeshChaosConfig = MeshChaosConfig(),
                   telemetry=None,
                   record: bool = False) -> Dict[str, MeshChaosReport]:
    """Run all three variants on the identical world; keyed by name.

    ``telemetry`` (optional) instruments only the resilient variant —
    attaching one registry to all three would conflate their counters.
    ``record=True`` attaches a RunRecorder per variant; with the default
    pinned ``decision_time_s`` the recordings are byte-stable functions
    of the seeds.
    """
    return {
        "murmuration": _run_variant(
            "murmuration", cfg, ResilienceConfig(), reroute=True,
            telemetry=telemetry, record=record),
        "no-failover": _run_variant(
            "no-failover", cfg,
            ResilienceConfig(failover=False, degradation=False),
            reroute=True, record=record),
        "no-reroute": _run_variant(
            "no-reroute", cfg,
            ResilienceConfig(failover=False, degradation=False),
            reroute=False, record=record),
    }


def format_mesh_chaos(reports: Dict[str, MeshChaosReport]) -> str:
    first = next(iter(reports.values()))
    lines = [f"mesh chaos on '{first.topology}' topology",
             f"{'variant':>12s}{'complete':>10s}{'comply':>8s}"
             f"{'ok':>5s}{'retr':>6s}{'degr':>6s}{'fail':>6s}"
             f"{'reroute':>9s}{'recovery':>10s}"]
    for rep in reports.values():
        o = rep.outcomes
        rec = f"{rep.recovery_s:.2f}s" if rep.recovery_s is not None else "-"
        lines.append(
            f"{rep.name:>12s}{rep.completion:>10.0%}{rep.compliance:>8.0%}"
            f"{o['ok']:>5d}{o['retried']:>6d}{o['degraded']:>6d}"
            f"{o['failed']:>6d}{rep.reroutes:>9d}{rec:>10s}")
    return "\n".join(lines)
