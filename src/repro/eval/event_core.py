"""Event-core scenario: boundary-only vs mid-flight world application.

One seeded Poisson request stream uploads fixed payloads over a shared
last-mile uplink whose capacity follows a step trace (e.g. 40 Mbps
dropping to 5 Mbps for one cell and back).  The uplink is priced by the
fluid max-min solver (:class:`~repro.netsim.fluid.FluidTracker`), so
in-flight uploads *can* re-converge when capacity changes — the
question is *when* the serving stack lets them see the change:

* ``boundary`` — the historical model: the trace cell is looked up
  lazily whenever a request touches the ingress
  (:class:`SteppedIngress`), so a capacity step landing *between*
  admissions takes effect only at the next admission's boundary time.
  Flows in flight across the step keep transferring at the stale rate
  until then.
* ``event`` — the event core: :func:`~repro.sim.schedule_ingress_trace`
  schedules one event per trace-cell change on an
  :class:`~repro.sim.EventLoop` sharing the system's
  :class:`~repro.runtime.clock.SimulatedClock`; the server drains the
  loop at every admission instant, so the step fires at its *true*
  instant and every in-flight upload re-converges right there
  (:meth:`SharedIngress.set_capacity` ->
  :meth:`FluidTracker.update_caps`).

Both variants serve the identical arrival stream with pinned decision
cost, so the compliance/latency gap between them is purely the
boundary-vs-event semantics — a seed-reproducible number the event-core
benchmark pins.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional, Tuple

from ..core.murmuration import Murmuration
from ..core.decision import SearchDecisionEngine
from ..core.slo import SLO
from ..devices.profiles import desktop_gtx1080, rpi4
from ..nas.search_space import MBV3_SPACE
from ..netsim.contention import SharedIngress
from ..netsim.fluid import FluidTracker
from ..netsim.link import Link
from ..netsim.topology import NetworkCondition
from ..netsim.traces import condition_at
from ..runtime.server import InferenceServer, ServingStats
from ..sim import EventLoop, schedule_ingress_trace
from ..telemetry.recorder import RunRecorder
from .serving_load import _PinnedTimeEngine

__all__ = ["EventCoreConfig", "EventCoreReport", "SteppedIngress",
           "run_event_core", "format_event_core"]


@dataclass(frozen=True)
class EventCoreConfig:
    """One boundary-vs-event comparison (simulated seconds unless noted)."""

    num_requests: int = 120
    slo_ms: float = 800.0
    seed: int = 0
    #: fixed per-miss decision cost (None = measure wall clock;
    #: forfeits byte-reproducibility)
    decision_time_s: Optional[float] = 0.04
    arrival_rate_hz: float = 6.0
    #: request payload crossing the shared ingress
    payload_kb: float = 512.0
    #: the uplink's piecewise-constant capacity, one cell per period
    ingress_trace_mbps: Tuple[float, ...] = (
        40.0, 40.0, 5.0, 40.0, 40.0, 5.0, 40.0, 40.0)
    trace_period_s: float = 2.0
    ingress_delay_ms: float = 5.0
    n_random_archs: int = 8

    def __post_init__(self):
        if not self.ingress_trace_mbps:
            raise ValueError("need at least one ingress trace cell")
        if any(b <= 0 for b in self.ingress_trace_mbps):
            raise ValueError(
                f"trace capacities must be positive, "
                f"got {self.ingress_trace_mbps}")

    @staticmethod
    def from_dict(config: Dict[str, Any]) -> "EventCoreConfig":
        """Rebuild from an ``asdict`` round trip (recording headers)."""
        cfg = dict(config)
        trace = cfg.get("ingress_trace_mbps")
        if trace is not None:
            cfg["ingress_trace_mbps"] = tuple(trace)
        return EventCoreConfig(**cfg)


class SteppedIngress(SharedIngress):
    """A shared uplink that applies its capacity trace *lazily*.

    The boundary-only ablation: the trace cell for ``now`` is looked up
    whenever a request prices or admits an upload, so a capacity step
    between admissions is invisible until the next request touches the
    wire — and then takes effect at the boundary time, not the step
    instant.  The fluid ledger still re-converges in-flight flows when
    the late-observed capacity finally lands (admissions carry caps),
    which is exactly the lag the event core removes.
    """

    def __init__(self, link: Link, tracker, trace_mbps, period_s: float,
                 **kwargs):
        super().__init__(link, tracker, **kwargs)
        self._trace = tuple(float(b) for b in trace_mbps)
        self._period_s = float(period_s)
        self._cell = 0

    def _step_to(self, now: float) -> None:
        idx, bw = condition_at(self._trace, now, self._period_s)
        if idx != self._cell:
            self._cell = idx
            # only the link steps: the ledger learns the new capacity
            # at the next admission (boundary-only), never mid-flight
            self.link = self.link.with_conditions(bandwidth_mbps=bw)

    def upload_time(self, arrival: float, tenant=None) -> float:
        self._step_to(arrival)
        return super().upload_time(arrival, tenant)

    def admit(self, arrival: float, tenant=None) -> float:
        self._step_to(arrival)
        return super().admit(arrival, tenant)


@dataclass
class EventCoreReport:
    """Per-variant outcome of a boundary-vs-event run."""

    name: str
    stats: ServingStats
    slo_s: float
    tracker: Optional[FluidTracker] = None
    events: Optional[EventLoop] = None
    recorder: Optional[RunRecorder] = None

    @property
    def e2e_compliance(self) -> float:
        return self.stats.e2e_compliance(self.slo_s)

    @property
    def p95_ms(self) -> float:
        return self.stats.percentile_ms(95)

    @property
    def mean_ms(self) -> float:
        served = [r for r in self.stats.records if r.outcome != "shed"]
        if not served:
            return 0.0
        return sum(r.end_to_end_s for r in served) / len(served) * 1e3

    @property
    def caps_updates(self) -> int:
        return (self.tracker.caps_updates_total
                if self.tracker is not None else 0)


def _make_system(cfg: EventCoreConfig, recorder=None) -> Murmuration:
    devices = [rpi4(), desktop_gtx1080()]
    condition = NetworkCondition((150.0,), (10.0,))
    engine = SearchDecisionEngine(MBV3_SPACE, devices,
                                  n_random_archs=cfg.n_random_archs,
                                  seed=cfg.seed)
    if cfg.decision_time_s is not None:
        engine = _PinnedTimeEngine(engine, cfg.decision_time_s)
    return Murmuration(MBV3_SPACE, devices, condition, engine,
                       slo=SLO.latency_ms(cfg.slo_ms), use_predictor=False,
                       monitor_noise=0.02, seed=cfg.seed, recorder=recorder)


def run_event_core(cfg: EventCoreConfig = EventCoreConfig(),
                   record: bool = False,
                   variants: Tuple[str, ...] = ("boundary", "event"),
                   ) -> Dict[str, EventCoreReport]:
    """Run the requested variants on the identical world; keyed by name.

    ``record=True`` captures each variant into a
    :class:`~repro.telemetry.recorder.RunRecorder` (scenario name
    ``event_core``) for byte-stable replay.
    """
    slo_s = cfg.slo_ms / 1e3
    payload_bytes = cfg.payload_kb * 1024.0
    link = Link(bandwidth_mbps=cfg.ingress_trace_mbps[0],
                delay_ms=cfg.ingress_delay_ms)
    reports: Dict[str, EventCoreReport] = {}
    for name in variants:
        rec = (RunRecorder("event_core", variant=name,
                           config=asdict(cfg)) if record else None)
        tracker = FluidTracker()
        loop: Optional[EventLoop] = None
        system = _make_system(cfg, recorder=rec)
        if name == "boundary":
            ingress = SteppedIngress(link, tracker,
                                     cfg.ingress_trace_mbps,
                                     cfg.trace_period_s,
                                     payload_bytes=payload_bytes)
        elif name == "event":
            ingress = SharedIngress(link, tracker,
                                    payload_bytes=payload_bytes)
            loop = EventLoop(system.clock)
            schedule_ingress_trace(loop, ingress, cfg.ingress_trace_mbps,
                                   cfg.trace_period_s)
        else:
            raise ValueError(f"unknown variant {name!r}")
        server = InferenceServer(system,
                                 arrival_rate_hz=cfg.arrival_rate_hz,
                                 seed=cfg.seed + 1, recorder=rec,
                                 ingress=ingress, events=loop)
        stats = server.run(num_requests=cfg.num_requests)
        if rec is not None:
            rec.finish(stats)
        reports[name] = EventCoreReport(name=name, stats=stats, slo_s=slo_s,
                                        tracker=tracker, events=loop,
                                        recorder=rec)
    return reports


def format_event_core(reports: Dict[str, EventCoreReport]) -> str:
    head = (f"{'variant':>10s}{'e2e':>7s}{'p95 ms':>9s}{'mean ms':>9s}"
            f"{'caps-upd':>10s}{'events':>8s}")
    lines = [head]
    for rep in reports.values():
        fired = (str(rep.events.fired_total)
                 if rep.events is not None else "-")
        lines.append(
            f"{rep.name:>10s}{rep.e2e_compliance:>7.0%}"
            f"{rep.p95_ms:>9.0f}{rep.mean_ms:>9.0f}"
            f"{rep.caps_updates:>10d}{fired:>8s}")
    return "\n".join(lines)
