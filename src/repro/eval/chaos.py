"""Chaos scenario: crash-and-recover serving under fault injection.

Serves one Poisson request stream through three variants of the runtime
while remote devices crash and recover on a fixed schedule:

* ``murmuration`` — the full resilient runtime: adaptive decisions,
  retry/failover, circuit breaker, graceful degradation;
* ``static`` — a fixed strategy chosen once at nominal conditions, but
  with the same data-plane resilience (isolates the value of
  *adaptation* from the value of *failover*);
* ``no-failover`` — adaptive decisions with failover and degradation
  disabled (the ablation: requests touching a dead device fail).

Everything is seeded — arrivals, monitor noise, and the fault trace —
so a fixed configuration reproduces identical numbers.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from ..core.decision import DecisionRecord, SearchDecisionEngine
from ..core.murmuration import Murmuration
from ..core.slo import SLO
from ..devices.profiles import desktop_gtx1080, jetson_class, rpi4
from ..faults.injector import FaultInjector
from ..faults.resilience import ResilienceConfig
from ..faults.schedule import DeviceCrash, FaultSchedule, LinkDegradation
from ..nas.search_space import MBV3_SPACE
from ..netsim.topology import NetworkCondition
from ..runtime.server import InferenceServer, ServingStats
from ..telemetry.recorder import RunRecorder
from .serving_load import _PinnedTimeEngine

__all__ = ["ChaosConfig", "ChaosReport", "chaos_crash_schedule",
           "run_chaos", "format_chaos"]


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos serving run (all times in simulated seconds)."""

    num_requests: int = 60
    arrival_rate_hz: float = 4.0
    slo_ms: float = 400.0
    seed: int = 0
    #: GPU desktop (device 1) outage window
    gpu_crash: tuple = (2.0, 8.0)
    #: Jetson (device 2) outage window; overlaps the GPU outage so a
    #: stretch exists where only the gateway survives -> degradation
    jetson_crash: tuple = (4.0, 8.0)
    #: post-recovery window where the GPU link collapses (bandwidth
    #: scaled, delay added) — stresses *adaptation*, not failover
    degrade_window: tuple = (9.0, 13.0)
    degrade_bw_factor: float = 0.1
    degrade_delay_ms: float = 60.0
    n_random_archs: int = 4
    #: fixed per-miss decision cost (None = measure wall clock; forfeits
    #: byte-stable recordings)
    decision_time_s: Optional[float] = 0.03


@dataclass
class ChaosReport:
    """Per-variant outcome of a chaos run."""

    name: str
    stats: ServingStats
    #: simulated seconds from fault recovery until the first clean
    #: ("ok" + SLO-satisfied) request finished; None if never
    recovery_s: Optional[float]
    retries: int
    failovers: int
    #: populated when the run was captured (``record=True``)
    recorder: Optional[RunRecorder] = None

    @property
    def compliance(self) -> float:
        return self.stats.slo_compliance

    @property
    def completion(self) -> float:
        return self.stats.completion_rate

    @property
    def outcomes(self) -> dict:
        return self.stats.outcome_counts()


class _StaticEngine:
    """Decide once at nominal conditions, serve that strategy forever."""

    def __init__(self, inner: SearchDecisionEngine,
                 nominal: NetworkCondition):
        self._inner = inner
        self._nominal = nominal
        self._record: Optional[DecisionRecord] = None

    def decide(self, slo: SLO, condition: NetworkCondition) -> DecisionRecord:
        if self._record is None:
            first = self._inner.decide(slo, self._nominal)
            self._record = DecisionRecord(first.strategy, 0.0, "static")
        return self._record


def chaos_crash_schedule(cfg: ChaosConfig) -> FaultSchedule:
    """The scenario's ground-truth fault trace."""
    return FaultSchedule([
        DeviceCrash(cfg.gpu_crash[0], cfg.gpu_crash[1], device=1),
        DeviceCrash(cfg.jetson_crash[0], cfg.jetson_crash[1], device=2),
        LinkDegradation(cfg.degrade_window[0], cfg.degrade_window[1],
                        device=1, bw_factor=cfg.degrade_bw_factor,
                        extra_delay_ms=cfg.degrade_delay_ms),
    ])


def _recovery_s(stats: ServingStats, horizon: float) -> Optional[float]:
    for r in stats.records:
        if r.start >= horizon and r.outcome == "ok" and r.satisfied:
            return r.finish - horizon
    return None


def _run_variant(name: str, cfg: ChaosConfig,
                 resilience: Optional[ResilienceConfig],
                 static: bool, telemetry=None,
                 record: bool = False) -> ChaosReport:
    devices = [rpi4(), desktop_gtx1080(), jetson_class()]
    condition = NetworkCondition((80.0, 60.0), (20.0, 30.0))
    schedule = chaos_crash_schedule(cfg)
    faults = FaultInjector(schedule, seed=cfg.seed, telemetry=telemetry)
    engine = SearchDecisionEngine(MBV3_SPACE, devices,
                                  n_random_archs=cfg.n_random_archs,
                                  seed=cfg.seed)
    if cfg.decision_time_s is not None:
        # Pin *before* the static wrapper: the static variant's one-off
        # nominal decision is free either way, so pinning only re-prices
        # the adaptive variants' cache misses.
        engine = _PinnedTimeEngine(engine, cfg.decision_time_s)
    if static:
        engine = _StaticEngine(engine, condition)
    recorder = (RunRecorder("chaos", variant=name, config=asdict(cfg))
                if record else None)
    system = Murmuration(
        MBV3_SPACE, devices, condition, engine,
        slo=SLO.latency_ms(cfg.slo_ms), use_predictor=False,
        monitor_noise=0.02, seed=cfg.seed, telemetry=telemetry,
        faults=faults, resilience=resilience, recorder=recorder)
    server = InferenceServer(system, arrival_rate_hz=cfg.arrival_rate_hz,
                             seed=cfg.seed + 1, telemetry=telemetry,
                             recorder=recorder)
    stats = server.run(num_requests=cfg.num_requests)
    if recorder is not None:
        if telemetry is not None:
            recorder.capture_timelines(telemetry.timelines)
        recorder.finish(stats)
    return ChaosReport(
        name=name, stats=stats,
        recovery_s=_recovery_s(stats, schedule.horizon),
        retries=sum(r.retries for r in stats.records),
        failovers=sum(r.failovers for r in stats.records),
        recorder=recorder)


def run_chaos(cfg: ChaosConfig = ChaosConfig(),
              telemetry=None,
              record: bool = False) -> Dict[str, ChaosReport]:
    """Run all three variants on the identical world; keyed by name.

    ``telemetry`` (optional) instruments only the resilient variant —
    attaching one registry to all three would conflate their counters.
    ``record=True`` attaches a RunRecorder per variant; with the default
    pinned ``decision_time_s`` the recordings are byte-stable functions
    of the seeds (``record`` -> ``rerecord`` byte-diffs clean).  Set
    ``decision_time_s=None`` to charge honestly measured wall clock
    instead (recordings still replay exactly, but are no longer
    byte-stable across hosts).
    """
    return {
        "murmuration": _run_variant(
            "murmuration", cfg, ResilienceConfig(), static=False,
            telemetry=telemetry, record=record),
        "static": _run_variant(
            "static", cfg, ResilienceConfig(), static=True, record=record),
        "no-failover": _run_variant(
            "no-failover", cfg,
            ResilienceConfig(failover=False, degradation=False),
            static=False, record=record),
    }


def format_chaos(reports: Dict[str, ChaosReport]) -> str:
    lines = [f"{'variant':>12s}{'complete':>10s}{'comply':>8s}"
             f"{'ok':>5s}{'retr':>6s}{'degr':>6s}{'fail':>6s}"
             f"{'recovery':>10s}"]
    for rep in reports.values():
        o = rep.outcomes
        rec = f"{rep.recovery_s:.2f}s" if rep.recovery_s is not None else "-"
        lines.append(
            f"{rep.name:>12s}{rep.completion:>10.0%}{rep.compliance:>8.0%}"
            f"{o['ok']:>5d}{o['retried']:>6d}{o['degraded']:>6d}"
            f"{o['failed']:>6d}{rec:>10s}")
    return "\n".join(lines)
