"""Murmuration's strategy choice for the system-level figures.

Figures 13-17 evaluate the *deployed* system: a converged policy picking
(submodel, plan) per condition.  Two interchangeable evaluators:

* :class:`MurmurationOracle` — exhaustive search over a deterministic
  lattice of submodels x canonical plan templates.  This is the
  converged-policy proxy the default benchmarks use: the paper's RL
  policy approaches this choice after 20k training steps (Fig. 11), and
  the oracle is deterministic/seed-free, which keeps figure regeneration
  stable.
* :func:`policy_method` — wraps an actually trained
  :class:`~repro.rl.policy.LSTMPolicy` (use after running the Fig. 11
  training benches) for an end-to-end-learned variant.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.slo import SLO
from ..core.strategy import Strategy
from ..nas.accuracy_model import arch_accuracy, plan_accuracy_penalty
from ..nas.arch import ArchConfig
from ..nas.evolution import candidate_plans
from ..nas.graph_builder import build_graph
from ..nas.search_space import SearchSpace
from ..netsim.topology import Cluster, NetworkCondition
from ..partition.simulate import simulate_latency
from ..rl.env import MurmurationEnv, Task

__all__ = ["MurmurationOracle", "policy_method", "lattice_archs"]


def lattice_archs(space: SearchSpace) -> List[ArchConfig]:
    """A deterministic sweep of submodels: every (resolution, depth
    level, kernel level, expand level) combination, uniform per stage."""
    out = []
    slots = space.num_stages * space.max_depth
    for res, d, k, e in product(space.resolution_options,
                                space.depth_options,
                                space.kernel_options,
                                space.expand_options):
        out.append(ArchConfig(
            resolution=res,
            depths=(d,) * space.num_stages,
            kernels=(k,) * slots,
            expands=(e,) * slots,
        ))
    return out


class MurmurationOracle:
    """Exhaustive (lattice arch) x (plan template) strategy selection."""

    def __init__(self, space: SearchSpace, devices: Sequence,
                 archs: Optional[List[ArchConfig]] = None):
        self.space = space
        self.devices = list(devices)
        self.archs = archs if archs is not None else lattice_archs(space)
        # Pre-build graphs and accuracies once; plans depend on the
        # cluster, so they are built per call.
        self._graphs = [build_graph(a, space) for a in self.archs]
        self._accs = [arch_accuracy(a, space) for a in self.archs]

    def decide(self, slo: SLO, condition: NetworkCondition,
               ) -> Optional[Strategy]:
        cluster = Cluster(self.devices, condition)
        best: Optional[Strategy] = None
        for arch, graph, base_acc in zip(self.archs, self._graphs, self._accs):
            for plan in candidate_plans(graph, cluster):
                latency = simulate_latency(graph, plan, cluster).total_s
                acc = base_acc - plan_accuracy_penalty(plan)
                if not slo.satisfied_by(latency, acc):
                    continue
                if best is None:
                    better = True
                elif slo.kind == "latency":
                    better = (acc, -latency) > (best.expected_accuracy,
                                                -best.expected_latency_s)
                else:
                    better = (-latency, acc) > (-best.expected_latency_s,
                                                best.expected_accuracy)
                if better:
                    best = Strategy(arch, plan, latency, acc)
        return best


def policy_method(env: MurmurationEnv, policy) -> Callable[
        [SLO, NetworkCondition], Optional[Strategy]]:
    """Wrap a trained policy as a figure-driver decision function."""

    def decide(slo: SLO, condition: NetworkCondition) -> Optional[Strategy]:
        if slo.kind != env.cfg.slo_kind:
            raise ValueError("policy trained for a different SLO kind")
        task = Task(slo.value, condition)
        actions = policy.greedy_actions(env.encode_task(task), env.schedule)
        outcome = env.evaluate_actions(actions, task)
        if not outcome.satisfied:
            return None
        return Strategy(outcome.arch, outcome.plan, outcome.latency_s,
                        outcome.accuracy)

    return decide
