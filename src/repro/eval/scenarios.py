"""The paper's two evaluation scenarios (Sec. 6).

* **Augmented computing** — one Raspberry Pi 4 (local) + one desktop
  with a GTX1080-class GPU (remote).
* **Device swarm** — five Raspberry Pi 4s; device 0 is local.
"""

from __future__ import annotations

from typing import List

from ..devices.profiles import DeviceProfile, desktop_gtx1080, rpi4
from ..netsim.topology import Cluster, NetworkCondition

__all__ = ["augmented_devices", "swarm_devices", "augmented_cluster",
           "swarm_cluster"]


def augmented_devices() -> List[DeviceProfile]:
    return [rpi4(), desktop_gtx1080()]


def swarm_devices(n: int = 5) -> List[DeviceProfile]:
    if n < 1:
        raise ValueError("need at least one device")
    return [rpi4() for _ in range(n)]


def augmented_cluster(condition: NetworkCondition) -> Cluster:
    return Cluster(augmented_devices(), condition)


def swarm_cluster(condition: NetworkCondition, n: int = 5) -> Cluster:
    return Cluster(swarm_devices(n), condition)
