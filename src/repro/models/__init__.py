"""Model cost-graph representation and the fixed-model zoo."""

from .graph import ComputeBlock, ModelGraph, conv_flops, linear_flops
from .vit import vit_base_16, vit_profile, vit_small_16
from .zoo import (
    MODEL_ZOO,
    densenet161,
    get_model,
    inception_v3,
    mobilenet_v3_large,
    resnet50,
    resnext101_32x8d,
)

__all__ = [
    "ComputeBlock",
    "ModelGraph",
    "conv_flops",
    "linear_flops",
    "MODEL_ZOO",
    "get_model",
    "mobilenet_v3_large",
    "resnet50",
    "inception_v3",
    "densenet161",
    "resnext101_32x8d",
    "vit_profile",
    "vit_base_16",
    "vit_small_16",
]
