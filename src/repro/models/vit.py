"""Vision Transformer profiles (extension).

Section 4.1 of the paper notes its spatial-partitioning strategy "can
also be applied to other DNN models such as Vision Transformers, where
different image patches are sent to different devices for parallel
attention computation".  This module implements that extension at the
cost-model level:

* each transformer block is *patch-parallel partitionable* — a tile owns
  a subset of the patch tokens and computes their queries locally;
* unlike FDSP conv blocks, attention is **global**: every tile needs all
  keys/values, so a partitioned block incurs a per-block peer exchange
  of ~2*N*D elements (``ComputeBlock.sync_elements``), which the latency
  simulator prices on every link.

The result reproduces the expected behaviour: patch parallelism pays off
on fast links and collapses on slow ones, where layer-wise splits or
local execution win.
"""

from __future__ import annotations

from typing import List

from .graph import ComputeBlock, ModelGraph, linear_flops

__all__ = ["vit_profile", "vit_base_16", "vit_small_16"]

_FP32 = 4


def vit_profile(name: str, depth: int, hidden: int, mlp_ratio: int,
                accuracy: float, resolution: int = 224,
                patch: int = 16) -> ModelGraph:
    """Build a ViT cost graph.

    Per block (N tokens, D hidden): attention QKV+proj = 8*N*D^2 MACs,
    attention matrix = 2*N^2*D MACs, MLP = 2*mlp_ratio*N*D^2 MACs.
    """
    n_side = resolution // patch
    n = n_side * n_side
    blocks: List[ComputeBlock] = []
    embed_flops = 2.0 * n * hidden * (3 * patch * patch)
    blocks.append(ComputeBlock(
        "patch_embed", flops=embed_flops, out_hw=(n_side, n_side),
        out_ch=hidden, weight_bytes=3 * patch * patch * hidden * _FP32,
        partitionable=True, stage=0, halo=0))
    attn_flops = 2.0 * (4 * n * hidden * hidden + 2 * n * n * hidden)
    mlp_flops = 2.0 * (2 * mlp_ratio * n * hidden * hidden)
    block_params = (4 * hidden * hidden
                    + 2 * mlp_ratio * hidden * hidden) * _FP32
    # Every tile needs all keys and values: 2 * N * D elements.
    sync = 2 * n * hidden
    for i in range(depth):
        blocks.append(ComputeBlock(
            f"block{i}", flops=attn_flops + mlp_flops,
            out_hw=(n_side, n_side), out_ch=hidden,
            weight_bytes=block_params, partitionable=True, stage=1,
            halo=0, sync_elements=sync))
    blocks.append(ComputeBlock(
        "head", flops=linear_flops(hidden, 1000), out_hw=(1, 1),
        out_ch=1000, weight_bytes=hidden * 1000 * _FP32,
        partitionable=False, fused=True, stage=2))
    return ModelGraph(name, blocks, accuracy,
                      input_hw=(resolution, resolution))


def vit_base_16(accuracy: float = 77.9) -> ModelGraph:
    """ViT-B/16 (~17.5 GMACs @224, 77.9 % top-1 ImageNet-1k)."""
    return vit_profile("vit_base_16", depth=12, hidden=768, mlp_ratio=4,
                       accuracy=accuracy)


def vit_small_16(accuracy: float = 74.5) -> ModelGraph:
    """ViT-S/16 (~4.6 GMACs @224, ~74.5 % top-1 trained from scratch)."""
    return vit_profile("vit_small_16", depth=12, hidden=384, mlp_ratio=4,
                       accuracy=accuracy)
