"""Fixed baseline model profiles.

Analytical :class:`~repro.models.graph.ModelGraph` builders for the five
fixed DNNs the paper's baselines run (Neurosurgeon/ADCNN + model):
MobileNetV3-Large, ResNet50, InceptionV3, DenseNet161 and
ResNeXt101-32x8d.  FLOPs are computed from the published architecture
tables; top-1 ImageNet accuracies are the published numbers the paper
quotes (e.g. DenseNet161 77.1 %, ResNeXt101 79.3 %).

These are *cost profiles*, not executable networks — the baselines only
need per-block FLOPs, activation sizes and weight bytes to drive the
distributed-execution simulator, exactly like Neurosurgeon's own
per-layer profiling step.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .graph import ComputeBlock, ModelGraph, conv_flops, linear_flops

__all__ = [
    "mobilenet_v3_large",
    "resnet50",
    "inception_v3",
    "densenet161",
    "resnext101_32x8d",
    "MODEL_ZOO",
    "get_model",
]

_FP32 = 4  # bytes per parameter


def _head_blocks(h: int, w: int, in_ch: int, hidden, classes: int,
                 stage: int) -> List[ComputeBlock]:
    """Global-pool + classifier head (must run on one device).

    ``hidden=None`` means a single FC layer (ResNet/DenseNet style);
    otherwise a two-layer head (MobileNetV3 style).
    """
    if hidden is None:
        head_flops = linear_flops(in_ch, classes)
        head_params = (in_ch * classes + classes) * _FP32
    else:
        head_flops = linear_flops(in_ch, hidden) + linear_flops(hidden, classes)
        head_params = (in_ch * hidden + hidden + hidden * classes + classes) * _FP32
    return [
        ComputeBlock("head.pool", flops=2.0 * h * w * in_ch, out_hw=(1, 1),
                     out_ch=in_ch, partitionable=False, fused=True, stage=stage),
        ComputeBlock("head.fc", flops=head_flops, out_hw=(1, 1), out_ch=classes,
                     weight_bytes=head_params, partitionable=False, fused=True,
                     stage=stage),
    ]


# ---------------------------------------------------------------------------
# MobileNetV3-Large
# ---------------------------------------------------------------------------

# (kernel, expansion_channels, out_channels, use_se, stride)
_MBV3_LARGE_SPEC: List[Tuple[int, int, int, bool, int]] = [
    (3, 16, 16, False, 1),
    (3, 64, 24, False, 2),
    (3, 72, 24, False, 1),
    (5, 72, 40, True, 2),
    (5, 120, 40, True, 1),
    (5, 120, 40, True, 1),
    (3, 240, 80, False, 2),
    (3, 200, 80, False, 1),
    (3, 184, 80, False, 1),
    (3, 184, 80, False, 1),
    (3, 480, 112, True, 1),
    (3, 672, 112, True, 1),
    (5, 672, 160, True, 2),
    (5, 960, 160, True, 1),
    (5, 960, 160, True, 1),
]


def _mbconv_flops(h: int, w: int, in_ch: int, exp: int, out_ch: int,
                  kernel: int, stride: int, use_se: bool) -> Tuple[float, int]:
    """FLOPs and parameter bytes of one inverted-residual block."""
    f = conv_flops(h, w, in_ch, exp, 1)                       # expand 1x1
    f += conv_flops(h, w, exp, exp, kernel, stride, groups=exp)  # depthwise
    oh, ow = h // stride, w // stride
    f += conv_flops(oh, ow, exp, out_ch, 1)                   # project 1x1
    params = in_ch * exp + exp * kernel * kernel + exp * out_ch
    if use_se:
        se_hidden = max(1, exp // 4)
        f += 2.0 * (exp * se_hidden + se_hidden * exp) + 2.0 * oh * ow * exp
        params += 2 * exp * se_hidden + se_hidden + exp
    return f, params * _FP32


def mobilenet_v3_large(resolution: int = 224,
                       accuracy: float = 75.2) -> ModelGraph:
    """MobileNetV3-Large profile (~219 MMACs / 440 MFLOPs @224, 75.2 % top-1)."""
    blocks: List[ComputeBlock] = []
    h = w = resolution // 2
    blocks.append(ComputeBlock(
        "stem", flops=conv_flops(resolution, resolution, 3, 16, 3, 2),
        out_hw=(h, w), out_ch=16, weight_bytes=3 * 16 * 9 * _FP32, stage=0))
    in_ch = 16
    for i, (k, exp, out_ch, se, stride) in enumerate(_MBV3_LARGE_SPEC):
        f, p = _mbconv_flops(h, w, in_ch, exp, out_ch, k, stride, se)
        h, w = h // stride, w // stride
        blocks.append(ComputeBlock(f"block{i}", flops=f, out_hw=(h, w),
                                   out_ch=out_ch, weight_bytes=p, stage=1,
                                   halo=k // 2, depthwise=True))
        in_ch = out_ch
    blocks.append(ComputeBlock(
        "conv_last", flops=conv_flops(h, w, in_ch, 960, 1), out_hw=(h, w),
        out_ch=960, weight_bytes=in_ch * 960 * _FP32, stage=2))
    blocks += _head_blocks(h, w, 960, 1280, 1000, stage=3)
    return ModelGraph("mobilenet_v3_large", blocks, accuracy,
                      input_hw=(resolution, resolution))


# ---------------------------------------------------------------------------
# ResNet-50 / ResNeXt-101
# ---------------------------------------------------------------------------

def _bottleneck_flops(h: int, w: int, in_ch: int, mid: int, out_ch: int,
                      stride: int, groups: int = 1,
                      downsample: bool = False) -> Tuple[float, int]:
    f = conv_flops(h, w, in_ch, mid, 1)
    f += conv_flops(h, w, mid, mid, 3, stride, groups=groups)
    oh, ow = h // stride, w // stride
    f += conv_flops(oh, ow, mid, out_ch, 1)
    params = in_ch * mid + (mid // groups) * mid * 9 + mid * out_ch
    if downsample:
        f += conv_flops(h, w, in_ch, out_ch, 1, stride)
        params += in_ch * out_ch
    return f, params * _FP32


def _resnet_family(name: str, layers: List[int], mid_base: int, groups: int,
                   width_per_group: int, accuracy: float,
                   resolution: int = 224) -> ModelGraph:
    blocks: List[ComputeBlock] = []
    h = w = resolution // 2
    blocks.append(ComputeBlock(
        "stem", flops=conv_flops(resolution, resolution, 3, 64, 7, 2),
        out_hw=(h, w), out_ch=64, weight_bytes=3 * 64 * 49 * _FP32, stage=0))
    h, w = h // 2, w // 2  # maxpool
    blocks.append(ComputeBlock("maxpool", flops=9.0 * h * w * 64,
                               out_hw=(h, w), out_ch=64, stage=0))
    in_ch = 64
    for stage_idx, n_blocks in enumerate(layers):
        out_ch = 256 * (2 ** stage_idx)
        if groups == 1:
            mid = mid_base * (2 ** stage_idx)
        else:
            mid = groups * width_per_group * (2 ** stage_idx)
        for b in range(n_blocks):
            stride = 2 if (b == 0 and stage_idx > 0) else 1
            f, p = _bottleneck_flops(h, w, in_ch, mid, out_ch, stride,
                                     groups=groups, downsample=(b == 0))
            h, w = h // stride, w // stride
            blocks.append(ComputeBlock(
                f"layer{stage_idx + 1}.{b}", flops=f, out_hw=(h, w),
                out_ch=out_ch, weight_bytes=p, stage=stage_idx + 1))
            in_ch = out_ch
    head_f = linear_flops(in_ch, 1000)
    blocks.append(ComputeBlock("head.pool", flops=2.0 * h * w * in_ch,
                               out_hw=(1, 1), out_ch=in_ch,
                               partitionable=False, fused=True, stage=5))
    blocks.append(ComputeBlock("head.fc", flops=head_f, out_hw=(1, 1),
                               out_ch=1000, weight_bytes=in_ch * 1000 * _FP32,
                               partitionable=False, fused=True, stage=5))
    return ModelGraph(name, blocks, accuracy, input_hw=(resolution, resolution))


def resnet50(resolution: int = 224, accuracy: float = 76.1) -> ModelGraph:
    """ResNet-50 profile (~4.1 GMACs / 8.2 GFLOPs @224, 76.1 % top-1)."""
    return _resnet_family("resnet50", [3, 4, 6, 3], 64, 1, 0, accuracy,
                          resolution)


def resnext101_32x8d(resolution: int = 224,
                     accuracy: float = 79.3) -> ModelGraph:
    """ResNeXt-101 32x8d profile (~16.4 GMACs / 33 GFLOPs @224, 79.3 % top-1)."""
    return _resnet_family("resnext101_32x8d", [3, 4, 23, 3], 0, 32, 8,
                          accuracy, resolution)


# ---------------------------------------------------------------------------
# InceptionV3
# ---------------------------------------------------------------------------

# (name, flops, out_h, out_w, out_ch, params_bytes) — stage-level profile
# derived from the InceptionV3 architecture at 299x299; totals ~5.7 GFLOPs
# and ~27M params.
_INCEPTION_TABLE = [
    ("stem", 1.72e9, 35, 35, 192, 0.45e6),
    ("mixed5b", 0.60e9, 35, 35, 256, 0.35e6),
    ("mixed5c", 0.66e9, 35, 35, 288, 0.40e6),
    ("mixed5d", 0.70e9, 35, 35, 288, 0.42e6),
    ("mixed6a", 1.10e9, 17, 17, 768, 1.45e6),
    ("mixed6b", 1.02e9, 17, 17, 768, 1.85e6),
    ("mixed6c", 1.10e9, 17, 17, 768, 2.15e6),
    ("mixed6d", 1.10e9, 17, 17, 768, 2.15e6),
    ("mixed6e", 1.24e9, 17, 17, 768, 2.40e6),
    ("mixed7a", 0.72e9, 8, 8, 1280, 2.20e6),
    ("mixed7b", 0.76e9, 8, 8, 2048, 5.30e6),
    ("mixed7c", 0.84e9, 8, 8, 2048, 6.70e6),
]


def inception_v3(accuracy: float = 77.3) -> ModelGraph:
    """InceptionV3 profile (~5.7 GMACs / 11.5 GFLOPs @299, 77.3 % top-1)."""
    blocks = [
        ComputeBlock(name, flops=f, out_hw=(h, w), out_ch=c,
                     weight_bytes=int(p) * _FP32, stage=i, halo=2)
        for i, (name, f, h, w, c, p) in enumerate(_INCEPTION_TABLE)
    ]
    blocks += _head_blocks(8, 8, 2048, None, 1000, stage=len(_INCEPTION_TABLE))
    return ModelGraph("inception_v3", blocks, accuracy, input_hw=(299, 299))


# ---------------------------------------------------------------------------
# DenseNet-161
# ---------------------------------------------------------------------------

# Dense blocks/transitions at 224x224; growth 48; totals ~7.8 GFLOPs,
# ~28.7M params.
_DENSENET_TABLE = [
    ("stem", 0.94e9, 56, 56, 96, 0.014e6),
    ("denseblock1", 2.10e9, 56, 56, 384, 0.8e6),
    ("transition1", 0.36e9, 28, 28, 192, 0.07e6),
    ("denseblock2", 3.20e9, 28, 28, 768, 2.7e6),
    ("transition2", 0.24e9, 14, 14, 384, 0.3e6),
    ("denseblock3", 5.70e9, 14, 14, 2112, 12.2e6),
    ("transition3", 0.16e9, 7, 7, 1056, 2.2e6),
    ("denseblock4", 2.90e9, 7, 7, 2208, 8.2e6),
]


def densenet161(accuracy: float = 77.1) -> ModelGraph:
    """DenseNet-161 profile (~7.8 GMACs / 15.6 GFLOPs @224, 77.1 % top-1)."""
    blocks = [
        ComputeBlock(name, flops=f, out_hw=(h, w), out_ch=c,
                     weight_bytes=int(p) * _FP32, stage=i,
                     halo=4 if name.startswith("dense") else 1)
        for i, (name, f, h, w, c, p) in enumerate(_DENSENET_TABLE)
    ]
    blocks += _head_blocks(7, 7, 2208, None, 1000, stage=len(_DENSENET_TABLE))
    return ModelGraph("densenet161", blocks, accuracy)


MODEL_ZOO: Dict[str, object] = {
    "mobilenet_v3_large": mobilenet_v3_large,
    "resnet50": resnet50,
    "inception_v3": inception_v3,
    "densenet161": densenet161,
    "resnext101_32x8d": resnext101_32x8d,
}


def get_model(name: str) -> ModelGraph:
    """Build a zoo model by name."""
    if name not in MODEL_ZOO:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODEL_ZOO)}")
    return MODEL_ZOO[name]()  # type: ignore[operator]
