"""Cost-model representation of DNNs.

Every model in the reproduction — supernet submodels and the fixed
baseline networks (MobileNetV3, ResNet50, ...) — lowers to a
:class:`ModelGraph`: an ordered sequence of :class:`ComputeBlock` entries
carrying the quantities the distributed-execution simulator needs
(FLOPs, output activation geometry, weight bytes, partitionability).

The granularity is the *block* (an inverted-residual block, a ResNet
bottleneck, a dense stage, ...) because that is the granularity at which
Murmuration makes partitioning and placement decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, List, Optional, Sequence, Tuple

__all__ = ["ComputeBlock", "ModelGraph"]


@dataclass(frozen=True)
class ComputeBlock:
    """One schedulable unit of a DNN.

    Attributes
    ----------
    name : human-readable identifier, e.g. ``"stage2.block1"``.
    flops : multiply-accumulate count * 2 for the whole block.
    out_hw : spatial size (H, W) of the block output.
    out_ch : channel count of the block output.
    weight_bytes : parameter bytes (fp32) — used by the model-switch cost
        model and memory accounting.
    partitionable : whether FDSP spatial partitioning may split this block
        (convolutional trunk blocks are; classifier heads are not).
    fused : True for blocks that must execute on the aggregation device
        (global pooling + fully-connected head).
    stage : index of the macro-stage the block belongs to (-1 if n/a).
    halo : receptive-field growth across the block (pixels); drives the
        FDSP zero-padding overhead when the block is spatially tiled.
    sync_elements : elements every tile must receive from its peers when
        the block is partitioned (0 for FDSP conv blocks — that is the
        point of FDSP; ~2*N*D for patch-parallel transformer attention,
        whose keys/values are global).
    depthwise : True for depthwise-separable blocks (MBConv), whose low
        arithmetic intensity costs extra on CPUs relative to dense convs
        (DeviceProfile.depthwise_penalty).
    """

    name: str
    flops: float
    out_hw: Tuple[int, int]
    out_ch: int
    weight_bytes: int = 0
    partitionable: bool = True
    fused: bool = False
    stage: int = -1
    halo: int = 1
    sync_elements: int = 0
    depthwise: bool = False

    @property
    def out_elements(self) -> int:
        """Number of scalars in the output activation (batch size 1)."""
        return self.out_hw[0] * self.out_hw[1] * self.out_ch

    def scaled(self, flop_scale: float) -> "ComputeBlock":
        """A copy with FLOPs scaled (used for FDSP padding overhead)."""
        return replace(self, flops=self.flops * flop_scale)


class ModelGraph:
    """An ordered block sequence with an accuracy tag.

    ``input_hw``/``input_ch`` describe the network input (the image), so
    the simulator can price shipping the input to remote devices.
    """

    def __init__(self, name: str, blocks: Sequence[ComputeBlock],
                 accuracy: float, input_hw: Tuple[int, int] = (224, 224),
                 input_ch: int = 3):
        if not blocks:
            raise ValueError("a ModelGraph needs at least one block")
        if not (0.0 < accuracy <= 100.0):
            raise ValueError(f"accuracy must be in (0, 100], got {accuracy}")
        self.name = name
        self.blocks: List[ComputeBlock] = list(blocks)
        self.accuracy = float(accuracy)
        self.input_hw = input_hw
        self.input_ch = input_ch

    # -- aggregate queries ---------------------------------------------------
    @property
    def total_flops(self) -> float:
        return sum(b.flops for b in self.blocks)

    @property
    def total_weight_bytes(self) -> int:
        return sum(b.weight_bytes for b in self.blocks)

    @property
    def input_elements(self) -> int:
        return self.input_hw[0] * self.input_hw[1] * self.input_ch

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self) -> Iterator[ComputeBlock]:
        return iter(self.blocks)

    def __getitem__(self, i) -> ComputeBlock:
        return self.blocks[i]

    def block_output_elements(self, i: int) -> int:
        return self.blocks[i].out_elements

    def partitionable_indices(self) -> List[int]:
        return [i for i, b in enumerate(self.blocks) if b.partitionable]

    def split_points(self) -> List[int]:
        """Valid layer-wise split points: 0 = everything remote,
        len(blocks) = everything local."""
        return list(range(len(self.blocks) + 1))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ModelGraph({self.name!r}, blocks={len(self.blocks)}, "
                f"GFLOPs={self.total_flops / 1e9:.2f}, acc={self.accuracy:.1f}%)")


def conv_flops(h: int, w: int, in_ch: int, out_ch: int, kernel: int,
               stride: int = 1, groups: int = 1) -> float:
    """FLOPs (2 * MACs) of a convolution producing (h/stride, w/stride)."""
    oh, ow = h // stride, w // stride
    return 2.0 * oh * ow * (in_ch // groups) * out_ch * kernel * kernel


def linear_flops(in_features: int, out_features: int) -> float:
    return 2.0 * in_features * out_features
