"""Baseline method registry.

Every evaluation figure compares Murmuration against "framework + model"
combinations (e.g. ``Neurosurgeon + ResNet50``).  A
:class:`BaselineMethod` closes over one such combination and produces a
:class:`BaselineOutcome` for any cluster/SLO — the common currency of
the figure drivers in :mod:`repro.eval`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..core.slo import SLO
from ..models.graph import ModelGraph
from ..models.zoo import get_model
from ..netsim.topology import Cluster
from .adcnn import adcnn_plan
from .neurosurgeon import neurosurgeon_plan

__all__ = ["BaselineOutcome", "BaselineMethod", "AUGMENTED_BASELINES",
           "SWARM_BASELINES", "make_baseline"]


@dataclass(frozen=True)
class BaselineOutcome:
    latency_s: float
    accuracy: float
    satisfied: bool


@dataclass(frozen=True)
class BaselineMethod:
    """A named (framework, fixed model) baseline."""

    name: str
    framework: str        # "neurosurgeon" | "adcnn"
    model_name: str

    def evaluate(self, cluster: Cluster, slo: Optional[SLO] = None,
                 ) -> BaselineOutcome:
        graph = get_model(self.model_name)
        if self.framework == "neurosurgeon":
            # Neurosurgeon targets a single (the best) remote device.
            best = None
            for remote in range(1, cluster.num_devices):
                r = neurosurgeon_plan(graph, cluster, remote=remote)
                if best is None or r.latency_s < best.latency_s:
                    best = r
            latency, accuracy = best.latency_s, best.accuracy
        elif self.framework == "adcnn":
            r = adcnn_plan(graph, cluster)
            latency, accuracy = r.latency_s, r.accuracy
        else:  # pragma: no cover - registry is closed
            raise ValueError(f"unknown framework {self.framework!r}")
        ok = slo.satisfied_by(latency, accuracy) if slo is not None else True
        return BaselineOutcome(latency, accuracy, ok)


def make_baseline(framework: str, model_name: str) -> BaselineMethod:
    pretty_model = {
        "mobilenet_v3_large": "MobileNetV3",
        "resnet50": "ResNet50",
        "inception_v3": "Inception",
        "densenet161": "DenseNet161",
        "resnext101_32x8d": "ResNeXt101",
    }[model_name]
    pretty_fw = {"neurosurgeon": "Neurosurgeon", "adcnn": "ADCNN"}[framework]
    return BaselineMethod(f"{pretty_fw} + {pretty_model}", framework,
                          model_name)


#: Fig. 13 / 15 / 16a baselines (augmented computing scenario).
AUGMENTED_BASELINES: List[BaselineMethod] = [
    make_baseline("neurosurgeon", "mobilenet_v3_large"),
    make_baseline("neurosurgeon", "resnet50"),
    make_baseline("neurosurgeon", "inception_v3"),
    make_baseline("neurosurgeon", "densenet161"),
    make_baseline("neurosurgeon", "resnext101_32x8d"),
    make_baseline("adcnn", "mobilenet_v3_large"),
    make_baseline("adcnn", "resnet50"),
]

#: Fig. 14 / 16b baselines (device swarm scenario).
SWARM_BASELINES: List[BaselineMethod] = [
    make_baseline("adcnn", "mobilenet_v3_large"),
    make_baseline("adcnn", "resnet50"),
    make_baseline("adcnn", "densenet161"),
    make_baseline("adcnn", "resnext101_32x8d"),
    make_baseline("neurosurgeon", "mobilenet_v3_large"),
    make_baseline("neurosurgeon", "resnet50"),
]
