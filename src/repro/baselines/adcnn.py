"""ADCNN baseline (Zhang et al., ICPP'20).

Fully Decomposable Spatial Partition of a *fixed* DNN: every
partitionable block is split into an r x c tile grid executed in
parallel across devices; FDSP zero padding removes cross-tile traffic.
ADCNN fine-tunes the CNN to recover most of the partitioning loss, so
its accuracy is the base model's minus a small fixed fine-tuning residue.

We search the small set of (grid, device assignment) candidates and keep
the latency-minimal one — mirroring ADCNN's own partition selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List, Optional, Sequence, Tuple

from ..models.graph import ModelGraph
from ..netsim.topology import Cluster
from ..partition.plan import ExecutionPlan, single_device_plan, spatial_plan
from ..partition.simulate import simulate_latency
from ..partition.spatial import Grid

__all__ = ["ADCNNResult", "adcnn_plan", "FDSP_FINETUNE_PENALTY"]

#: Residual accuracy loss after ADCNN's progressive fine-tuning (pct pts).
FDSP_FINETUNE_PENALTY = 0.4


@dataclass(frozen=True)
class ADCNNResult:
    plan: ExecutionPlan
    grid: Grid
    devices: Tuple[int, ...]
    latency_s: float
    accuracy: float


def _assignments(n_devices: int, ntiles: int) -> List[Tuple[int, ...]]:
    """Candidate tile->device assignments: distinct devices per tile,
    preferring remote devices (ADCNN offloads to the edge cluster)."""
    pool = list(range(n_devices))
    out: List[Tuple[int, ...]] = []
    for combo in combinations(pool, min(ntiles, len(pool))):
        if len(combo) == ntiles:
            out.append(tuple(combo))
    return out


def adcnn_plan(graph: ModelGraph, cluster: Cluster,
               bits: int = 32) -> ADCNNResult:
    """Best FDSP spatial partition of ``graph`` over the cluster."""
    candidates: List[Tuple[float, Grid, Tuple[int, ...], ExecutionPlan]] = []
    # Unpartitioned local execution is ADCNN's degenerate fallback.
    plan0 = single_device_plan(graph, 0)
    candidates.append((simulate_latency(graph, plan0, cluster).total_s,
                       Grid(1, 1), (0,), plan0))
    grids = [Grid(1, 2), Grid(2, 2), Grid(1, 3), Grid(1, 4), Grid(1, 5),
             Grid(2, 3)]
    for grid in grids:
        if grid.ntiles > cluster.num_devices:
            continue
        for devices in _assignments(cluster.num_devices, grid.ntiles):
            plan = spatial_plan(graph, grid, devices, bits=bits)
            latency = simulate_latency(graph, plan, cluster).total_s
            candidates.append((latency, grid, devices, plan))
    latency, grid, devices, plan = min(candidates, key=lambda c: c[0])
    accuracy = graph.accuracy - (FDSP_FINETUNE_PENALTY
                                 if grid.ntiles > 1 else 0.0)
    return ADCNNResult(plan, grid, devices, latency, accuracy)
