"""Neurosurgeon baseline (Kang et al., ASPLOS'17).

Layer-wise partitioning of a *fixed* DNN between the local device and
one remote device: profile every block on both devices, then pick the
split point minimizing predicted end-to-end latency (compute before the
split locally + transfer of the split activation + compute after the
split remotely).  We evaluate every split with the same simulator used
for Murmuration, which subsumes Neurosurgeon's analytical sum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..models.graph import ModelGraph
from ..netsim.topology import Cluster
from ..partition.plan import ExecutionPlan, layerwise_split_plan
from ..partition.simulate import simulate_latency

__all__ = ["NeurosurgeonResult", "neurosurgeon_plan"]


@dataclass(frozen=True)
class NeurosurgeonResult:
    plan: ExecutionPlan
    split: int
    latency_s: float
    accuracy: float


def neurosurgeon_plan(graph: ModelGraph, cluster: Cluster,
                      remote: int = 1, bits: int = 32) -> NeurosurgeonResult:
    """Best layer-wise split of ``graph`` between device 0 and ``remote``.

    Split 0 ships the raw input (cloud-only); split == len(graph) is
    local-only.  The returned accuracy is the fixed model's accuracy —
    layer-wise partitioning is lossless at fp32 (``bits=32``).
    """
    if not (1 <= remote < cluster.num_devices):
        raise ValueError(f"remote device {remote} not in cluster")
    best: Optional[Tuple[float, int, ExecutionPlan]] = None
    for split in graph.split_points():
        plan = layerwise_split_plan(graph, split, remote=remote, bits=bits)
        latency = simulate_latency(graph, plan, cluster).total_s
        if best is None or latency < best[0]:
            best = (latency, split, plan)
    latency, split, plan = best
    return NeurosurgeonResult(plan, split, latency, graph.accuracy)
