"""Fixed-DNN distributed-inference baselines: Neurosurgeon (layer-wise)
and ADCNN (FDSP spatial), plus the figure-driver registry."""

from .adcnn import FDSP_FINETUNE_PENALTY, ADCNNResult, adcnn_plan
from .neurosurgeon import NeurosurgeonResult, neurosurgeon_plan
from .registry import (
    AUGMENTED_BASELINES,
    SWARM_BASELINES,
    BaselineMethod,
    BaselineOutcome,
    make_baseline,
)

__all__ = [
    "neurosurgeon_plan",
    "NeurosurgeonResult",
    "adcnn_plan",
    "ADCNNResult",
    "FDSP_FINETUNE_PENALTY",
    "BaselineMethod",
    "BaselineOutcome",
    "make_baseline",
    "AUGMENTED_BASELINES",
    "SWARM_BASELINES",
]
