"""The discrete-event core: one clock, a heap of scheduled events.

Until this module existed, four layers each kept their own notion of
"now": the :class:`~repro.core.murmuration.Murmuration` facade held a
raw ``_now`` float, the serving loops snapped condition traces at
request start, :meth:`FaultInjector.advance` ran at request admission,
and :meth:`ControlLoop.maybe_tick` could only fire when a request
happened to arrive.  The world therefore changed *between* requests
only — a condition step scheduled for t=3.0 took effect whenever the
next request started, and an idle gap silently swallowed control ticks.

:class:`EventLoop` centralizes simulated time: world changes (condition
trace steps, fault transitions, control ticks, capacity updates) are
:class:`Event` objects on a heap, and the serving loops *advance
through* the loop — every event at or before the advance target fires,
in deterministic order, before serving proceeds.

Determinism rules
-----------------
* Events fire in ``(time, priority, seq)`` order: earlier time first;
  at equal times, lower ``priority`` first; at equal priorities,
  insertion (schedule-call) order.  No dict/set iteration anywhere.
* A callback receives the event's *scheduled* time, never the advance
  target: a capacity step scheduled at t=3.0 that fires while the loop
  advances to t=3.4 still re-converges the fluid ledger at 3.0.
* Scheduling into the past is an error (events must be known no later
  than their fire time); advancing to the past is a clamp (serving
  loops revisit earlier admission instants after a long service time —
  nothing fires twice, because fired events leave the heap).
* The wrapped :class:`~repro.runtime.clock.SimulatedClock` never runs
  backwards through this class.  (The batched facade's overlap rewind
  uses :meth:`SimulatedClock.reset` directly and is documented there;
  the loop tolerates it — an event older than the clock simply fires
  without moving the clock back.)

With no events scheduled, ``advance_to`` degenerates to
``clock.advance_to`` — a build that never schedules anything is
byte-identical to the pre-event-core runtime, which is what keeps the
golden fixtures stable.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..runtime.clock import SimulatedClock

__all__ = ["Event", "EventLoop"]


@dataclass(frozen=True)
class Event:
    """One scheduled world change.

    ``fire`` is called with the event's scheduled ``time`` (not the
    advance target).  ``priority`` breaks ties at equal times (lower
    fires first); ``seq`` is the insertion counter that makes the
    ordering total.
    """

    time: float
    priority: int
    seq: int
    kind: str
    fire: Callable[[float], None] = field(compare=False)

    @property
    def sort_key(self) -> Tuple[float, int, int]:
        return (self.time, self.priority, self.seq)


class EventLoop:
    """A heap of timestamped events over one shared simulated clock.

    Serving loops call :meth:`advance_to` at each admission instant and
    each service start; every event due at or before the target fires
    first (moving the clock to its own time), then the clock lands on
    the target.  Callbacks may schedule further events, including at
    times within the current advance window — they fire in the same
    pass, in order.
    """

    def __init__(self, clock: Optional[SimulatedClock] = None):
        self.clock = clock if clock is not None else SimulatedClock()
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        #: events fired over the loop's lifetime
        self.fired_total = 0

    # -- queries -----------------------------------------------------------
    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def pending(self) -> int:
        """Events still scheduled."""
        return len(self._heap)

    def peek_time(self) -> Optional[float]:
        """The next event's scheduled time, or None when idle."""
        return self._heap[0][0] if self._heap else None

    # -- scheduling --------------------------------------------------------
    def schedule(self, t: float, fn: Callable[[float], None],
                 kind: str = "event", priority: int = 0) -> Event:
        """Schedule ``fn`` to fire at simulated time ``t``.

        ``t`` must not lie in the loop's past: an event the world could
        not have known about at its own fire time is a modelling error,
        not a race to paper over.
        """
        t = float(t)
        if t < self.clock.now:
            raise ValueError(
                f"cannot schedule an event at {t} in the past "
                f"(loop is at {self.clock.now})")
        ev = Event(time=t, priority=int(priority), seq=self._seq,
                   kind=kind, fire=fn)
        self._seq += 1
        heapq.heappush(self._heap, (ev.time, ev.priority, ev.seq, ev))
        return ev

    # -- time --------------------------------------------------------------
    def advance_to(self, t: float) -> int:
        """Fire every event due at or before ``t``; land the clock on
        ``t``.  Returns the number of events fired.

        Advancing to the past is a clamp (no-op for the clock, nothing
        fires): serving loops legitimately revisit earlier admission
        instants after a long service time.
        """
        t = float(t)
        fired = 0
        while self._heap and self._heap[0][0] <= t:
            _, _, _, ev = heapq.heappop(self._heap)
            # An event can be older than the clock when the facade's
            # overlap path reset time forward past it between advances;
            # it still fires (with its own scheduled time), the clock
            # just does not move backwards.
            if ev.time > self.clock.now:
                self.clock.advance_to(ev.time)
            ev.fire(ev.time)
            fired += 1
        if t > self.clock.now:
            self.clock.advance_to(t)
        self.fired_total += fired
        return fired

    def advance(self, dt: float) -> int:
        """Relative :meth:`advance_to` (``dt`` must be non-negative)."""
        if dt < 0:
            raise ValueError(f"cannot advance time by {dt}")
        return self.advance_to(self.clock.now + dt)

    def run(self) -> int:
        """Fire everything scheduled, in order (drain the heap)."""
        fired = 0
        while self._heap:
            fired += self.advance_to(self._heap[0][0])
        return fired

    def __len__(self) -> int:
        return len(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"EventLoop(now={self.clock.now:.6f}, "
                f"pending={len(self._heap)}, fired={self.fired_total})")
