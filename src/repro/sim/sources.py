"""Event sources: turn the world's schedules into scheduled events.

Each helper walks one of the runtime's existing "world change" inputs —
a condition trace, a fault schedule, a control-loop cadence, an ingress
capacity trace, the network monitor's estimates — and schedules its
transitions on an :class:`~repro.sim.events.EventLoop` so they fire at
their *true* instants instead of at the next request boundary.

Priorities at a shared instant (lower fires first):

* ``PRIORITY_WORLD`` (0) — physical changes: condition steps, fault
  transitions, capacity updates.  The world changes first.
* ``PRIORITY_OBSERVER`` (10) — control ticks and monitor-fed capacity
  estimates: observers see the instant's final world state.

Every source is opt-in: a runtime that schedules none of these behaves
byte-identically to the boundary-only model.
"""

from __future__ import annotations

from typing import List, Sequence

from .events import Event, EventLoop

__all__ = ["PRIORITY_WORLD", "PRIORITY_OBSERVER",
           "schedule_condition_trace", "schedule_fault_transitions",
           "schedule_control_ticks", "schedule_ingress_trace",
           "schedule_monitor_caps"]

#: physical world changes fire before observers at a shared instant
PRIORITY_WORLD = 0
PRIORITY_OBSERVER = 10


def _tick_count(period_s: float, horizon_s: float) -> int:
    """Largest ``n`` with ``n * period_s <= horizon_s``, float-safe.

    Division alone can land one off in either direction (e.g.
    ``1.0 / 0.1 == 10.000000000000002``), so nudge the candidate until
    the defining inequality holds exactly in float.
    """
    n = int(horizon_s / period_s)
    while (n + 1) * period_s <= horizon_s:
        n += 1
    while n > 0 and n * period_s > horizon_s:
        n -= 1
    return n


def _step_times(trace: Sequence, period_s: float) -> List[int]:
    """Indices where the piecewise-constant trace actually changes."""
    if not trace:
        return []
    if period_s <= 0:
        raise ValueError(f"period_s must be positive, got {period_s}")
    out = [0]
    for idx in range(1, len(trace)):
        if trace[idx] != trace[idx - 1]:
            out.append(idx)
    return out


def schedule_condition_trace(loop: EventLoop, system, trace,
                             period_s: float,
                             recorder=None) -> List[Event]:
    """Schedule the condition trace's steps at their true instants.

    One event per *cell change* (a :func:`step_trace` that repeats a
    condition for twenty cells schedules one event, not twenty): at
    ``idx * period_s`` the true world becomes ``trace[idx]`` via
    :meth:`Murmuration.update_condition`, in-flight fluid flows on the
    cluster's links re-converge
    (:meth:`~repro.netsim.topology.Cluster.update_fluid_caps`), and the
    recorder (if any) logs the condition at the *step* instant — the
    boundary-only path logs it at the next request's start instead.
    """
    events = []

    # The cell is captured per event, not recomputed from the fire
    # time: int(idx * period_s / period_s) rounds down to idx - 1 for
    # many (idx, period) pairs (0.7 at idx 3, 0.1 at idx 43, ...),
    # which would silently re-apply the previous cell and lose the
    # transition.
    def fire(t: float, idx: int) -> None:
        condition = trace[idx]
        system.update_condition(condition)
        cluster = system.cluster
        if hasattr(cluster, "update_fluid_caps"):
            cluster.update_fluid_caps(t)
        if recorder is not None:
            recorder.on_condition(t, idx, condition)

    for idx in _step_times(trace, period_s):
        events.append(loop.schedule(idx * period_s,
                                    lambda t, i=idx: fire(t, i),
                                    kind="condition-step",
                                    priority=PRIORITY_WORLD))
    return events


def schedule_fault_transitions(loop: EventLoop, system) -> List[Event]:
    """Schedule every fault onset and recovery at its scheduled instant.

    The boundary-only path runs :meth:`FaultInjector.advance` at each
    request admission, so a crash at t=5.0 takes effect at the *next*
    request's start; here each event's ``start`` and (finite) ``end``
    becomes a scheduled transition that re-applies the fault overlay
    the moment the schedule says so.  A :class:`LinkFlap`'s internal
    up/down bursts still resolve at whatever granularity the injector
    is consulted — the flap's memoized burst pattern is a property of
    query time, not a schedulable transition list.
    """
    injector = system.faults
    if injector is None:
        return []

    def fire(t: float) -> None:
        injector.advance(t)
        injector.apply_to(system.cluster, system._base_condition)
        cluster = system.cluster
        if hasattr(cluster, "update_fluid_caps"):
            cluster.update_fluid_caps(t)

    return [loop.schedule(t, fire, kind="fault-transition",
                          priority=PRIORITY_WORLD)
            for t in injector.transition_times()]


def schedule_control_ticks(loop: EventLoop, control,
                           horizon_s: float) -> List[Event]:
    """Schedule the control loop's cadence as events up to ``horizon_s``.

    The boundary-only path can only tick when a request happens to
    arrive, so an idle gap swallows ticks (see
    :meth:`ControlLoop.maybe_tick`); scheduled ticks keep true cadence
    through gaps.  ``maybe_tick`` stays cadence-gated, so a server
    driving the loop at admissions *and* scheduled ticks never
    double-fires.
    """
    if control is None:
        return []
    # k * period_s, not an accumulating t += period_s: accumulation
    # compounds float error so late ticks drift off true multiples and
    # the final tick near the horizon can be skipped or duplicated.
    period_s = control.period_s
    return [loop.schedule(k * period_s,
                          lambda tt: control.maybe_tick(tt),
                          kind="control-tick", priority=PRIORITY_OBSERVER)
            for k in range(1, _tick_count(period_s, horizon_s) + 1)]


def schedule_ingress_trace(loop: EventLoop, ingress,
                           trace_mbps: Sequence[float],
                           period_s: float) -> List[Event]:
    """Schedule a shared-ingress uplink capacity trace mid-flight.

    At each cell change the uplink's true bandwidth steps
    (:meth:`SharedIngress.set_capacity`); with a fluid tracker attached
    every in-flight upload re-converges at the step instant — the
    mid-flight semantics the boundary-only model can only apply at the
    next admission.
    """
    # Same index capture as schedule_condition_trace: recomputing the
    # cell from the fire time loses transitions to float rounding.
    def fire(t: float, idx: int) -> None:
        ingress.set_capacity(t, float(trace_mbps[idx]))

    return [loop.schedule(idx * period_s, lambda t, i=idx: fire(t, i),
                          kind="ingress-capacity",
                          priority=PRIORITY_WORLD)
            for idx in _step_times(trace_mbps, period_s)]


def schedule_monitor_caps(loop: EventLoop, system, tracker,
                          period_s: float, horizon_s: float,
                          probe: bool = True) -> List[Event]:
    """Feed the network monitor's *observed* capacities into fluid caps.

    Every ``period_s`` the monitor probes (optional) and its smoothed
    bandwidth estimate for each star spoke ``(0, i)`` is pushed into the
    fluid ``tracker`` via :meth:`FluidTracker.update_caps` — the
    measured-capacities half of the ROADMAP item: in-flight flows
    re-converge onto what the monitor *believes* the links can carry,
    not the injected ground truth.
    """
    if period_s <= 0:
        raise ValueError(f"period_s must be positive, got {period_s}")
    if not getattr(tracker, "prices_transfers", False):
        raise ValueError("monitor-fed caps need a fluid tracker "
                         "(prices_transfers=True)")

    def fire(t: float) -> None:
        if probe:
            system.monitor.probe_all(t)
        estimate = system.monitor.estimate()
        caps = {(0, i + 1): bw * 1e6
                for i, bw in enumerate(estimate.bandwidths_mbps)
                if bw > 0.0}
        if caps:
            tracker.update_caps(t, caps)

    return [loop.schedule(k * period_s, fire, kind="monitor-caps",
                          priority=PRIORITY_OBSERVER)
            for k in range(1, _tick_count(period_s, horizon_s) + 1)]
