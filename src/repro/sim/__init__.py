"""``repro.sim`` — the discrete-event simulation core.

One shared :class:`~repro.runtime.clock.SimulatedClock`, an
:class:`EventLoop` of timestamped :class:`Event` objects with
deterministic tie-breaking, and event sources that turn condition
traces, fault schedules, control cadences, and capacity traces into
events that fire at their true instants (see DESIGN.md, "Event core").
"""

from .events import Event, EventLoop
from .sources import (PRIORITY_OBSERVER, PRIORITY_WORLD,
                      schedule_condition_trace, schedule_control_ticks,
                      schedule_fault_transitions, schedule_ingress_trace,
                      schedule_monitor_caps)

__all__ = ["Event", "EventLoop", "PRIORITY_WORLD", "PRIORITY_OBSERVER",
           "schedule_condition_trace", "schedule_fault_transitions",
           "schedule_control_ticks", "schedule_ingress_trace",
           "schedule_monitor_caps"]
