"""The controllers: small feedback rules over ControlSnapshot signals.

Each controller owns one knob of the serving stack and follows the same
discipline (after the runtime managers of Xun et al., DATE'24):

* act only on *observed* signals from the snapshot — never on ground
  truth the deployment could not see;
* move multiplicatively inside hard clamps, with a hysteresis dead band
  between the "push up" and "push down" thresholds so a noisy signal
  cannot flip the knob every tick;
* remember what went wrong: a refinement that collapsed the hit rate
  latches a floor so the same mistake is not retried, which is what
  makes convergence (settling under a stationary trace) provable by
  test rather than hoped for.

``update(snapshot, loop)`` returns a human-readable description of the
adjustment made, or None when the controller held still; descriptions
land in the :class:`~repro.control.loop.ControlLoop` action log and the
``control_actions_total`` telemetry counter.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from ..netsim.topology import NetworkCondition

__all__ = ["Controller", "CacheGranularityController",
           "BatchPolicyController", "AdmissionController",
           "TenantFairnessController", "PrecomputeScheduler"]


class Controller:
    """Base contract: a name and an ``update`` hook per tick."""

    name = "controller"

    def update(self, snapshot, loop) -> Optional[str]:
        raise NotImplementedError


class CacheGranularityController(Controller):
    """Retunes :class:`StrategyCache` snap steps from hit rate vs. error.

    The cache trades two observable failure modes against each other:
    cells too fine -> serving lookups miss and every request pays a full
    decision (low ``window_hit_rate``); cells too coarse -> strategies
    are reused across genuinely different conditions, visible as monitor
    relative error far below the cell width (fidelity left on the
    table).  The rule:

    * hit rate below ``hit_lo``  -> **coarsen** bandwidth/delay steps by
      ``factor`` (rekeying keeps the surviving entries);
    * hit rate above ``hit_hi`` *and* the monitor's relative error is
      under ``rel_err_budget`` -> **refine** by ``factor`` so cached
      strategies track conditions more faithfully;
    * in between: hold (the hysteresis dead band).

    Anti-oscillation: when a coarsening immediately follows this
    controller's own refinement, the abandoned finer level is latched as
    a *refine floor* — the controller never refines back past it.  With
    clamped multiplicative moves and a ratcheting floor the reachable
    step set is finite and shrinks, so under a stationary workload the
    controller provably settles.
    """

    name = "cache-granularity"

    def __init__(self, hit_lo: float = 0.4, hit_hi: float = 0.85,
                 factor: float = 1.5, rel_err_budget: float = 0.25,
                 min_bw_step: float = 5.0, max_bw_step: float = 200.0,
                 min_delay_step: float = 2.0, max_delay_step: float = 80.0,
                 min_window: int = 8):
        if not (0.0 <= hit_lo < hit_hi <= 1.0):
            raise ValueError(
                f"need 0 <= hit_lo < hit_hi <= 1, got {hit_lo}, {hit_hi}")
        if factor <= 1.0:
            raise ValueError(f"factor must exceed 1, got {factor}")
        if min_window < 1:
            raise ValueError(
                f"min_window must be positive, got {min_window}")
        self.hit_lo = hit_lo
        self.hit_hi = hit_hi
        self.factor = factor
        self.rel_err_budget = rel_err_budget
        self.min_bw_step = min_bw_step
        self.max_bw_step = max_bw_step
        self.min_delay_step = min_delay_step
        self.max_delay_step = max_delay_step
        self.min_window = min_window
        #: finest steps this controller may return to (ratchet up when a
        #: refinement collapses the hit rate; clamped to the coarse max
        #: so the floor can never *exceed* the reachable range)
        self.refine_floor_bw: Optional[float] = None
        self.refine_floor_delay: Optional[float] = None
        self._last_move: Optional[str] = None

    def update(self, snapshot, loop) -> Optional[str]:
        system = loop.system
        if system is None:
            return None
        if snapshot.window_hits + snapshot.window_misses < self.min_window:
            return None  # not enough evidence this window
        hit_rate = snapshot.window_hit_rate
        cache = system.cache
        bw, dl = cache.bw_step, cache.delay_step
        if hit_rate < self.hit_lo:
            if self._last_move == "refine":
                # That refinement is what tanked the hit rate: latch it
                # out of reach before undoing it.
                self.refine_floor_bw = max(
                    self.refine_floor_bw or 0.0,
                    min(bw * self.factor, self.max_bw_step))
                self.refine_floor_delay = max(
                    self.refine_floor_delay or 0.0,
                    min(dl * self.factor, self.max_delay_step))
            new_bw = min(bw * self.factor, self.max_bw_step)
            new_dl = min(dl * self.factor, self.max_delay_step)
            if (new_bw, new_dl) == (bw, dl):
                return None  # already at the coarse clamp
            dropped = cache.set_steps(bw_step=new_bw, delay_step=new_dl)
            self._last_move = "coarsen"
            return (f"coarsen bw_step {bw:g}->{new_bw:g} "
                    f"delay_step {dl:g}->{new_dl:g} "
                    f"(hit rate {hit_rate:.0%}, {dropped} rekey collisions)")
        rel_err = max(snapshot.monitor_bw_rel_err,
                      snapshot.monitor_delay_rel_err)
        if hit_rate > self.hit_hi and rel_err < self.rel_err_budget:
            floor = max(self.min_bw_step, self.refine_floor_bw or 0.0)
            new_bw = max(bw / self.factor, floor)
            dl_floor = max(self.min_delay_step,
                           self.refine_floor_delay or 0.0)
            new_dl = max(dl / self.factor, dl_floor)
            if (new_bw, new_dl) == (bw, dl):
                return None  # at the fine clamp or the latched floor
            dropped = cache.set_steps(bw_step=new_bw, delay_step=new_dl)
            self._last_move = "refine"
            return (f"refine bw_step {bw:g}->{new_bw:g} "
                    f"delay_step {dl:g}->{new_dl:g} "
                    f"(hit rate {hit_rate:.0%}, rel err {rel_err:.0%}, "
                    f"{dropped} dropped)")
        self._last_move = None
        return None


class BatchPolicyController(Controller):
    """Adapts ``BatchPolicy.max_batch`` from backlog and p95 headroom.

    Backlog deeper than ``depth_per_slot`` x the current cap means the
    pipeline is not draining: double the cap (larger batches amortize
    more decisions per simulated second).  A near-empty queue *and* p95
    end-to-end latency under ``headroom`` x the SLO means batching is
    buying nothing but queueing delay: halve the cap back down.  The
    dead band between the two conditions prevents flapping.
    """

    name = "batch-policy"

    def __init__(self, min_batch: int = 1, max_batch: int = 64,
                 depth_per_slot: float = 2.0, headroom: float = 0.5):
        if min_batch < 1 or max_batch < min_batch:
            raise ValueError(
                f"need 1 <= min_batch <= max_batch, got "
                f"{min_batch}, {max_batch}")
        if depth_per_slot <= 0:
            raise ValueError(
                f"depth_per_slot must be positive, got {depth_per_slot}")
        if not (0.0 < headroom < 1.0):
            raise ValueError(f"headroom must be in (0, 1), got {headroom}")
        self.min_batch = min_batch
        self.max_batch = max_batch
        self.depth_per_slot = depth_per_slot
        self.headroom = headroom

    def update(self, snapshot, loop) -> Optional[str]:
        server = loop.server
        policy = getattr(server, "policy", None)
        if policy is None:
            return None  # not steering a batching server
        cap = policy.max_batch
        if snapshot.queue_depth > self.depth_per_slot * cap:
            new = min(cap * 2, self.max_batch)
            if new == cap:
                return None
            server.policy = replace(policy, max_batch=new)
            return (f"grow max_batch {cap}->{new} "
                    f"(backlog {snapshot.queue_depth})")
        if (snapshot.queue_depth <= cap // 4
                and snapshot.slo_s is not None
                and snapshot.window_requests > 0
                and snapshot.window_p95_e2e_s
                < self.headroom * snapshot.slo_s):
            new = max(cap // 2, self.min_batch)
            if new == cap:
                return None
            server.policy = replace(policy, max_batch=new)
            return (f"shrink max_batch {cap}->{new} "
                    f"(p95 {snapshot.window_p95_e2e_s * 1e3:.0f}ms under "
                    f"{self.headroom:.0%} of SLO)")
        return None


class AdmissionController(Controller):
    """Sheds or degrades requests whose queue wait will blow the SLO.

    Keeps an EWMA of per-request *full* service time (decision + switch
    + inference) from the snapshot windows; the degraded service cost
    comes from the runtime's own min-strategy estimate.  Per request,
    the server asks :meth:`admit` with the request's arrival and
    predicted dispatch time (``wait = start - arrival``; with a shared
    ingress attached the wait already includes the upload time the
    tracker predicted — snapshot fair-share or fluid max-min — so the
    triage below prices uplink congestion without knowing which model
    produced it):

    * ``wait + full service <= margin x SLO`` -> ``"serve"``: the real
      answer still makes its deadline;
    * else ``wait + degraded service <= margin x SLO`` ->
      ``"degrade"``: only the cheap answer makes it — a min-submodel
      result now beats a full result too late;
    * else -> ``"shed"``: nothing can make this deadline, and serving
      it anyway pushes every later request further past its own.

    ``margin`` (< 1) reserves budget for what the prediction cannot
    see: batch-mate serialization and service-time variance.  Until the
    first window of completed requests arrives the estimate is unknown
    and everything is admitted — the controller only acts on evidence.
    """

    name = "admission"

    def __init__(self, margin: float = 0.85, ewma_alpha: float = 0.3):
        if margin <= 0:
            raise ValueError(f"margin must be positive, got {margin}")
        if not (0.0 < ewma_alpha <= 1.0):
            raise ValueError(
                f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.margin = margin
        self.ewma_alpha = ewma_alpha
        self.service_estimate_s = 0.0
        self.shed = 0
        self.degraded = 0

    def update(self, snapshot, loop) -> Optional[str]:
        if snapshot.window_mean_service_s > 0.0:
            a = self.ewma_alpha
            prev = self.service_estimate_s
            self.service_estimate_s = (
                snapshot.window_mean_service_s if prev == 0.0
                else a * snapshot.window_mean_service_s + (1 - a) * prev)
        return None  # acts per request via admit(), not per tick

    def admit(self, arrival: float, start: float, slo_s: float,
              loop, tenant: Optional[str] = None) -> str:
        # tenant-blind by design: every request is triaged on its own
        # deadline alone (TenantFairnessController adds the budgets)
        est = self.service_estimate_s
        if est <= 0.0:
            return "serve"  # no evidence yet
        budget = self.margin * slo_s - (start - arrival)
        if est <= budget:
            return "serve"
        est_min = (loop.system.min_strategy().expected_latency_s
                   if loop.system is not None else est)
        if est_min <= budget:
            self.degraded += 1
            return "degrade"
        self.shed += 1
        return "shed"


class TenantFairnessController(Controller):
    """Per-tenant SLO budgets at admission: weighted shed/degrade.

    The plain :class:`AdmissionController` triages each request on its
    own deadline, which is throughput-optimal but fairness-blind: when
    one tenant bursts, its requests fill the queue first and the other
    tenants' requests are the ones that arrive behind a hopeless
    backlog and get shed — the bursting tenant starves the rest.

    This controller keeps a decayed ledger of *admitted service
    seconds* per tenant.  Each tenant owns a weighted fair fraction of
    that ledger (``weights``; unnamed tenants weigh 1).  Under queue
    pressure (predicted wait beyond ``pressure`` x SLO), a request from
    a tenant consuming more than ``tolerance`` x its fair share is shed
    *even if it individually fits* — throttling the burster to roughly
    its share, so the well-behaved tenants' requests stop dying in the
    queue behind it.  Off-pressure, or for tenants within their share,
    triage is the standard serve/degrade/shed on the deadline.

    The ledger decays by ``decay`` per control tick, so a tenant's past
    burst stops counting against it within a few ticks of good
    behaviour — budgets are rate-shaped, not grudges.  Untagged
    requests (``tenant=None``) are triaged deadline-only; the
    controller acts on evidence exactly like the plain admission rule
    (everything is admitted until the first completed-request window).
    """

    name = "tenant-fairness"

    def __init__(self, weights: Optional[Dict[str, float]] = None,
                 margin: float = 0.85, ewma_alpha: float = 0.3,
                 pressure: float = 0.5, tolerance: float = 1.2,
                 decay: float = 0.3):
        if margin <= 0:
            raise ValueError(f"margin must be positive, got {margin}")
        if not (0.0 < ewma_alpha <= 1.0):
            raise ValueError(
                f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        if pressure < 0:
            raise ValueError(
                f"pressure must be non-negative, got {pressure}")
        if tolerance < 1.0:
            raise ValueError(
                f"tolerance must be at least 1, got {tolerance}")
        if not (0.0 < decay <= 1.0):
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        if weights is not None:
            for k, w in weights.items():
                if w <= 0:
                    raise ValueError(
                        f"tenant {k!r} weight must be positive, got {w}")
        self.weights = dict(weights) if weights else {}
        self.margin = margin
        self.ewma_alpha = ewma_alpha
        self.pressure = pressure
        self.tolerance = tolerance
        self.decay = decay
        self.service_estimate_s = 0.0
        #: decayed admitted-service seconds per tenant (the ledger)
        self.served_share: Dict[str, float] = {}
        self.shed = 0
        self.degraded = 0
        self.shed_by_tenant: Dict[str, int] = {}
        self.degraded_by_tenant: Dict[str, int] = {}
        #: sheds issued specifically to enforce the fair share
        self.fairness_sheds = 0

    def update(self, snapshot, loop) -> Optional[str]:
        if snapshot.window_mean_service_s > 0.0:
            a = self.ewma_alpha
            prev = self.service_estimate_s
            self.service_estimate_s = (
                snapshot.window_mean_service_s if prev == 0.0
                else a * snapshot.window_mean_service_s + (1 - a) * prev)
        for tenant in self.served_share:
            self.served_share[tenant] *= (1.0 - self.decay)
        return None  # acts per request via admit(), not per tick

    def _fair_fraction(self, tenant: str) -> float:
        """The ledger fraction ``tenant`` is entitled to."""
        known = set(self.served_share) | set(self.weights) | {tenant}
        total = sum(self.weights.get(k, 1.0) for k in known)
        return self.weights.get(tenant, 1.0) / total

    def over_share(self, tenant: str) -> bool:
        """Is ``tenant`` past ``tolerance`` x its weighted fair share?"""
        total = sum(self.served_share.values())
        if total <= 0.0:
            return False
        used = self.served_share.get(tenant, 0.0) / total
        return used > self.tolerance * self._fair_fraction(tenant)

    def _charge(self, tenant: Optional[str], service_s: float) -> None:
        if tenant is not None and service_s > 0.0:
            self.served_share[tenant] = (
                self.served_share.get(tenant, 0.0) + service_s)

    def _count(self, book: Dict[str, int], tenant: Optional[str]) -> None:
        if tenant is not None:
            book[tenant] = book.get(tenant, 0) + 1

    def admit(self, arrival: float, start: float, slo_s: float,
              loop, tenant: Optional[str] = None) -> str:
        est = self.service_estimate_s
        if est <= 0.0:
            return "serve"  # no evidence yet
        wait = start - arrival
        pressured = wait > self.pressure * slo_s
        if tenant is not None and pressured and self.over_share(tenant):
            # The queue is pressured and this tenant is eating more
            # than its share: shedding *its* request is what frees the
            # seat a within-share tenant's request would otherwise lose.
            self.shed += 1
            self.fairness_sheds += 1
            self._count(self.shed_by_tenant, tenant)
            return "shed"
        budget = self.margin * slo_s - wait
        if est <= budget:
            self._charge(tenant, est)
            return "serve"
        est_min = (loop.system.min_strategy().expected_latency_s
                   if loop.system is not None else est)
        if est_min <= budget:
            self.degraded += 1
            self._count(self.degraded_by_tenant, tenant)
            self._charge(tenant, est_min)
            return "degrade"
        self.shed += 1
        self._count(self.shed_by_tenant, tenant)
        return "shed"


class PrecomputeScheduler(Controller):
    """Warms the strategy cache toward where the condition is drifting.

    Tracks the monitor's smoothed estimate tick over tick, extrapolates
    the per-link drift ``horizon_s`` ahead, and asks the facade to
    precompute strategies for the extrapolated cells (plus the midpoint,
    so a fast drift cannot step over a cell).  Precompute uses
    ``peek()`` and charges no simulated time — it models background work
    on the gateway's idle cycles — so its only observable effect is
    future hits.  Holds still when the drift is smaller than
    ``min_drift`` of the current value per tick (noise, not movement).
    """

    name = "precompute"

    def __init__(self, horizon_s: float = 2.0, min_drift: float = 0.02,
                 max_cells: int = 2):
        if horizon_s <= 0:
            raise ValueError(f"horizon_s must be positive, got {horizon_s}")
        if max_cells < 1:
            raise ValueError(f"max_cells must be positive, got {max_cells}")
        self.horizon_s = horizon_s
        self.min_drift = min_drift
        self.max_cells = max_cells
        self.computed = 0
        self._prev: Optional[NetworkCondition] = None
        self._prev_t: Optional[float] = None

    def update(self, snapshot, loop) -> Optional[str]:
        system = loop.system
        cond = snapshot.condition
        if system is None or cond is None:
            return None
        prev, prev_t = self._prev, self._prev_t
        self._prev, self._prev_t = cond, snapshot.t
        if prev is None or snapshot.t <= prev_t:
            return None
        dt = snapshot.t - prev_t
        bw_rates = [(b - pb) / dt for b, pb in
                    zip(cond.bandwidths_mbps, prev.bandwidths_mbps)]
        dl_rates = [(d - pd) / dt for d, pd in
                    zip(cond.delays_ms, prev.delays_ms)]
        drift = max(
            [abs(r) * dt / max(b, 1e-9)
             for r, b in zip(bw_rates, cond.bandwidths_mbps)]
            + [abs(r) * dt / max(d, 1e-9)
               for r, d in zip(dl_rates, cond.delays_ms)])
        if drift < self.min_drift:
            return None
        targets: List[NetworkCondition] = []
        for k in range(1, self.max_cells + 1):
            ahead = self.horizon_s * k / self.max_cells
            targets.append(NetworkCondition(
                tuple(max(b + r * ahead, 1e-3)
                      for b, r in zip(cond.bandwidths_mbps, bw_rates)),
                tuple(max(d + r * ahead, 1e-3)
                      for d, r in zip(cond.delays_ms, dl_rates))))
        computed = system.precompute(targets)
        if computed == 0:
            return None  # every extrapolated cell was already warm
        self.computed += computed
        return (f"precomputed {computed} strategies "
                f"{self.horizon_s:g}s ahead (drift {drift:.1%}/tick)")
