"""The control-loop cadence: periodic sim-clock telemetry snapshots.

:class:`ControlLoop` is the spine of the control plane.  It is handed to
the :class:`~repro.core.murmuration.Murmuration` facade and/or a server
via their optional ``control=`` parameters, observes the running system
on a fixed *simulated*-clock cadence, and lets a stack of composable
:class:`~repro.control.controllers.Controller` objects act on each
snapshot.

Design contract (mirrors ``telemetry=`` / ``recorder=``):

* ``control=None`` (the default everywhere) keeps every serving code
  path and every float **bit-identical** to a control-free build — all
  integration points are guarded on ``None``;
* the loop observes only what a deployed controller could observe: the
  monitor's *smoothed estimate* (never the injected ground truth), the
  cache's own counters, and the server's finished-request window.  The
  monitor's relative-error signal comes from the telemetry histograms
  when a hub is attached, else from the scatter of recent measurements
  around the smoothed estimate — both are measurement-side quantities;
* ticks fire between requests on the simulated clock (``maybe_tick`` is
  idempotent for a given time: the facade and the server may both call
  it), so controller work never lands on a request's critical path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..netsim.topology import NetworkCondition
from ..telemetry import Telemetry

__all__ = ["ControlAction", "ControlSnapshot", "ControlLoop"]


@dataclass(frozen=True)
class ControlAction:
    """One adjustment a controller made, for the audit log."""

    t: float
    controller: str
    description: str


@dataclass(frozen=True)
class ControlSnapshot:
    """What the control plane can see at one tick (simulated seconds).

    Window quantities cover the interval since the previous tick; the
    cumulative cache counters ride along so controllers can also form
    their own longer horizons.
    """

    t: float
    #: cumulative ``StrategyCache.stats()`` at snapshot time
    cache: Dict[str, float]
    #: cache hits/misses since the previous tick (serving lookups only)
    window_hits: int
    window_misses: int
    #: requests finished since the previous tick and how many met the SLO
    window_requests: int
    window_satisfied: int
    #: mean decision+switch+inference seconds over the window's
    #: completed requests (0.0 when the window is empty)
    window_mean_service_s: float
    #: p95 end-to-end seconds over the window (0.0 when empty)
    window_p95_e2e_s: float
    #: requests queued (arrived, not yet dispatched) at snapshot time
    queue_depth: int
    #: the latency SLO in seconds, or None (accuracy SLO / no SLO)
    slo_s: Optional[float]
    #: the monitor's current smoothed estimate — the observed world
    condition: Optional[NetworkCondition]
    #: measurement-side relative error of the bandwidth/delay estimates
    monitor_bw_rel_err: float
    monitor_delay_rel_err: float

    @property
    def window_hit_rate(self) -> Optional[float]:
        """Cache hit rate over the window, or None with no lookups."""
        total = self.window_hits + self.window_misses
        return self.window_hits / total if total else None


class ControlLoop:
    """Runs a stack of controllers on a fixed simulated-clock cadence.

    Parameters
    ----------
    controllers : the controllers to consult, in order, at every tick.
    period_s : tick cadence in simulated seconds (must be positive).
    telemetry : optional hub; the loop scopes itself under ``control_*``
        and counts ticks, per-controller actions, and admission verdicts.
    max_catchup : ticks one ``maybe_tick`` call may fire when the clock
        jumped several periods past the next due tick (an idle gap, a
        long batch).  The default 1 pins the historical single-fire
        semantics — missed periods are *skipped*, not replayed — which
        recorded runs depend on; raise it to catch up (one tick per
        elapsed period, capped here so a pathological gap cannot stall
        serving in a tick storm).  Under the event core this knob is
        moot: :func:`~repro.sim.sources.schedule_control_ticks` fires
        every period at its true instant.
    """

    def __init__(self, controllers: Optional[Sequence] = None,
                 period_s: float = 0.5,
                 telemetry: Optional[Telemetry] = None,
                 max_catchup: int = 1):
        if period_s <= 0:
            raise ValueError(f"period_s must be positive, got {period_s}")
        if max_catchup < 1:
            raise ValueError(
                f"max_catchup must be at least 1, got {max_catchup}")
        self.controllers = list(controllers) if controllers is not None else []
        self.period_s = period_s
        self.max_catchup = int(max_catchup)
        self.telemetry = telemetry
        self.system = None
        self.server = None
        self.ticks = 0
        self.actions: List[ControlAction] = []
        self._next_due = period_s
        self._stats = None
        self._seen_requests = 0
        self._last_hits = 0
        self._last_misses = 0
        # the admission controller, if one is stacked (duck-typed on
        # the per-request ``admit`` hook)
        self._admission = next(
            (c for c in self.controllers if hasattr(c, "admit")), None)
        if telemetry is not None:
            reg = telemetry.registry.child("control")
            self._reg = reg
            self._m_ticks = reg.counter("ticks_total",
                                        help="control-loop ticks fired")
            self._m_actions: dict = {}
            self._m_verdicts: dict = {}

    # -- wiring -------------------------------------------------------------
    def attach(self, system=None, server=None) -> "ControlLoop":
        """Bind the facade and/or server this loop steers (idempotent)."""
        if system is not None:
            self.system = system
        if server is not None:
            self.server = server
        return self

    # -- cadence ------------------------------------------------------------
    def maybe_tick(self, now: float, stats=None, queue_depth: int = 0) -> bool:
        """Fire one tick if the cadence is due; returns whether it fired.

        ``stats`` (a ``ServingStats``-shaped object) and ``queue_depth``
        give the server-side context when a server drives the loop; a
        facade-only deployment passes neither and controllers see an
        empty request window.

        When ``now`` jumped several periods past the next due tick, up
        to :attr:`max_catchup` ticks fire back to back (each observing
        the world at ``now`` — the past is gone, only the cadence is
        honoured); any periods beyond the cap are skipped and the
        cadence realigns.  The default cap of 1 is exactly the
        historical single-fire-per-call behaviour.
        """
        if stats is not None:
            self._stats = stats
        if now < self._next_due:
            return False
        fired = 0
        while now >= self._next_due and fired < self.max_catchup:
            snap = self._snapshot(now, queue_depth)
            for controller in self.controllers:
                description = controller.update(snap, self)
                if description:
                    self.actions.append(
                        ControlAction(now, controller.name, description))
                    if self.telemetry is not None:
                        counter = self._m_actions.get(controller.name)
                        if counter is None:
                            counter = self._reg.counter(
                                "actions_total",
                                help="controller adjustments applied",
                                controller=controller.name)
                            self._m_actions[controller.name] = counter
                        counter.inc()
            self.ticks += 1
            fired += 1
            if self.telemetry is not None:
                self._m_ticks.inc()
            self._next_due += self.period_s
        while self._next_due <= now:
            self._next_due += self.period_s
        return True

    # -- admission ----------------------------------------------------------
    def admit(self, arrival: float, start: float, slo,
              tenant: Optional[str] = None) -> str:
        """Per-request admission verdict: "serve" | "degrade" | "shed".

        Delegates to the stacked admission controller (if any).  Only
        latency SLOs are actionable — predicted queue wait cannot blow
        an accuracy SLO — so anything else is served unconditionally.
        ``tenant`` reaches tenant-aware controllers (per-tenant budget
        accounting) and labels the verdict counters.
        """
        if (self._admission is None or slo is None
                or slo.kind != "latency"):
            return "serve"
        if tenant is None:
            # untagged serving keeps the original duck-typed hook
            # signature: admit(arrival, start, slo_s, loop)
            verdict = self._admission.admit(arrival, start, slo.value, self)
        else:
            verdict = self._admission.admit(arrival, start, slo.value, self,
                                            tenant=tenant)
        if verdict != "serve" and self.telemetry is not None:
            key = (verdict, tenant)
            counter = self._m_verdicts.get(key)
            if counter is None:
                labels = {"verdict": verdict}
                if tenant is not None:
                    labels["tenant"] = tenant
                counter = self._reg.counter(
                    "admission_total",
                    help="requests shed or degraded at admission",
                    **labels)
                self._m_verdicts[key] = counter
            counter.inc()
        return verdict

    # -- observation --------------------------------------------------------
    def _snapshot(self, now: float, queue_depth: int) -> ControlSnapshot:
        system = self.system
        cache_stats: Dict[str, float] = (
            system.cache.stats() if system is not None else {})
        hits = int(cache_stats.get("hits", 0))
        misses = int(cache_stats.get("misses", 0))
        window_hits = hits - self._last_hits
        window_misses = misses - self._last_misses
        self._last_hits, self._last_misses = hits, misses

        window = []
        if self._stats is not None:
            records = self._stats.records
            window = records[self._seen_requests:]
            self._seen_requests = len(records)
        completed = [r for r in window
                     if r.outcome not in ("failed", "shed")]
        mean_service = (float(np.mean(
            [r.decision_s + r.switch_s + r.inference_s for r in completed]))
            if completed else 0.0)
        p95 = (float(np.percentile([r.end_to_end_s for r in window], 95))
               if window else 0.0)

        slo = system.slo if system is not None else None
        slo_s = slo.value if slo is not None and slo.kind == "latency" else None
        condition = (system.monitor.estimate()
                     if system is not None else None)
        bw_err, delay_err = self._monitor_rel_err()
        return ControlSnapshot(
            t=now, cache=cache_stats,
            window_hits=window_hits, window_misses=window_misses,
            window_requests=len(window),
            window_satisfied=sum(r.satisfied for r in window),
            window_mean_service_s=mean_service,
            window_p95_e2e_s=p95,
            queue_depth=queue_depth, slo_s=slo_s, condition=condition,
            monitor_bw_rel_err=bw_err, monitor_delay_rel_err=delay_err)

    def _monitor_rel_err(self) -> Tuple[float, float]:
        """Measurement-side estimate-error signal, best source first.

        With a telemetry hub the monitor's own
        ``monitor_*_estimate_rel_error`` histograms are authoritative;
        without one, fall back to the scatter of recent raw measurements
        around the smoothed estimate — noisier, but observable without
        any instrumentation.
        """
        if self.telemetry is not None:
            bw_h = self.telemetry.registry.get("monitor_bw_estimate_rel_error")
            d_h = self.telemetry.registry.get(
                "monitor_delay_estimate_rel_error")
            if bw_h is not None and getattr(bw_h, "count", 0):
                return (bw_h.mean,
                        d_h.mean if d_h is not None and d_h.count else 0.0)
        system = self.system
        if system is None:
            return 0.0, 0.0
        monitor = system.monitor
        recent = monitor.history[-16:]
        bw_errs: List[float] = []
        delay_errs: List[float] = []
        for m in recent:
            sm_bw = monitor._smoothed_bw.get(m.device)
            sm_delay = monitor._smoothed_delay.get(m.device)
            if sm_bw:
                bw_errs.append(abs(m.bandwidth_mbps - sm_bw) / sm_bw)
            if sm_delay:
                delay_errs.append(abs(m.delay_ms - sm_delay) / sm_delay)
        return (float(np.mean(bw_errs)) if bw_errs else 0.0,
                float(np.mean(delay_errs)) if delay_errs else 0.0)

    # -- reporting ----------------------------------------------------------
    def action_log(self) -> List[ControlAction]:
        return list(self.actions)

    def summary(self) -> str:
        per = {}
        for a in self.actions:
            per[a.controller] = per.get(a.controller, 0) + 1
        detail = " ".join(f"{k}={v}" for k, v in sorted(per.items()))
        return (f"{self.ticks} ticks, {len(self.actions)} actions"
                + (f" ({detail})" if detail else ""))
