"""repro.control: the adaptive control plane (closes the telemetry loop).

A :class:`ControlLoop` observes the serving stack on a periodic
simulated-clock cadence and lets composable controllers retune it
online: cache granularity, batch policy, admission, and cache
precompute.  Passing ``control=None`` (the default) anywhere keeps
serving byte-identical to a control-free build.
"""

from .controllers import (AdmissionController, BatchPolicyController,
                          CacheGranularityController, Controller,
                          PrecomputeScheduler, TenantFairnessController)
from .loop import ControlAction, ControlLoop, ControlSnapshot

__all__ = [
    "AdmissionController",
    "BatchPolicyController",
    "CacheGranularityController",
    "Controller",
    "ControlAction",
    "ControlLoop",
    "ControlSnapshot",
    "PrecomputeScheduler",
    "TenantFairnessController",
]
