"""Strategies: the unit the decision module produces and caches.

A strategy pairs a submodel choice with an execution plan, annotated
with the costs the decision-maker expected when it chose them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..nas.arch import ArchConfig
from ..partition.plan import ExecutionPlan

__all__ = ["Strategy"]


@dataclass(frozen=True)
class Strategy:
    """(submodel, plan) with expected costs."""

    arch: ArchConfig
    plan: ExecutionPlan
    expected_latency_s: float
    expected_accuracy: float

    def summary(self) -> str:
        grids = {}
        for bp in self.plan:
            grids[str(bp.grid)] = grids.get(str(bp.grid), 0) + 1
        return (f"res={self.arch.resolution} depths={self.arch.depths} "
                f"grids={grids} devices={self.plan.devices_used()} "
                f"~{self.expected_latency_s * 1e3:.1f}ms "
                f"~{self.expected_accuracy:.1f}%")
