"""The SLO API (paper Sec. 5).

Users express a single scalar objective: either a latency bound in
seconds or an accuracy floor in percent.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SLO"]


@dataclass(frozen=True)
class SLO:
    """A service-level objective.

    ``kind`` is "latency" (value = max end-to-end seconds) or "accuracy"
    (value = min top-1 percent).
    """

    kind: str
    value: float

    def __post_init__(self):
        if self.kind not in ("latency", "accuracy"):
            raise ValueError(f"SLO kind must be latency|accuracy, got {self.kind!r}")
        if self.kind == "latency" and self.value <= 0:
            raise ValueError("latency SLO must be positive seconds")
        if self.kind == "accuracy" and not (0 < self.value <= 100):
            raise ValueError("accuracy SLO must be in (0, 100] percent")

    @staticmethod
    def latency(seconds: float) -> "SLO":
        return SLO("latency", seconds)

    @staticmethod
    def latency_ms(ms: float) -> "SLO":
        return SLO("latency", ms / 1e3)

    @staticmethod
    def accuracy(percent: float) -> "SLO":
        return SLO("accuracy", percent)

    def satisfied_by(self, latency_s: float, accuracy: float) -> bool:
        if self.kind == "latency":
            return latency_s <= self.value
        return accuracy >= self.value
