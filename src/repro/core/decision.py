"""Model Selection and Partition Decision module (paper Sec. 5).

Two interchangeable engines:

* :class:`RLDecisionEngine` — wraps a trained LSTM policy; one greedy
  rollout per decision (milliseconds — the Fig. 18 fast path);
* :class:`SearchDecisionEngine` — exhaustive check of seed architectures
  x canonical plan templates; slower but training-free (useful as a
  bootstrap and as an upper-bound reference in tests).

Both return a :class:`~repro.core.strategy.Strategy` or ``None`` when no
checked strategy satisfies the SLO.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..devices.profiles import DeviceProfile
from ..nas.accuracy_model import plan_accuracy_penalty
from ..nas.arch import ArchConfig, max_arch, min_arch, random_arch
from ..nas.evolution import candidate_plans
from ..nas.graph_builder import build_graph
from ..nas.search_space import SearchSpace
from ..netsim.topology import Cluster, NetworkCondition
from ..partition.simulate import simulate_latency
from ..rl.env import MurmurationEnv, Task
from ..rl.policy import LSTMPolicy
from .slo import SLO
from .strategy import Strategy

__all__ = ["DecisionRecord", "RLDecisionEngine", "SearchDecisionEngine"]


@dataclass(frozen=True)
class DecisionRecord:
    strategy: Optional[Strategy]
    decision_time_s: float
    engine: str


class RLDecisionEngine:
    """Greedy policy rollout -> strategy.

    When the policy's greedy choice misses the SLO, the engine falls
    back to the bootstrap seed strategies (min/max submodel per device)
    — the same safe trajectories training starts from — so a deployable
    strategy is returned whenever one exists in that safe set.  Disable
    with ``fallback=False`` to measure the raw policy (as the training
    evaluations do).
    """

    def __init__(self, env: MurmurationEnv, policy: LSTMPolicy,
                 fallback: bool = True):
        self.env = env
        self.policy = policy
        self.fallback = fallback

    def decide(self, slo: SLO, condition: NetworkCondition) -> DecisionRecord:
        t0 = time.perf_counter()
        if slo.kind != self.env.cfg.slo_kind:
            raise ValueError(
                f"engine trained for {self.env.cfg.slo_kind!r} SLOs, "
                f"got {slo.kind!r}")
        task = Task(slo.value, condition)
        context = self.env.encode_task(task)
        actions = self.policy.greedy_actions(context, self.env.schedule)
        outcome = self.env.evaluate_actions(actions, task)
        if not outcome.satisfied and self.fallback:
            outcome = self._best_seed(task, outcome)
        elapsed = time.perf_counter() - t0
        if not outcome.satisfied:
            return DecisionRecord(None, elapsed, "rl")
        strategy = Strategy(outcome.arch, outcome.plan, outcome.latency_s,
                            outcome.accuracy)
        return DecisionRecord(strategy, elapsed, "rl")

    def _best_seed(self, task: Task, fallback_outcome):
        from ..rl.common import bootstrap_actions

        best = fallback_outcome
        for actions in bootstrap_actions(self.env):
            out = self.env.evaluate_actions(actions, task)
            if out.satisfied and (not best.satisfied
                                  or out.reward > best.reward):
                best = out
        return best


class SearchDecisionEngine:
    """Brute-force over seed archs x plan templates."""

    def __init__(self, space: SearchSpace, devices: Sequence[DeviceProfile],
                 n_random_archs: int = 12, seed: int = 0):
        self.space = space
        self.devices = list(devices)
        rng = np.random.default_rng(seed)
        self.archs: List[ArchConfig] = [min_arch(space), max_arch(space)]
        self.archs += [random_arch(space, rng) for _ in range(n_random_archs)]

    def decide(self, slo: SLO, condition: NetworkCondition) -> DecisionRecord:
        from ..nas.accuracy_model import arch_accuracy

        t0 = time.perf_counter()
        cluster = Cluster(self.devices, condition)
        best: Optional[Strategy] = None
        for arch in self.archs:
            graph = build_graph(arch, self.space)
            base_acc = arch_accuracy(arch, self.space)
            for plan in candidate_plans(graph, cluster):
                rep = simulate_latency(graph, plan, cluster)
                acc = base_acc - plan_accuracy_penalty(plan)
                if not slo.satisfied_by(rep.total_s, acc):
                    continue
                if best is None:
                    better = True
                elif slo.kind == "latency":
                    better = acc > best.expected_accuracy
                else:
                    better = rep.total_s < best.expected_latency_s
                if better:
                    best = Strategy(arch, plan, rep.total_s, acc)
        return DecisionRecord(best, time.perf_counter() - t0, "search")
