"""The Murmuration system facade (paper Fig. 10).

Wires together every Stage-3 module: network monitoring, the monitoring
predictor, the model-selection/partition decision engine, the strategy
cache, model reconfiguration, and the distributed executor.  One
:class:`Murmuration` instance is "the local device's runtime"; remote
devices are simulated through the cluster model.

Two operating modes:

* **plan-only** (no executable supernet): :meth:`infer` prices the
  chosen strategy with the latency simulator — this is the mode the
  paper-scale benchmarks use;
* **executable** (a :class:`~repro.nas.supernet.Supernet` attached):
  :meth:`infer` really runs the partitioned submodel on the input batch
  through the distributed executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..devices.profiles import DeviceProfile
from ..nas.graph_builder import build_graph
from ..nas.search_space import SearchSpace
from ..nas.supernet import Supernet
from ..netsim.monitor import NetworkMonitor
from ..netsim.topology import Cluster, NetworkCondition
from ..partition.simulate import simulate_latency
from ..runtime.executor import DistributedExecutor, ExecutionResult
from ..runtime.predictor import MonitoringPredictor
from ..runtime.reconfig import ModelReconfig
from ..telemetry import Telemetry
from .decision import DecisionRecord, RLDecisionEngine, SearchDecisionEngine
from .slo import SLO
from .strategy import Strategy
from .strategy_cache import StrategyCache

__all__ = ["InferenceRecord", "Murmuration"]


@dataclass
class InferenceRecord:
    """Outcome of one served request."""

    latency_s: float
    accuracy: float
    satisfied: bool
    strategy: Strategy
    cache_hit: bool
    decision_time_s: float
    switch_time_s: float
    logits: Optional[np.ndarray] = None

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3


class Murmuration:
    """SLO-aware distributed inference runtime."""

    def __init__(self, space: SearchSpace, devices: Sequence[DeviceProfile],
                 condition: NetworkCondition, decision_engine,
                 slo: Optional[SLO] = None,
                 supernet: Optional[Supernet] = None,
                 cache: Optional[StrategyCache] = None,
                 use_predictor: bool = True,
                 monitor_noise: float = 0.03, seed: int = 0,
                 telemetry: Optional[Telemetry] = None):
        self.space = space
        self.cluster = Cluster(list(devices), condition)
        self.engine = decision_engine
        self.slo = slo
        self.cache = cache if cache is not None else StrategyCache()
        self.telemetry = telemetry
        self.monitor = NetworkMonitor(self.cluster, noise=monitor_noise,
                                      seed=seed, telemetry=telemetry)
        self.predictor = (MonitoringPredictor(self.cluster.num_devices - 1)
                          if use_predictor else None)
        self.supernet = supernet
        self.reconfig = (ModelReconfig(supernet, self.cluster.local)
                         if supernet is not None else None)
        self.executor = (DistributedExecutor(supernet, self.cluster,
                                             telemetry=telemetry)
                         if supernet is not None else None)
        self.records: List[InferenceRecord] = []
        self._now = 0.0
        if telemetry is not None:
            reg = telemetry.registry.child("core")
            self._reg = reg
            self._m_decision_s = reg.histogram(
                "decision_s", help="decision-engine latency")
            self._m_switch_s = reg.histogram(
                "switch_s", help="model reconfiguration time")
            self._m_inference_s = reg.histogram(
                "inference_s", help="per-request inference latency")
            self._m_cache_hits = reg.gauge(
                "cache_hits", help="strategy-cache hits")
            self._m_cache_misses = reg.gauge(
                "cache_misses", help="strategy-cache misses")
            self._m_cache_entries = reg.gauge(
                "cache_entries", help="strategy-cache occupancy")
            self._m_cache_hit_rate = reg.gauge(
                "cache_hit_rate", help="strategy-cache hit rate")
            self._m_cache_evictions = reg.gauge(
                "cache_evictions", help="strategy-cache LRU evictions")
            # decisions_total counters resolved once per engine string
            self._m_decisions: dict = {}
            # snapshot gauges refresh at export time, not per request
            reg.add_collect_hook(self._sync_cache_metrics)

    # -- control plane -----------------------------------------------------
    def set_slo(self, slo: SLO) -> None:
        """The SLO API: a single scalar latency or accuracy objective."""
        self.slo = slo

    def update_condition(self, condition: NetworkCondition) -> None:
        """Apply a change in true network conditions (trace replay)."""
        self.cluster.set_condition(condition)

    def observed_condition(self, now: Optional[float] = None) -> NetworkCondition:
        """Monitor probe round -> smoothed estimate (+ optional forecast)."""
        now = self._now if now is None else now
        measurements = self.monitor.probe_all(now)
        estimate = self.monitor.estimate()
        if self.predictor is not None:
            self.predictor.observe_all(measurements)
            predicted = self.predictor.predict(now + 1.0, fallback=estimate)
            if predicted is not None:
                return predicted
        return estimate

    def decide(self, condition: Optional[NetworkCondition] = None,
               ) -> DecisionRecord:
        """Run (or cache-hit) the decision for the current SLO."""
        if self.slo is None:
            raise RuntimeError("no SLO set; call set_slo() first")
        condition = condition or self.observed_condition()
        cached = self.cache.get(self.slo, condition)
        if cached is not None:
            record = DecisionRecord(cached, 0.0, "cache")
        else:
            record = self.engine.decide(self.slo, condition)
            if record.strategy is not None:
                self.cache.put(self.slo, condition, record.strategy)
        if self.telemetry is not None:
            counter = self._m_decisions.get(record.engine)
            if counter is None:
                counter = self._reg.counter("decisions_total",
                                            help="decisions by engine",
                                            engine=record.engine)
                self._m_decisions[record.engine] = counter
            counter.inc()
            self._m_decision_s.observe(record.decision_time_s)
        return record

    def _sync_cache_metrics(self) -> None:
        cache = self.cache
        self._m_cache_hits.value = float(cache.hits)
        self._m_cache_misses.value = float(cache.misses)
        self._m_cache_entries.value = float(len(cache))
        self._m_cache_hit_rate.value = cache.hit_rate
        self._m_cache_evictions.value = float(cache.evictions)

    def precompute(self, conditions: Sequence[NetworkCondition]) -> int:
        """Warm the cache for forecast conditions (Sec. 5.1 fast path).

        Returns the number of strategies computed.
        """
        if self.slo is None:
            raise RuntimeError("no SLO set; call set_slo() first")
        computed = 0
        for cond in conditions:
            if self.cache.get(self.slo, cond) is None:
                rec = self.engine.decide(self.slo, cond)
                if rec.strategy is not None:
                    self.cache.put(self.slo, cond, rec.strategy)
                    computed += 1
        return computed

    # -- data plane ------------------------------------------------------------
    def infer(self, x: Optional[np.ndarray] = None,
              now: Optional[float] = None) -> InferenceRecord:
        """Serve one inference request under the current SLO."""
        if now is not None:
            self._now = now
        tracer = Telemetry.tracer_of(self.telemetry)
        with tracer.span("decision", sim_time=self._now) as sp:
            decision = self.decide()
            sp.add_sim(decision.decision_time_s)
            sp.annotate(engine=decision.engine)
        if decision.strategy is None:
            raise RuntimeError(
                "no strategy satisfies the SLO under current conditions")
        strategy = decision.strategy
        switch_time = 0.0
        switched = False
        logits = None
        sim_t = self._now + decision.decision_time_s
        if self.reconfig is not None and (
                self.reconfig.active_arch is None
                or self.reconfig.active_arch != strategy.arch):
            with tracer.span("switch", sim_time=sim_t) as sp:
                switch_time = self.reconfig.switch(
                    strategy.arch).modeled_time_s
                switched = True
                sp.add_sim(switch_time)
        sim_t += switch_time

        with tracer.span("execute", sim_time=sim_t) as sp:
            if self.executor is not None and x is not None:
                result: ExecutionResult = self.executor.execute(
                    x, strategy.arch, strategy.plan, sim_time=sim_t)
                latency = result.report.total_s
                logits = result.logits
            else:
                graph = build_graph(strategy.arch, self.space)
                latency = simulate_latency(graph, strategy.plan,
                                           self.cluster).total_s
            sp.add_sim(latency)
        accuracy = strategy.expected_accuracy
        satisfied = (self.slo.satisfied_by(latency, accuracy)
                     if self.slo else True)
        record = InferenceRecord(
            latency_s=latency, accuracy=accuracy, satisfied=satisfied,
            strategy=strategy, cache_hit=(decision.engine == "cache"),
            decision_time_s=decision.decision_time_s,
            switch_time_s=switch_time, logits=logits)
        self.records.append(record)
        self._now += latency
        if self.telemetry is not None:
            self._m_inference_s.observe(latency)
            if switched:
                self._m_switch_s.observe(switch_time)
        return record

    # -- stats --------------------------------------------------------------------
    def compliance_rate(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.satisfied for r in self.records) / len(self.records)
