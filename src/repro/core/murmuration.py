"""The Murmuration system facade (paper Fig. 10).

Wires together every Stage-3 module: network monitoring, the monitoring
predictor, the model-selection/partition decision engine, the strategy
cache, model reconfiguration, and the distributed executor.  One
:class:`Murmuration` instance is "the local device's runtime"; remote
devices are simulated through the cluster model.

Two operating modes:

* **plan-only** (no executable supernet): :meth:`infer` prices the
  chosen strategy with the latency simulator — this is the mode the
  paper-scale benchmarks use;
* **executable** (a :class:`~repro.nas.supernet.Supernet` attached):
  :meth:`infer` really runs the partitioned submodel on the input batch
  through the distributed executor.

Fault handling (opt-in via ``faults=``): the injector perturbs the true
world each request; the *data plane* discovers crashed peers through
timed-out sends (never by reading the schedule), pays the retry
schedule, fails over to surviving devices, and degrades to the smallest
feasible submodel on the gateway when nothing else survives.  Delivery
outcomes feed a :class:`~repro.faults.health.DeviceHealth` circuit
breaker; the *decision layer* consults only that breaker — cached
strategies through open circuits are invalidated, fresh decisions are
rerouted proactively, and a half-open probe re-admits recovered
devices.  ``faults=None`` (the default) leaves every code path and
every latency bit-identical to a fault-free build.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..devices.profiles import DeviceProfile
from ..faults.health import DeviceHealth
from ..faults.injector import FaultInjector
from ..faults.resilience import (ExecutionFailedError, NoRouteError,
                                 ResilienceConfig)
from ..nas.accuracy_model import arch_accuracy, plan_accuracy_penalty
from ..nas.arch import min_arch
from ..nas.graph_builder import build_graph
from ..nas.search_space import SearchSpace
from ..nas.supernet import Supernet
from ..netsim.monitor import NetworkMonitor
from ..netsim.topology import Cluster, NetworkCondition
from ..partition.plan import single_device_plan
from ..partition.simulate import simulate_latency
from ..runtime.clock import SimulatedClock
from ..runtime.executor import DistributedExecutor, ExecutionResult
from ..runtime.predictor import MonitoringPredictor
from ..runtime.reconfig import ModelReconfig
from ..telemetry import Telemetry
from .decision import DecisionRecord, RLDecisionEngine, SearchDecisionEngine
from .slo import SLO
from .strategy import Strategy
from .strategy_cache import StrategyCache

__all__ = ["BatchInferenceResult", "InferenceRecord", "Murmuration"]


@dataclass
class _PlanState:
    """Failover state carried across one batch's items (plan-only mode).

    When item *k* discovers a crash and re-plans, items *k+1..n* of the
    same batch execute the replanned (arch, plan) directly — the batch
    fails over as a unit instead of re-paying discovery per item —
    while each item still reports its own outcome/retries.
    """

    arch: object
    plan: object
    degraded: bool = False
    replanned: bool = False


@dataclass
class InferenceRecord:
    """Outcome of one served request."""

    latency_s: float
    accuracy: float
    satisfied: bool
    strategy: Strategy
    cache_hit: bool
    decision_time_s: float
    switch_time_s: float
    logits: Optional[np.ndarray] = None
    #: "ok" | "retried" | "degraded" | "failed"
    outcome: str = "ok"
    retries: int = 0
    failovers: int = 0

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    @property
    def completed(self) -> bool:
        return self.outcome != "failed"


@dataclass
class BatchInferenceResult:
    """Outcome of one served batch (one amortized decision + switch).

    Item records carry their *amortized* share of the decision/switch
    cost (total / batch size), so summing per-item accounting over a
    serving run conserves the real simulated time spent.  The absolute
    batch-level times live here.
    """

    items: List[InferenceRecord]
    #: full (un-amortized) decision-engine latency for the batch
    decision_time_s: float
    #: full (un-amortized) model switch time for the batch
    switch_time_s: float
    #: simulated time the decision started (the ``now`` of the call)
    decision_start_s: float
    #: simulated time the first item began executing
    exec_start_s: float
    #: absolute completion time of each item, in batch order
    item_finish_s: List[float]
    #: completion time of the last item (== the final ``_now``)
    finish_s: float
    cache_hit: bool

    @property
    def size(self) -> int:
        return len(self.items)


class Murmuration:
    """SLO-aware distributed inference runtime."""

    def __init__(self, space: SearchSpace, devices: Sequence[DeviceProfile],
                 condition: Optional[NetworkCondition], decision_engine,
                 slo: Optional[SLO] = None,
                 supernet: Optional[Supernet] = None,
                 cache: Optional[StrategyCache] = None,
                 use_predictor: bool = True,
                 monitor_noise: float = 0.03, seed: int = 0,
                 telemetry: Optional[Telemetry] = None,
                 faults: Optional[FaultInjector] = None,
                 resilience: Optional[ResilienceConfig] = None,
                 recorder=None, control=None, cluster=None, clock=None):
        self.space = space
        if cluster is not None:
            # Caller-built topology (e.g. a MeshCluster): the runtime
            # serves on it as-is.  ``condition`` defaults to the
            # cluster's own end-to-end view, which for a mesh is the
            # routed gateway->remote star equivalent.
            self.cluster = cluster
            if condition is None:
                condition = cluster.condition
        else:
            self.cluster = Cluster(list(devices), condition)
        self.engine = decision_engine
        self.slo = slo
        self.cache = cache if cache is not None else StrategyCache()
        self.telemetry = telemetry
        #: optional RunRecorder capturing decisions for record/replay
        self.recorder = recorder
        self.monitor = NetworkMonitor(self.cluster, noise=monitor_noise,
                                      seed=seed, telemetry=telemetry)
        self.predictor = (MonitoringPredictor(self.cluster.num_devices - 1)
                          if use_predictor else None)
        self.supernet = supernet
        self.faults = faults
        self.resilience = (resilience if resilience is not None
                           else (ResilienceConfig() if faults is not None
                                 else None))
        self.health = (DeviceHealth(
            self.cluster.num_devices,
            failure_threshold=self.resilience.failure_threshold,
            cooldown_s=self.resilience.cooldown_s,
            telemetry=telemetry) if faults is not None else None)
        self._base_condition = condition
        self.reconfig = (ModelReconfig(supernet, self.cluster.local)
                         if supernet is not None else None)
        self.executor = (DistributedExecutor(supernet, self.cluster,
                                             telemetry=telemetry,
                                             faults=faults,
                                             health=self.health,
                                             resilience=self.resilience)
                         if supernet is not None else None)
        self.records: List[InferenceRecord] = []
        #: requests served over a backup mesh path (plan-only mode;
        #: executable mode counts per delivery in the transport)
        self.path_reroutes = 0
        #: the facade's simulated clock — pass an explicit
        #: :class:`SimulatedClock` to share time with an
        #: :class:`~repro.sim.events.EventLoop` (one clock, one world)
        self.clock = clock if clock is not None else SimulatedClock()
        self._min_strategy: Optional[Strategy] = None
        #: optional ControlLoop retuning the runtime from telemetry
        self.control = control
        if control is not None:
            control.attach(system=self)
        if telemetry is not None:
            reg = telemetry.registry.child("core")
            self._reg = reg
            self._m_decision_s = reg.histogram(
                "decision_s", help="decision-engine latency")
            self._m_switch_s = reg.histogram(
                "switch_s", help="model reconfiguration time")
            self._m_inference_s = reg.histogram(
                "inference_s", help="per-request inference latency")
            self._m_cache_hits = reg.gauge(
                "cache_hits", help="strategy-cache hits")
            self._m_cache_misses = reg.gauge(
                "cache_misses", help="strategy-cache misses")
            self._m_cache_entries = reg.gauge(
                "cache_entries", help="strategy-cache occupancy")
            self._m_cache_hit_rate = reg.gauge(
                "cache_hit_rate", help="strategy-cache hit rate")
            self._m_cache_evictions = reg.gauge(
                "cache_evictions", help="strategy-cache LRU evictions")
            self._m_retries = reg.counter(
                "retries_total", help="message retries charged to requests")
            self._m_failovers = reg.counter(
                "failovers_total", help="requests re-planned onto survivors")
            self._m_degraded = reg.counter(
                "degraded_requests_total",
                help="requests completed via gateway degradation")
            self._m_failed = reg.counter(
                "failed_requests_total",
                help="requests that could not be completed")
            self._m_reroutes = reg.counter(
                "reroutes_total",
                help="decisions rerouted around open circuits")
            self._m_cache_invalidated = reg.counter(
                "cache_invalidations_total",
                help="cached strategies dropped for routing through "
                     "open-circuit devices")
            # decisions_total counters resolved once per engine string
            self._m_decisions: dict = {}
            # snapshot gauges refresh at export time, not per request
            reg.add_collect_hook(self._sync_cache_metrics)

    @property
    def _now(self) -> float:
        """The facade's current simulated time (the shared clock's).

        Read-only: time moves through :attr:`clock` — ``advance`` /
        ``advance_to`` for the monotone serving path, ``reset`` for the
        batched overlap rewind — never by assigning a float.
        """
        return self.clock.now

    # -- control plane -----------------------------------------------------
    def set_slo(self, slo: SLO) -> None:
        """The SLO API: a single scalar latency or accuracy objective."""
        self.slo = slo

    def update_condition(self, condition: NetworkCondition) -> None:
        """Apply a change in true network conditions (trace replay)."""
        self._base_condition = condition
        if self.faults is not None:
            self.faults.apply_to(self.cluster, condition)
        else:
            self.cluster.set_condition(condition)

    def observed_condition(self, now: Optional[float] = None) -> NetworkCondition:
        """Monitor probe round -> smoothed estimate (+ optional forecast)."""
        now = self._now if now is None else now
        measurements = self.monitor.probe_all(now)
        estimate = self.monitor.estimate()
        if self.predictor is not None:
            self.predictor.observe_all(measurements)
            predicted = self.predictor.predict(now + 1.0, fallback=estimate)
            if predicted is not None:
                return predicted
        return estimate

    # -- decision helpers --------------------------------------------------
    def _blocked_devices(self, plan) -> List[int]:
        """Plan devices the circuit breakers currently reject.

        A device is blocked when its own circuit is open *or* the
        gateway-pair link circuit is open — a healthy device behind a
        dead path is just as unusable for placement.
        """
        if self.health is None:
            return []
        return [d for d in plan.devices_used()
                if d != 0 and not (self.health.allow(d, self._now)
                                   and self.health.allow_link(
                                       0, d, self._now))]

    def _reroute(self, strategy: Strategy,
                 condition: NetworkCondition) -> Strategy:
        """Re-place a strategy on breaker-approved devices only.

        Uses decision-layer knowledge exclusively: the health state and
        the *observed* condition (a fresh cluster, so ground-truth
        straggler scales never leak in).
        """
        allowed = [d for d in range(1, self.cluster.num_devices)
                   if self.health.allow(d, self._now)
                   and self.health.allow_link(0, d, self._now)]
        target = max(allowed + [0],
                     key=lambda d: self.cluster.device(d).effective_flops)
        graph = build_graph(strategy.arch, self.space)
        plan = single_device_plan(graph, device=target)
        expected = simulate_latency(
            graph, plan, Cluster(list(self.cluster.devices), condition))
        accuracy = (arch_accuracy(strategy.arch, self.space)
                    - plan_accuracy_penalty(plan))
        return Strategy(strategy.arch, plan, expected.total_s, accuracy)

    def decide(self, condition: Optional[NetworkCondition] = None,
               ) -> DecisionRecord:
        """Run (or cache-hit) the decision for the current SLO."""
        if self.slo is None:
            raise RuntimeError("no SLO set; call set_slo() first")
        condition = condition or self.observed_condition()
        # peek() first: a cached strategy routing through an open circuit
        # must not count as a hit — the request pays a full decision, so
        # the lookup below records an honest miss after the discard.
        cached = self.cache.peek(self.slo, condition)
        if cached is not None and self._blocked_devices(cached.plan):
            # Routes through an open circuit: invalidate, decide afresh.
            self.cache.discard(self.slo, condition)
            if self.telemetry is not None:
                self._m_cache_invalidated.inc()
        cached = self.cache.get(self.slo, condition)
        if cached is not None:
            record = DecisionRecord(cached, 0.0, "cache")
        else:
            record = self.engine.decide(self.slo, condition)
            if record.strategy is not None and not self._blocked_devices(
                    record.strategy.plan):
                self.cache.put(self.slo, condition, record.strategy)
        if (record.strategy is not None and self.health is not None
                and self.resilience.failover
                and self._blocked_devices(record.strategy.plan)):
            # Proactive reroute: avoid re-paying timeouts on devices the
            # breaker already condemned.  Not cached — the original
            # strategy becomes valid again once the circuit closes.
            record = DecisionRecord(
                self._reroute(record.strategy, condition),
                record.decision_time_s, "reroute")
            if self.telemetry is not None:
                self._m_reroutes.inc()
        if self.telemetry is not None:
            counter = self._m_decisions.get(record.engine)
            if counter is None:
                counter = self._reg.counter("decisions_total",
                                            help="decisions by engine",
                                            engine=record.engine)
                self._m_decisions[record.engine] = counter
            counter.inc()
            self._m_decision_s.observe(record.decision_time_s)
        if self.recorder is not None:
            self.recorder.on_decision(self._now, record.engine,
                                      record.decision_time_s,
                                      record.engine == "cache")
        return record

    def min_strategy(self) -> Strategy:
        """The cheapest strategy: min submodel, fastest single device.

        Memoized — the admission controller's degraded path must not pay
        graph construction and placement search per request.  The quoted
        expected latency is priced under the construction-time
        condition; it is the runtime's own (observable) estimate of what
        a degraded answer costs, which is exactly the signal admission
        control needs.
        """
        if self._min_strategy is None:
            arch = min_arch(self.space)
            graph = build_graph(arch, self.space)
            best_plan, best_s = None, None
            for d in range(self.cluster.num_devices):
                plan = single_device_plan(graph, device=d)
                total = simulate_latency(graph, plan, self.cluster).total_s
                if best_s is None or total < best_s:
                    best_plan, best_s = plan, total
            accuracy = (arch_accuracy(arch, self.space)
                        - plan_accuracy_penalty(best_plan))
            self._min_strategy = Strategy(arch, best_plan, best_s, accuracy)
        return self._min_strategy

    def _admission_decision(self) -> DecisionRecord:
        """Degraded admission: min submodel, no engine run, zero cost.

        Mirrors :meth:`decide`'s telemetry/recorder bookkeeping so a
        controlled run's decision accounting stays complete.
        """
        record = DecisionRecord(self.min_strategy(), 0.0, "admission")
        if self.telemetry is not None:
            counter = self._m_decisions.get("admission")
            if counter is None:
                counter = self._reg.counter("decisions_total",
                                            help="decisions by engine",
                                            engine="admission")
                self._m_decisions["admission"] = counter
            counter.inc()
            self._m_decision_s.observe(0.0)
        if self.recorder is not None:
            self.recorder.on_decision(self._now, "admission", 0.0, False)
        return record

    def _sync_cache_metrics(self) -> None:
        cache = self.cache
        self._m_cache_hits.value = float(cache.hits)
        self._m_cache_misses.value = float(cache.misses)
        self._m_cache_entries.value = float(len(cache))
        self._m_cache_hit_rate.value = cache.hit_rate
        self._m_cache_evictions.value = float(cache.evictions)

    def precompute(self, conditions: Sequence[NetworkCondition]) -> int:
        """Warm the cache for forecast conditions (Sec. 5.1 fast path).

        Returns the number of strategies computed.
        """
        if self.slo is None:
            raise RuntimeError("no SLO set; call set_slo() first")
        computed = 0
        for cond in conditions:
            # peek(): warm-up probes are not serving lookups and must
            # not poison the miss count behind core_cache_hit_rate.
            if self.cache.peek(self.slo, cond) is None:
                rec = self.engine.decide(self.slo, cond)
                if rec.strategy is not None:
                    self.cache.put(self.slo, cond, rec.strategy)
                    computed += 1
        return computed

    # -- data plane ------------------------------------------------------------
    def infer(self, x: Optional[np.ndarray] = None,
              now: Optional[float] = None,
              request_id: Optional[int] = None,
              degraded: bool = False,
              tenant: Optional[str] = None) -> InferenceRecord:
        """Serve one inference request under the current SLO.

        ``degraded=True`` (set by the admission controller) skips the
        decision engine and serves the memoized min-submodel strategy at
        zero decision cost; the record's outcome becomes ``"degraded"``.

        ``tenant`` tags the request's spans and (in executable mode)
        every transfer it causes, so per-tenant wire accounting and
        contention attribution work end to end.  None changes nothing.

        ``now`` must be monotone (a small float-noise tolerance aside):
        a value that would rewind the shared clock raises ValueError,
        where older releases silently accepted any assignment.  A
        caller that genuinely needs non-monotone serving time — e.g.
        replaying a shuffled trace — should call
        ``self.clock.reset(t)`` before each request to opt out of the
        guard explicitly.
        """
        if now is not None:
            # Servers compute finish = ((start + d) + s) + l while the
            # clock accumulates start + (d + s + l); the next start can
            # land a few ulps below the clock.  Tolerate float noise,
            # reject genuine rewinds.
            tol = 1e-9 * max(1.0, self.clock.now)
            if now < self.clock.now - tol:
                raise ValueError(
                    f"infer(now={now}) would rewind the simulated clock "
                    f"from {self.clock.now}; serving time is monotone "
                    f"(the batched overlap path is the one legitimate "
                    f"rewind and goes through infer_batch)")
            # reset, not advance_to: byte-identical to the historical
            # `self._now = now` assignment within the tolerance window
            self.clock.reset(now)
        if self.executor is not None:
            self.executor.transport.tenant = tenant
        if self.control is not None and self.control.server is None:
            # Facade-only deployment: the facade drives the cadence.  A
            # server-attached loop ticks at the server instead, where
            # queue depth and request windows are known.
            self.control.maybe_tick(self._now)
        if self.faults is not None:
            self.faults.advance(self._now)
            self.faults.apply_to(self.cluster, self._base_condition)
        tracer = Telemetry.tracer_of(self.telemetry)
        with tracer.span("decision", sim_time=self._now) as sp:
            decision = (self._admission_decision() if degraded
                        else self.decide())
            sp.add_sim(decision.decision_time_s)
            sp.annotate(engine=decision.engine)
            if request_id is not None:
                sp.annotate(request=request_id)
        if decision.strategy is None:
            raise RuntimeError(
                "no strategy satisfies the SLO under current conditions")
        strategy = decision.strategy
        switch_time = 0.0
        switched = False
        logits = None
        outcome = "ok"
        retries = 0
        failovers = 0
        sim_t = self._now + decision.decision_time_s
        if self.reconfig is not None and (
                self.reconfig.active_arch is None
                or self.reconfig.active_arch != strategy.arch):
            with tracer.span("switch", sim_time=sim_t) as sp:
                switch_time = self.reconfig.switch(
                    strategy.arch).modeled_time_s
                switched = True
                sp.add_sim(switch_time)
        sim_t += switch_time

        with tracer.span("execute", sim_time=sim_t) as sp:
            if request_id is not None:
                sp.annotate(request=request_id)
            if tenant is not None:
                sp.annotate(tenant=tenant)
            if self.faults is None:
                if self.executor is not None and x is not None:
                    result: ExecutionResult = self.executor.execute(
                        x, strategy.arch, strategy.plan, sim_time=sim_t,
                        request_id=request_id)
                    latency = result.report.total_s
                    logits = result.logits
                else:
                    graph = build_graph(strategy.arch, self.space)
                    latency = simulate_latency(graph, strategy.plan,
                                               self.cluster).total_s
                accuracy = strategy.expected_accuracy
            elif self.executor is not None and x is not None:
                (latency, accuracy, outcome, retries, failovers,
                 logits, _) = self._execute_faulty(x, strategy, sim_t,
                                                   request_id)
            else:
                (latency, accuracy, outcome, retries,
                 failovers, _) = self._plan_only_faulty(strategy)
            sp.add_sim(latency)
            if degraded and outcome == "ok":
                outcome = "degraded"
            if outcome != "ok":
                sp.annotate(outcome=outcome)
        satisfied = (outcome != "failed"
                     and (self.slo.satisfied_by(latency, accuracy)
                          if self.slo else True))
        record = InferenceRecord(
            latency_s=latency, accuracy=accuracy, satisfied=satisfied,
            strategy=strategy, cache_hit=(decision.engine == "cache"),
            decision_time_s=decision.decision_time_s,
            switch_time_s=switch_time, logits=logits,
            outcome=outcome, retries=retries, failovers=failovers)
        self.records.append(record)
        # The request occupied the runtime for its *full* service time;
        # advancing by execution latency alone would drift the fault
        # schedule and health cooldowns behind simulated time for every
        # caller that does not pass ``now=`` explicitly.
        self.clock.advance(decision.decision_time_s + switch_time + latency)
        if self.telemetry is not None:
            self._m_inference_s.observe(latency)
            if switched:
                self._m_switch_s.observe(switch_time)
            if retries:
                self._m_retries.inc(retries)
            if failovers:
                self._m_failovers.inc(failovers)
            if outcome == "degraded":
                self._m_degraded.inc()
            elif outcome == "failed":
                self._m_failed.inc()
        self._drain_health()
        return record

    def _drain_health(self) -> None:
        """Invalidate cached strategies behind newly opened circuits.

        Device circuits condemn every plan using the device; link
        circuits (mesh) condemn plans using either non-gateway endpoint
        of the pair — the placement may be fine once the path recovers,
        so the strategy is merely dropped from the cache, not banned.
        """
        if self.health is None:
            return
        for dev in self.health.drain_opened():
            n = self.cache.invalidate(
                lambda s, d=dev: d in s.plan.devices_used())
            if self.telemetry is not None and n:
                self._m_cache_invalidated.inc(n)
        for a, b in self.health.drain_opened_links():
            ends = frozenset(d for d in (a, b) if d != 0)
            if not ends:
                continue
            n = self.cache.invalidate(
                lambda s, e=ends: bool(e.intersection(
                    s.plan.devices_used())))
            if self.telemetry is not None and n:
                self._m_cache_invalidated.inc(n)

    def infer_batch(self, xs: Optional[Sequence[Optional[np.ndarray]]] = None,
                    batch_size: Optional[int] = None,
                    now: Optional[float] = None,
                    request_ids: Optional[Sequence[int]] = None,
                    exec_not_before: Optional[float] = None,
                    degraded: bool = False) -> BatchInferenceResult:
        """Serve a batch of requests with one amortized decision.

        ``degraded=True`` (set by the admission controller) serves the
        whole batch on the memoized min-submodel strategy at zero
        decision cost; every item's outcome becomes ``"degraded"``.

        All items share a single decision (one probe round, one cache
        lookup or engine run) and a single model switch — sound because
        every item sees the same SLO and the same observed condition,
        i.e. the whole batch snaps to one :class:`StrategyCache` cell.
        Items then execute back to back; under fault injection each item
        reports its own outcome/retries, and a mid-batch failover
        carries forward so the batch re-plans as a unit.

        Clock model: the decision starts at ``now`` (default: the
        current ``_now``); the switch begins once the decision is done
        *and* the executor is free (``exec_not_before``, which lets a
        pipelined server overlap this batch's decision with the previous
        batch's execution); ``_now`` ends at the last item's completion.
        With ``batch_size=1`` and ``exec_not_before=None`` the clock and
        accounting reduce exactly to :meth:`infer`.
        """
        if xs is not None:
            n = len(xs)
            if batch_size is not None and batch_size != n:
                raise ValueError(
                    f"batch_size={batch_size} disagrees with len(xs)={n}")
        else:
            n = 1 if batch_size is None else int(batch_size)
        if n < 1:
            raise ValueError(f"batch size must be positive, got {n}")
        if request_ids is not None and len(request_ids) != n:
            raise ValueError("request_ids must match the batch size")
        if now is not None:
            # The overlap path legitimately rewinds: batch k+1's
            # decision starts while batch k still executes, so ``now``
            # (the decision instant) precedes the clock (batch k's
            # finish).  Decision starts are monotone across batches, so
            # this is pipeline time, not a causality violation — hence
            # the explicit reset instead of advance_to's guard.
            self.clock.reset(now)
        if self.control is not None and self.control.server is None:
            self.control.maybe_tick(self._now)
        start = self._now
        if self.faults is not None:
            self.faults.advance(start)
            self.faults.apply_to(self.cluster, self._base_condition)
        tracer = Telemetry.tracer_of(self.telemetry)
        with tracer.span("decision", sim_time=start) as sp:
            decision = (self._admission_decision() if degraded
                        else self.decide())
            sp.add_sim(decision.decision_time_s)
            sp.annotate(engine=decision.engine, batch=n)
        if decision.strategy is None:
            raise RuntimeError(
                "no strategy satisfies the SLO under current conditions")
        strategy = decision.strategy
        decision_end = start + decision.decision_time_s
        model_free = (decision_end if exec_not_before is None
                      else max(decision_end, exec_not_before))
        switch_time = 0.0
        switched = False
        if self.reconfig is not None and (
                self.reconfig.active_arch is None
                or self.reconfig.active_arch != strategy.arch):
            with tracer.span("switch", sim_time=model_free) as sp:
                switch_time = self.reconfig.switch(
                    strategy.arch).modeled_time_s
                switched = True
                sp.add_sim(switch_time)
        exec_start = model_free + switch_time
        cache_hit = decision.engine == "cache"
        amortized_decision = decision.decision_time_s / n
        amortized_switch = switch_time / n

        items: List[InferenceRecord] = []
        finishes: List[float] = []
        sim_t = exec_start
        plan_state: Optional[_PlanState] = None
        exec_strategy = strategy   # executable fault mode: carried plan
        carried_degraded = False
        base_latency: Optional[float] = None
        for idx in range(n):
            x = xs[idx] if xs is not None else None
            rid = request_ids[idx] if request_ids is not None else None
            logits = None
            outcome = "ok"
            retries = 0
            failovers = 0
            with tracer.span("execute", sim_time=sim_t) as sp:
                if rid is not None:
                    sp.annotate(request=rid)
                if self.faults is None:
                    if self.executor is not None and x is not None:
                        result: ExecutionResult = self.executor.execute(
                            x, strategy.arch, strategy.plan, sim_time=sim_t,
                            request_id=rid)
                        latency = result.report.total_s
                        logits = result.logits
                    else:
                        if base_latency is None:
                            graph = build_graph(strategy.arch, self.space)
                            base_latency = simulate_latency(
                                graph, strategy.plan, self.cluster).total_s
                        latency = base_latency
                    accuracy = strategy.expected_accuracy
                elif self.executor is not None and x is not None:
                    (latency, accuracy, outcome, retries, failovers,
                     logits, executed) = self._execute_faulty(
                        x, exec_strategy, sim_t, rid)
                    if carried_degraded and outcome == "ok":
                        outcome = "degraded"
                    if executed is not None and (
                            executed[0] != exec_strategy.arch
                            or executed[1] != exec_strategy.plan):
                        # Batch fails over as a unit: later items keep
                        # the replanned (arch, plan).
                        new_arch, new_plan = executed
                        exec_strategy = Strategy(
                            new_arch, new_plan,
                            exec_strategy.expected_latency_s,
                            arch_accuracy(new_arch, self.space)
                            - plan_accuracy_penalty(new_plan))
                        if outcome == "degraded":
                            carried_degraded = True
                else:
                    (latency, accuracy, outcome, retries, failovers,
                     plan_state) = self._plan_only_faulty(
                        strategy, plan_state)
                sp.add_sim(latency)
                if degraded and outcome == "ok":
                    outcome = "degraded"
                if outcome != "ok":
                    sp.annotate(outcome=outcome)
            satisfied = (outcome != "failed"
                         and (self.slo.satisfied_by(latency, accuracy)
                              if self.slo else True))
            record = InferenceRecord(
                latency_s=latency, accuracy=accuracy, satisfied=satisfied,
                strategy=strategy, cache_hit=cache_hit,
                decision_time_s=amortized_decision,
                switch_time_s=amortized_switch, logits=logits,
                outcome=outcome, retries=retries, failovers=failovers)
            self.records.append(record)
            items.append(record)
            sim_t = sim_t + latency
            finishes.append(sim_t)
            if self.telemetry is not None:
                self._m_inference_s.observe(latency)
                if retries:
                    self._m_retries.inc(retries)
                if failovers:
                    self._m_failovers.inc(failovers)
                if outcome == "degraded":
                    self._m_degraded.inc()
                elif outcome == "failed":
                    self._m_failed.inc()
        self.clock.advance_to(sim_t)
        if self.telemetry is not None and switched:
            self._m_switch_s.observe(switch_time)
        self._drain_health()
        return BatchInferenceResult(
            items=items, decision_time_s=decision.decision_time_s,
            switch_time_s=switch_time, decision_start_s=start,
            exec_start_s=exec_start, item_finish_s=finishes,
            finish_s=sim_t, cache_hit=cache_hit)

    # -- fault-aware execution paths ---------------------------------------
    def _execute_faulty(self, x: np.ndarray, strategy: Strategy,
                        sim_t: float, request_id: Optional[int]) -> Tuple:
        """Executable mode: the executor owns retry/failover/degradation.

        The last tuple element is the ``(arch, plan)`` actually executed
        (None on failure) so batched callers can carry a failover
        forward across the remaining items.
        """
        try:
            result = self.executor.execute(
                x, strategy.arch, strategy.plan, sim_time=sim_t,
                request_id=request_id)
        except ExecutionFailedError as e:
            return e.wasted_s, 0.0, "failed", e.retries, 0, None, None
        if result.outcome == "degraded":
            accuracy = (arch_accuracy(result.executed_arch, self.space)
                        - plan_accuracy_penalty(single_device_plan(
                            build_graph(result.executed_arch, self.space))))
        else:
            accuracy = strategy.expected_accuracy
        return (result.report.total_s, accuracy, result.outcome,
                result.retries, result.failovers, result.logits,
                (result.executed_arch, result.executed_plan))

    def _plan_only_faulty(self, strategy: Strategy,
                          state: Optional[_PlanState] = None) -> Tuple:
        """Plan-only mode: simulate the data plane's fault experience.

        Reachability checks here stand in for the sends the executor
        would have attempted — each discovered failure costs the full
        retry schedule, exactly like a timed-out transport send.

        ``state`` (optional) is the :class:`_PlanState` a previous item
        of the same batch ended in; the returned tuple's last element is
        the state this item ended in.
        """
        res = self.resilience
        faults = self.faults
        health = self.health
        now = self._now
        if state is None:
            state = _PlanState(strategy.arch, strategy.plan)
        arch, plan = state.arch, state.plan
        penalty = 0.0
        retries = 0
        failovers = 0
        degraded = state.degraded
        replanned = state.replanned
        excluded: set = set()
        while True:
            remotes = [d for d in plan.devices_used() if d != 0]
            dead = next((d for d in remotes
                         if not faults.reachable(0, d)), None)
            if dead is None:
                graph = build_graph(arch, self.space)
                report = simulate_latency(graph, plan, self.cluster)
                extra, lost_retries, exhausted = self._loss_penalty(
                    remotes, report.num_transfers)
                retries += lost_retries
                penalty += extra
                if exhausted is None:
                    for d in remotes:
                        health.record_success(d, now)
                        health.record_link_success(0, d, now)
                    self._note_plan_reroutes(remotes)
                    if replanned:
                        accuracy = (arch_accuracy(arch, self.space)
                                    - plan_accuracy_penalty(plan))
                    else:
                        accuracy = strategy.expected_accuracy
                    outcome = ("degraded" if degraded
                               else "retried" if (retries or failovers)
                               else "ok")
                    return (report.total_s + penalty, accuracy, outcome,
                            retries, failovers,
                            _PlanState(arch, plan, degraded, replanned))
                dead = exhausted
            else:
                penalty += res.retry.give_up_cost()
                retries += res.retry.max_retries
            health.record_failure(dead, now)
            health.record_link_failure(0, dead, now)
            if not res.failover:
                return (penalty, 0.0, "failed", retries, failovers,
                        _PlanState(arch, plan, degraded, replanned))
            excluded.add(dead)
            failovers += 1
            candidates = [d for d in range(1, self.cluster.num_devices)
                          if d not in excluded and health.allow(d, now)]
            if candidates:
                target = max(candidates, key=lambda d: self.cluster.device(
                    d).effective_flops)
                graph = build_graph(arch, self.space)
                plan = single_device_plan(graph, device=target)
            else:
                if res.degradation:
                    arch = replace(min_arch(self.space),
                                   resolution=arch.resolution)
                    degraded = True
                graph = build_graph(arch, self.space)
                plan = single_device_plan(graph, device=0)
            replanned = True

    def _note_plan_reroutes(self, remotes: List[int]) -> None:
        """Plan-only stand-in for the transport's reroute accounting.

        Executable mode counts per *delivery* inside
        :meth:`~repro.runtime.rpc.Transport._note_route`; plan-only mode
        has no transport traffic, so count one reroute per (request,
        remote) served over a backup path.  Only runs when the executor
        is absent, so the two never double-count.
        """
        route_info = getattr(self.cluster, "route_info", None)
        if route_info is None:
            return
        for d in remotes:
            try:
                info = route_info(0, d)
            except NoRouteError:
                continue
            if not info.rerouted:
                continue
            self.path_reroutes += 1
            if self.telemetry is None:
                continue
            reg = getattr(self, "_transport_reg", None)
            if reg is None:
                reg = self.telemetry.registry.child("transport")
                self._transport_reg = reg
            reg.counter("reroute_total",
                        help="deliveries that travelled a non-base path",
                        ).inc()
            reg.counter("link_reroutes_total",
                        help="rerouted deliveries per device pair",
                        link=f"0-{d}").inc()

    def _loss_penalty(self, remotes: List[int],
                      num_transfers: int) -> Tuple[float, int, Optional[int]]:
        """Price message-loss retries for one plan-only execution.

        Every transfer is approximated as crossing the lossiest link in
        use.  Returns ``(extra_seconds, retries, exhausted_device)``
        where ``exhausted_device`` is non-None when a transfer ran out
        of retries (treated like an unreachable peer).
        """
        faults = self.faults
        if not remotes or num_transfers <= 0:
            return 0.0, 0, None
        worst = max(remotes, key=lambda d: faults.loss_prob(0, d))
        if faults.loss_prob(0, worst) <= 0.0:
            return 0.0, 0, None
        policy = self.resilience.retry
        extra = 0.0
        retries = 0
        for _ in range(num_transfers):
            delivered = False
            for attempt in range(policy.attempts):
                if not faults.message_lost(0, worst):
                    delivered = True
                    retries += attempt
                    break
                extra += policy.timeout_of(attempt)
            if not delivered:
                retries += policy.max_retries
                return extra, retries, worst
        return extra, retries, None

    # -- stats --------------------------------------------------------------------
    def compliance_rate(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.satisfied for r in self.records) / len(self.records)
