"""Murmuration core: SLO API, strategies, decision engines, strategy
cache, and the system facade."""

from .decision import DecisionRecord, RLDecisionEngine, SearchDecisionEngine
from .murmuration import BatchInferenceResult, InferenceRecord, Murmuration
from .slo import SLO
from .strategy import Strategy
from .strategy_cache import StrategyCache

__all__ = [
    "SLO",
    "Strategy",
    "StrategyCache",
    "DecisionRecord",
    "RLDecisionEngine",
    "SearchDecisionEngine",
    "Murmuration",
    "InferenceRecord",
    "BatchInferenceResult",
]
