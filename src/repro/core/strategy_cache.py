"""Strategy cache (paper Sec. 5).

Maps quantized (SLO, network condition) keys to previously computed
strategies so the RL policy need not run on every request.  Conditions
are snapped to a configurable granularity — two conditions within the
same cell share a strategy, which is safe because strategies are lower
bounds under mild relaxation (the SUPREME observation).

Granularity is *runtime-tunable*: :meth:`set_steps` changes the snap
steps mid-run, rekeying (or invalidating) the existing entries, so a
control loop can trade hit rate against strategy fidelity from observed
telemetry instead of committing at construction time.

LRU eviction bounds memory.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from ..netsim.topology import NetworkCondition
from .slo import SLO
from .strategy import Strategy

__all__ = ["StrategyCache"]


class StrategyCache:
    def __init__(self, capacity: int = 256, slo_step: float = 0.01,
                 bw_step: float = 25.0, delay_step: float = 10.0):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        for name, step in (("slo_step", slo_step), ("bw_step", bw_step),
                           ("delay_step", delay_step)):
            if step <= 0:
                raise ValueError(f"{name} must be positive, got {step}")
        self.capacity = capacity
        self.slo_step = slo_step
        self.bw_step = bw_step
        self.delay_step = delay_step
        # key -> (slo, condition, strategy); the un-snapped (slo,
        # condition) of the *last write* is kept so set_steps() can
        # re-snap every entry under a new granularity.
        self._store: "OrderedDict[tuple, Tuple[SLO, NetworkCondition, Strategy]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.overwrites = 0
        self.evictions = 0
        self.invalidations = 0

    # -- key construction ---------------------------------------------------
    def _key(self, slo: SLO, condition: NetworkCondition) -> tuple:
        def snap(v: float, step: float) -> int:
            return int(round(v / step))

        return (
            slo.kind,
            snap(slo.value, self.slo_step),
            tuple(snap(b, self.bw_step) for b in condition.bandwidths_mbps),
            tuple(snap(d, self.delay_step) for d in condition.delays_ms),
        )

    # -- API -------------------------------------------------------------------
    def get(self, slo: SLO, condition: NetworkCondition) -> Optional[Strategy]:
        key = self._key(slo, condition)
        entry = self._store.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return entry[2]

    def peek(self, slo: SLO, condition: NetworkCondition) -> Optional[Strategy]:
        """Look up an entry without touching statistics or LRU order.

        For probes that are not real serving lookups: validity checks
        before committing to a hit (a cached strategy may route through
        an open circuit) and precompute warm-up scans.  Keeping these
        out of ``hits``/``misses`` is what lets ``hit_rate`` mean "the
        fraction of served decisions answered from cache".
        """
        entry = self._store.get(self._key(slo, condition))
        return entry[2] if entry is not None else None

    def put(self, slo: SLO, condition: NetworkCondition,
            strategy: Strategy) -> None:
        key = self._key(slo, condition)
        if key in self._store:
            self.overwrites += 1
        else:
            self.inserts += 1
        self._store[key] = (slo, condition, strategy)
        self._store.move_to_end(key)
        while len(self._store) > self.capacity:
            self._store.popitem(last=False)
            self.evictions += 1

    def discard(self, slo: SLO, condition: NetworkCondition) -> bool:
        """Drop one entry (e.g. it routes through a failed device).

        Returns True if an entry was removed.
        """
        removed = self._store.pop(self._key(slo, condition), None) is not None
        if removed:
            self.invalidations += 1
        return removed

    def invalidate(self, predicate) -> int:
        """Drop every cached strategy for which ``predicate(strategy)``
        is true; returns the number removed.

        The circuit breaker uses this to purge cached/precomputed
        strategies that route through a device whose circuit just
        opened.
        """
        doomed = [k for k, e in self._store.items() if predicate(e[2])]
        for k in doomed:
            del self._store[k]
        self.invalidations += len(doomed)
        return len(doomed)

    def set_steps(self, slo_step: Optional[float] = None,
                  bw_step: Optional[float] = None,
                  delay_step: Optional[float] = None,
                  rekey: bool = True) -> int:
        """Change the snap granularity mid-run; returns entries dropped.

        With ``rekey=True`` (default) every live entry is re-snapped
        under the new steps from the exact (SLO, condition) it was
        written with; entries that collide in a now-coarser cell keep
        the most recently used strategy.  With ``rekey=False`` the
        store is invalidated instead (counters survive — only
        ``invalidations`` grows), which is the conservative choice when
        the caller cannot vouch that old strategies remain lower bounds
        under the new cells.

        Hit/miss statistics are *never* reset here: the control loop
        retunes granularity from windowed deltas of those counters, so
        a retune must not erase the evidence it acted on.
        """
        for name, step in (("slo_step", slo_step), ("bw_step", bw_step),
                           ("delay_step", delay_step)):
            if step is not None and step <= 0:
                raise ValueError(f"{name} must be positive, got {step}")
        new = (slo_step if slo_step is not None else self.slo_step,
               bw_step if bw_step is not None else self.bw_step,
               delay_step if delay_step is not None else self.delay_step)
        if new == (self.slo_step, self.bw_step, self.delay_step):
            return 0
        self.slo_step, self.bw_step, self.delay_step = new
        old = self._store
        self._store = OrderedDict()
        dropped = 0
        if rekey:
            # Iterating oldest -> newest means a collision is resolved
            # in favour of the more recently used entry, and the new
            # store's insertion order preserves the old LRU order.
            for slo, condition, strategy in old.values():
                key = self._key(slo, condition)
                if key in self._store:
                    dropped += 1
                self._store[key] = (slo, condition, strategy)
        else:
            dropped = len(old)
        self.invalidations += dropped
        return dropped

    def clear(self) -> None:
        """Drop all entries *and* reset every counter."""
        self._store.clear()
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.overwrites = 0
        self.evictions = 0
        self.invalidations = 0

    def stats(self) -> dict:
        """Snapshot of cache effectiveness (feeds telemetry gauges)."""
        return {
            "entries": len(self._store),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "inserts": self.inserts,
            "overwrites": self.overwrites,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "slo_step": self.slo_step,
            "bw_step": self.bw_step,
            "delay_step": self.delay_step,
        }

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
