"""Record/replay capture: a serving run as a versioned JSONL stream.

Every evaluation figure in this repository used to be produced by
re-simulating the serving stack, so a clock or accounting regression
silently shifted results until someone eyeballed a plot.  The recorder
turns one serving run into a *recording* — request arrivals, condition
snapshots, decisions, per-segment spans, outcomes and batch groupings —
from which :mod:`repro.eval.replay` re-derives :class:`ServingStats`
and the figure-driver inputs without re-running anything.

Determinism is a design constraint, not a nicety: a recording of a
seeded scenario must be **byte-identical** across re-runs so golden
fixtures can be checked into the test suite and diffed.  Consequently:

* only *simulated*-clock quantities are recorded — wall-clock readings
  (host-dependent) never enter a record;
* values are coerced to plain Python scalars before serialization;
* records are emitted in a fixed order (header, conditions, decisions,
  batches, requests, timelines, summary) with sorted JSON keys and
  canonical separators.

The stream is versioned via ``SCHEMA_VERSION`` in the header record; a
reader refuses streams newer than it understands and tolerates unknown
record kinds within a supported version (forward-compatible additions).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (IO, Any, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Union)

from .export import _json_default
from .timeline import RequestTimeline

__all__ = ["SCHEMA_VERSION", "Recording", "RunRecorder",
           "read_recordings", "write_recordings"]

#: bump when a record kind changes incompatibly; readers refuse newer
SCHEMA_VERSION = 1


def _dumps(rec: Dict[str, Any]) -> str:
    """Canonical one-line JSON: sorted keys, no whitespace."""
    return json.dumps(rec, sort_keys=True, separators=(",", ":"),
                      default=_json_default)


def _clean_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """Span attrs with values coerced to JSON-stable scalars."""
    out: Dict[str, Any] = {}
    for k, v in attrs.items():
        if isinstance(v, bool):
            out[k] = v
        elif isinstance(v, (int, float, str)) or v is None:
            out[k] = v
        else:
            item = getattr(v, "item", None)
            out[k] = item() if callable(item) else str(v)
    return out


class RunRecorder:
    """Captures one serving run; hand it to the server/runtime via
    their ``recorder=`` parameters.

    One recorder corresponds to one run of one variant — reuse across
    runs concatenates events and breaks replay invariants.
    """

    def __init__(self, scenario: str, variant: str = "",
                 config: Optional[Dict[str, Any]] = None):
        self.scenario = scenario
        self.variant = variant
        self.config = dict(config) if config else {}
        self.conditions: List[Dict[str, Any]] = []
        self.decisions: List[Dict[str, Any]] = []
        self.requests: List[Dict[str, Any]] = []
        self.batches: List[Dict[str, Any]] = []
        self.timelines: List[Dict[str, Any]] = []
        self.summary: Optional[Dict[str, Any]] = None

    # -- event capture (called from instrumented code) ---------------------
    def on_condition(self, t: float, index: int, condition) -> None:
        """The true world switched to trace cell ``index`` at ``t``."""
        self.conditions.append({
            "record": "condition",
            "t": float(t),
            "index": int(index),
            "bandwidths_mbps": [float(b) for b in condition.bandwidths_mbps],
            "delays_ms": [float(d) for d in condition.delays_ms],
        })

    def on_decision(self, t: float, engine: str, decision_s: float,
                    cache_hit: bool) -> None:
        """One decision-engine consultation (cache hits included)."""
        self.decisions.append({
            "record": "decision",
            "t": float(t),
            "engine": str(engine),
            "decision_s": float(decision_s),
            "cache_hit": bool(cache_hit),
        })

    def on_request(self, request_id: int, rr,
                   batch: Optional[int] = None) -> None:
        """One finished request (a ``RequestRecord``-shaped object)."""
        rec = {
            "record": "request",
            "id": int(request_id),
            "arrival": float(rr.arrival),
            "start": float(rr.start),
            "finish": float(rr.finish),
            "inference_s": float(rr.inference_s),
            "decision_s": float(rr.decision_s),
            "switch_s": float(rr.switch_s),
            "satisfied": bool(rr.satisfied),
            "outcome": str(rr.outcome),
            "retries": int(rr.retries),
            "failovers": int(rr.failovers),
            "batch": (int(batch) if batch is not None else None),
        }
        # tenant tag only when present: single-tenant recordings (and
        # their golden fixtures) stay byte-identical
        tenant = getattr(rr, "tenant", None)
        if tenant is not None:
            rec["tenant"] = str(tenant)
        self.requests.append(rec)

    def on_batch(self, br) -> None:
        """One dispatched batch (a ``BatchRecord``-shaped object)."""
        self.batches.append({
            "record": "batch",
            "index": int(br.index),
            "size": int(br.size),
            "close_s": float(br.close_s),
            "decision_start_s": float(br.decision_start_s),
            "decision_s": float(br.decision_s),
            "switch_s": float(br.switch_s),
            "exec_start_s": float(br.exec_start_s),
            "finish_s": float(br.finish_s),
            "cache_hit": bool(br.cache_hit),
            "overlap_saved_s": float(br.overlap_saved_s),
        })

    def capture_timelines(self,
                          timelines: Iterable[RequestTimeline]) -> None:
        """Snapshot per-request span timelines, simulated clock only.

        Wall-clock durations are host-dependent and deliberately
        dropped — a recording must be byte-stable across machines.
        """
        for tl in timelines:
            events = []
            for e in tl.events:
                ev: Dict[str, Any] = {
                    "name": e.name,
                    "sim_start": (float(e.sim_start)
                                  if e.sim_start is not None else None),
                    "sim_duration_s": float(e.sim_duration_s),
                    "depth": int(e.depth),
                }
                if e.attrs:
                    ev["attrs"] = _clean_attrs(e.attrs)
                events.append(ev)
            self.timelines.append({
                "record": "timeline",
                "request_id": tl.request_id,
                "attrs": _clean_attrs(tl.attrs),
                "events": events,
            })

    def finish(self, stats) -> None:
        """Summarize a finished run (a ``ServingStats``-shaped object).

        The summary is provenance *and* tripwire: replay recomputes the
        same aggregates from the request records and cross-checks.
        """
        summary: Dict[str, Any] = {
            "record": "summary",
            "num_requests": len(stats.records),
            "throughput_rps": float(stats.throughput_rps),
            "p50_ms": float(stats.percentile_ms(50)),
            "p95_ms": float(stats.percentile_ms(95)),
            "mean_queue_wait_ms": float(stats.mean_queue_wait_ms),
            "slo_compliance": float(stats.slo_compliance),
            "completion_rate": float(stats.completion_rate),
            "outcomes": {k: int(v)
                         for k, v in stats.outcome_counts().items()},
        }
        if hasattr(stats, "batches"):
            summary.update(
                num_batches=len(stats.batches),
                mean_batch_size=float(stats.mean_batch_size),
                amortized_decisions=int(stats.amortized_decisions),
                overlap_saved_s=float(stats.overlap_saved_s))
        # per-tenant request counts only when the run was tenant-tagged,
        # so single-tenant summaries keep their exact key set
        tenants = (stats.tenants() if hasattr(stats, "tenants") else [])
        if tenants:
            summary["tenants"] = {
                t: sum(1 for r in stats.records if r.tenant == t)
                for t in tenants}
        self.summary = summary

    # -- serialization -----------------------------------------------------
    def records(self) -> Iterator[Dict[str, Any]]:
        """All records in the canonical (deterministic) stream order."""
        yield {
            "record": "run-header",
            "schema": SCHEMA_VERSION,
            "scenario": self.scenario,
            "variant": self.variant,
            "config": self.config,
        }
        for group in (self.conditions, self.decisions, self.batches,
                      self.requests, self.timelines):
            for rec in group:
                yield rec
        if self.summary is not None:
            yield self.summary

    def recording(self) -> "Recording":
        """Freeze the captured run into a readable :class:`Recording`."""
        return Recording(
            header=next(self.records()),
            conditions=list(self.conditions),
            decisions=list(self.decisions),
            requests=list(self.requests),
            batches=list(self.batches),
            timelines=list(self.timelines),
            summary=self.summary,
        )


@dataclass
class Recording:
    """One parsed run: the header plus its records, grouped by kind."""

    header: Dict[str, Any]
    conditions: List[Dict[str, Any]] = field(default_factory=list)
    decisions: List[Dict[str, Any]] = field(default_factory=list)
    requests: List[Dict[str, Any]] = field(default_factory=list)
    batches: List[Dict[str, Any]] = field(default_factory=list)
    timelines: List[Dict[str, Any]] = field(default_factory=list)
    summary: Optional[Dict[str, Any]] = None

    @property
    def schema(self) -> int:
        return int(self.header.get("schema", 0))

    @property
    def scenario(self) -> str:
        return str(self.header.get("scenario", ""))

    @property
    def variant(self) -> str:
        return str(self.header.get("variant", ""))

    @property
    def config(self) -> Dict[str, Any]:
        return dict(self.header.get("config", {}))

    def records(self) -> Iterator[Dict[str, Any]]:
        """Re-emit in canonical stream order (round-trip safe)."""
        yield self.header
        for group in (self.conditions, self.decisions, self.batches,
                      self.requests, self.timelines):
            for rec in group:
                yield rec
        if self.summary is not None:
            yield self.summary


_GROUPS = {
    "condition": "conditions",
    "decision": "decisions",
    "request": "requests",
    "batch": "batches",
    "timeline": "timelines",
}


def write_recordings(dest: Union[str, IO[str]],
                     runs: Sequence) -> int:
    """Write recorders/recordings as one JSONL stream; returns lines.

    ``runs`` is a sequence of :class:`RunRecorder` or :class:`Recording`
    objects; each contributes its header-led block in order.
    """
    if hasattr(dest, "write"):
        n = 0
        for run in runs:
            for rec in run.records():
                dest.write(_dumps(rec) + "\n")  # type: ignore[union-attr]
                n += 1
        return n
    with open(dest, "w") as fh:  # type: ignore[arg-type]
        return write_recordings(fh, runs)


def read_recordings(src: Union[str, IO[str]]) -> List[Recording]:
    """Parse a JSONL recording stream into per-run :class:`Recording`\\ s.

    Raises ``ValueError`` on a stream that does not start with a run
    header or whose schema is newer than this reader.  Record kinds the
    reader does not know are skipped (forward-compatible additions
    within a supported schema version).
    """
    if not hasattr(src, "read"):
        with open(src) as fh:  # type: ignore[arg-type]
            return read_recordings(fh)
    runs: List[Recording] = []
    current: Optional[Recording] = None
    for lineno, line in enumerate(src, start=1):  # type: ignore[arg-type]
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        kind = rec.get("record")
        if kind == "run-header":
            schema = int(rec.get("schema", 0))
            if schema > SCHEMA_VERSION:
                raise ValueError(
                    f"recording schema {schema} is newer than supported "
                    f"schema {SCHEMA_VERSION} (line {lineno})")
            current = Recording(header=rec)
            runs.append(current)
            continue
        if current is None:
            raise ValueError(
                f"line {lineno}: record before any run-header")
        if kind == "summary":
            current.summary = rec
        else:
            group = _GROUPS.get(kind)
            if group is not None:
                getattr(current, group).append(rec)
            # unknown kinds: skipped for forward compatibility
    return runs
