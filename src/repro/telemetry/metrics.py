"""Label-aware metrics: counters, gauges and fixed-memory histograms.

The registry is the single source of truth for every instrument in the
process.  Components never hold references into each other's metrics —
they ask their (child-scoped) registry for an instrument by name, and
identical ``(name, labels)`` requests return the *same* object, so a
counter incremented by the transport and read by an exporter is one
value, not two.

Design points:

* **Labels** follow the Prometheus model: a metric *family* shares a
  name, each label-set is a separate time series.  Labels are plain
  keyword strings (``reg.counter("bytes_total", link="0-1")``).
* **Histograms are fixed-memory.**  Observations land in log-spaced
  buckets (relative width ``growth - 1``), so streaming p50/p95/p99
  queries cost O(buckets) and memory never grows with request count —
  a requirement for the "serve heavy traffic" north star.
* **Child scoping** gives each subsystem its own name prefix while
  sharing the parent's store, so a single export sees everything.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

LabelItems = Tuple[Tuple[str, str], ...]


class Metric:
    """Common identity for every instrument: name + labels + help."""

    kind = "untyped"
    __slots__ = ("name", "labels", "help")

    def __init__(self, name: str, labels: LabelItems, help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help

    @property
    def label_dict(self) -> Dict[str, str]:
        return dict(self.labels)

    def _label_str(self) -> str:
        if not self.labels:
            return ""
        inner = ",".join(f'{k}="{v}"' for k, v in self.labels)
        return "{" + inner + "}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name}{self._label_str()})"


class Counter(Metric):
    """Monotonically increasing count (requests, bytes, cache hits)."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name: str, labels: LabelItems = (), help: str = ""):
        super().__init__(name, labels, help)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Gauge(Metric):
    """A value that can go up and down (queue depth, hit rate)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, name: str, labels: LabelItems = (), help: str = ""):
        super().__init__(name, labels, help)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram(Metric):
    """Streaming distribution sketch with log-spaced buckets.

    Covers ``[lo, hi)`` with buckets whose upper edge grows by
    ``growth`` per step; values below ``lo`` (including 0.0 — common
    for queue waits under light load) land in an underflow bucket read
    back as 0.0, values at or above ``hi`` in an overflow bucket read
    back as the observed maximum.  Quantile answers are exact to one
    bucket's relative width (default 10 %), using the exact running
    min/max as clamps.
    """

    kind = "histogram"
    __slots__ = ("lo", "hi", "_log_growth", "_counts", "_nb",
                 "count", "sum", "min", "max")

    def __init__(self, name: str, labels: LabelItems = (), help: str = "",
                 lo: float = 1e-6, hi: float = 1e5, growth: float = 1.1):
        super().__init__(name, labels, help)
        if not (0 < lo < hi) or growth <= 1.0:
            raise ValueError("need 0 < lo < hi and growth > 1")
        self.lo = lo
        self.hi = hi
        self._log_growth = math.log(growth)
        nb = int(math.ceil(math.log(hi / lo) / self._log_growth))
        # [underflow] [b_0 .. b_{nb-1}] [overflow]
        self._counts = [0] * (nb + 2)
        self._nb = nb
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        v = float(value)
        self.count += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        lo = self.lo
        if v < lo:
            idx = 0
        elif v >= self.hi:
            idx = self._nb + 1
        else:
            idx = 1 + int(math.log(v / lo) / self._log_growth)
            if idx > self._nb:  # guard float edge cases
                idx = self._nb
        self._counts[idx] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def _bucket_upper(self, i: int) -> float:
        """Upper edge of data bucket ``i`` (0-based within [lo, hi))."""
        return self.lo * math.exp((i + 1) * self._log_growth)

    def quantile(self, q: float) -> float:
        """Streaming quantile estimate, ``q`` in [0, 1]."""
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * (self.count - 1) + 1  # 1-based rank, nearest-rank style
        cum = self._counts[0]
        if cum >= rank:
            return max(0.0, min(self.min, self.lo))
        for i in range(self._nb):
            cum += self._counts[1 + i]
            if cum >= rank:
                est = self._bucket_upper(i)
                return min(max(est, self.min), self.max)
        return self.max

    def quantiles(self, qs: Iterable[float] = (0.5, 0.95, 0.99),
                  ) -> Dict[float, float]:
        return {q: self.quantile(q) for q in qs}


class MetricsRegistry:
    """Creates, dedupes and enumerates instruments.

    ``child(scope)`` returns a registry that prefixes names with
    ``scope_`` but shares this registry's store, so the whole process
    exports from one root.  Asking twice for the same (name, labels)
    returns the same instrument; asking with a conflicting type raises.

    *Collect hooks* let components keep snapshot-style gauges (cache
    occupancy, running compliance) out of the request hot path: a hook
    registered with :meth:`add_collect_hook` runs at the top of every
    :meth:`collect`, i.e. at export/report time, not per request.
    """

    def __init__(self, prefix: str = "",
                 store: Optional[Dict[Tuple[str, LabelItems], Metric]] = None,
                 hooks: Optional[list] = None):
        self._prefix = prefix
        self._store: Dict[Tuple[str, LabelItems], Metric] = (
            store if store is not None else {})
        self._hooks: list = hooks if hooks is not None else []

    def child(self, scope: str) -> "MetricsRegistry":
        if not scope:
            raise ValueError("child scope must be non-empty")
        return MetricsRegistry(prefix=f"{self._prefix}{scope}_",
                               store=self._store, hooks=self._hooks)

    def add_collect_hook(self, hook) -> None:
        """Register a zero-arg callable run before every collect()."""
        self._hooks.append(hook)

    def _instrument(self, cls, name: str, help: str,
                    labels: Dict[str, str], **kwargs) -> Metric:
        full = self._prefix + name
        items: LabelItems = tuple(sorted(
            (str(k), str(v)) for k, v in labels.items()))
        key = (full, items)
        metric = self._store.get(key)
        if metric is None:
            metric = cls(full, items, help=help, **kwargs)
            self._store[key] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {full!r} already registered as {metric.kind}")
        return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._instrument(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._instrument(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "", lo: float = 1e-6,
                  hi: float = 1e5, growth: float = 1.1,
                  **labels) -> Histogram:
        return self._instrument(Histogram, name, help, labels,
                                lo=lo, hi=hi, growth=growth)

    def get(self, name: str, **labels) -> Optional[Metric]:
        """Look up an existing instrument (scoped name) or ``None``."""
        items: LabelItems = tuple(sorted(
            (str(k), str(v)) for k, v in labels.items()))
        return self._store.get((self._prefix + name, items))

    def collect(self) -> List[Metric]:
        """All instruments in the shared store, sorted for stable export.

        Runs collect hooks first so snapshot gauges are fresh.
        """
        for hook in self._hooks:
            hook()
        return sorted(self._store.values(),
                      key=lambda m: (m.name, m.labels))

    def __len__(self) -> int:
        return len(self._store)
