"""Dual-clock tracing: nested spans over simulated *and* wall time.

Everything in this repository runs on two clocks at once: the
*simulated* clock (what a five-Pi swarm would have measured — the number
the paper's figures plot) and the *wall* clock (what this process
actually spends — the number profiling cares about).  A :class:`Span`
stamps both, so one trace answers "where did the request's SLO budget
go?" and "where does my laptop's time go?" simultaneously.

Spans nest through a context-manager API::

    with tracer.span("request", sim_time=arrival) as root:
        with tracer.span("decision", sim_time=start) as sp:
            record = engine.decide(...)
            sp.add_sim(record.decision_time_s)
        root.set_sim_end(finish)

When telemetry is disabled, instrumented code paths use the module-level
:data:`NULL_TRACER`: its :meth:`~NullTracer.span` hands back one shared,
immutable no-op span, so the disabled hot path performs no per-request
allocation and no bookkeeping.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]

_wall = time.perf_counter


class Span:
    """One timed operation; may contain child spans."""

    __slots__ = ("name", "attrs", "sim_start", "sim_end",
                 "wall_start", "wall_end", "children", "_tracer", "_root")

    def __init__(self, name: str, sim_time: Optional[float] = None,
                 attrs: Optional[Dict[str, Any]] = None,
                 tracer: Optional["Tracer"] = None, root: bool = True):
        self.name = name
        self.attrs: Dict[str, Any] = attrs if attrs is not None else {}
        self.sim_start = sim_time
        self.sim_end: Optional[float] = None
        self.wall_start = _wall()
        self.wall_end: Optional[float] = None
        self.children: List["Span"] = []
        self._tracer = tracer
        self._root = root

    # -- annotation -------------------------------------------------------
    def annotate(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def set_sim_end(self, sim_time: float) -> None:
        self.sim_end = float(sim_time)

    def add_sim(self, duration_s: float) -> None:
        """Extend the span's simulated interval by ``duration_s``."""
        base = self.sim_end if self.sim_end is not None else (
            self.sim_start if self.sim_start is not None else 0.0)
        if self.sim_start is None:
            self.sim_start = 0.0
        self.sim_end = base + float(duration_s)

    # -- durations --------------------------------------------------------
    @property
    def sim_duration_s(self) -> float:
        if self.sim_start is None or self.sim_end is None:
            return 0.0
        return self.sim_end - self.sim_start

    @property
    def wall_duration_s(self) -> float:
        end = self.wall_end if self.wall_end is not None else _wall()
        return end - self.wall_start

    # -- context manager ---------------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_end = _wall()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        if self._tracer is not None:
            self._tracer._finish(self)
        return False

    # -- export ------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "name": self.name,
            "sim_start": self.sim_start,
            "sim_end": self.sim_end,
            "sim_duration_s": self.sim_duration_s,
            "wall_duration_s": self.wall_duration_s,
        }
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        if self.children:
            d["children"] = [c.to_dict() for c in self.children]
        return d

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Span({self.name!r}, sim={self.sim_duration_s:.6f}s, "
                f"children={len(self.children)})")


class Tracer:
    """Builds span trees; completed root spans land in ``finished``.

    ``max_finished`` bounds memory under sustained load: the oldest
    roots are dropped once the buffer is full (the metrics registry,
    not the trace buffer, is the unbounded-horizon view).
    """

    enabled = True

    def __init__(self, max_finished: int = 10000):
        if max_finished < 1:
            raise ValueError("max_finished must be positive")
        self.max_finished = max_finished
        self.finished: List[Span] = []
        self.dropped = 0  # roots truncated off the front of `finished`
        self._stack: List[Span] = []

    def span(self, name: str, sim_time: Optional[float] = None,
             **attrs: Any) -> Span:
        stack = self._stack
        sp = Span(name, sim_time=sim_time, attrs=attrs, tracer=self,
                  root=not stack)
        if stack:
            stack[-1].children.append(sp)
        stack.append(sp)
        return sp

    def _finish(self, span: Span) -> None:
        # Tolerate exception-unwound inner spans: pop through `span`.
        while self._stack:
            if self._stack.pop() is span:
                break
        if span._root:
            self.finished.append(span)
            excess = len(self.finished) - self.max_finished
            if excess > 0:
                del self.finished[:excess]
                self.dropped += excess

    @property
    def active(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def clear(self) -> None:
        self.finished.clear()
        self.dropped = 0
        self._stack.clear()


class _NullSpan:
    """Shared immutable stand-in; every method is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs: Any) -> "_NullSpan":
        return self

    def set_sim_end(self, sim_time: float) -> None:
        pass

    def add_sim(self, duration_s: float) -> None:
        pass

    sim_duration_s = 0.0
    wall_duration_s = 0.0
    name = ""
    children: List[Span] = []
    attrs: Dict[str, Any] = {}


_SHARED_NULL_SPAN = _NullSpan()


class NullTracer:
    """Zero-overhead tracer: one shared span, no state, no allocation."""

    enabled = False
    finished: List[Span] = []

    def span(self, name: str, sim_time: Optional[float] = None,
             **attrs: Any) -> _NullSpan:
        return _SHARED_NULL_SPAN

    @property
    def active(self) -> None:
        return None

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()
