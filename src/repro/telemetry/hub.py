"""The :class:`Telemetry` hub — one object to thread through the stack.

Instrumented components accept ``telemetry: Optional[Telemetry]``.  The
convention across the codebase:

* ``telemetry is None`` (the default everywhere) — telemetry is *off*.
  Hot paths guard on ``None`` (or use :data:`~.tracing.NULL_TRACER`),
  so disabled instrumentation costs at most a predicate per request and
  allocates nothing.
* one shared :class:`Telemetry` instance — every component scopes its
  own metric names (``server_*``, ``transport_*``, ...) via
  ``registry.child(scope)`` but shares the hub's store, tracer and
  timeline buffer, so a single export captures the whole system.
"""

from __future__ import annotations

from typing import List, Optional

from .metrics import MetricsRegistry
from .timeline import RequestTimeline
from .tracing import NULL_TRACER, NullTracer, Tracer

__all__ = ["Telemetry"]


def _is_violation(timeline: RequestTimeline) -> bool:
    """True for a timeline whose request missed its SLO.

    Serving code annotates the request root span with ``satisfied``;
    absent the annotation, the timeline is treated as ordinary (it will
    be subject to sampling and eviction like any other).
    """
    sat = timeline.attrs.get("satisfied")
    return sat is not None and not sat


class Telemetry:
    """Bundles a metrics registry, a tracer, and collected timelines.

    Timelines are materialized *lazily*: the serving hot path only
    finishes root spans on the tracer; the flatten into
    :class:`RequestTimeline` objects happens on first access to
    :attr:`timelines` — i.e. at export/report time, for free per
    request.

    Retention is SLO-aware.  ``sample_every`` keeps one timeline in N
    under sustained load (1 = keep all), and eviction beyond
    ``max_timelines`` drops the *oldest SLO-satisfying* timelines first
    — a timeline whose root span carries ``satisfied=False`` is never
    sampled out and never evicted, so tail behaviour survives any load
    level (violators may push the buffer past ``max_timelines``; the
    cap yields rather than hide the tail).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 max_timelines: int = 10000,
                 sample_every: int = 1):
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be positive, got {sample_every}")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.max_timelines = max_timelines
        self.sample_every = sample_every
        self._timelines: List[RequestTimeline] = []
        # total roots already materialized (including truncated ones),
        # held in a one-element list so child views share the cursor
        self._consumed = [0]

    def child(self, scope: str) -> "Telemetry":
        """A view with a scoped registry, sharing tracer + timelines."""
        view = Telemetry.__new__(Telemetry)
        view.registry = self.registry.child(scope)
        view.tracer = self.tracer
        view.max_timelines = self.max_timelines
        view.sample_every = self.sample_every
        view._timelines = self._timelines
        view._consumed = self._consumed
        return view

    def _evict(self) -> None:
        """Trim to ``max_timelines``, oldest satisfying timelines first."""
        excess = len(self._timelines) - self.max_timelines
        if excess <= 0:
            return
        kept: List[RequestTimeline] = []
        for tl in self._timelines:
            if excess > 0 and not _is_violation(tl):
                excess -= 1
                continue
            kept.append(tl)
        self._timelines[:] = kept

    @property
    def timelines(self) -> List[RequestTimeline]:
        """Retained request timelines, materializing new finished roots."""
        tracer = self.tracer
        finished = tracer.finished
        if finished:
            dropped = getattr(tracer, "dropped", 0)
            start = min(max(self._consumed[0] - dropped, 0), len(finished))
            step = self.sample_every
            for i, root in enumerate(finished[start:], start=dropped + start):
                tl = RequestTimeline.from_span(
                    root, request_id=root.attrs.get("request", i))
                if step > 1 and i % step and not _is_violation(tl):
                    continue
                self._timelines.append(tl)
            self._consumed[0] = dropped + len(finished)
            self._evict()
        return self._timelines

    def add_timeline(self, timeline: RequestTimeline) -> None:
        """Append an explicitly-built timeline (bypasses the tracer).

        Explicit appends bypass 1-in-N sampling (the caller already
        chose to keep this timeline) but share the SLO-aware eviction.
        """
        self._timelines.append(timeline)
        self._evict()

    @staticmethod
    def tracer_of(telemetry: Optional["Telemetry"]):
        """The hub's tracer, or the shared no-op tracer for ``None``."""
        return telemetry.tracer if telemetry is not None else NULL_TRACER
