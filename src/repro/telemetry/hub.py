"""The :class:`Telemetry` hub — one object to thread through the stack.

Instrumented components accept ``telemetry: Optional[Telemetry]``.  The
convention across the codebase:

* ``telemetry is None`` (the default everywhere) — telemetry is *off*.
  Hot paths guard on ``None`` (or use :data:`~.tracing.NULL_TRACER`),
  so disabled instrumentation costs at most a predicate per request and
  allocates nothing.
* one shared :class:`Telemetry` instance — every component scopes its
  own metric names (``server_*``, ``transport_*``, ...) via
  ``registry.child(scope)`` but shares the hub's store, tracer and
  timeline buffer, so a single export captures the whole system.
"""

from __future__ import annotations

from typing import List, Optional

from .metrics import MetricsRegistry
from .timeline import RequestTimeline
from .tracing import NULL_TRACER, NullTracer, Tracer

__all__ = ["Telemetry"]


class Telemetry:
    """Bundles a metrics registry, a tracer, and collected timelines.

    Timelines are materialized *lazily*: the serving hot path only
    finishes root spans on the tracer; the flatten into
    :class:`RequestTimeline` objects happens on first access to
    :attr:`timelines` — i.e. at export/report time, for free per
    request.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 max_timelines: int = 10000):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.max_timelines = max_timelines
        self._timelines: List[RequestTimeline] = []
        # total roots already materialized (including truncated ones),
        # held in a one-element list so child views share the cursor
        self._consumed = [0]

    def child(self, scope: str) -> "Telemetry":
        """A view with a scoped registry, sharing tracer + timelines."""
        view = Telemetry.__new__(Telemetry)
        view.registry = self.registry.child(scope)
        view.tracer = self.tracer
        view.max_timelines = self.max_timelines
        view._timelines = self._timelines
        view._consumed = self._consumed
        return view

    @property
    def timelines(self) -> List[RequestTimeline]:
        """All request timelines, materializing new finished roots."""
        tracer = self.tracer
        finished = tracer.finished
        if finished:
            dropped = getattr(tracer, "dropped", 0)
            start = min(max(self._consumed[0] - dropped, 0), len(finished))
            for i, root in enumerate(finished[start:], start=dropped + start):
                self._timelines.append(RequestTimeline.from_span(
                    root, request_id=root.attrs.get("request", i)))
            self._consumed[0] = dropped + len(finished)
            excess = len(self._timelines) - self.max_timelines
            if excess > 0:
                del self._timelines[:excess]
        return self._timelines

    def add_timeline(self, timeline: RequestTimeline) -> None:
        """Append an explicitly-built timeline (bypasses the tracer)."""
        self._timelines.append(timeline)
        if len(self._timelines) > self.max_timelines:
            del self._timelines[:len(self._timelines) - self.max_timelines]

    @staticmethod
    def tracer_of(telemetry: Optional["Telemetry"]):
        """The hub's tracer, or the shared no-op tracer for ``None``."""
        return telemetry.tracer if telemetry is not None else NULL_TRACER
