"""Per-request timelines assembled from span trees.

A :class:`RequestTimeline` is the flattened, ordered story of one served
request on the simulated clock — queue wait, decision, cache outcome,
reconfiguration/switch, per-segment execution, transfers — the exact
decomposition the paper's evaluation reasons about (decision time in
Fig. 18, switch time in Fig. 19, compliance in Fig. 16 are all slices
of this record).

Timelines are built *from* the tracing layer (one root span per
request) rather than collected separately, so instrumented code never
has to report the same interval twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .tracing import Span

__all__ = ["TimelineEvent", "RequestTimeline", "stitch_timelines"]


class TimelineEvent:
    """One phase of a request, on the simulated clock.

    A plain ``__slots__`` class, not a dataclass: one is built per span
    per request, so construction must stay at attribute-store cost.
    """

    __slots__ = ("name", "sim_start", "sim_duration_s",
                 "wall_duration_s", "depth", "attrs")

    def __init__(self, name: str, sim_start: Optional[float],
                 sim_duration_s: float, wall_duration_s: float,
                 depth: int, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.sim_start = sim_start
        self.sim_duration_s = sim_duration_s
        self.wall_duration_s = wall_duration_s
        self.depth = depth
        self.attrs = attrs if attrs is not None else {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"TimelineEvent({self.name!r}, "
                f"sim={self.sim_duration_s:.6f}s, depth={self.depth})")

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "name": self.name,
            "sim_start": self.sim_start,
            "sim_duration_s": self.sim_duration_s,
            "wall_duration_s": self.wall_duration_s,
            "depth": self.depth,
        }
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        return d


@dataclass
class RequestTimeline:
    """Ordered phases of one request plus its end-to-end envelope."""

    request_id: int
    events: List[TimelineEvent] = field(default_factory=list)
    attrs: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_span(cls, root: Span, request_id: int = 0) -> "RequestTimeline":
        """Flatten a root span (and descendants) into event order.

        Events *share* the finished spans' attr dicts rather than
        copying them — timeline assembly runs once per request, so it
        must stay cheap.
        """
        events: List[TimelineEvent] = []
        stack = [(root, 0)]
        while stack:
            span, depth = stack.pop()
            events.append(TimelineEvent(
                span.name, span.sim_start, span.sim_duration_s,
                span.wall_duration_s, depth, span.attrs))
            children = span.children
            if children:
                for child in reversed(children):
                    stack.append((child, depth + 1))
        return cls(request_id=request_id, events=events, attrs=root.attrs)

    # -- queries ----------------------------------------------------------
    @property
    def root(self) -> Optional[TimelineEvent]:
        return self.events[0] if self.events else None

    @property
    def total_s(self) -> float:
        """End-to-end simulated duration (the root span's envelope)."""
        return self.root.sim_duration_s if self.root else 0.0

    @property
    def arrival_s(self) -> Optional[float]:
        return self.root.sim_start if self.root else None

    def duration_of(self, name: str) -> float:
        """Total simulated seconds spent in phases called ``name``."""
        return sum(e.sim_duration_s for e in self.events if e.name == name)

    def phases(self) -> List[str]:
        return [e.name for e in self.events]

    # -- export ------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "request_id": self.request_id,
            "arrival_s": self.arrival_s,
            "total_s": self.total_s,
            "attrs": dict(self.attrs),
            "events": [e.to_dict() for e in self.events],
        }

    def render(self, width: int = 48) -> str:
        """ASCII Gantt chart of this request on the simulated clock."""
        lines = [f"request {self.request_id}: {self.total_s * 1e3:.2f} ms"]
        origin = self.arrival_s
        total = self.total_s
        for e in self.events:
            label = "  " * e.depth + e.name
            dur_ms = e.sim_duration_s * 1e3
            if (origin is None or total <= 0 or e.sim_start is None):
                lines.append(f"  {label:<24s} {dur_ms:9.3f} ms")
                continue
            off = max(0.0, min(1.0, (e.sim_start - origin) / total))
            frac = max(0.0, min(1.0 - off, e.sim_duration_s / total))
            start_col = int(off * width)
            ncols = max(1, int(round(frac * width))) if dur_ms > 0 else 0
            bar = " " * start_col + "#" * ncols
            lines.append(f"  {label:<24s} {dur_ms:9.3f} ms |{bar:<{width}s}|")
        return "\n".join(lines)


# -- cross-device stitching -------------------------------------------------

def stitch_timelines(timelines: Sequence[RequestTimeline],
                     messages: Iterable = (),
                     ) -> List[RequestTimeline]:
    """Merge per-device timelines (and transport messages) by request id.

    Distributed execution produces observations on more than one
    tracer: each device's span tree becomes its own timeline, and every
    cross-device transfer is a :class:`~repro.runtime.rpc.Message`
    stamped with the serving ``request_id`` that caused it.  This
    stitches them back into one timeline per request:

    * timelines sharing a ``request_id`` merge into one (first
      occurrence wins the root; attrs union, first writer wins);
    * each message whose ``request_id`` matches a timeline contributes
      a ``transfer`` event (``sim_start=sent_at``, duration
      ``delivered_at - sent_at``, with src/dst/nbytes/retries attrs);
    * non-root events re-order by simulated start time (stable, so
      same-instant parent/child order is preserved) and the root
      envelope is widened to cover any stitched-in event that runs
      past it.

    Inputs are not mutated; returned timelines are fresh objects in
    first-seen order.  Messages without a ``request_id``, or whose id
    matches no timeline, are ignored.
    """
    merged: Dict[Any, RequestTimeline] = {}
    order: List[Any] = []
    for tl in timelines:
        cur = merged.get(tl.request_id)
        if cur is None:
            merged[tl.request_id] = RequestTimeline(
                request_id=tl.request_id, events=list(tl.events),
                attrs=dict(tl.attrs))
            order.append(tl.request_id)
        else:
            cur.events.extend(tl.events)
            for k, v in tl.attrs.items():
                cur.attrs.setdefault(k, v)
    for msg in messages:
        rid = getattr(msg, "request_id", None)
        if rid is None or rid not in merged:
            continue
        tl = merged[rid]
        depth = (tl.events[0].depth + 1) if tl.events else 0
        tl.events.append(TimelineEvent(
            "transfer", float(msg.sent_at),
            float(msg.delivered_at - msg.sent_at), 0.0, depth,
            {"src": msg.src, "dst": msg.dst, "nbytes": msg.nbytes,
             "retries": msg.retries}))
    for tl in merged.values():
        if len(tl.events) < 2:
            continue
        head, rest = tl.events[0], tl.events[1:]
        fallback = head.sim_start if head.sim_start is not None else 0.0
        rest.sort(key=lambda e: (e.sim_start if e.sim_start is not None
                                 else fallback))
        end = max((e.sim_start + e.sim_duration_s
                   for e in rest if e.sim_start is not None),
                  default=None)
        if (end is not None and head.sim_start is not None
                and end > head.sim_start + head.sim_duration_s):
            # widen a copy — the original root event may be shared with
            # the un-stitched timeline still held by the hub
            head = TimelineEvent(head.name, head.sim_start,
                                 end - head.sim_start,
                                 head.wall_duration_s, head.depth,
                                 dict(head.attrs))
        tl.events[:] = [head] + rest
    return [merged[rid] for rid in order]
