"""Per-request timelines assembled from span trees.

A :class:`RequestTimeline` is the flattened, ordered story of one served
request on the simulated clock — queue wait, decision, cache outcome,
reconfiguration/switch, per-segment execution, transfers — the exact
decomposition the paper's evaluation reasons about (decision time in
Fig. 18, switch time in Fig. 19, compliance in Fig. 16 are all slices
of this record).

Timelines are built *from* the tracing layer (one root span per
request) rather than collected separately, so instrumented code never
has to report the same interval twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .tracing import Span

__all__ = ["TimelineEvent", "RequestTimeline"]


class TimelineEvent:
    """One phase of a request, on the simulated clock.

    A plain ``__slots__`` class, not a dataclass: one is built per span
    per request, so construction must stay at attribute-store cost.
    """

    __slots__ = ("name", "sim_start", "sim_duration_s",
                 "wall_duration_s", "depth", "attrs")

    def __init__(self, name: str, sim_start: Optional[float],
                 sim_duration_s: float, wall_duration_s: float,
                 depth: int, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.sim_start = sim_start
        self.sim_duration_s = sim_duration_s
        self.wall_duration_s = wall_duration_s
        self.depth = depth
        self.attrs = attrs if attrs is not None else {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"TimelineEvent({self.name!r}, "
                f"sim={self.sim_duration_s:.6f}s, depth={self.depth})")

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "name": self.name,
            "sim_start": self.sim_start,
            "sim_duration_s": self.sim_duration_s,
            "wall_duration_s": self.wall_duration_s,
            "depth": self.depth,
        }
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        return d


@dataclass
class RequestTimeline:
    """Ordered phases of one request plus its end-to-end envelope."""

    request_id: int
    events: List[TimelineEvent] = field(default_factory=list)
    attrs: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_span(cls, root: Span, request_id: int = 0) -> "RequestTimeline":
        """Flatten a root span (and descendants) into event order.

        Events *share* the finished spans' attr dicts rather than
        copying them — timeline assembly runs once per request, so it
        must stay cheap.
        """
        events: List[TimelineEvent] = []
        stack = [(root, 0)]
        while stack:
            span, depth = stack.pop()
            events.append(TimelineEvent(
                span.name, span.sim_start, span.sim_duration_s,
                span.wall_duration_s, depth, span.attrs))
            children = span.children
            if children:
                for child in reversed(children):
                    stack.append((child, depth + 1))
        return cls(request_id=request_id, events=events, attrs=root.attrs)

    # -- queries ----------------------------------------------------------
    @property
    def root(self) -> Optional[TimelineEvent]:
        return self.events[0] if self.events else None

    @property
    def total_s(self) -> float:
        """End-to-end simulated duration (the root span's envelope)."""
        return self.root.sim_duration_s if self.root else 0.0

    @property
    def arrival_s(self) -> Optional[float]:
        return self.root.sim_start if self.root else None

    def duration_of(self, name: str) -> float:
        """Total simulated seconds spent in phases called ``name``."""
        return sum(e.sim_duration_s for e in self.events if e.name == name)

    def phases(self) -> List[str]:
        return [e.name for e in self.events]

    # -- export ------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "request_id": self.request_id,
            "arrival_s": self.arrival_s,
            "total_s": self.total_s,
            "attrs": dict(self.attrs),
            "events": [e.to_dict() for e in self.events],
        }

    def render(self, width: int = 48) -> str:
        """ASCII Gantt chart of this request on the simulated clock."""
        lines = [f"request {self.request_id}: {self.total_s * 1e3:.2f} ms"]
        origin = self.arrival_s
        total = self.total_s
        for e in self.events:
            label = "  " * e.depth + e.name
            dur_ms = e.sim_duration_s * 1e3
            if (origin is None or total <= 0 or e.sim_start is None):
                lines.append(f"  {label:<24s} {dur_ms:9.3f} ms")
                continue
            off = max(0.0, min(1.0, (e.sim_start - origin) / total))
            frac = max(0.0, min(1.0 - off, e.sim_duration_s / total))
            start_col = int(off * width)
            ncols = max(1, int(round(frac * width))) if dur_ms > 0 else 0
            bar = " " * start_col + "#" * ncols
            lines.append(f"  {label:<24s} {dur_ms:9.3f} ms |{bar:<{width}s}|")
        return "\n".join(lines)
