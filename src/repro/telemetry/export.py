"""Exporters: JSONL, Prometheus text format, and a console report.

Three consumers, three formats:

* ``write_jsonl`` — machine-readable archive: one JSON object per line,
  first the metrics then the per-request timelines.  This is what the
  ``murmuration-repro telemetry`` CLI dumps and what notebooks load.
* ``prometheus_text`` — the Prometheus exposition format
  (``name{label="v"} value``), so a real scrape endpoint can serve the
  registry verbatim.  Histograms export as summaries (count, sum and
  streaming quantiles).
* ``console_report`` — a human-readable digest for terminals.
* ``link_stats`` / ``format_link_report`` — a per-link congestion view
  over the transport's ``link_bytes_total`` / ``link_transfer_s``
  metrics, plus the mesh fault columns (``link_reroutes_total``,
  ``link_down_seconds``) — the ``murmuration-repro links`` CLI
  dashboard.
"""

from __future__ import annotations

import json
import re
import warnings
from typing import IO, Iterable, Iterator, List, Optional, Sequence, Union

from .metrics import Counter, Gauge, Histogram, Metric, MetricsRegistry
from .timeline import RequestTimeline

__all__ = ["jsonl_records", "write_jsonl", "prometheus_text",
           "console_report", "link_stats", "format_link_report"]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_QUANTILES = (0.5, 0.95, 0.99)


def _sanitize(name: str) -> str:
    """Coerce a metric name to the Prometheus grammar."""
    name = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not name or not re.match(r"[a-zA-Z_:]", name[0]):
        name = "_" + name
    return name


# -- JSONL -----------------------------------------------------------------

def _metric_record(m: Metric) -> dict:
    rec: dict = {"type": m.kind, "name": m.name, "labels": m.label_dict}
    if isinstance(m, Histogram):
        rec.update(count=m.count, sum=m.sum,
                   min=(m.min if m.count else 0.0),
                   max=(m.max if m.count else 0.0),
                   mean=m.mean,
                   quantiles={str(q): m.quantile(q) for q in _QUANTILES})
    else:
        rec["value"] = m.value
    return rec


def _json_default(obj):
    """Tolerate NumPy scalars (and anything else stringable) in attrs."""
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    return str(obj)


def jsonl_records(registry: MetricsRegistry,
                  timelines: Sequence[RequestTimeline] = (),
                  ) -> Iterator[dict]:
    for m in registry.collect():
        yield {"record": "metric", **_metric_record(m)}
    for tl in timelines:
        yield {"record": "timeline", **tl.to_dict()}


def write_jsonl(dest: Union[str, IO[str]], registry: MetricsRegistry,
                timelines: Sequence[RequestTimeline] = ()) -> int:
    """Write the registry + timelines as JSON lines; returns line count."""
    records = jsonl_records(registry, timelines)
    if hasattr(dest, "write"):
        n = 0
        for rec in records:
            dest.write(json.dumps(rec, default=_json_default)
                       + "\n")  # type: ignore[union-attr]
            n += 1
        return n
    with open(dest, "w") as fh:  # type: ignore[arg-type]
        return write_jsonl(fh, registry, timelines)


# -- Prometheus text format -------------------------------------------------

def _fmt_labels(items: Iterable[tuple], extra: str = "") -> str:
    parts = [f'{_sanitize(k)}="{v}"' for k, v in items]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render every instrument in the exposition text format."""
    lines: List[str] = []
    seen_headers = set()
    for m in registry.collect():
        name = _sanitize(m.name)
        if name not in seen_headers:
            seen_headers.add(name)
            if m.help:
                lines.append(f"# HELP {name} {m.help}")
            kind = "summary" if isinstance(m, Histogram) else m.kind
            lines.append(f"# TYPE {name} {kind}")
        if isinstance(m, Histogram):
            for q in _QUANTILES:
                labels = _fmt_labels(m.labels, extra=f'quantile="{q}"')
                lines.append(f"{name}{labels} {m.quantile(q):.9g}")
            lines.append(f"{name}_sum{_fmt_labels(m.labels)} {m.sum:.9g}")
            lines.append(f"{name}_count{_fmt_labels(m.labels)} {m.count}")
        else:
            value = m.value
            out = repr(int(value)) if float(value).is_integer() else f"{value:.9g}"
            lines.append(f"{name}{_fmt_labels(m.labels)} {out}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- per-link congestion ----------------------------------------------------

def link_stats(registry: MetricsRegistry) -> List[dict]:
    """Aggregate the transport's per-link metrics into congestion rows.

    Scans the registry for ``link_bytes_total`` counters and
    ``link_transfer_s`` histograms (any prefix) carrying a ``link``
    label — the pair :class:`~repro.runtime.rpc.Transport` emits for
    every cross-device delivery — and joins them per link.  Each row:

    ``link``
        the ``"src-dst"`` device pair;
    ``messages`` / ``bytes``
        delivery count and payload bytes on the wire;
    ``busy_s``
        total simulated seconds the link spent transferring — the
        congestion headline (queueing at a link shows up here, since
        every delivery's transfer time includes its wait);
    ``mean_ms`` / ``p95_ms``
        per-delivery transfer time, mean and 95th percentile;
    ``mbps``
        effective throughput (payload bits / busy seconds);
    ``reroutes``
        deliveries that travelled a backup path instead of the
        fault-free base route (``link_reroutes_total``, labelled by the
        logical src-dst pair — failover activity per endpoint pair);
    ``down_s``
        simulated seconds the *physical* edge spent down under fault
        injection (``link_down_seconds``, metered by the injector).

    Rows come back busiest-first.  Links that never carried traffic do
    not appear (the transport only mints the metrics on first use) —
    unless fault metering or rerouting touched them, in which case
    they appear with zero traffic so outages on idle edges stay
    visible.
    """
    bytes_by: dict = {}
    hist_by: dict = {}
    reroutes_by: dict = {}
    down_by: dict = {}
    for m in registry.collect():
        link = m.label_dict.get("link")
        if link is None:
            continue
        if m.name.endswith("link_bytes_total"):
            bytes_by[link] = bytes_by.get(link, 0) + int(m.value)
        elif m.name.endswith("link_transfer_s") and isinstance(m, Histogram):
            hist_by[link] = m
        elif m.name.endswith("link_reroutes_total"):
            reroutes_by[link] = reroutes_by.get(link, 0) + int(m.value)
        elif m.name.endswith("link_down_seconds"):
            down_by[link] = down_by.get(link, 0.0) + float(m.value)
    rows: List[dict] = []
    for link in sorted(set(bytes_by) | set(hist_by)
                       | set(reroutes_by) | set(down_by)):
        h = hist_by.get(link)
        nbytes = bytes_by.get(link, 0)
        busy = h.sum if h is not None else 0.0
        rows.append({
            "link": link,
            "messages": h.count if h is not None else 0,
            "bytes": nbytes,
            "busy_s": busy,
            "mean_ms": h.mean * 1e3 if h is not None and h.count else 0.0,
            "p95_ms": (h.quantile(0.95) * 1e3
                       if h is not None and h.count else 0.0),
            "mbps": nbytes * 8 / 1e6 / busy if busy > 0 else 0.0,
            "reroutes": reroutes_by.get(link, 0),
            "down_s": down_by.get(link, 0.0),
        })
    rows.sort(key=lambda r: (-r["busy_s"], r["link"]))
    return rows


def format_link_report(rows: Sequence[dict]) -> str:
    """Render :func:`link_stats` rows as a console table."""
    if not rows:
        return "no cross-device traffic recorded"
    lines = [f"{'link':>8s}{'msgs':>7s}{'bytes':>12s}{'busy s':>9s}"
             f"{'mean ms':>9s}{'p95 ms':>9s}{'Mbps':>8s}"
             f"{'rerte':>7s}{'down s':>9s}"]
    for r in rows:
        lines.append(
            f"{r['link']:>8s}{r['messages']:>7d}{r['bytes']:>12,d}"
            f"{r['busy_s']:>9.3f}{r['mean_ms']:>9.1f}{r['p95_ms']:>9.1f}"
            f"{r['mbps']:>8.1f}{r.get('reroutes', 0):>7d}"
            f"{r.get('down_s', 0.0):>9.2f}")
    total_b = sum(r["bytes"] for r in rows)
    total_m = sum(r["messages"] for r in rows)
    total_r = sum(r.get("reroutes", 0) for r in rows)
    busiest = rows[0]
    summary = (f"{len(rows)} links, {total_m} messages, "
               f"{total_b:,d} bytes; busiest {busiest['link']} "
               f"({busiest['busy_s']:.3f}s busy)")
    if total_r:
        summary += f"; {total_r} rerouted deliveries"
    lines.append(summary)
    return "\n".join(lines)


# -- console ---------------------------------------------------------------

def _label_suffix(m: Metric) -> str:
    if not m.labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in m.labels) + "}"


def console_report(registry: MetricsRegistry,
                   timelines: Sequence[RequestTimeline] = (),
                   show_timelines: int = 3,
                   max_timelines: Optional[int] = None) -> str:
    """Human-readable digest of the registry + a few sample timelines.

    ``show_timelines`` caps how many timelines are *rendered*.  It used
    to be called ``max_timelines``, which collided with the unrelated
    :class:`~repro.telemetry.hub.Telemetry` retention cap of the same
    name; the old keyword is kept as a deprecated alias.
    """
    if max_timelines is not None:
        warnings.warn(
            "console_report(max_timelines=...) is deprecated: it caps "
            "rendering, not retention (that is Telemetry.max_timelines)."
            " Use show_timelines=... instead.",
            DeprecationWarning, stacklevel=2)
        show_timelines = max_timelines
    lines: List[str] = ["== telemetry report =="]
    counters = [m for m in registry.collect() if isinstance(m, Counter)]
    gauges = [m for m in registry.collect() if isinstance(m, Gauge)]
    histos = [m for m in registry.collect() if isinstance(m, Histogram)]

    if counters:
        lines.append("-- counters --")
        for m in counters:
            lines.append(f"  {m.name + _label_suffix(m):<44s} "
                         f"{m.value:12.6g}")
    if gauges:
        lines.append("-- gauges --")
        for m in gauges:
            lines.append(f"  {m.name + _label_suffix(m):<44s} "
                         f"{m.value:12.6g}")
    if histos:
        lines.append("-- histograms (count / mean / p50 / p95 / p99) --")
        for m in histos:
            lines.append(
                f"  {m.name + _label_suffix(m):<44s} "
                f"{m.count:7d} {m.mean:10.4g} {m.quantile(0.5):10.4g} "
                f"{m.quantile(0.95):10.4g} {m.quantile(0.99):10.4g}")
    if timelines:
        lines.append(f"-- timelines ({len(timelines)} requests, "
                     f"showing {min(show_timelines, len(timelines))}) --")
        for tl in list(timelines)[:show_timelines]:
            lines.append(tl.render())
    return "\n".join(lines)
