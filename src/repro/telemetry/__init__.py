"""repro.telemetry — metrics, tracing and per-request timelines.

The observability layer for the whole serving stack.  Four pieces:

* :mod:`~repro.telemetry.metrics` — label-aware counters/gauges and
  fixed-memory streaming-quantile histograms in a
  :class:`MetricsRegistry` with child scoping;
* :mod:`~repro.telemetry.tracing` — nested :class:`Span` trees stamped
  with both simulated-clock and wall-clock time, plus a zero-overhead
  no-op mode;
* :mod:`~repro.telemetry.timeline` — :class:`RequestTimeline`, the
  flattened queue → decision → switch → execute → transfer story of one
  request, assembled from spans;
* :mod:`~repro.telemetry.export` — JSONL / Prometheus-text / console
  exporters over the registry and timelines;
* :mod:`~repro.telemetry.recorder` — :class:`RunRecorder`, a versioned
  JSONL capture of one serving run (arrivals, conditions, decisions,
  batches, spans) that :mod:`repro.eval.replay` re-derives statistics
  and figures from without re-simulating.

Everything hangs off one :class:`Telemetry` hub that instrumented
components accept as an optional constructor argument (``None`` = off)::

    from repro.telemetry import Telemetry
    tel = Telemetry()
    system = Murmuration(..., telemetry=tel)
    server = InferenceServer(system, arrival_rate_hz=4.0, telemetry=tel)
    server.run(num_requests=100)
    print(console_report(tel.registry, tel.timelines))
"""

from .export import (console_report, format_link_report, jsonl_records,
                     link_stats, prometheus_text, write_jsonl)
from .hub import Telemetry
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .recorder import (SCHEMA_VERSION, Recording, RunRecorder,
                       read_recordings, write_recordings)
from .timeline import RequestTimeline, TimelineEvent, stitch_timelines
from .tracing import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "RequestTimeline",
    "TimelineEvent",
    "stitch_timelines",
    "write_jsonl",
    "jsonl_records",
    "prometheus_text",
    "console_report",
    "link_stats",
    "format_link_report",
    "SCHEMA_VERSION",
    "Recording",
    "RunRecorder",
    "read_recordings",
    "write_recordings",
]
