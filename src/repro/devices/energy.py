"""Per-inference energy accounting (extension).

CoEdge (related work, Sec. 2.1) optimizes distributed inference for the
*energy* of IoT devices rather than latency; this module adds the same
lens to Murmuration's cost stack so energy-aware trade-off studies run
on the identical simulator output.

Model: each participating device draws ``idle_w`` for the whole
inference makespan, an extra ``active_w - idle_w`` while computing, and
pays per-byte radio costs for transmit/receive.  Typical values for the
catalog devices come from published Pi-4 (≈2.7 W idle, ≈6.4 W loaded)
and desktop-GPU measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..partition.simulate import LatencyReport
from .profiles import DeviceProfile

__all__ = ["EnergyProfile", "EnergyReport", "ENERGY_CATALOG",
           "energy_of_report"]


@dataclass(frozen=True)
class EnergyProfile:
    """Power/energy constants of one device."""

    idle_w: float
    active_w: float
    tx_nj_per_byte: float    # nanojoules per transmitted byte
    rx_nj_per_byte: float

    def compute_energy(self, busy_s: float, makespan_s: float) -> float:
        """Joules: idle draw for the makespan + active delta while busy."""
        busy = min(busy_s, makespan_s)
        return self.idle_w * makespan_s + (self.active_w - self.idle_w) * busy

    def network_energy(self, tx_bytes: float, rx_bytes: float) -> float:
        return (tx_bytes * self.tx_nj_per_byte
                + rx_bytes * self.rx_nj_per_byte) * 1e-9


#: Energy profiles keyed by device catalog name.
ENERGY_CATALOG: Dict[str, EnergyProfile] = {
    "rpi4": EnergyProfile(idle_w=2.7, active_w=6.4,
                          tx_nj_per_byte=180.0, rx_nj_per_byte=120.0),
    "desktop_gtx1080": EnergyProfile(idle_w=45.0, active_w=220.0,
                                     tx_nj_per_byte=60.0,
                                     rx_nj_per_byte=40.0),
    "jetson_class": EnergyProfile(idle_w=4.0, active_w=15.0,
                                  tx_nj_per_byte=120.0,
                                  rx_nj_per_byte=80.0),
}


@dataclass(frozen=True)
class EnergyReport:
    """Energy of one inference, per device and total."""

    per_device_j: Dict[int, float]
    compute_j: float
    network_j: float

    @property
    def total_j(self) -> float:
        return sum(self.per_device_j.values())

    @property
    def busiest_device(self) -> int:
        return max(self.per_device_j, key=self.per_device_j.get)  # type: ignore[arg-type]


def energy_of_report(report: LatencyReport,
                     devices: Sequence[DeviceProfile]) -> EnergyReport:
    """Energy of a simulated inference.

    Devices that neither compute nor communicate are treated as outside
    the deployment (no idle draw charged) — matching how CoEdge counts
    only participating nodes.
    """
    per_device: Dict[int, float] = {}
    compute_total = 0.0
    network_total = 0.0
    makespan = report.total_s
    for i, dev in enumerate(devices):
        busy = report.compute_s.get(i, 0.0)
        tx = report.tx_bytes.get(i, 0.0)
        rx = report.rx_bytes.get(i, 0.0)
        if busy == 0.0 and tx == 0.0 and rx == 0.0:
            continue
        if dev.name not in ENERGY_CATALOG:
            raise KeyError(f"no energy profile for device {dev.name!r}")
        ep = ENERGY_CATALOG[dev.name]
        e_compute = ep.compute_energy(busy, makespan)
        e_net = ep.network_energy(tx, rx)
        per_device[i] = e_compute + e_net
        compute_total += e_compute
        network_total += e_net
    return EnergyReport(per_device, compute_total, network_total)
