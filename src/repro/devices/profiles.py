"""Edge-device profiles.

The paper's testbed devices (Raspberry Pi 4; a desktop with an AMD Ryzen
5500 and an Nvidia GTX1080) are replaced by calibrated analytical
profiles.  Calibration anchors (batch-1 inference, fp32):

* MobileNetV3-Large @224 ≈ 450 ms on a Pi-4-class CPU (framework-bound
  fp32 PyTorch, matching the paper's Fig. 17 scale) and ≈ 4 ms on the
  GTX1080-class GPU (framework-bound small-batch throughput ~110 GFLOP/s,
  far below peak — consistent with published batch-1 PyTorch numbers).
* DenseNet161 ≈ 140 ms and ResNeXt101-32x8d ≈ 300 ms on the GPU class,
  which reproduces the paper's observation that Neurosurgeon with these
  models cannot meet a 140 ms latency SLO under any network condition
  (Fig. 13a).

``speed_factor`` expresses how fast the device runs *control-plane*
Python code (RL decision, evolutionary search) relative to this host;
Fig. 18's search-time experiment measures host wall-time and projects it
through this factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["DeviceProfile", "DEVICE_CATALOG", "get_device", "rpi4",
           "desktop_gtx1080", "jetson_class"]


@dataclass(frozen=True)
class DeviceProfile:
    """Static description of one compute device.

    Attributes
    ----------
    name : catalog identifier.
    kind : "cpu" or "gpu" — used for utilization heuristics.
    effective_flops : sustained batch-1 FLOP/s (2 x MAC convention).
    mem_bandwidth : sustained memory bandwidth, bytes/s (roofline term).
    block_overhead_s : fixed per-block dispatch overhead (framework +
        kernel launch), seconds.
    disk_read_bps : weight-loading throughput, bytes/s (model-switch cost).
    memory_bytes : RAM available for weights + activations.
    speed_factor : control-plane Python speed relative to the build host
        (1.0 = same speed; 0.05 = 20x slower).
    device_class : small integer fed to the RL state encoding.
    depthwise_penalty : slowdown factor for depthwise-separable blocks.
        Their low arithmetic intensity wastes CPU SIMD lanes: published
        batch-1 numbers show MobileNet-class nets achieving a small
        fraction of a CPU's dense-conv throughput, while GPUs are less
        affected.
    """

    name: str
    kind: str
    effective_flops: float
    mem_bandwidth: float
    block_overhead_s: float
    disk_read_bps: float
    memory_bytes: int
    speed_factor: float
    device_class: int
    depthwise_penalty: float = 1.0

    def compute_time(self, flops: float, mem_bytes: float = 0.0,
                     n_blocks: int = 1) -> float:
        """Roofline block latency: max(compute, memory) + dispatch."""
        t_compute = flops / self.effective_flops
        t_memory = mem_bytes / self.mem_bandwidth
        return max(t_compute, t_memory) + self.block_overhead_s * n_blocks

    def weight_load_time(self, weight_bytes: float) -> float:
        """Time to page model weights from storage into memory."""
        return weight_bytes / self.disk_read_bps


def rpi4() -> DeviceProfile:
    """Raspberry Pi 4 class device (quad A72 @1.5 GHz)."""
    return DeviceProfile(
        name="rpi4", kind="cpu",
        effective_flops=3.1e9,        # dense-conv fp32 batch-1 throughput
        mem_bandwidth=2.0e9,
        block_overhead_s=0.4e-3,
        disk_read_bps=90e6,           # SD-card class storage
        memory_bytes=4 * 1024 ** 3,
        speed_factor=0.065,           # ~15x slower Python than the host
        device_class=0,
        depthwise_penalty=2.5,        # MBConv nets run ~1 GFLOP/s effective
    )


def desktop_gtx1080() -> DeviceProfile:
    """Desktop with AMD Ryzen 5500 + Nvidia GTX1080 (batch-1 inference)."""
    return DeviceProfile(
        name="desktop_gtx1080", kind="gpu",
        effective_flops=110.0e9,      # framework-bound batch-1 throughput
        mem_bandwidth=60.0e9,
        block_overhead_s=0.25e-3,
        disk_read_bps=500e6,          # SATA SSD
        memory_bytes=8 * 1024 ** 3,
        speed_factor=1.0,
        device_class=1,
        depthwise_penalty=1.3,
    )


def jetson_class() -> DeviceProfile:
    """A mid-tier embedded GPU (used in extension experiments)."""
    return DeviceProfile(
        name="jetson_class", kind="gpu",
        effective_flops=25.0e9,
        mem_bandwidth=15.0e9,
        block_overhead_s=0.35e-3,
        disk_read_bps=200e6,
        memory_bytes=4 * 1024 ** 3,
        speed_factor=0.3,
        device_class=2,
        depthwise_penalty=1.5,
    )


DEVICE_CATALOG: Dict[str, object] = {
    "rpi4": rpi4,
    "desktop_gtx1080": desktop_gtx1080,
    "jetson_class": jetson_class,
}


def get_device(name: str) -> DeviceProfile:
    if name not in DEVICE_CATALOG:
        raise KeyError(f"unknown device {name!r}; available: {sorted(DEVICE_CATALOG)}")
    return DEVICE_CATALOG[name]()  # type: ignore[operator]
