"""Device profiles and per-device latency/switch-cost models."""

from .energy import (
    ENERGY_CATALOG,
    EnergyProfile,
    EnergyReport,
    energy_of_report,
)
from .latency import (
    block_time,
    graph_time,
    model_switch_time,
    supernet_reconfig_time,
)
from .profiles import (
    DEVICE_CATALOG,
    DeviceProfile,
    desktop_gtx1080,
    get_device,
    jetson_class,
    rpi4,
)

__all__ = [
    "DeviceProfile",
    "DEVICE_CATALOG",
    "get_device",
    "rpi4",
    "desktop_gtx1080",
    "jetson_class",
    "block_time",
    "graph_time",
    "model_switch_time",
    "supernet_reconfig_time",
    "EnergyProfile",
    "EnergyReport",
    "ENERGY_CATALOG",
    "energy_of_report",
]
