"""Per-block latency estimation on a device.

Bridges :class:`~repro.models.graph.ComputeBlock` and
:class:`~repro.devices.profiles.DeviceProfile` with the memory-traffic
estimate the roofline term needs, plus model-switch costs (Fig. 19).
"""

from __future__ import annotations

from typing import Optional

from ..models.graph import ComputeBlock, ModelGraph
from .profiles import DeviceProfile

__all__ = ["block_time", "graph_time", "model_switch_time",
           "supernet_reconfig_time"]

_FP32 = 4


def block_mem_bytes(block: ComputeBlock, in_elements: Optional[int] = None) -> float:
    """Approximate memory traffic of one block: read input + weights,
    write output (fp32)."""
    inp = in_elements if in_elements is not None else block.out_elements
    return _FP32 * (inp + block.out_elements) + block.weight_bytes


def block_time(block: ComputeBlock, device: DeviceProfile,
               in_elements: Optional[int] = None,
               flop_scale: float = 1.0) -> float:
    """Latency of one block on one device.

    ``flop_scale`` < 1 models a spatial tile (that fraction of the work);
    > 1 models FDSP padding overhead on top.
    """
    mem = block_mem_bytes(block, in_elements) * flop_scale
    flops = block.flops * flop_scale
    if block.depthwise:
        flops *= device.depthwise_penalty
    return device.compute_time(flops, mem, n_blocks=1)


def graph_time(graph: ModelGraph, device: DeviceProfile) -> float:
    """Whole-model single-device latency (no partitioning, no network)."""
    total = 0.0
    prev_elements = graph.input_elements
    for block in graph:
        total += block_time(block, device, in_elements=prev_elements)
        prev_elements = block.out_elements
    return total


def model_switch_time(graph: ModelGraph, device: DeviceProfile,
                      in_memory: bool = False) -> float:
    """Time to switch to ``graph`` on ``device``.

    ``in_memory=False`` models loading a different fixed model: weights
    are paged from storage and the runtime graph is rebuilt.  The paper's
    Fig. 19 compares this against Murmuration's in-memory supernet
    reconfiguration.
    """
    if in_memory:
        return supernet_reconfig_time(len(graph), device)
    load = device.weight_load_time(graph.total_weight_bytes)
    rebuild = 0.002 * len(graph) / max(device.speed_factor, 1e-6)
    return load + rebuild


def supernet_reconfig_time(num_blocks: int, device: DeviceProfile) -> float:
    """In-memory submodel switch: per-block pointer/flag updates only.

    No weight copies or disk access — this is the design choice Section
    5.1 motivates, giving millisecond-scale switches.
    """
    per_block = 25e-6 / max(device.speed_factor, 1e-6)
    return num_blocks * per_block
