"""Command-line figure runner.

``python -m repro.cli <figure>`` regenerates one of the paper's
evaluation figures and prints its series — a thin convenience wrapper
over :mod:`repro.eval` (the pytest benchmarks add assertions on top).

    python -m repro.cli list
    python -m repro.cli fig13 --slo-ms 140
    python -m repro.cli fig17
    python -m repro.cli vit
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .eval import (fig13_augmented_accuracy, fig14_swarm_accuracy,
                   fig15_accuracy_slo_latency, fig16a_compliance_augmented,
                   fig16b_compliance_swarm, fig17_scalability,
                   fig18_search_time, fig19_switch_time,
                   format_accuracy_grid, format_compliance,
                   format_latency_grid, format_scalability,
                   format_search_time, format_switch_time)

__all__ = ["main"]


def _fig13(args) -> str:
    data = fig13_augmented_accuracy(latency_slo_ms=args.slo_ms)
    return format_accuracy_grid(data)


def _fig14(args) -> str:
    return format_accuracy_grid(fig14_swarm_accuracy(),
                                row_label="slo_ms", col_label="bw")


def _fig15(args) -> str:
    return format_latency_grid(fig15_accuracy_slo_latency())


def _fig16(args) -> str:
    a = format_compliance(fig16a_compliance_augmented())
    b = format_compliance(fig16b_compliance_swarm())
    return f"-- Fig 16a (augmented) --\n{a}\n\n-- Fig 16b (swarm) --\n{b}"


def _fig17(args) -> str:
    return format_scalability(fig17_scalability())


def _fig18(args) -> str:
    return format_search_time(fig18_search_time())


def _fig19(args) -> str:
    return format_switch_time(fig19_switch_time())


def _vit(args) -> str:
    from .devices import rpi4
    from .models import vit_small_16
    from .netsim import Cluster, NetworkCondition
    from .partition import (Grid, simulate_latency, single_device_plan,
                            spatial_plan)

    v = vit_small_16()
    lines = ["ViT-S/16 patch-parallel on a 5-Pi swarm (latency, s)",
             f"{'bw Mbps':>8s}{'single':>9s}{'patch-par':>11s}"]
    for bw in (5.0, 20.0, 100.0, 1000.0):
        cl = Cluster([rpi4() for _ in range(5)],
                     NetworkCondition((bw,) * 4, (2.0,) * 4))
        single = simulate_latency(v, single_device_plan(v), cl).total_s
        pp = simulate_latency(v, spatial_plan(v, Grid(2, 2), [0, 1, 2, 3]),
                              cl).total_s
        lines.append(f"{bw:8.0f}{single:9.2f}{pp:11.2f}")
    return "\n".join(lines)


_COMMANDS = {
    "fig13": (_fig13, "accuracy grid @ latency SLO (augmented)"),
    "fig14": (_fig14, "swarm accuracy vs bandwidth per SLO"),
    "fig15": (_fig15, "latency under accuracy SLOs"),
    "fig16": (_fig16, "SLO compliance rates"),
    "fig17": (_fig17, "scaling with device count"),
    "fig18": (_fig18, "decision time: evolutionary vs RL"),
    "fig19": (_fig19, "model switch time"),
    "vit": (_vit, "extension: ViT patch-parallel inference"),
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate figures from the Murmuration paper.")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available figures")
    for name, (_, help_text) in _COMMANDS.items():
        p = sub.add_parser(name, help=help_text)
        if name == "fig13":
            p.add_argument("--slo-ms", type=float, default=140.0,
                           help="latency SLO in milliseconds")
    args = parser.parse_args(argv)

    if args.command in (None, "list"):
        print("available figures:")
        for name, (_, help_text) in _COMMANDS.items():
            print(f"  {name:7s} {help_text}")
        return 0
    fn, _ = _COMMANDS[args.command]
    print(fn(args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
