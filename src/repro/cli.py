"""Command-line figure runner.

``python -m repro.cli <figure>`` regenerates one of the paper's
evaluation figures and prints its series — a thin convenience wrapper
over :mod:`repro.eval` (the pytest benchmarks add assertions on top).

    python -m repro.cli list
    python -m repro.cli fig13 --slo-ms 140
    python -m repro.cli fig17
    python -m repro.cli vit
    python -m repro.cli telemetry --requests 60 --out telemetry.jsonl
    python -m repro.cli links
    python -m repro.cli control --requests 120
    python -m repro.cli record --requests 40 --out run.jsonl
    python -m repro.cli replay run.jsonl --verify
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .eval import (fig13_augmented_accuracy, fig14_swarm_accuracy,
                   fig15_accuracy_slo_latency, fig16a_compliance_augmented,
                   fig16b_compliance_swarm, fig17_scalability,
                   fig18_search_time, fig19_switch_time,
                   format_accuracy_grid, format_compliance,
                   format_latency_grid, format_scalability,
                   format_search_time, format_switch_time)

__all__ = ["main"]


def _fig13(args) -> str:
    data = fig13_augmented_accuracy(latency_slo_ms=args.slo_ms)
    return format_accuracy_grid(data)


def _fig14(args) -> str:
    return format_accuracy_grid(fig14_swarm_accuracy(),
                                row_label="slo_ms", col_label="bw")


def _fig15(args) -> str:
    return format_latency_grid(fig15_accuracy_slo_latency())


def _fig16(args) -> str:
    a = format_compliance(fig16a_compliance_augmented())
    b = format_compliance(fig16b_compliance_swarm())
    return f"-- Fig 16a (augmented) --\n{a}\n\n-- Fig 16b (swarm) --\n{b}"


def _fig17(args) -> str:
    return format_scalability(fig17_scalability())


def _fig18(args) -> str:
    return format_search_time(fig18_search_time())


def _fig19(args) -> str:
    return format_switch_time(fig19_switch_time())


def _vit(args) -> str:
    from .devices import rpi4
    from .models import vit_small_16
    from .netsim import Cluster, NetworkCondition
    from .partition import (Grid, simulate_latency, single_device_plan,
                            spatial_plan)

    v = vit_small_16()
    lines = ["ViT-S/16 patch-parallel on a 5-Pi swarm (latency, s)",
             f"{'bw Mbps':>8s}{'single':>9s}{'patch-par':>11s}"]
    for bw in (5.0, 20.0, 100.0, 1000.0):
        cl = Cluster([rpi4() for _ in range(5)],
                     NetworkCondition((bw,) * 4, (2.0,) * 4))
        single = simulate_latency(v, single_device_plan(v), cl).total_s
        pp = simulate_latency(v, spatial_plan(v, Grid(2, 2), [0, 1, 2, 3]),
                              cl).total_s
        lines.append(f"{bw:8.0f}{single:9.2f}{pp:11.2f}")
    return "\n".join(lines)


def _chaos(args) -> str:
    """Chaos run: star crash-and-recover, or link-level mesh (--mesh)."""
    from dataclasses import replace

    if args.mesh:
        from .eval.mesh_chaos import (MeshChaosConfig, format_mesh_chaos,
                                      run_mesh_chaos)

        mcfg = MeshChaosConfig(seed=args.seed, slo_ms=args.slo_ms,
                               topology=args.topology)
        if args.requests is not None:
            mcfg = replace(mcfg, num_requests=args.requests)
        mreports = run_mesh_chaos(mcfg)
        mrep = mreports["murmuration"]
        return (format_mesh_chaos(mreports)
                + f"\n\nresilient completion: {mrep.completion:.0%}, "
                f"reroutes={mrep.reroutes}, failovers={mrep.failovers}")

    from .eval.chaos import ChaosConfig, format_chaos, run_chaos

    cfg = ChaosConfig(seed=args.seed, slo_ms=args.slo_ms)
    if args.requests is not None:
        cfg = replace(cfg, num_requests=args.requests)
    reports = run_chaos(cfg)
    rep = reports["murmuration"]
    return (format_chaos(reports)
            + f"\n\nresilient completion: {rep.completion:.0%}, "
            f"retries={rep.retries}, failovers={rep.failovers}")


def _serve(args) -> str:
    """Serve a Poisson stream; ``--batch N`` enables the batched pipeline."""
    from dataclasses import replace

    from .eval.serving_load import (ServingLoadConfig, _make_system,
                                    _trace, format_serving_load,
                                    run_serving_load)
    from .runtime import BatchingInferenceServer, BatchPolicy, InferenceServer

    if getattr(args, "tenants", None):
        from .eval.multi_tenant import (MultiTenantConfig, default_tenants,
                                        format_multi_tenant,
                                        run_multi_tenant)

        tcfg = MultiTenantConfig(tenants=default_tenants(args.tenants),
                                 seed=args.seed, slo_ms=args.slo_ms,
                                 fluid=bool(getattr(args, "fluid", False)))
        if args.requests is not None:
            tcfg = replace(tcfg, num_requests=args.requests)
        steps = getattr(args, "mid_flight", None)
        reports = run_multi_tenant(
            tcfg, ingress_step_mbps=steps,
            ingress_step_period_s=getattr(args, "step_period", 1.0))
        if getattr(args, "json", False):
            # canonical key order + repr floats: two identical seeded
            # runs must print byte-identical JSON (CI determinism check)
            import json

            payload = {
                "config": {"tenants": args.tenants, "seed": tcfg.seed,
                           "requests": tcfg.num_requests,
                           "slo_ms": tcfg.slo_ms, "fluid": tcfg.fluid},
                # key present only when stepping: the default payload
                # stays byte-identical to pre-event-core builds
                **({"mid_flight": {"mbps": list(steps),
                                   "period_s": args.step_period}}
                   if steps else {}),
                "variants": {
                    name: {
                        "e2e_compliance": rep.e2e_compliance,
                        "worst_tenant_compliance":
                            rep.worst_tenant_compliance,
                        "tenants": rep.tenant_compliance(),
                        "shed": rep.shed,
                        "contended": (rep.tracker.contended_total
                                      if rep.tracker is not None else None),
                    } for name, rep in reports.items()},
            }
            return json.dumps(payload, sort_keys=True)
        fifo, fair = reports["fifo"], reports["fair"]
        sharing = "fluid max-min" if tcfg.fluid else "snapshot"
        stepping = ""
        if steps:
            trace = "->".join(f"{s:g}" for s in steps)
            stepping = (f"\nmid-flight ingress steps: {trace} Mbps "
                        f"every {args.step_period:g}s (scheduled events)")
        return (format_multi_tenant(reports)
                + f"\n\ningress sharing: {sharing}"
                + stepping
                + f"\nworst-tenant e2e compliance: fifo "
                f"{fifo.worst_tenant_compliance:.0%} -> fair "
                f"{fair.worst_tenant_compliance:.0%} "
                f"(shed {fair.shed})")

    # --compare keeps the scenario's default batch size unless overridden;
    # the single-server path defaults to plain FIFO.
    batch = args.batch if args.batch is not None else (
        ServingLoadConfig().max_batch if args.compare else 1)
    cfg = ServingLoadConfig(seed=args.seed, slo_ms=args.slo_ms,
                            arrival_rate_hz=args.rate,
                            max_batch=batch,
                            max_wait_s=args.wait_ms / 1e3)
    if args.requests is not None:
        cfg = replace(cfg, num_requests=args.requests)
    if args.compare:
        return format_serving_load(run_serving_load(cfg))
    system = _make_system(cfg)
    if batch > 1:
        server = BatchingInferenceServer(
            system, arrival_rate_hz=cfg.arrival_rate_hz,
            policy=BatchPolicy(max_batch=cfg.max_batch,
                               max_wait_s=cfg.max_wait_s),
            seed=cfg.seed + 1)
    else:
        server = InferenceServer(system, arrival_rate_hz=cfg.arrival_rate_hz,
                                 seed=cfg.seed + 1)
    stats = server.run(num_requests=cfg.num_requests,
                       condition_trace=_trace(cfg),
                       trace_period_s=cfg.trace_period_s)
    return stats.summary()


def _telemetry(args) -> str:
    """Run an instrumented serving scenario; dump report + exports."""
    from .core import SLO, Murmuration, SearchDecisionEngine
    from .devices import desktop_gtx1080, rpi4
    from .nas import MBV3_SPACE
    from .netsim import NetworkCondition, TraceConfig, random_walk_trace
    from .runtime import InferenceServer
    from .telemetry import (Telemetry, console_report, prometheus_text,
                            write_jsonl)

    tel = Telemetry()
    devices = [rpi4(), desktop_gtx1080()]
    system = Murmuration(
        MBV3_SPACE, devices, NetworkCondition((80.0,), (30.0,)),
        SearchDecisionEngine(MBV3_SPACE, devices, n_random_archs=4),
        slo=SLO.latency_ms(args.slo_ms), use_predictor=False,
        monitor_noise=0.02, seed=0, telemetry=tel)
    server = InferenceServer(system, arrival_rate_hz=args.rate, seed=1,
                             telemetry=tel)
    trace = random_walk_trace(TraceConfig(
        num_remote=1, bw_range=(25.0, 120.0), delay_range=(15.0, 70.0),
        steps=30, seed=1))
    server.run(num_requests=args.requests, condition_trace=trace,
               trace_period_s=0.5)

    lines = write_jsonl(args.out, tel.registry, tel.timelines)
    report = console_report(tel.registry, tel.timelines)
    footer = [f"\nwrote {lines} JSONL records to {args.out}"]
    if args.prom:
        with open(args.prom, "w") as fh:
            fh.write(prometheus_text(tel.registry))
        footer.append(f"wrote Prometheus text to {args.prom}")
    return report + "\n" + "\n".join(footer)


def _control(args) -> str:
    """Adaptive-control run: static vs controlled serving under a burst."""
    from dataclasses import replace

    from .eval.adaptive import AdaptiveConfig, format_adaptive, run_adaptive

    cfg = AdaptiveConfig(seed=args.seed, slo_ms=args.slo_ms,
                         arrival_rate_hz=args.rate)
    if args.requests is not None:
        cfg = replace(cfg, num_requests=args.requests)
    reports = run_adaptive(cfg)
    static, controlled = reports["static"], reports["controlled"]
    return (format_adaptive(reports)
            + f"\n\ne2e compliance: static {static.e2e_compliance:.0%} -> "
            f"controlled {controlled.e2e_compliance:.0%} "
            f"(shed {controlled.shed}, degraded {controlled.degraded})")


def _links(args) -> str:
    """Per-link congestion dashboard over the transport's link metrics.

    Without ``--jsonl``, runs a small distributed-execution demo (one
    layerwise split per remote plus a 2x2 spatial plan over a 4-device
    swarm with deliberately unequal links) so the report shows real
    traffic; with ``--jsonl`` it reads a previous ``telemetry`` export.
    """
    import json

    from .telemetry import format_link_report, link_stats

    if args.jsonl is not None:
        from .telemetry.metrics import MetricsRegistry

        reg = MetricsRegistry()
        try:
            with open(args.jsonl) as fh:
                for line in fh:
                    rec = json.loads(line)
                    if rec.get("record") != "metric":
                        continue
                    link = rec.get("labels", {}).get("link")
                    if link is None:
                        continue
                    name = rec["name"]
                    if name.endswith(("link_bytes_total",
                                      "link_reroutes_total",
                                      "link_down_seconds")):
                        reg.counter(name, link=link).inc(rec["value"])
                    elif name.endswith("link_transfer_s"):
                        # rebuild the histogram's shape from its summary:
                        # counts at the mean reproduce count/sum exactly
                        # (quantiles are approximate by construction)
                        h = reg.histogram(name, link=link)
                        for _ in range(int(rec["count"])):
                            h.observe(rec["mean"])
        except OSError as exc:
            raise SystemExit(f"cannot read telemetry export: {exc}")
        return format_link_report(link_stats(reg))

    import numpy as np

    from .devices import desktop_gtx1080, jetson_class, rpi4
    from .nas import Supernet, build_graph, max_arch, tiny_space
    from .netsim import Cluster, NetworkCondition
    from .partition import Grid, layerwise_split_plan, spatial_plan
    from .runtime import DistributedExecutor
    from .telemetry import Telemetry

    tel = Telemetry()
    space = tiny_space()
    net = Supernet(space, seed=args.seed).eval()
    tracker = None
    if getattr(args, "fluid", False):
        from .netsim import FluidTracker

        tracker = FluidTracker(telemetry=tel)
    cluster = Cluster(
        [rpi4(), desktop_gtx1080(), jetson_class(), rpi4()],
        NetworkCondition((300.0, 80.0, 25.0), (5.0, 20.0, 40.0)),
        contention=tracker)
    ex = DistributedExecutor(net, cluster, telemetry=tel)
    arch = max_arch(space)
    graph = build_graph(arch, space)
    x = np.random.default_rng(args.seed).normal(size=(1, 3, 32, 32))
    for remote in (1, 2, 3):
        ex.execute(x, arch, layerwise_split_plan(graph, len(graph) // 2,
                                                 remote=remote))
    ex.execute(x, arch, spatial_plan(graph, Grid(2, 2), [0, 1, 2, 3]))
    report = ("demo: 3 layerwise splits + one 2x2 spatial plan, "
              "4-device swarm with unequal links\n\n"
              + format_link_report(link_stats(tel.registry)))
    if tracker is not None:
        tracker.drain()  # run in-flight flows to completion for stats
        s = tracker.stats()
        report += (f"\n\nfluid solver: {s['flows']:.0f} flows priced, "
                   f"{s['contended']:.0f} contended, "
                   f"peak share {s['peak_share']:.0f}, "
                   f"{s['segments']:.0f} rate segments")
    return report


def _record(args) -> str:
    """Capture a seeded serving-load run as a replayable recording."""
    from dataclasses import replace

    from .eval.serving_load import ServingLoadConfig, run_serving_load
    from .telemetry import Telemetry, write_recordings

    cfg = ServingLoadConfig(seed=args.seed, slo_ms=args.slo_ms,
                            arrival_rate_hz=args.rate,
                            max_batch=args.batch,
                            max_wait_s=args.wait_ms / 1e3)
    if args.requests is not None:
        cfg = replace(cfg, num_requests=args.requests)
    tel = Telemetry() if args.timelines else None
    reports = run_serving_load(cfg, telemetry=tel, record=True)
    lines = write_recordings(
        args.out, [rep.recorder for rep in reports.values()])
    summaries = [f"  {rep.name}: {rep.stats.summary()}"
                 for rep in reports.values()]
    return ("\n".join(summaries)
            + f"\nwrote {lines} recording lines "
            f"({len(reports)} runs) to {args.out}")


def _replay(args) -> str:
    """Re-derive serving stats from a recording; optionally verify."""
    from .eval.replay import (format_replay, load_recordings, rerecord,
                              replay_serving_load, replay_stats,
                              verify_invariants)
    from .eval.serving_load import format_serving_load

    try:
        recs = load_recordings(args.recording)
    except OSError as exc:
        raise SystemExit(f"cannot read recording: {exc}")
    if not recs:
        raise SystemExit(f"{args.recording}: no recorded runs found")
    lines = [format_replay(recs)]
    if all(rec.scenario == "serving_load" for rec in recs):
        lines.append("")
        lines.append(format_serving_load(replay_serving_load(recs)))
    problems = []
    for rec in recs:
        problems += [f"{rec.variant}: {p}" for p in verify_invariants(rec)]
    if problems:
        raise SystemExit("recording fails serving invariants:\n  "
                         + "\n  ".join(problems))
    lines.append(f"\ninvariants ok across {len(recs)} runs")
    if args.verify:
        for rec in recs:
            fresh = rerecord(rec)
            if replay_stats(fresh.recording()) != replay_stats(rec):
                raise SystemExit(
                    f"verify failed: live re-run of {rec.scenario}/"
                    f"{rec.variant} disagrees with the recording")
        lines.append(f"verified: live re-runs match all "
                     f"{len(recs)} recorded runs")
    return "\n".join(lines)


_COMMANDS = {
    "fig13": (_fig13, "accuracy grid @ latency SLO (augmented)"),
    "fig14": (_fig14, "swarm accuracy vs bandwidth per SLO"),
    "fig15": (_fig15, "latency under accuracy SLOs"),
    "fig16": (_fig16, "SLO compliance rates"),
    "fig17": (_fig17, "scaling with device count"),
    "fig18": (_fig18, "decision time: evolutionary vs RL"),
    "fig19": (_fig19, "model switch time"),
    "vit": (_vit, "extension: ViT patch-parallel inference"),
    "chaos": (_chaos,
              "fault injection: crash-and-recover serving; --mesh for "
              "link-level faults on multi-hop topologies"),
    "serve": (_serve,
              "serving loop under load; --batch N for the batched "
              "pipeline; --tenants N for multi-tenant fairness "
              "(--fluid for max-min ingress sharing)"),
    "telemetry": (_telemetry,
                  "instrumented serving run: report + JSONL/Prometheus"),
    "links": (_links,
              "per-link congestion dashboard over transport_link_* "
              "metrics; --jsonl reads a telemetry export"),
    "control": (_control,
                "adaptive control plane: static vs controlled serving "
                "under an overload burst"),
    "record": (_record,
               "capture a seeded serving-load run as a replayable JSONL "
               "recording"),
    "replay": (_replay,
               "re-derive serving stats/figures from a recording; "
               "--verify re-runs live and diffs"),
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate figures from the Murmuration paper.")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available figures")
    for name, (_, help_text) in _COMMANDS.items():
        p = sub.add_parser(name, help=help_text)
        if name == "fig13":
            p.add_argument("--slo-ms", type=float, default=140.0,
                           help="latency SLO in milliseconds")
        elif name == "chaos":
            p.add_argument("--requests", type=int, default=None,
                           help="requests to serve (default 60)")
            p.add_argument("--slo-ms", type=float, default=400.0,
                           help="latency SLO in milliseconds")
            p.add_argument("--seed", type=int, default=0,
                           help="seed for arrivals/noise/fault draws")
            p.add_argument("--mesh", action="store_true",
                           help="link-level mesh chaos instead of star "
                                "crash-and-recover")
            p.add_argument("--topology", choices=("ring", "line", "mesh"),
                           default="ring",
                           help="mesh topology for --mesh (default ring)")
        elif name == "serve":
            p.add_argument("--requests", type=int, default=None,
                           help="requests to serve (default 120)")
            p.add_argument("--rate", type=float, default=40.0,
                           help="Poisson arrival rate (req/s)")
            p.add_argument("--slo-ms", type=float, default=300.0,
                           help="latency SLO in milliseconds")
            p.add_argument("--batch", type=int, default=None,
                           help="max batch size (1 = plain FIFO; "
                                "--compare defaults to 8)")
            p.add_argument("--wait-ms", type=float, default=0.0,
                           help="batch fill timeout in milliseconds")
            p.add_argument("--seed", type=int, default=0,
                           help="seed for arrivals/noise/trace draws")
            p.add_argument("--compare", action="store_true",
                           help="run fifo vs batched vs batched-serial")
            p.add_argument("--tenants", type=int, default=None,
                           help="multi-tenant mode: N tenants share one "
                                "ingress (first one bursts); compares "
                                "fifo/admission/fair variants")
            p.add_argument("--fluid", action="store_true",
                           help="price the shared ingress with the "
                                "fluid-flow (max-min) solver instead of "
                                "the arrival-order snapshot (--tenants)")
            p.add_argument("--json", action="store_true",
                           help="print a canonical JSON summary instead "
                                "of the table (--tenants; byte-stable "
                                "across identically seeded runs)")
            p.add_argument("--mid-flight", type=float, nargs="+",
                           default=None, metavar="MBPS",
                           help="step the shared ingress capacity through "
                                "these Mbps values as scheduled events; "
                                "in-flight uploads re-converge at each "
                                "step instant (--tenants)")
            p.add_argument("--step-period", type=float, default=1.0,
                           metavar="S",
                           help="seconds each --mid-flight step holds "
                                "(default 1.0)")
        elif name == "telemetry":
            p.add_argument("--requests", type=int, default=60,
                           help="requests to serve")
            p.add_argument("--rate", type=float, default=4.0,
                           help="Poisson arrival rate (req/s)")
            p.add_argument("--slo-ms", type=float, default=200.0,
                           help="latency SLO in milliseconds")
            p.add_argument("--out", default="telemetry.jsonl",
                           help="JSONL export path")
            p.add_argument("--prom", default=None,
                           help="also write Prometheus text to this path")
        elif name == "links":
            p.add_argument("--jsonl", default=None,
                           help="read link metrics from a telemetry JSONL "
                                "export instead of running the demo")
            p.add_argument("--seed", type=int, default=0,
                           help="seed for the demo's supernet and input")
            p.add_argument("--fluid", action="store_true",
                           help="attach the fluid-flow (max-min) solver "
                                "to the demo cluster and report its "
                                "pricing stats")
        elif name == "control":
            p.add_argument("--requests", type=int, default=None,
                           help="requests to serve (default 240)")
            p.add_argument("--rate", type=float, default=8.0,
                           help="baseline Poisson arrival rate (req/s)")
            p.add_argument("--slo-ms", type=float, default=300.0,
                           help="latency SLO in milliseconds")
            p.add_argument("--seed", type=int, default=0,
                           help="seed for arrivals/noise/trace draws")
        elif name == "record":
            p.add_argument("--requests", type=int, default=None,
                           help="requests to serve (default 120)")
            p.add_argument("--rate", type=float, default=40.0,
                           help="Poisson arrival rate (req/s)")
            p.add_argument("--slo-ms", type=float, default=300.0,
                           help="latency SLO in milliseconds")
            p.add_argument("--batch", type=int, default=8,
                           help="max batch size for the batched variants")
            p.add_argument("--wait-ms", type=float, default=0.0,
                           help="batch fill timeout in milliseconds")
            p.add_argument("--seed", type=int, default=0,
                           help="seed for arrivals/noise/trace draws")
            p.add_argument("--timelines", action="store_true",
                           help="also capture per-request span timelines "
                                "(batched variant)")
            p.add_argument("--out", default="recording.jsonl",
                           help="recording JSONL path")
        elif name == "replay":
            p.add_argument("recording",
                           help="recording JSONL path (from `record`)")
            p.add_argument("--verify", action="store_true",
                           help="re-run the recorded scenario live and "
                                "fail on any stats mismatch")
    args = parser.parse_args(argv)

    if getattr(args, "requests", None) is not None and args.requests <= 0:
        parser.error(f"--requests must be positive, got {args.requests}")
    if getattr(args, "batch", None) is not None and args.batch < 1:
        parser.error(f"--batch must be positive, got {args.batch}")
    if getattr(args, "tenants", None) is not None and args.tenants < 1:
        parser.error(f"--tenants must be positive, got {args.tenants}")
    if args.command in (None, "list"):
        print("available figures:")
        for name, (_, help_text) in _COMMANDS.items():
            print(f"  {name:7s} {help_text}")
        return 0
    fn, _ = _COMMANDS[args.command]
    print(fn(args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
