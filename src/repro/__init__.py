"""Murmuration reproduction: SLO-aware distributed DNN inference with
on-the-fly model adaptation (ICPP '24).

Public API tour
---------------
* :mod:`repro.core` — the :class:`~repro.core.Murmuration` facade, SLO
  API, decision engines and strategy cache.
* :mod:`repro.nas` — one-shot NAS: search space, executable supernet,
  progressive-shrinking training, accuracy models, evolutionary search.
* :mod:`repro.rl` — the goal-conditioned environment, the LSTM policy,
  SUPREME and the GCSL/PPO baselines.
* :mod:`repro.partition` — FDSP spatial tiling, execution plans and the
  distributed-latency simulator.
* :mod:`repro.devices` / :mod:`repro.netsim` — calibrated device
  profiles, links, condition grids, traces and monitoring.
* :mod:`repro.baselines` — Neurosurgeon and ADCNN on the fixed-model zoo.
* :mod:`repro.eval` — per-figure experiment drivers.
"""

from .core import SLO, Murmuration, RLDecisionEngine, SearchDecisionEngine

__version__ = "1.0.0"

__all__ = [
    "Murmuration",
    "SLO",
    "RLDecisionEngine",
    "SearchDecisionEngine",
    "__version__",
]
