"""Goal-Conditioned Supervised Learning baseline (Ghosh et al. 2019).

The vanilla iterated-imitation loop the paper compares against: collect
trajectories with the current policy, hindsight-relabel each to the goal
it actually achieved, store in a flat FIFO replay buffer, and train the
policy by supervised imitation on relabeled (goal, trajectory) pairs.

SUPREME (``repro.rl.supreme``) keeps this training rule but replaces the
flat buffer with the bucketed/shared/pruned/mutated one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.optim import Adam
from .common import (TrainingHistory, bootstrap_actions, evaluate_policy,
                     satisfiable_mask, supervised_update)
from .env import MurmurationEnv, Task
from .policy import LSTMPolicy, PolicyConfig

__all__ = ["GCSLConfig", "GCSLTrainer"]


@dataclass
class GCSLConfig:
    total_steps: int = 2000          # collected episodes
    rollout_batch: int = 16
    train_batch: int = 32
    train_every: int = 1             # updates per collection round
    buffer_size: int = 4000
    lr: float = 1e-3
    eval_every: int = 200
    eval_points: int = 4
    seed: int = 0


@dataclass
class _Relabeled:
    goal_values: Tuple[float, ...]
    actions: np.ndarray


class GCSLTrainer:
    """Plain GCSL over the Murmuration environment."""

    def __init__(self, env: MurmurationEnv, config: Optional[GCSLConfig] = None,
                 policy: Optional[LSTMPolicy] = None):
        self.env = env
        self.cfg = config or GCSLConfig()
        self.rng = np.random.default_rng(self.cfg.seed)
        self.policy = policy or LSTMPolicy.for_env(
            env, PolicyConfig(seed=self.cfg.seed))
        self.opt = Adam(self.policy.parameters(), lr=self.cfg.lr)
        self.buffer: Deque[_Relabeled] = deque(maxlen=self.cfg.buffer_size)
        self.history = TrainingHistory()
        self._bootstrap()

    def _bootstrap(self) -> None:
        """Seed the buffer with the max/min-submodel trajectories."""
        task = self.env.sample_task(self.rng)
        for actions in bootstrap_actions(self.env):
            outcome = self.env.evaluate_actions(actions, task)
            self.buffer.append(_Relabeled(
                self.env.achieved_values(outcome, task), actions))

    # -- internals -------------------------------------------------------
    def _collect(self) -> None:
        cfg = self.cfg
        tasks = [self.env.sample_task(self.rng)
                 for _ in range(cfg.rollout_batch)]
        contexts = np.stack([self.env.encode_task(t) for t in tasks])
        batch = self.policy.rollout(contexts, self.env.schedule, self.rng)
        for i, task in enumerate(tasks):
            outcome = self.env.evaluate_actions(batch.actions[i], task)
            self.buffer.append(_Relabeled(
                self.env.achieved_values(outcome, task),
                batch.actions[i].copy()))

    def _train_batch(self) -> Optional[float]:
        cfg = self.cfg
        if not self.buffer:
            return None
        n = min(cfg.train_batch, len(self.buffer))
        picks = self.rng.integers(0, len(self.buffer), n)
        entries = [self.buffer[int(i)] for i in picks]
        contexts = np.stack([
            self.env.encode_task(self.env.task_from_values(e.goal_values))
            for e in entries])
        actions = np.stack([e.actions for e in entries])
        return supervised_update(self.policy, self.opt, self.env,
                                 contexts, actions)

    # -- driver -----------------------------------------------------------
    def train(self, eval_tasks: Optional[Sequence[Task]] = None,
              eval_mask: Optional[np.ndarray] = None) -> TrainingHistory:
        cfg = self.cfg
        if eval_tasks is None:
            eval_tasks = self.env.validation_tasks(cfg.eval_points)
        if eval_mask is None:
            eval_mask = satisfiable_mask(self.env, eval_tasks)
        collected = 0
        while collected < cfg.total_steps:
            self._collect()
            collected += cfg.rollout_batch
            for _ in range(cfg.train_every):
                loss = self._train_batch()
                if loss is not None:
                    self.history.losses.append(loss)
            if (collected % cfg.eval_every) < cfg.rollout_batch:
                res = evaluate_policy(self.policy, self.env, eval_tasks,
                                      eval_mask)
                self.history.record(collected, res)
        return self.history
