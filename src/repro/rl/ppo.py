"""Proximal Policy Optimization baseline (Schulman et al. 2017).

On-policy comparison point for SUPREME (Fig. 11/12).  The episode yields
a single terminal reward (Eq. 2/3), so returns are constant across the
step sequence and the learned value head (conditioned on the LSTM hidden
state) provides the baseline.  Uses the standard clipped surrogate with
an entropy bonus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..nn import functional as F
from ..nn.optim import Adam, clip_grad_norm
from .common import TrainingHistory, evaluate_policy, satisfiable_mask
from .env import MurmurationEnv, Task
from .policy import LSTMPolicy, PolicyConfig

__all__ = ["PPOConfig", "PPOTrainer"]


@dataclass
class PPOConfig:
    total_steps: int = 2000          # collected episodes
    rollout_batch: int = 16
    epochs_per_batch: int = 3
    clip: float = 0.2
    lr: float = 3e-4
    value_coef: float = 0.5
    entropy_coef: float = 0.01
    max_grad_norm: float = 5.0
    eval_every: int = 200
    eval_points: int = 4
    seed: int = 0


class PPOTrainer:
    def __init__(self, env: MurmurationEnv, config: Optional[PPOConfig] = None,
                 policy: Optional[LSTMPolicy] = None):
        self.env = env
        self.cfg = config or PPOConfig()
        self.rng = np.random.default_rng(self.cfg.seed)
        self.policy = policy or LSTMPolicy.for_env(
            env, PolicyConfig(seed=self.cfg.seed))
        self.opt = Adam(self.policy.parameters(), lr=self.cfg.lr)
        self.history = TrainingHistory()
        self._collected = 0

    def _ppo_update(self, contexts: np.ndarray, actions: np.ndarray,
                    old_logps: np.ndarray, returns: np.ndarray) -> float:
        """One clipped-surrogate epoch over a rollout batch."""
        cfg = self.cfg
        b, t = actions.shape
        logits_list, values_list = self.policy.teacher_forward(
            contexts, actions, self.env.schedule)
        values = np.stack(values_list, axis=1)            # (B, T)
        adv = returns[:, None] - values                   # (B, T)
        adv_n = (adv - adv.mean()) / (adv.std() + 1e-8)

        grad_logits: List[np.ndarray] = []
        total_loss = 0.0
        for step_t in range(t):
            logits = logits_list[step_t]
            logp_all = F.log_softmax(logits, axis=-1)
            p = np.exp(logp_all)
            a = actions[:, step_t]
            logp = logp_all[np.arange(b), a]
            ratio = np.exp(logp - old_logps[:, step_t])
            a_t = adv_n[:, step_t]
            unclipped = ratio * a_t
            clipped = np.clip(ratio, 1 - cfg.clip, 1 + cfg.clip) * a_t
            take_unclipped = unclipped <= clipped
            total_loss += -float(np.minimum(unclipped, clipped).mean())
            # d(-surrogate)/d(logp) — zero where the clip is active.
            dlogp = np.where(take_unclipped, -ratio * a_t, 0.0) / (b * t)
            g = p * dlogp[:, None]
            g[np.arange(b), a] -= dlogp
            # entropy bonus: maximize H => subtract dH/dlogits
            ent_grad = -(p * (logp_all + 1.0)
                         - p * (p * (logp_all + 1.0)).sum(axis=1, keepdims=True))
            g -= cfg.entropy_coef * ent_grad / (b * t)
            grad_logits.append(g)

        # value loss: MSE(values, returns)
        grad_values = [
            cfg.value_coef * 2.0 * (values[:, step_t] - returns) / (b * t)
            for step_t in range(t)]
        self.opt.zero_grad()
        self.policy.teacher_backward(grad_logits, grad_values)
        clip_grad_norm(self.policy.parameters(), cfg.max_grad_norm)
        self.opt.step()
        return total_loss / t

    def train(self, eval_tasks: Optional[Sequence[Task]] = None,
              eval_mask: Optional[np.ndarray] = None) -> TrainingHistory:
        cfg = self.cfg
        if eval_tasks is None:
            eval_tasks = self.env.validation_tasks(cfg.eval_points)
        if eval_mask is None:
            eval_mask = satisfiable_mask(self.env, eval_tasks)
        while self._collected < cfg.total_steps:
            tasks = [self.env.sample_task(self.rng)
                     for _ in range(cfg.rollout_batch)]
            contexts = np.stack([self.env.encode_task(t) for t in tasks])
            batch = self.policy.rollout(contexts, self.env.schedule, self.rng)
            returns = np.array([
                self.env.evaluate_actions(batch.actions[i], tasks[i]).reward
                for i in range(len(tasks))])
            for _ in range(cfg.epochs_per_batch):
                loss = self._ppo_update(contexts, batch.actions,
                                        batch.log_probs, returns)
                self.history.losses.append(loss)
            self._collected += len(tasks)
            if (self._collected % cfg.eval_every) < cfg.rollout_batch:
                res = evaluate_policy(self.policy, self.env, eval_tasks,
                                      eval_mask)
                self.history.record(self._collected, res)
        return self.history
