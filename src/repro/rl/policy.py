"""The LSTM decision policy (paper Fig. 5).

A single-layer LSTM (256 hidden units by default) carries state across
the decision sequence; each action *type* (resolution, depth, kernel,
expansion, grid, bits, device selection, ...) has its own fully
connected output head.  The per-step input concatenates the episode
context (SLO + network condition + device types), a one-hot of the
previous action, and a one-hot of the current step type.

Rollouts are batched: B episodes advance through the schedule in
lock-step, so every step is one (B, hidden) matrix multiply — this is
what makes NumPy training tractable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.init import xavier_uniform
from ..nn.layers import Module, Parameter
from ..nn.lstm import LSTMCell
from .spaces import ACTION_TYPES, ActionStep

__all__ = ["PolicyConfig", "LSTMPolicy", "RolloutBatch"]


@dataclass
class PolicyConfig:
    hidden_size: int = 256
    seed: int = 0


@dataclass
class RolloutBatch:
    """Sampled actions for a batch of episodes."""

    actions: np.ndarray        # (B, T) int
    log_probs: np.ndarray      # (B, T)
    entropies: np.ndarray      # (B, T)


class _Head:
    """Per-action-type output head with per-step caching.

    A plain Linear layer cannot be reused across time steps (its cache
    would be overwritten), so heads keep an explicit list of inputs and
    accumulate gradients over all steps they served.
    """

    def __init__(self, hidden: int, n_choices: int,
                 rng: np.random.Generator):
        self.weight = Parameter(xavier_uniform(
            (n_choices, hidden), fan_in=hidden, fan_out=n_choices, rng=rng))
        self.bias = Parameter(np.zeros(n_choices))
        self.n_choices = n_choices
        self._inputs: List[np.ndarray] = []

    def reset(self) -> None:
        self._inputs.clear()

    def forward(self, h: np.ndarray, record: bool = False) -> np.ndarray:
        if record:
            self._inputs.append(h)
        return h @ self.weight.data.T + self.bias.data

    def backward_step(self, grad_logits: np.ndarray,
                      step_index: int) -> np.ndarray:
        h = self._inputs[step_index]
        self.weight.grad += grad_logits.T @ h
        self.bias.grad += grad_logits.sum(axis=0)
        return grad_logits @ self.weight.data

    def parameters(self):
        yield self.weight
        yield self.bias


class LSTMPolicy(Module):
    """Goal-conditioned LSTM policy with typed heads and a value head."""

    def __init__(self, context_dim: int, max_choices: int,
                 head_sizes: Dict[str, int],
                 config: Optional[PolicyConfig] = None):
        super().__init__()
        cfg = config or PolicyConfig()
        self.cfg = cfg
        self.context_dim = context_dim
        self.max_choices = max_choices
        self.input_dim = context_dim + max_choices + len(ACTION_TYPES)
        rng = np.random.default_rng(cfg.seed)
        self.cell = LSTMCell(self.input_dim, cfg.hidden_size, rng=rng)
        self.heads: Dict[str, _Head] = {
            kind: _Head(cfg.hidden_size, n, rng)
            for kind, n in head_sizes.items()}
        self.value_head = _Head(cfg.hidden_size, 1, rng)
        # Register head parameters so parameters()/state_dict see them.
        for kind, head in self.heads.items():
            self.register_parameter(f"head_{kind}_w", head.weight)
            self.register_parameter(f"head_{kind}_b", head.bias)
        self.register_parameter("value_w", self.value_head.weight)
        self.register_parameter("value_b", self.value_head.bias)
        self._step_records: List[Tuple[str, int]] = []

    @staticmethod
    def for_env(env, config: Optional[PolicyConfig] = None) -> "LSTMPolicy":
        head_sizes: Dict[str, int] = {}
        for step in env.schedule:
            prev = head_sizes.setdefault(step.kind, step.n_choices)
            if prev != step.n_choices:
                raise ValueError(
                    f"inconsistent choice count for head {step.kind!r}")
        return LSTMPolicy(env.context_dim, env.max_choices, head_sizes, config)

    # -- input construction ------------------------------------------------
    def _step_input(self, contexts: np.ndarray, prev_actions: np.ndarray,
                    step: ActionStep) -> np.ndarray:
        b = contexts.shape[0]
        prev_oh = np.zeros((b, self.max_choices))
        valid = prev_actions >= 0
        prev_oh[np.arange(b)[valid], prev_actions[valid]] = 1.0
        kind_oh = np.zeros((b, len(ACTION_TYPES)))
        kind_oh[:, step.kind_id] = 1.0
        return np.concatenate([contexts, prev_oh, kind_oh], axis=1)

    # -- sampling ------------------------------------------------------------
    def rollout(self, contexts: np.ndarray, schedule: Sequence[ActionStep],
                rng: np.random.Generator, epsilon: float = 0.0,
                greedy: bool = False) -> RolloutBatch:
        """Sample a batch of episodes (no gradient tape kept)."""
        return self._rollout_impl(contexts, schedule, rng, epsilon, greedy)

    def _rollout_impl(self, contexts, schedule, rng, epsilon, greedy):
        b = contexts.shape[0]
        state = self.cell.zero_state(b)
        prev = np.full(b, -1, dtype=np.int64)
        t_steps = len(schedule)
        actions = np.zeros((b, t_steps), dtype=np.int64)
        logps = np.zeros((b, t_steps))
        ents = np.zeros((b, t_steps))
        for t, step in enumerate(schedule):
            x = self._step_input(contexts, prev, step)
            h, state = self.cell.forward_step(x, state, record=False)
            logits = self.heads[step.kind].forward(h)
            logp = F.log_softmax(logits, axis=-1)
            p = np.exp(logp)
            ents[:, t] = -(p * logp).sum(axis=1)
            if greedy:
                a = logits.argmax(axis=1)
            else:
                # Gumbel-max sampling (vectorized categorical draw).
                g = rng.gumbel(size=logits.shape)
                a = (logits + g).argmax(axis=1)
            if epsilon > 0:
                explore = rng.random(b) < epsilon
                a = np.where(explore, rng.integers(0, step.n_choices, b), a)
            actions[:, t] = a
            logps[:, t] = logp[np.arange(b), a]
            prev = a
        return RolloutBatch(actions, logps, ents)

    # -- teacher forcing (training) ---------------------------------------------
    def teacher_forward(self, contexts: np.ndarray, actions: np.ndarray,
                        schedule: Sequence[ActionStep],
                        ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Forward with the tape recorded.

        Returns (per-step logits, per-step values).  Must be followed by
        :meth:`teacher_backward` before the next forward.
        """
        b = contexts.shape[0]
        self.cell.reset_tape()
        for head in self.heads.values():
            head.reset()
        self.value_head.reset()
        self._step_records = []
        state = self.cell.zero_state(b)
        prev = np.full(b, -1, dtype=np.int64)
        logits_out: List[np.ndarray] = []
        values_out: List[np.ndarray] = []
        head_counts: Dict[str, int] = {k: 0 for k in self.heads}
        for t, step in enumerate(schedule):
            x = self._step_input(contexts, prev, step)
            h, state = self.cell.forward_step(x, state, record=True)
            logits_out.append(self.heads[step.kind].forward(h, record=True))
            values_out.append(self.value_head.forward(h, record=True)[:, 0])
            self._step_records.append((step.kind, head_counts[step.kind]))
            head_counts[step.kind] += 1
            prev = actions[:, t]
        return logits_out, values_out

    def teacher_backward(self, grad_logits: List[np.ndarray],
                         grad_values: Optional[List[np.ndarray]] = None) -> None:
        """BPTT given per-step gradients w.r.t. logits (and values)."""
        grads_h: List[np.ndarray] = []
        for t, (kind, idx) in enumerate(self._step_records):
            gh = self.heads[kind].backward_step(grad_logits[t], idx)
            if grad_values is not None:
                gh = gh + self.value_head.backward_step(
                    grad_values[t][:, None], t)
            grads_h.append(gh)
        self.cell.backward_through_time(grads_h)

    # -- convenience -------------------------------------------------------------
    def greedy_actions(self, context: np.ndarray,
                       schedule: Sequence[ActionStep]) -> np.ndarray:
        """Deterministic decision for one task (runtime path)."""
        batch = self.rollout(context[None, :], schedule,
                             np.random.default_rng(0), greedy=True)
        return batch.actions[0]
