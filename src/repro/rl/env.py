"""The goal-conditioned multi-task environment (paper Sec. 4.2).

A *task* is a network condition (bandwidth/delay per remote device); the
*goal* is the SLO value.  An episode is one pass over the decision
schedule; at the end the chosen (architecture, execution plan) is priced
by the latency simulator and the accuracy model, and the goal-conditioned
reward of Eq. 2 / Eq. 3 is assigned.

The environment also exposes :meth:`decode` and :meth:`evaluate_actions`
so the replay-buffer machinery (relabeling, mutation) can re-price stored
action sequences under different tasks without re-rolling the policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..devices.profiles import DeviceProfile
from ..nas.accuracy_model import plan_accuracy_penalty, strategy_accuracy
from ..nas.arch import ArchConfig
from ..nas.graph_builder import build_graph
from ..nas.search_space import SearchSpace
from ..netsim.topology import Cluster, NetworkCondition
from ..partition.plan import BlockPlan, ExecutionPlan
from ..partition.simulate import simulate_latency
from ..partition.spatial import Grid
from .spaces import ActionStep, build_schedule

__all__ = ["Task", "StrategyOutcome", "EnvConfig", "MurmurationEnv"]


@dataclass(frozen=True)
class Task:
    """Goal (SLO value) + task (network condition)."""

    slo: float
    condition: NetworkCondition

    def context_vector(self, env: "MurmurationEnv") -> np.ndarray:
        return env.encode_task(self)


@dataclass(frozen=True)
class StrategyOutcome:
    """What one decoded strategy costs."""

    arch: ArchConfig
    plan: ExecutionPlan
    latency_s: float
    accuracy: float
    reward: float
    satisfied: bool


@dataclass
class EnvConfig:
    """Environment hyperparameters.

    ``slo_kind`` selects Eq. 2 ("latency": maximize accuracy subject to a
    latency bound) or Eq. 3 ("accuracy": minimize latency subject to an
    accuracy bound).  ``alpha``/``beta`` are the reward shaping constants.
    """

    slo_kind: str = "latency"
    slo_range: Tuple[float, float] = (0.05, 0.5)      # seconds (latency SLO)
    acc_slo_range: Tuple[float, float] = (72.0, 78.5)  # percent (accuracy SLO)
    bw_range: Tuple[float, float] = (50.0, 400.0)
    delay_range: Tuple[float, float] = (5.0, 100.0)
    alpha: float = 2.0
    beta: float = 0.1
    acc_norm: Tuple[float, float] = (70.0, 80.0)
    latency_ref_s: float = 1.0
    max_tiles: int = 4

    def __post_init__(self):
        if self.slo_kind not in ("latency", "accuracy"):
            raise ValueError("slo_kind must be 'latency' or 'accuracy'")


class MurmurationEnv:
    """Joint submodel-selection + partitioning environment."""

    def __init__(self, space: SearchSpace, devices: Sequence[DeviceProfile],
                 config: Optional[EnvConfig] = None,
                 accuracy_fn: Optional[Callable[[ArchConfig], float]] = None):
        self.space = space
        self.devices = list(devices)
        self.cfg = config or EnvConfig()
        self.accuracy_fn = accuracy_fn or (
            lambda a: strategy_accuracy(a, space))
        self.schedule: List[ActionStep] = build_schedule(
            space, len(self.devices), self.cfg.max_tiles)
        self.max_choices = max(s.n_choices for s in self.schedule)
        self._graph_cache: dict = {}

    # -- dimensions --------------------------------------------------------
    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def num_remote(self) -> int:
        return len(self.devices) - 1

    @property
    def episode_length(self) -> int:
        return len(self.schedule)

    @property
    def context_dim(self) -> int:
        # slo + per-remote (bw, delay) + per-device class (3-way one-hot)
        return 1 + 2 * self.num_remote + 3 * self.num_devices

    # -- task handling ------------------------------------------------------
    def encode_task(self, task: Task) -> np.ndarray:
        cfg = self.cfg
        if cfg.slo_kind == "latency":
            slo_norm = task.slo / cfg.slo_range[1]
        else:
            lo, hi = cfg.acc_slo_range
            slo_norm = (task.slo - lo) / max(hi - lo, 1e-9)
        parts = [slo_norm]
        parts += [b / cfg.bw_range[1] for b in task.condition.bandwidths_mbps]
        parts += [d / cfg.delay_range[1] for d in task.condition.delays_ms]
        for dev in self.devices:
            onehot = [0.0, 0.0, 0.0]
            onehot[dev.device_class % 3] = 1.0
            parts += onehot
        return np.asarray(parts, dtype=np.float64)

    def sample_task(self, rng: np.random.Generator,
                    grid_points: int = 10,
                    active_dims: Optional[int] = None) -> Task:
        """Sample a task from the 10-point training grids.

        ``active_dims`` implements curriculum learning: only the first k
        constraint dimensions vary (ordered SLO, bw1, delay1, bw2, ...);
        the rest sit at their easiest value.
        """
        cfg = self.cfg
        if cfg.slo_kind == "latency":
            slo_grid = np.linspace(*cfg.slo_range, grid_points)
            easiest_slo = cfg.slo_range[1]
        else:
            slo_grid = np.linspace(*cfg.acc_slo_range, grid_points)
            easiest_slo = cfg.acc_slo_range[0]
        bw_grid = np.linspace(*cfg.bw_range, grid_points)
        delay_grid = np.linspace(*cfg.delay_range, grid_points)

        dims = 1 + 2 * self.num_remote
        k = dims if active_dims is None else max(1, min(active_dims, dims))
        slo = float(rng.choice(slo_grid)) if k >= 1 else easiest_slo
        bws, delays = [], []
        for r in range(self.num_remote):
            bw_dim = 2 + 2 * r   # dim index of this remote's bandwidth
            dl_dim = 3 + 2 * r   # and of its delay
            bws.append(float(rng.choice(bw_grid)) if k >= bw_dim
                       else cfg.bw_range[1])
            delays.append(float(rng.choice(delay_grid)) if k >= dl_dim
                          else cfg.delay_range[0])
        return Task(slo, NetworkCondition(tuple(bws), tuple(delays)))

    def validation_tasks(self, points: int = 4,
                         seed: int = 123) -> List[Task]:
        """Evenly spread validation tasks over the constraint space."""
        cfg = self.cfg
        rng = np.random.default_rng(seed)
        if cfg.slo_kind == "latency":
            slos = np.linspace(*cfg.slo_range, points)
        else:
            slos = np.linspace(*cfg.acc_slo_range, points)
        bws = np.linspace(*cfg.bw_range, points)
        delays = np.linspace(*cfg.delay_range, points)
        tasks = []
        if self.num_remote == 1:
            for s in slos:
                for b in bws:
                    for d in delays:
                        tasks.append(Task(float(s), NetworkCondition(
                            (float(b),), (float(d),))))
        else:
            for s in slos:
                for _ in range(points * points):
                    b = tuple(float(rng.choice(bws))
                              for _ in range(self.num_remote))
                    d = tuple(float(rng.choice(delays))
                              for _ in range(self.num_remote))
                    tasks.append(Task(float(s), NetworkCondition(b, d)))
        return tasks

    # -- constraint-lattice helpers (used by the SUPREME buffer) -----------
    def constraint_values(self, task: Task) -> Tuple[float, ...]:
        """Flatten a task to the buffer's constraint vector:
        [slo, bw_1..bw_n, delay_1..delay_n]."""
        return ((task.slo,) + tuple(task.condition.bandwidths_mbps)
                + tuple(task.condition.delays_ms))

    def task_from_values(self, values: Sequence[float]) -> Task:
        n = self.num_remote
        if len(values) != 1 + 2 * n:
            raise ValueError(f"expected {1 + 2 * n} values, got {len(values)}")
        return Task(float(values[0]), NetworkCondition(
            tuple(values[1:1 + n]), tuple(values[1 + n:])))

    def achieved_values(self, outcome: "StrategyOutcome",
                        task: Task) -> Tuple[float, ...]:
        """Hindsight-relabeled constraint point: the goal dimension takes
        the *achieved* value (latency or accuracy), the condition stays
        as observed."""
        achieved = (outcome.latency_s if self.cfg.slo_kind == "latency"
                    else outcome.accuracy)
        return ((achieved,) + tuple(task.condition.bandwidths_mbps)
                + tuple(task.condition.delays_ms))

    def relabeled_reward(self, outcome: "StrategyOutcome") -> float:
        """Reward under the hindsight goal (satisfied by construction)."""
        slo = (outcome.latency_s if self.cfg.slo_kind == "latency"
               else outcome.accuracy)
        r, _ = self.reward(outcome.latency_s, outcome.accuracy, slo)
        return r

    # -- decoding -----------------------------------------------------------
    def decode(self, actions: Sequence[int]) -> Tuple[ArchConfig, ExecutionPlan]:
        """Map an action sequence to (architecture, execution plan)."""
        if len(actions) != len(self.schedule):
            raise ValueError(
                f"expected {len(self.schedule)} actions, got {len(actions)}")
        space = self.space
        cfg = self.cfg
        res = None
        depths = [space.min_depth] * space.num_stages
        kernels = [min(space.kernel_options)] * space.num_stages
        expands = [min(space.expand_options)] * space.num_stages
        grids = [Grid(1, 1)] * space.num_stages
        bits = [32] * space.num_stages
        tile_devs = [[0] * cfg.max_tiles for _ in range(space.num_stages)]
        head_dev = 0
        for step, a in zip(self.schedule, actions):
            if not (0 <= a < step.n_choices):
                raise ValueError(f"action {a} out of range for {step}")
            if step.kind == "resolution":
                res = space.resolution_options[a]
            elif step.kind == "depth":
                depths[step.stage] = space.depth_options[a]
            elif step.kind == "kernel":
                kernels[step.stage] = space.kernel_options[a]
            elif step.kind == "expand":
                expands[step.stage] = space.expand_options[a]
            elif step.kind == "grid":
                grids[step.stage] = space.grid_options[a]
            elif step.kind == "bits":
                bits[step.stage] = space.bits_options[a]
            elif step.kind == "device":
                tile_devs[step.stage][step.slot] = a
            elif step.kind == "head_device":
                head_dev = a

        slots = space.num_stages * space.max_depth
        arch_kernels = [0] * slots
        arch_expands = [0] * slots
        for s in range(space.num_stages):
            for b in range(space.max_depth):
                arch_kernels[s * space.max_depth + b] = kernels[s]
                arch_expands[s * space.max_depth + b] = expands[s]
        arch = ArchConfig(res, tuple(depths), tuple(arch_kernels),
                          tuple(arch_expands))

        graph = self._graph(arch)
        plans: List[BlockPlan] = []
        g11 = Grid(1, 1)
        stem_dev = tile_devs[0][0]
        for block in graph:
            if block.fused or not block.partitionable:
                plans.append(BlockPlan(g11, (head_dev,), bits=bits[-1]))
            elif block.stage == 0:  # stem
                plans.append(BlockPlan(g11, (stem_dev,), bits=bits[0]))
            elif 1 <= block.stage <= space.num_stages:
                s = block.stage - 1
                g = grids[s]
                devs = tuple(tile_devs[s][:g.ntiles])
                plans.append(BlockPlan(g, devs, bits=bits[s]))
            else:  # final conv
                plans.append(BlockPlan(g11, (head_dev,), bits=bits[-1]))
        return arch, ExecutionPlan(plans, output_device=0)

    def _graph(self, arch: ArchConfig):
        key = arch.canonical_key(self.space)
        g = self._graph_cache.get(key)
        if g is None:
            g = build_graph(arch, self.space)
            if len(self._graph_cache) > 4096:
                self._graph_cache.clear()
            self._graph_cache[key] = g
        return g

    # -- pricing ---------------------------------------------------------------
    def evaluate_strategy(self, arch: ArchConfig, plan: ExecutionPlan,
                          task: Task) -> StrategyOutcome:
        cluster = Cluster(self.devices, task.condition)
        report = simulate_latency(self._graph(arch), plan, cluster)
        accuracy = self.accuracy_fn(arch) - plan_accuracy_penalty(plan)
        latency = report.total_s
        reward, ok = self.reward(latency, accuracy, task.slo)
        return StrategyOutcome(arch, plan, latency, accuracy, reward, ok)

    def evaluate_actions(self, actions: Sequence[int],
                         task: Task) -> StrategyOutcome:
        arch, plan = self.decode(actions)
        return self.evaluate_strategy(arch, plan, task)

    def reward(self, latency_s: float, accuracy: float,
               slo: float) -> Tuple[float, bool]:
        """Goal-conditioned reward (Eq. 2 / Eq. 3)."""
        cfg = self.cfg
        if cfg.slo_kind == "latency":
            if latency_s <= slo:
                lo, hi = cfg.acc_norm
                a_norm = (accuracy - lo) / (hi - lo)
                return cfg.alpha * a_norm - cfg.beta, True
            return 0.0, False
        # accuracy SLO: reward low latency once accuracy is met
        if accuracy >= slo:
            l_norm = 1.0 - min(latency_s, cfg.latency_ref_s) / cfg.latency_ref_s
            return cfg.alpha * l_norm - cfg.beta, True
        return 0.0, False
