"""Deep Q-Network baseline.

Sec. 4.3 names DQN alongside PPO as the traditional algorithms that
struggle on this problem.  This implementation treats the per-step head
outputs of the shared LSTM backbone as Q-values: episodes carry a single
terminal reward (Eq. 2/3), so the TD target of step t is the maximum
next-step Q (gamma = 1) and the terminal step regresses on the reward
directly.  A target network stabilizes bootstrapping; exploration is
epsilon-greedy over the step's action set.

Like PPO, DQN receives no signal until exploration stumbles on an
SLO-satisfying trajectory — the failure mode SUPREME's relabeling and
sharing machinery removes.
"""

from __future__ import annotations

import copy
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.optim import Adam, clip_grad_norm
from .common import TrainingHistory, evaluate_policy, satisfiable_mask
from .env import MurmurationEnv, Task
from .policy import LSTMPolicy, PolicyConfig

__all__ = ["DQNConfig", "DQNTrainer"]


@dataclass
class DQNConfig:
    total_steps: int = 2000          # collected episodes
    rollout_batch: int = 16
    train_batch: int = 16
    buffer_size: int = 2000
    lr: float = 1e-3
    epsilon_start: float = 1.0
    epsilon_end: float = 0.1
    epsilon_decay_steps: int = 1500
    target_sync_every: int = 200     # episodes between target-net syncs
    max_grad_norm: float = 5.0
    eval_every: int = 200
    eval_points: int = 4
    seed: int = 0


@dataclass
class _Episode:
    context: np.ndarray
    actions: np.ndarray
    reward: float


class DQNTrainer:
    def __init__(self, env: MurmurationEnv, config: Optional[DQNConfig] = None,
                 policy: Optional[LSTMPolicy] = None):
        self.env = env
        self.cfg = config or DQNConfig()
        self.rng = np.random.default_rng(self.cfg.seed)
        self.q = policy or LSTMPolicy.for_env(
            env, PolicyConfig(seed=self.cfg.seed))
        self.target = copy.deepcopy(self.q)
        self.opt = Adam(self.q.parameters(), lr=self.cfg.lr)
        self.buffer: Deque[_Episode] = deque(maxlen=self.cfg.buffer_size)
        self.history = TrainingHistory()
        self._collected = 0

    def _epsilon(self) -> float:
        cfg = self.cfg
        frac = min(1.0, self._collected / max(1, cfg.epsilon_decay_steps))
        return cfg.epsilon_start + (cfg.epsilon_end - cfg.epsilon_start) * frac

    def _collect(self) -> None:
        cfg = self.cfg
        tasks = [self.env.sample_task(self.rng)
                 for _ in range(cfg.rollout_batch)]
        contexts = np.stack([self.env.encode_task(t) for t in tasks])
        # Epsilon-greedy over the Q maximizer.
        batch = self.q.rollout(contexts, self.env.schedule, self.rng,
                               epsilon=self._epsilon(), greedy=True)
        for i, task in enumerate(tasks):
            out = self.env.evaluate_actions(batch.actions[i], task)
            self.buffer.append(_Episode(contexts[i], batch.actions[i].copy(),
                                        out.reward))
        self._collected += len(tasks)

    def _td_update(self) -> Optional[float]:
        cfg = self.cfg
        if len(self.buffer) < cfg.train_batch:
            return None
        picks = self.rng.integers(0, len(self.buffer), cfg.train_batch)
        eps = [self.buffer[int(i)] for i in picks]
        contexts = np.stack([e.context for e in eps])
        actions = np.stack([e.actions for e in eps])
        rewards = np.array([e.reward for e in eps])
        b, t = actions.shape

        # Bootstrapped targets from the frozen target network.
        tq_logits, _ = self.target.teacher_forward(contexts, actions,
                                                   self.env.schedule)
        self.target.teacher_backward([np.zeros_like(l) for l in tq_logits])
        targets = np.zeros((b, t))
        for step_t in range(t - 1):
            targets[:, step_t] = tq_logits[step_t + 1].max(axis=1)
        targets[:, t - 1] = rewards

        q_logits, _ = self.q.teacher_forward(contexts, actions,
                                             self.env.schedule)
        grads: List[np.ndarray] = []
        loss = 0.0
        for step_t in range(t):
            qa = q_logits[step_t][np.arange(b), actions[:, step_t]]
            diff = qa - targets[:, step_t]
            loss += float((diff ** 2).mean())
            g = np.zeros_like(q_logits[step_t])
            g[np.arange(b), actions[:, step_t]] = 2.0 * diff / (b * t)
            grads.append(g)
        self.opt.zero_grad()
        self.q.teacher_backward(grads)
        clip_grad_norm(self.q.parameters(), cfg.max_grad_norm)
        self.opt.step()
        return loss / t

    def _sync_target(self) -> None:
        self.target.load_state_dict(self.q.state_dict())

    def train(self, eval_tasks: Optional[Sequence[Task]] = None,
              eval_mask: Optional[np.ndarray] = None) -> TrainingHistory:
        cfg = self.cfg
        if eval_tasks is None:
            eval_tasks = self.env.validation_tasks(cfg.eval_points)
        if eval_mask is None:
            eval_mask = satisfiable_mask(self.env, eval_tasks)
        while self._collected < cfg.total_steps:
            self._collect()
            loss = self._td_update()
            if loss is not None:
                self.history.losses.append(loss)
            if (self._collected % cfg.target_sync_every) < cfg.rollout_batch:
                self._sync_target()
            if (self._collected % cfg.eval_every) < cfg.rollout_batch:
                res = evaluate_policy(self.q, self.env, eval_tasks, eval_mask)
                self.history.record(self._collected, res)
        return self.history
