"""Decision schedule of the sequential model-selection/partitioning MDP.

Each episode walks a fixed schedule of typed decisions (paper Sec. 4.2.1):
one resolution choice, then per stage — depth, kernel, expansion, spatial
grid, wire bits, and one device choice per tile slot — and finally the
aggregation (head) device.  The schedule is identical for every episode
of a given scenario, which lets rollouts be batched through the LSTM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..nas.search_space import SearchSpace

__all__ = ["ActionStep", "ACTION_TYPES", "build_schedule"]

#: Canonical ordering of action types (index = step-type id fed to policy).
ACTION_TYPES: Tuple[str, ...] = (
    "resolution", "depth", "kernel", "expand", "grid", "bits",
    "device", "head_device",
)


@dataclass(frozen=True)
class ActionStep:
    """One decision in the schedule.

    ``stage`` is the stage index (-1 for global decisions); ``slot`` is
    the tile index for device decisions (and the block index when a
    fine-grained schedule is used).
    """

    kind: str
    n_choices: int
    stage: int = -1
    slot: int = 0

    def __post_init__(self):
        if self.kind not in ACTION_TYPES:
            raise ValueError(f"unknown action kind {self.kind!r}")
        if self.n_choices < 1:
            raise ValueError("action needs at least one choice")

    @property
    def kind_id(self) -> int:
        return ACTION_TYPES.index(self.kind)


def build_schedule(space: SearchSpace, num_devices: int,
                   max_tiles: int = 4) -> List[ActionStep]:
    """Coarse (per-stage) decision schedule.

    Per-stage rather than per-block decisions keep episodes short
    (1 + 6*stages + tiles*stages + 1 steps) while retaining the paper's
    joint model/partition action structure; all blocks of a stage share
    their settings.  The number of *device* slots is fixed at
    ``max_tiles`` so episodes have constant length — slots beyond the
    chosen grid's tile count are ignored by the environment.
    """
    steps: List[ActionStep] = [
        ActionStep("resolution", len(space.resolution_options))]
    for s in range(space.num_stages):
        steps.append(ActionStep("depth", len(space.depth_options), stage=s))
        steps.append(ActionStep("kernel", len(space.kernel_options), stage=s))
        steps.append(ActionStep("expand", len(space.expand_options), stage=s))
        steps.append(ActionStep("grid", len(space.grid_options), stage=s))
        steps.append(ActionStep("bits", len(space.bits_options), stage=s))
        for t in range(max_tiles):
            steps.append(ActionStep("device", num_devices, stage=s, slot=t))
    steps.append(ActionStep("head_device", num_devices))
    return steps
