"""Stage 2: goal-conditioned multi-task RL.

The environment over the cost models, the LSTM policy, the SUPREME
trainer, and the GCSL/PPO baselines.
"""

from .common import (
    EvalResult,
    TrainingHistory,
    bootstrap_actions,
    evaluate_policy,
    satisfiable,
    satisfiable_mask,
    supervised_update,
)
from .dqn import DQNConfig, DQNTrainer
from .env import EnvConfig, MurmurationEnv, StrategyOutcome, Task
from .gcsl import GCSLConfig, GCSLTrainer
from .policy import LSTMPolicy, PolicyConfig, RolloutBatch
from .ppo import PPOConfig, PPOTrainer
from .spaces import ACTION_TYPES, ActionStep, build_schedule
from .supreme import (
    BucketDim,
    BucketedReplayBuffer,
    Entry,
    SupremeConfig,
    SupremeTrainer,
    murmuration_basic_config,
)

__all__ = [
    "MurmurationEnv",
    "EnvConfig",
    "Task",
    "StrategyOutcome",
    "LSTMPolicy",
    "PolicyConfig",
    "RolloutBatch",
    "ACTION_TYPES",
    "ActionStep",
    "build_schedule",
    "GCSLTrainer",
    "GCSLConfig",
    "PPOTrainer",
    "PPOConfig",
    "DQNTrainer",
    "DQNConfig",
    "SupremeTrainer",
    "SupremeConfig",
    "murmuration_basic_config",
    "BucketedReplayBuffer",
    "BucketDim",
    "Entry",
    "EvalResult",
    "TrainingHistory",
    "bootstrap_actions",
    "evaluate_policy",
    "satisfiable",
    "satisfiable_mask",
    "supervised_update",
]
