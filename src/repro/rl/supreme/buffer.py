"""The reward-filtered bucketed replay buffer (paper Sec. 4.4, Fig. 8).

The constraint space — (SLO, bandwidth_1, delay_1, bandwidth_2, ...) —
is discretized into a lattice of buckets.  Each bucket keeps only the
top-n reward trajectories for its constraint point.  Two lattice
operations implement the paper's key observation (*a strategy found
under a constraint is a lower bound for all relaxed constraints*):

* **sharing** — an empty bucket borrows data from its nearest *harder*
  ancestor (Fig. 9a): that data is guaranteed valid here;
* **pruning** — a bucket whose best reward does not beat its harder
  ancestor's is dominated and dropped (Fig. 9b), collapsing the
  continuous constraint space onto a discrete set of critical points
  (Eq. 4).

Dimension direction matters: larger latency-SLO and larger bandwidth are
*easier*; larger delay is *harder*.  ``BucketDim.relax_sign`` encodes
this (+1: larger value is easier).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["BucketDim", "Entry", "BucketedReplayBuffer"]


@dataclass(frozen=True)
class BucketDim:
    """One axis of the constraint lattice."""

    name: str
    grid: Tuple[float, ...]       # ascending values
    relax_sign: int               # +1: larger value = easier constraint

    def __post_init__(self):
        if list(self.grid) != sorted(self.grid):
            raise ValueError(f"grid for {self.name!r} must be ascending")
        if self.relax_sign not in (-1, 1):
            raise ValueError("relax_sign must be +1 or -1")

    @property
    def size(self) -> int:
        return len(self.grid)

    def index_easier(self, value: float) -> int:
        """Bucket index of ``value``, rounded toward the *easier* side.

        A trajectory achieving ``value`` is then valid at its bucket's
        representative grid point.
        """
        g = np.asarray(self.grid)
        if self.relax_sign > 0:
            # valid for grid points >= value
            i = int(np.searchsorted(g, value, side="left"))
            return min(i, self.size - 1)
        # valid for grid points <= value
        i = int(np.searchsorted(g, value, side="right")) - 1
        return max(i, 0)

    def index_nearest(self, value: float) -> int:
        g = np.asarray(self.grid)
        return int(np.abs(g - value).argmin())

    def harder_step(self, idx: int) -> Optional[int]:
        """Neighbor index one step harder, or None at the boundary."""
        j = idx - self.relax_sign
        return j if 0 <= j < self.size else None


@dataclass
class Entry:
    """One stored trajectory."""

    actions: np.ndarray
    reward: float
    latency_s: float
    accuracy: float
    condition: Tuple[float, ...] = ()   # observed network condition values

    def copy(self) -> "Entry":
        return Entry(self.actions.copy(), self.reward, self.latency_s,
                     self.accuracy, self.condition)


class BucketedReplayBuffer:
    """Sparse lattice of top-n reward queues with sharing and pruning."""

    def __init__(self, dims: Sequence[BucketDim], top_n: int = 4,
                 share: bool = True, max_share_distance: int = None):
        if not dims:
            raise ValueError("need at least one constraint dimension")
        self.dims: List[BucketDim] = list(dims)
        self.top_n = top_n
        self.share = share
        self.max_share_distance = (max_share_distance
                                   if max_share_distance is not None
                                   else sum(d.size for d in dims))
        self._buckets: Dict[Tuple[int, ...], List[Entry]] = {}

    # -- indexing ---------------------------------------------------------
    def bucket_of(self, values: Sequence[float],
                  toward_easier: bool = True) -> Tuple[int, ...]:
        if len(values) != len(self.dims):
            raise ValueError(
                f"expected {len(self.dims)} values, got {len(values)}")
        if toward_easier:
            return tuple(d.index_easier(v) for d, v in zip(self.dims, values))
        return tuple(d.index_nearest(v) for d, v in zip(self.dims, values))

    def representative(self, idx: Tuple[int, ...]) -> Tuple[float, ...]:
        """Constraint values at a bucket's grid point."""
        return tuple(d.grid[i] for d, i in zip(self.dims, idx))

    def all_indices(self) -> Iterator[Tuple[int, ...]]:
        yield from self._buckets.keys()

    # -- insertion ----------------------------------------------------------
    def insert(self, values: Sequence[float], entry: Entry) -> bool:
        """Insert at the achieved constraint point (rounded easier).

        Keeps only the top-n rewards per bucket; returns whether the
        entry was retained.
        """
        idx = self.bucket_of(values, toward_easier=True)
        q = self._buckets.setdefault(idx, [])
        q.append(entry)
        q.sort(key=lambda e: e.reward, reverse=True)
        if len(q) > self.top_n:
            dropped = q.pop()
            return dropped is not entry
        return True

    # -- sharing -----------------------------------------------------------
    def _dominates(self, donor: Tuple[int, ...], target: Tuple[int, ...],
                   strict: bool = False) -> bool:
        """Whether ``donor``'s constraint point is harder-or-equal to
        ``target`` in every dimension (its strategies are valid there)."""
        harder_any = False
        for dim, d_i, t_i in zip(self.dims, donor, target):
            # For relax_sign +1 the easier direction is a larger index,
            # so a donor must sit at an index <= the target's.
            if dim.relax_sign > 0:
                if d_i > t_i:
                    return False
                harder_any |= d_i < t_i
            else:
                if d_i < t_i:
                    return False
                harder_any |= d_i > t_i
        return harder_any or not strict

    def _harder_ancestors(self, idx: Tuple[int, ...]) -> Iterator[Tuple[int, ...]]:
        """Populated buckets whose data is valid at ``idx`` (strictly
        harder constraint points), nearest first.

        Scanning populated buckets keeps this O(buckets * dims) even in
        high-dimensional constraint lattices, where a neighbour walk
        would visit exponentially many empty cells.
        """
        donors = [k for k in self._buckets
                  if k != idx and self._dominates(k, idx, strict=True)]
        donors.sort(key=lambda k: sum(abs(a - b) for a, b in zip(k, idx)))
        for k in donors:
            if sum(abs(a - b) for a, b in zip(k, idx)) > self.max_share_distance:
                break
            yield k

    def lookup(self, values: Sequence[float]) -> List[Entry]:
        """Entries usable at a constraint point.

        An empty bucket borrows from its dominating donors: among the
        populated harder buckets (whose strategies are lower bounds
        here), the one holding the highest reward wins, with proximity
        as the tie-break.  Returning the best donor (rather than just
        the nearest) is what makes pruning safe: dropping a dominated
        bucket can never lower the best reachable reward anywhere.
        """
        idx = self.bucket_of(values, toward_easier=False)
        own = self._buckets.get(idx)
        if own:
            return list(own)
        if not self.share:
            return []
        best_q: List[Entry] = []
        best_reward = -np.inf
        for anc in self._harder_ancestors(idx):
            q = self._buckets.get(anc)
            if q and q[0].reward > best_reward:
                best_reward = q[0].reward
                best_q = q
        return list(best_q)

    def best(self, values: Sequence[float]) -> Optional[Entry]:
        entries = self.lookup(values)
        return max(entries, key=lambda e: e.reward) if entries else None

    # -- pruning ------------------------------------------------------------
    def prune(self) -> int:
        """Drop entries dominated by a harder ancestor (Fig. 9b).

        Returns the number of removed entries.
        """
        removed = 0
        for idx in list(self._buckets.keys()):
            q = self._buckets.get(idx)
            if not q:
                continue
            ancestor_best = -np.inf
            for anc in self._harder_ancestors(idx):
                aq = self._buckets.get(anc)
                if aq:
                    ancestor_best = max(ancestor_best, aq[0].reward)
            if ancestor_best == -np.inf:
                continue
            kept = [e for e in q if e.reward > ancestor_best]
            removed += len(q) - len(kept)
            if kept:
                self._buckets[idx] = kept
            else:
                del self._buckets[idx]
        return removed

    # -- sampling ------------------------------------------------------------
    def sample(self, batch: int, rng: np.random.Generator,
               ) -> List[Tuple[Tuple[float, ...], Entry]]:
        """Sample (goal constraint values, entry) training pairs.

        Goals are the representative points of populated buckets; with
        sharing enabled, goals of *easier* random buckets may also be
        drawn and answered by an ancestor's data, which is exactly the
        paper's cross-task data sharing.
        """
        keys = list(self._buckets.keys())
        if not keys:
            return []
        out = []
        for _ in range(batch):
            if self.share and rng.random() < 0.3:
                # Random lattice point, resolved via the sharing walk.
                idx = tuple(int(rng.integers(d.size)) for d in self.dims)
                values = self.representative(idx)
                entries = self.lookup(values)
                if not entries:
                    continue
                entry = entries[int(rng.integers(len(entries)))]
            else:
                idx = keys[int(rng.integers(len(keys)))]
                values = self.representative(idx)
                q = self._buckets[idx]
                entry = q[int(rng.integers(len(q)))]
            out.append((values, entry))
        return out

    # -- stats -------------------------------------------------------------
    @property
    def num_buckets(self) -> int:
        return len(self._buckets)

    @property
    def num_entries(self) -> int:
        return sum(len(q) for q in self._buckets.values())

    def entries(self) -> Iterator[Tuple[Tuple[int, ...], Entry]]:
        for idx, q in self._buckets.items():
            for e in q:
                yield idx, e
