"""Trajectory mutation operators (paper Sec. 4.4, "Data Mutation").

Mutated copies of stored trajectories are re-priced by the environment,
hindsight-relabeled and re-inserted — cheap, policy-free exploration
around known-good strategies.  Besides uniform random perturbation the
paper mentions two heuristics, both implemented here:

* **locality improvement** — retarget device selections to the device
  the trajectory already uses most (fewer boundary crossings);
* **suboptimal-bucket refresh** — mutation effort is directed at buckets
  whose best reward lags their neighborhood (handled by the trainer via
  :func:`suboptimal_buckets`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..env import MurmurationEnv
from .buffer import BucketedReplayBuffer, Entry

__all__ = ["mutate_actions", "improve_locality", "suboptimal_buckets"]


def mutate_actions(actions: np.ndarray, env: MurmurationEnv,
                   rng: np.random.Generator, rate: float = 0.2) -> np.ndarray:
    """Uniformly resample each decision with probability ``rate``."""
    out = actions.copy()
    for t, step in enumerate(env.schedule):
        if rng.random() < rate:
            out[t] = int(rng.integers(step.n_choices))
    return out


def improve_locality(actions: np.ndarray, env: MurmurationEnv,
                     rng: np.random.Generator) -> np.ndarray:
    """Heuristic mutation: move a random subset of device decisions to
    the trajectory's most-used device."""
    device_steps = [t for t, s in enumerate(env.schedule)
                    if s.kind in ("device", "head_device")]
    if not device_steps:
        return actions.copy()
    votes = np.bincount([int(actions[t]) for t in device_steps],
                        minlength=env.num_devices)
    target = int(votes.argmax())
    out = actions.copy()
    for t in device_steps:
        if rng.random() < 0.5:
            out[t] = target
    return out


def suboptimal_buckets(buffer: BucketedReplayBuffer,
                       quantile: float = 0.5) -> List[Tuple[int, ...]]:
    """Buckets whose best reward is below the populated-bucket median —
    the trainer points extra mutation effort at these."""
    bests = []
    for idx in buffer.all_indices():
        entries = buffer.lookup(buffer.representative(idx))
        if entries:
            bests.append((idx, max(e.reward for e in entries)))
    if not bests:
        return []
    rewards = np.array([b[1] for b in bests])
    cut = float(np.quantile(rewards, quantile))
    return [idx for idx, r in bests if r <= cut]
