"""SUPREME: Share, bUcketed, PRunE, Epsilon-greedy, Mutation Exploration.

The full Stage-2 trainer (paper Sec. 4.4 / Fig. 6).  Two loops:

* the **lower loop** is GCSL — rollouts with epsilon-greedy exploration
  are hindsight-relabeled and the policy is trained by goal-conditioned
  imitation on buffer samples;
* the **upper loop** optimizes the buffer itself — bucketed top-n
  storage, cross-task sharing along the constraint lattice, domination
  pruning, and mutation of stored trajectories.

Curriculum learning (Sec. 6.1.1) gradually opens constraint dimensions:
first the SLO and device 1's bandwidth vary, then device 1's delay,
device 2's bandwidth, and so on.

The feature flags (``share``/``prune``/``mutate``/``epsilon``/
``curriculum``) make ablations first-class: the paper's fourth training
curve ("Murmuration" in Fig. 11, distinct from full SUPREME) is
reproduced as SUPREME with pruning and mutation disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...nn.optim import Adam
from ...telemetry import Telemetry
from ..common import (TrainingHistory, bootstrap_actions, evaluate_policy,
                      satisfiable_mask, supervised_update)
from ..env import MurmurationEnv, Task
from ..policy import LSTMPolicy, PolicyConfig
from .buffer import BucketDim, BucketedReplayBuffer, Entry
from .mutation import improve_locality, mutate_actions, suboptimal_buckets

__all__ = ["SupremeConfig", "SupremeTrainer", "murmuration_basic_config"]


@dataclass
class SupremeConfig:
    total_steps: int = 2000          # collected episodes
    rollout_batch: int = 16
    train_batch: int = 32
    train_every: int = 1
    lr: float = 1e-3
    grid_points: int = 10            # lattice resolution per dimension
    top_n: int = 4
    eval_every: int = 200
    eval_points: int = 4
    seed: int = 0
    # exploration
    epsilon_start: float = 0.5
    epsilon_end: float = 0.05
    epsilon_decay_steps: int = 1500
    # feature flags (ablations)
    share: bool = True
    prune: bool = True
    mutate: bool = True
    curriculum: bool = True
    prune_every: int = 200
    mutate_every: int = 100
    mutations_per_round: int = 8
    curriculum_steps_per_dim: int = 300


def murmuration_basic_config(**overrides) -> SupremeConfig:
    """The paper's intermediate "Murmuration" curve: bucketed buffer with
    sharing, but no pruning/mutation (Fig. 11 legend)."""
    cfg = SupremeConfig(prune=False, mutate=False)
    for k, v in overrides.items():
        setattr(cfg, k, v)
    return cfg


class SupremeTrainer:
    """Full SUPREME training loop."""

    def __init__(self, env: MurmurationEnv,
                 config: Optional[SupremeConfig] = None,
                 policy: Optional[LSTMPolicy] = None,
                 telemetry: Optional[Telemetry] = None):
        self.env = env
        self.cfg = config or SupremeConfig()
        self.rng = np.random.default_rng(self.cfg.seed)
        self.policy = policy or LSTMPolicy.for_env(
            env, PolicyConfig(seed=self.cfg.seed))
        self.opt = Adam(self.policy.parameters(), lr=self.cfg.lr)
        self.buffer = self._build_buffer()
        self.history = TrainingHistory()
        self._collected = 0
        self.telemetry = telemetry
        if telemetry is not None:
            reg = telemetry.registry.child("supreme")
            self._m_episodes = reg.counter(
                "episodes_total", help="collected rollout episodes")
            self._m_mutations = reg.counter(
                "mutations_total", help="mutation-round relabels")
            self._m_updates = reg.counter(
                "updates_total", help="supervised policy updates")
            self._m_loss = reg.histogram(
                "loss", help="imitation loss per update", lo=1e-8)
            self._m_reward = reg.histogram(
                "relabeled_reward", help="hindsight-relabeled reward",
                lo=1e-8)
            self._m_epsilon = reg.gauge(
                "epsilon", help="current exploration rate")
            self._m_buffer = reg.gauge(
                "buffer_entries", help="entries stored in the buffer")
        self._bootstrap()

    # -- buffer construction ------------------------------------------------
    def _build_buffer(self) -> BucketedReplayBuffer:
        cfg = self.cfg
        env = self.env
        g = cfg.grid_points
        dims: List[BucketDim] = []
        if env.cfg.slo_kind == "latency":
            grid = np.linspace(*env.cfg.slo_range, g)
            dims.append(BucketDim("slo", tuple(grid), relax_sign=+1))
        else:
            grid = np.linspace(*env.cfg.acc_slo_range, g)
            # A lower accuracy requirement is easier.
            dims.append(BucketDim("slo", tuple(grid), relax_sign=-1))
        for r in range(env.num_remote):
            bw = np.linspace(*env.cfg.bw_range, g)
            dims.append(BucketDim(f"bw{r + 1}", tuple(bw), relax_sign=+1))
        for r in range(env.num_remote):
            dl = np.linspace(*env.cfg.delay_range, g)
            dims.append(BucketDim(f"delay{r + 1}", tuple(dl), relax_sign=-1))
        return BucketedReplayBuffer(dims, top_n=cfg.top_n, share=cfg.share)

    def _buffer_values(self, task_values: Sequence[float]) -> Tuple[float, ...]:
        """Reorder env constraint values [slo, bws..., delays...] — the
        buffer uses the same order, so this is the identity; kept as a
        single point of change."""
        return tuple(task_values)

    # -- data flow -----------------------------------------------------------
    def _relabel_and_insert(self, actions: np.ndarray, task: Task) -> None:
        outcome = self.env.evaluate_actions(actions, task)
        values = self._buffer_values(self.env.achieved_values(outcome, task))
        entry = Entry(
            actions=np.asarray(actions, dtype=np.int64).copy(),
            reward=self.env.relabeled_reward(outcome),
            latency_s=outcome.latency_s,
            accuracy=outcome.accuracy,
            condition=tuple(task.condition.as_vector()),
        )
        self.buffer.insert(values, entry)
        if self.telemetry is not None:
            self._m_reward.observe(entry.reward)

    def _bootstrap(self) -> None:
        task = self.env.sample_task(self.rng)
        for actions in bootstrap_actions(self.env):
            self._relabel_and_insert(actions, task)

    def _epsilon(self) -> float:
        cfg = self.cfg
        frac = min(1.0, self._collected / max(1, cfg.epsilon_decay_steps))
        return cfg.epsilon_start + (cfg.epsilon_end - cfg.epsilon_start) * frac

    def _active_dims(self) -> Optional[int]:
        if not self.cfg.curriculum:
            return None
        return 2 + self._collected // self.cfg.curriculum_steps_per_dim

    def _collect(self) -> None:
        cfg = self.cfg
        tasks = [self.env.sample_task(self.rng, cfg.grid_points,
                                      self._active_dims())
                 for _ in range(cfg.rollout_batch)]
        contexts = np.stack([self.env.encode_task(t) for t in tasks])
        batch = self.policy.rollout(contexts, self.env.schedule, self.rng,
                                    epsilon=self._epsilon())
        for i, task in enumerate(tasks):
            self._relabel_and_insert(batch.actions[i], task)
        self._collected += len(tasks)
        if self.telemetry is not None:
            self._m_episodes.inc(len(tasks))
            self._m_epsilon.set(self._epsilon())
            self._m_buffer.set(sum(1 for _ in self.buffer.entries()))

    def _train_batch(self) -> Optional[float]:
        cfg = self.cfg
        pairs = self.buffer.sample(cfg.train_batch, self.rng)
        if not pairs:
            return None
        contexts = np.stack([
            self.env.encode_task(self.env.task_from_values(values))
            for values, _ in pairs])
        actions = np.stack([e.actions for _, e in pairs])
        loss = supervised_update(self.policy, self.opt, self.env,
                                 contexts, actions)
        if self.telemetry is not None and loss is not None:
            self._m_updates.inc()
            self._m_loss.observe(loss)
        return loss

    def _mutate_round(self) -> None:
        cfg = self.cfg
        targets = suboptimal_buckets(self.buffer)
        all_entries = [(idx, e) for idx, e in self.buffer.entries()]
        if not all_entries:
            return
        for _ in range(cfg.mutations_per_round):
            # Prefer entries from suboptimal buckets when available.
            pool = ([p for p in all_entries if p[0] in set(targets)]
                    or all_entries)
            idx, entry = pool[int(self.rng.integers(len(pool)))]
            task = self.env.task_from_values(self.buffer.representative(idx))
            if self.rng.random() < 0.5:
                mutated = mutate_actions(entry.actions, self.env, self.rng)
            else:
                mutated = improve_locality(entry.actions, self.env, self.rng)
            self._relabel_and_insert(mutated, task)
            if self.telemetry is not None:
                self._m_mutations.inc()

    # -- driver ------------------------------------------------------------------
    def train(self, eval_tasks: Optional[Sequence[Task]] = None,
              eval_mask: Optional[np.ndarray] = None) -> TrainingHistory:
        cfg = self.cfg
        if eval_tasks is None:
            eval_tasks = self.env.validation_tasks(cfg.eval_points)
        if eval_mask is None:
            eval_mask = satisfiable_mask(self.env, eval_tasks)
        while self._collected < cfg.total_steps:
            self._collect()
            for _ in range(cfg.train_every):
                loss = self._train_batch()
                if loss is not None:
                    self.history.losses.append(loss)
            if cfg.mutate and (self._collected % cfg.mutate_every
                               ) < cfg.rollout_batch:
                self._mutate_round()
            if cfg.prune and (self._collected % cfg.prune_every
                              ) < cfg.rollout_batch:
                self.buffer.prune()
            if (self._collected % cfg.eval_every) < cfg.rollout_batch:
                res = evaluate_policy(self.policy, self.env, eval_tasks,
                                      eval_mask)
                self.history.record(self._collected, res)
        return self.history
