"""SUPREME: bucketed replay buffer with sharing/pruning/mutation, and
the full Stage-2 trainer."""

from .buffer import BucketDim, BucketedReplayBuffer, Entry
from .mutation import improve_locality, mutate_actions, suboptimal_buckets
from .trainer import SupremeConfig, SupremeTrainer, murmuration_basic_config

__all__ = [
    "BucketDim",
    "BucketedReplayBuffer",
    "Entry",
    "mutate_actions",
    "improve_locality",
    "suboptimal_buckets",
    "SupremeConfig",
    "SupremeTrainer",
    "murmuration_basic_config",
]
