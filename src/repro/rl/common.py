"""Shared RL training utilities: the GCSL-style supervised update,
policy evaluation, bootstrap trajectories, and the satisfiability oracle
used to normalize compliance rates (Sec. 6.1.2)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.optim import Adam, clip_grad_norm
from .env import MurmurationEnv, StrategyOutcome, Task
from .policy import LSTMPolicy

__all__ = ["supervised_update", "evaluate_policy", "EvalResult",
           "bootstrap_actions", "satisfiable", "TrainingHistory"]


@dataclass
class EvalResult:
    avg_reward: float
    compliance: float          # normalized by satisfiable tasks
    raw_compliance: float      # over all tasks
    n_tasks: int
    n_satisfiable: int


@dataclass
class TrainingHistory:
    """Metric curves recorded during training (Figs. 11/12)."""

    steps: List[int] = field(default_factory=list)
    avg_reward: List[float] = field(default_factory=list)
    compliance: List[float] = field(default_factory=list)
    losses: List[float] = field(default_factory=list)

    def record(self, step: int, result: EvalResult) -> None:
        self.steps.append(step)
        self.avg_reward.append(result.avg_reward)
        self.compliance.append(result.compliance)


def supervised_update(policy: LSTMPolicy, opt: Adam, env: MurmurationEnv,
                      contexts: np.ndarray, actions: np.ndarray,
                      max_grad_norm: float = 5.0) -> float:
    """One goal-conditioned imitation step: maximize log pi(a_t | s_t, g).

    Returns the mean negative log-likelihood.
    """
    b, t = actions.shape
    logits_list, _ = policy.teacher_forward(contexts, actions, env.schedule)
    grads = []
    total_nll = 0.0
    for step_t in range(t):
        logits = logits_list[step_t]
        logp = F.log_softmax(logits, axis=-1)
        a = actions[:, step_t]
        total_nll += -float(logp[np.arange(b), a].mean())
        g = np.exp(logp)
        g[np.arange(b), a] -= 1.0
        grads.append(g / (b * t))
    opt.zero_grad()
    policy.teacher_backward(grads)
    clip_grad_norm(policy.parameters(), max_grad_norm)
    opt.step()
    return total_nll / t


def evaluate_policy(policy: LSTMPolicy, env: MurmurationEnv,
                    tasks: Sequence[Task],
                    satisfiable_mask: Optional[np.ndarray] = None,
                    ) -> EvalResult:
    """Greedy-rollout evaluation over a task set.

    ``satisfiable_mask`` (from :func:`satisfiable`) normalizes the
    compliance rate by the achievable tasks, as the paper does.
    """
    contexts = np.stack([env.encode_task(t) for t in tasks])
    batch = policy.rollout(contexts, env.schedule,
                           np.random.default_rng(0), greedy=True)
    rewards = np.zeros(len(tasks))
    satisfied = np.zeros(len(tasks), dtype=bool)
    for i, task in enumerate(tasks):
        outcome = env.evaluate_actions(batch.actions[i], task)
        rewards[i] = outcome.reward
        satisfied[i] = outcome.satisfied
    if satisfiable_mask is None:
        satisfiable_mask = np.ones(len(tasks), dtype=bool)
    n_sat = int(satisfiable_mask.sum())
    compliance = (float(satisfied[satisfiable_mask].mean())
                  if n_sat else 0.0)
    return EvalResult(
        avg_reward=float(rewards.mean()),
        compliance=compliance,
        raw_compliance=float(satisfied.mean()),
        n_tasks=len(tasks),
        n_satisfiable=n_sat,
    )


# ---------------------------------------------------------------------------
# Bootstrap trajectories (paper: max- and min-submodel seeds)
# ---------------------------------------------------------------------------

def _actions_for(env: MurmurationEnv, size: str, device: int) -> np.ndarray:
    """Action sequence selecting the min/max submodel wholly on one
    device, unpartitioned, full precision."""
    space = env.space
    pick = (lambda opts, v: list(opts).index(v))
    actions = []
    for step in env.schedule:
        if step.kind == "resolution":
            v = (max if size == "max" else min)(space.resolution_options)
            actions.append(pick(space.resolution_options, v))
        elif step.kind == "depth":
            v = space.max_depth if size == "max" else space.min_depth
            actions.append(pick(space.depth_options, v))
        elif step.kind == "kernel":
            v = (max if size == "max" else min)(space.kernel_options)
            actions.append(pick(space.kernel_options, v))
        elif step.kind == "expand":
            v = (max if size == "max" else min)(space.expand_options)
            actions.append(pick(space.expand_options, v))
        elif step.kind == "grid":
            actions.append(0)  # 1x1
        elif step.kind == "bits":
            actions.append(pick(space.bits_options, 32))
        elif step.kind in ("device", "head_device"):
            actions.append(device)
        else:  # pragma: no cover - defensive
            raise ValueError(step.kind)
    return np.asarray(actions, dtype=np.int64)


def bootstrap_actions(env: MurmurationEnv) -> List[np.ndarray]:
    """The two seed trajectories both GCSL and SUPREME start from
    (Sec. 6.1.1): the max-size and min-size submodels."""
    seeds = [_actions_for(env, "min", 0), _actions_for(env, "max", 0)]
    if env.num_devices > 1:
        seeds.append(_actions_for(env, "max", 1))
        seeds.append(_actions_for(env, "min", 1))
    return seeds


# ---------------------------------------------------------------------------
# Satisfiability oracle
# ---------------------------------------------------------------------------

def satisfiable(env: MurmurationEnv, task: Task) -> bool:
    """Whether *any* strategy in the search space can meet the SLO.

    Checked against the extreme seed strategies: for a latency SLO the
    minimum submodel on the best device is (near-)optimal in latency;
    for an accuracy SLO the maximum submodel maximizes accuracy.
    """
    candidates = bootstrap_actions(env)
    for actions in candidates:
        if env.evaluate_actions(actions, task).satisfied:
            return True
    return False


def satisfiable_mask(env: MurmurationEnv,
                     tasks: Sequence[Task]) -> np.ndarray:
    return np.array([satisfiable(env, t) for t in tasks], dtype=bool)
