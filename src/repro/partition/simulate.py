"""Distributed-execution latency simulator.

Given a :class:`~repro.models.graph.ModelGraph`, an
:class:`~repro.partition.plan.ExecutionPlan` and a
:class:`~repro.netsim.topology.Cluster`, this module replays the
inference as an event-driven list schedule: per-device busy times,
per-tile data locations, and every inter-device transfer (priced at the
plan's wire precision) are tracked explicitly.

The same simulation backs the RL environment's reward, the baseline
evaluations (Neurosurgeon/ADCNN), and the figure benchmarks, so all
methods are compared under identical cost assumptions — mirroring how
the paper runs every method on the same testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..models.graph import ModelGraph
from ..netsim.topology import Cluster
from ..nn.quantize import wire_bytes
from .plan import ExecutionPlan
from .spatial import Grid, fdsp_compute_overhead

__all__ = ["LatencyReport", "simulate_latency"]

_FP32 = 4


@dataclass
class LatencyReport:
    """Outcome of one simulated inference."""

    total_s: float
    compute_s: Dict[int, float] = field(default_factory=dict)
    comm_s: float = 0.0
    comm_bytes: float = 0.0
    num_transfers: int = 0
    per_block_done: List[float] = field(default_factory=list)
    tx_bytes: Dict[int, float] = field(default_factory=dict)
    rx_bytes: Dict[int, float] = field(default_factory=dict)

    @property
    def total_ms(self) -> float:
        return self.total_s * 1e3

    @property
    def busiest_device(self) -> int:
        return max(self.compute_s, key=self.compute_s.get)  # type: ignore[arg-type]


@dataclass
class _TileState:
    device: int
    ready: float  # time the tile's data is available on `device`


def simulate_latency(graph: ModelGraph, plan: ExecutionPlan,
                     cluster: Cluster) -> LatencyReport:
    """Simulate one batch-1 inference; returns a :class:`LatencyReport`.

    Weights are assumed resident on every participating device (the
    runtime pre-deploys the supernet/model — see Section 5.1); the
    separate model-switch experiment prices weight movement.
    """
    plan.validate_for(graph, cluster.num_devices)

    # Straggler injection: per-device compute-time multipliers set by the
    # fault injector.  Empty (the default) costs one falsy check per block
    # and leaves every timing bit-identical.
    compute_scale = getattr(cluster, "compute_scale", None)

    n_dev = cluster.num_devices
    report = LatencyReport(total_s=0.0,
                           compute_s={i: 0.0 for i in range(n_dev)},
                           tx_bytes={i: 0.0 for i in range(n_dev)},
                           rx_bytes={i: 0.0 for i in range(n_dev)})
    dev_ready = [0.0] * cluster.num_devices

    # Input starts on the local device (device 0) at t=0.
    tiles: List[_TileState] = [_TileState(device=0, ready=0.0)]
    prev_grid = Grid(1, 1)
    prev_elements = graph.input_elements

    def _transfer(src: int, dst: int, nbytes: float, avail: float) -> float:
        """Price one transfer; returns arrival time at dst."""
        if src == dst or nbytes <= 0:
            return avail
        t = cluster.transfer_time(src, dst, nbytes)
        report.comm_s += t
        report.comm_bytes += nbytes
        report.num_transfers += 1
        report.tx_bytes[src] += nbytes
        report.rx_bytes[dst] += nbytes
        return avail + t

    for i, (block, bp) in enumerate(zip(graph.blocks, plan.block_plans)):
        ntiles = bp.grid.ntiles
        fdsp = fdsp_compute_overhead(block.out_hw, bp.grid, halo=block.halo)
        slice_elements = prev_elements / ntiles

        new_tiles: List[_TileState] = []
        same_grid = (bp.grid == prev_grid and len(tiles) == ntiles)
        for j in range(ntiles):
            dst = bp.devices[j]
            # --- input arrival ------------------------------------------------
            if same_grid:
                src_tile = tiles[j]
                if src_tile.device == dst:
                    arrival = src_tile.ready
                else:
                    nbytes = wire_bytes(int(slice_elements), bp.bits)
                    arrival = _transfer(src_tile.device, dst, nbytes,
                                        src_tile.ready)
            else:
                # Repartition: tile j's slice is gathered from every
                # previous holder proportionally.
                arrival = 0.0
                share = slice_elements / len(tiles)
                for src_tile in tiles:
                    if src_tile.device == dst:
                        arrival = max(arrival, src_tile.ready)
                    else:
                        nbytes = wire_bytes(int(share), bp.bits)
                        arrival = max(arrival, _transfer(
                            src_tile.device, dst, nbytes, src_tile.ready))
            # --- peer synchronization (attention K/V exchange) -----------------
            if ntiles > 1 and block.sync_elements > 0:
                share = wire_bytes(
                    int(block.sync_elements / ntiles), bp.bits)
                for k in range(ntiles):
                    if k == j or bp.devices[k] == dst:
                        continue
                    src_ready = (tiles[k].ready if same_grid and k < len(tiles)
                                 else arrival)
                    arrival = max(arrival, _transfer(
                        bp.devices[k], dst, share, src_ready))
            # --- compute -------------------------------------------------------
            dev = cluster.device(dst)
            flops = block.flops * fdsp / ntiles
            if block.depthwise:
                flops *= dev.depthwise_penalty
            mem = (_FP32 * (prev_elements + block.out_elements) * fdsp / ntiles
                   + block.weight_bytes)
            t_compute = dev.compute_time(flops, mem)
            if compute_scale:
                t_compute *= compute_scale.get(dst, 1.0)
            start = max(dev_ready[dst], arrival)
            end = start + t_compute
            dev_ready[dst] = end
            report.compute_s[dst] += t_compute
            new_tiles.append(_TileState(device=dst, ready=end))

        tiles = new_tiles
        prev_grid = bp.grid
        prev_elements = block.out_elements
        report.per_block_done.append(max(t.ready for t in tiles))

    # Ship the result (logits) back to the output device.  The testbed's
    # tc-netem delay shapes the request direction; the tiny logits
    # response crosses the unshaped direction, so only serialization and
    # wire time are charged here.
    out_dev = plan.output_device
    done = 0.0
    result_bytes = wire_bytes(int(prev_elements / len(tiles)), 32)
    for tile in tiles:
        if tile.device == out_dev:
            done = max(done, tile.ready)
            continue
        link_t = cluster.transfer_time(tile.device, out_dev, result_bytes)
        delay_s = 0.0
        if tile.device != 0 and out_dev == 0:
            delay_s = cluster.link_to(tile.device).delay_ms / 1e3
        elif tile.device == 0 and out_dev != 0:
            delay_s = cluster.link_to(out_dev).delay_ms / 1e3
        t = max(link_t - delay_s, 0.0)
        report.comm_s += t
        report.comm_bytes += result_bytes
        report.num_transfers += 1
        report.tx_bytes[tile.device] += result_bytes
        report.rx_bytes[out_dev] += result_bytes
        done = max(done, tile.ready + t)
    report.total_s = done
    return report
