"""Model partitioning: FDSP spatial tiling, layer-wise splits, execution
plans and the distributed-latency simulator."""

from .plan import (
    BlockPlan,
    ExecutionPlan,
    greedy_spatial_plan,
    layerwise_split_plan,
    single_device_plan,
    spatial_front_plan,
    spatial_plan,
)
from .optimize import block_candidates, refine_plan
from .simulate import LatencyReport, simulate_latency
from .spatial import (
    GRIDS,
    Grid,
    fdsp_compute_overhead,
    merge_tiles,
    split_tiles,
    tile_shape,
)

__all__ = [
    "Grid",
    "greedy_spatial_plan",
    "spatial_front_plan",
    "GRIDS",
    "fdsp_compute_overhead",
    "split_tiles",
    "merge_tiles",
    "tile_shape",
    "BlockPlan",
    "ExecutionPlan",
    "single_device_plan",
    "layerwise_split_plan",
    "spatial_plan",
    "LatencyReport",
    "simulate_latency",
    "refine_plan",
    "block_candidates",
]
