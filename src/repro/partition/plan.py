"""Execution plans: per-block partitioning + placement + wire precision.

An :class:`ExecutionPlan` is the object both the latency simulator and
the real executor consume.  It is also what the RL policy emits and what
the strategy cache stores — the "strategy" of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..models.graph import ModelGraph
from ..nn.quantize import SUPPORTED_BITS
from .spatial import Grid

__all__ = ["BlockPlan", "ExecutionPlan", "single_device_plan",
           "layerwise_split_plan", "spatial_plan", "spatial_front_plan",
           "greedy_spatial_plan"]


@dataclass(frozen=True)
class BlockPlan:
    """Placement decision for one compute block.

    Attributes
    ----------
    grid : spatial partitioning grid for this block.
    devices : device id per tile, row-major; length == grid.ntiles.
    bits : wire precision for this block's *input* when it crosses a
        device boundary (8/16/32).
    """

    grid: Grid
    devices: Tuple[int, ...]
    bits: int = 32

    def __post_init__(self):
        if len(self.devices) != self.grid.ntiles:
            raise ValueError(
                f"{self.grid} grid needs {self.grid.ntiles} device ids, "
                f"got {len(self.devices)}")
        if self.bits not in SUPPORTED_BITS:
            raise ValueError(f"bits must be one of {SUPPORTED_BITS}")
        if any(d < 0 for d in self.devices):
            raise ValueError("device ids must be non-negative")

    @property
    def device_set(self) -> Tuple[int, ...]:
        return tuple(sorted(set(self.devices)))


class ExecutionPlan:
    """Per-block plans for a whole model, plus the output device."""

    def __init__(self, block_plans: Sequence[BlockPlan], output_device: int = 0):
        if not block_plans:
            raise ValueError("empty execution plan")
        self.block_plans: List[BlockPlan] = list(block_plans)
        self.output_device = output_device

    def __len__(self) -> int:
        return len(self.block_plans)

    def __getitem__(self, i: int) -> BlockPlan:
        return self.block_plans[i]

    def __iter__(self):
        return iter(self.block_plans)

    def devices_used(self) -> Tuple[int, ...]:
        used = {self.output_device}
        for bp in self.block_plans:
            used.update(bp.devices)
        return tuple(sorted(used))

    def validate_for(self, graph: ModelGraph, num_devices: int) -> None:
        """Check the plan is structurally legal for ``graph``.

        Fused blocks must be unpartitioned; device ids must exist.
        """
        if len(self.block_plans) != len(graph):
            raise ValueError(
                f"plan has {len(self.block_plans)} entries for a "
                f"{len(graph)}-block graph")
        for bp, block in zip(self.block_plans, graph):
            if block.fused and bp.grid.ntiles != 1:
                raise ValueError(
                    f"block {block.name!r} is fused but planned on {bp.grid}")
            if not block.partitionable and bp.grid.ntiles != 1:
                raise ValueError(
                    f"block {block.name!r} is not spatially partitionable")
            for d in bp.devices:
                if d >= num_devices:
                    raise ValueError(
                        f"plan references device {d} but cluster has "
                        f"{num_devices}")
        if self.output_device >= num_devices:
            raise ValueError("output device out of range")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ExecutionPlan(blocks={len(self)}, "
                f"devices={self.devices_used()})")


# ---------------------------------------------------------------------------
# Canonical plan constructors
# ---------------------------------------------------------------------------

def single_device_plan(graph: ModelGraph, device: int = 0) -> ExecutionPlan:
    """Run everything on one device (the Fig. 1a baseline)."""
    g11 = Grid(1, 1)
    return ExecutionPlan([BlockPlan(g11, (device,)) for _ in graph],
                         output_device=device if device == 0 else 0)


def layerwise_split_plan(graph: ModelGraph, split: int, local: int = 0,
                         remote: int = 1, bits: int = 32) -> ExecutionPlan:
    """Neurosurgeon-style plan: blocks [0, split) local, rest remote.

    ``split=0`` ships the raw input (all-remote); ``split=len(graph)`` is
    all-local.
    """
    if not (0 <= split <= len(graph)):
        raise ValueError(f"split {split} out of range for {len(graph)} blocks")
    g11 = Grid(1, 1)
    plans = []
    for i in range(len(graph)):
        dev = local if i < split else remote
        plans.append(BlockPlan(g11, (dev,), bits=bits))
    return ExecutionPlan(plans, output_device=0)


def spatial_plan(graph: ModelGraph, grid: Grid, devices: Sequence[int],
                 aggregator: int = 0, bits: int = 32) -> ExecutionPlan:
    """ADCNN-style plan: every partitionable block split on ``grid`` over
    ``devices``; fused / non-partitionable blocks run on ``aggregator``."""
    if len(devices) != grid.ntiles:
        raise ValueError(f"{grid} grid needs {grid.ntiles} devices")
    g11 = Grid(1, 1)
    plans = []
    for block in graph:
        if block.partitionable and not block.fused and grid.ntiles > 1:
            plans.append(BlockPlan(grid, tuple(devices), bits=bits))
        else:
            plans.append(BlockPlan(g11, (aggregator,), bits=bits))
    return ExecutionPlan(plans, output_device=0)


def spatial_front_plan(graph: ModelGraph, grid: Grid,
                       devices: Sequence[int], aggregator: int = 0,
                       bits: int = 32, min_hw: int = 14) -> ExecutionPlan:
    """Partition only the *front* of the network (DeepThings-style).

    FDSP's zero-padding overhead grows as feature maps shrink (a 2-pixel
    halo on a 3x3 tile triples the work), so partitioning pays off on the
    early, large-feature-map blocks and hurts on the late ones.  This
    template tiles blocks whose output is at least ``min_hw`` pixels and
    runs the remainder on ``aggregator``.
    """
    if len(devices) != grid.ntiles:
        raise ValueError(f"{grid} grid needs {grid.ntiles} devices")
    g11 = Grid(1, 1)
    plans = []
    for block in graph:
        front = (block.partitionable and not block.fused
                 and min(block.out_hw) >= min_hw and grid.ntiles > 1)
        if front:
            plans.append(BlockPlan(grid, tuple(devices), bits=bits))
        else:
            plans.append(BlockPlan(g11, (aggregator,), bits=bits))
    return ExecutionPlan(plans, output_device=0)


def greedy_spatial_plan(graph: ModelGraph, devices: Sequence[int],
                        aggregator: int = 0, bits: int = 32,
                        grids: Optional[Sequence[Grid]] = None,
                        ) -> ExecutionPlan:
    """Per-block grid selection (what the RL policy's joint decisions
    converge to): each block independently picks the grid minimizing its
    parallel compute share ``fdsp_overhead / ntiles``, given the block's
    own halo and feature-map size.

    Large-feature-map blocks get wide grids; small late blocks with big
    receptive fields fall back to 1x1 — the mixed plans that make
    multi-device scaling (Fig. 17) actually pay off.
    """
    from .spatial import fdsp_compute_overhead

    if grids is None:
        grids = [Grid(1, 1), Grid(1, 2), Grid(2, 2), Grid(2, 3), Grid(3, 3)]
    usable = [g for g in grids if g.ntiles <= len(devices)]
    g11 = Grid(1, 1)
    plans = []
    for block in graph:
        if block.fused or not block.partitionable:
            plans.append(BlockPlan(g11, (aggregator,), bits=bits))
            continue
        best_grid, best_cost = g11, 1.0
        for g in usable:
            h, w = block.out_hw
            if h < 2 * g.rows or w < 2 * g.cols:
                continue  # tiles would be degenerate
            cost = fdsp_compute_overhead(block.out_hw, g,
                                         halo=block.halo) / g.ntiles
            if cost < best_cost - 1e-9:
                best_grid, best_cost = g, cost
        plans.append(BlockPlan(best_grid, tuple(devices[:best_grid.ntiles]),
                               bits=bits))
    return ExecutionPlan(plans, output_device=0)
