"""FDSP spatial partitioning (Fully Decomposable Spatial Partition).

ADCNN's FDSP splits a convolutional feature map into an r x c grid of
tiles and *zero-pads* each tile instead of exchanging halo rows with the
neighbouring tiles.  That removes all cross-tile communication inside a
partitioned block at the cost of (a) redundant compute on the padded
border and (b) a small accuracy drop, because the zeros are wrong values
for interior tile borders.

This module provides both the analytical side (compute-overhead factors
for the latency model) and the tensor side (actual tile split/merge used
by the real NumPy executor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["Grid", "GRIDS", "fdsp_compute_overhead", "split_tiles",
           "merge_tiles", "tile_shape"]


@dataclass(frozen=True)
class Grid:
    """An r x c spatial partitioning grid. (1, 1) means unpartitioned."""

    rows: int
    cols: int

    def __post_init__(self):
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"invalid grid {self.rows}x{self.cols}")

    @property
    def ntiles(self) -> int:
        return self.rows * self.cols

    def __str__(self) -> str:
        return f"{self.rows}x{self.cols}"


#: The search-space grids from the paper (1x1 up to 2x2).
GRIDS: Tuple[Grid, ...] = (Grid(1, 1), Grid(1, 2), Grid(2, 2))


def tile_shape(h: int, w: int, grid: Grid, row: int, col: int) -> Tuple[int, int]:
    """Height/width of tile (row, col); last row/col absorbs the remainder."""
    if not (0 <= row < grid.rows and 0 <= col < grid.cols):
        raise ValueError(f"tile ({row},{col}) outside grid {grid}")
    th = h // grid.rows + (h % grid.rows if row == grid.rows - 1 else 0)
    tw = w // grid.cols + (w % grid.cols if col == grid.cols - 1 else 0)
    return th, tw


def fdsp_compute_overhead(out_hw: Tuple[int, int], grid: Grid,
                          halo: int = 2) -> float:
    """Redundant-compute factor of FDSP for one tile.

    Each tile is padded by ``halo`` pixels on every cut edge (the
    receptive-field growth across the block's convolutions), so a tile
    computes ``(th + pad_h)(tw + pad_w) / (th * tw)`` times the work of an
    ideal 1/ntiles share.  Returns the factor (>= 1.0); 1.0 for 1x1.
    """
    if grid.ntiles == 1:
        return 1.0
    h, w = out_hw
    th = max(1, h // grid.rows)
    tw = max(1, w // grid.cols)
    pad_h = halo * (2 if grid.rows > 2 else (1 if grid.rows == 2 else 0))
    pad_w = halo * (2 if grid.cols > 2 else (1 if grid.cols == 2 else 0))
    return ((th + pad_h) * (tw + pad_w)) / float(th * tw)


def split_tiles(x: np.ndarray, grid: Grid, halo: int = 1) -> List[np.ndarray]:
    """Split an (N, C, H, W) tensor into zero-padded FDSP tiles.

    Tiles are returned row-major.  Each tile is padded by ``halo`` zeros
    on every *cut* edge (edges on the original image border keep the
    layer's own padding behaviour and get no extra zeros here).
    """
    n, c, h, w = x.shape
    tiles: List[np.ndarray] = []
    row_edges = np.linspace(0, h, grid.rows + 1).astype(int)
    col_edges = np.linspace(0, w, grid.cols + 1).astype(int)
    for r in range(grid.rows):
        for cc in range(grid.cols):
            tile = x[:, :, row_edges[r]:row_edges[r + 1],
                     col_edges[cc]:col_edges[cc + 1]]
            pt = halo if r > 0 else 0
            pb = halo if r < grid.rows - 1 else 0
            pl = halo if cc > 0 else 0
            pr = halo if cc < grid.cols - 1 else 0
            tiles.append(np.pad(tile, ((0, 0), (0, 0), (pt, pb), (pl, pr))))
    return tiles


def merge_tiles(tiles: Sequence[np.ndarray], grid: Grid,
                out_hw: Tuple[int, int], halo: int = 1) -> np.ndarray:
    """Reassemble FDSP tiles into an (N, C, H, W) tensor.

    The zero-padding added by :func:`split_tiles` (possibly shrunk by
    stride inside the block — callers pass the *output* halo) is cropped
    before stitching.
    """
    if len(tiles) != grid.ntiles:
        raise ValueError(f"expected {grid.ntiles} tiles, got {len(tiles)}")
    h, w = out_hw
    n, c = tiles[0].shape[:2]
    out = np.zeros((n, c, h, w), dtype=tiles[0].dtype)
    row_edges = np.linspace(0, h, grid.rows + 1).astype(int)
    col_edges = np.linspace(0, w, grid.cols + 1).astype(int)
    for r in range(grid.rows):
        for cc in range(grid.cols):
            tile = tiles[r * grid.cols + cc]
            pt = halo if r > 0 else 0
            pl = halo if cc > 0 else 0
            th = row_edges[r + 1] - row_edges[r]
            tw = col_edges[cc + 1] - col_edges[cc]
            out[:, :, row_edges[r]:row_edges[r + 1],
                col_edges[cc]:col_edges[cc + 1]] = (
                tile[:, :, pt:pt + th, pl:pl + tw])
    return out
