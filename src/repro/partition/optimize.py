"""Plan refinement by coordinate descent.

Template plans (layer-wise splits, uniform spatial grids, greedy mixed
grids) are good starting points, but the best placements are usually
hybrids — e.g. ship the input, tile the middle 2x2, then collapse onto
the aggregation device before the small feature maps.  This module
improves any valid plan by coordinate descent: sweep the blocks, and for
each try a small candidate set of alternative (grid, devices, bits)
placements, keeping whichever minimizes the *whole-plan* simulated
latency.

This is the classical-optimization counterpart to the RL policy: slower
(hundreds of simulator calls) but useful as an oracle-quality reference
and to polish strategies offline before caching them.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, List, Optional, Sequence, Tuple

from ..models.graph import ModelGraph
from ..netsim.topology import Cluster
from .plan import BlockPlan, ExecutionPlan
from .simulate import simulate_latency
from .spatial import Grid

__all__ = ["refine_plan", "block_candidates"]


def block_candidates(block, num_devices: int,
                     bits_options: Sequence[int] = (32, 8),
                     max_pairs: int = 3) -> List[BlockPlan]:
    """Alternative placements considered for one block."""
    out: List[BlockPlan] = []
    g11 = Grid(1, 1)
    for bits in bits_options:
        for d in range(num_devices):
            out.append(BlockPlan(g11, (d,), bits=bits))
        if block.fused or not block.partitionable:
            continue
        pairs = list(combinations(range(num_devices), 2))[:max_pairs]
        for pair in pairs:
            out.append(BlockPlan(Grid(1, 2), pair, bits=bits))
        if num_devices >= 4:
            out.append(BlockPlan(Grid(2, 2), tuple(range(4)), bits=bits))
            if num_devices >= 5:
                out.append(BlockPlan(Grid(2, 2), (1, 2, 3, 4), bits=bits))
    return out


def refine_plan(graph: ModelGraph, plan: ExecutionPlan, cluster: Cluster,
                max_passes: int = 3,
                objective: Optional[Callable[[ExecutionPlan], float]] = None,
                ) -> Tuple[ExecutionPlan, float]:
    """Coordinate-descent improvement of ``plan``.

    ``objective`` defaults to end-to-end simulated latency; supply a
    custom callable (e.g. latency + lambda * energy) for other targets.
    Returns ``(refined plan, objective value)``; the result is always at
    least as good as the input.
    """
    plan.validate_for(graph, cluster.num_devices)
    if objective is None:
        def objective(p: ExecutionPlan) -> float:
            return simulate_latency(graph, p, cluster).total_s

    current = list(plan.block_plans)
    best_value = objective(ExecutionPlan(current, plan.output_device))
    for _ in range(max_passes):
        improved = False
        for i, block in enumerate(graph):
            original = current[i]
            for candidate in block_candidates(block, cluster.num_devices):
                if candidate == original:
                    continue
                current[i] = candidate
                value = objective(ExecutionPlan(current, plan.output_device))
                if value < best_value - 1e-12:
                    best_value = value
                    original = candidate
                    improved = True
                else:
                    current[i] = original
        if not improved:
            break
    return ExecutionPlan(current, plan.output_device), best_value
