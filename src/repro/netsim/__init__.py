"""Network simulation: links, cluster topology, evaluation grids,
dynamic traces, and the monitoring subsystem."""

from .grids import (
    AUGMENTED_BANDWIDTHS,
    AUGMENTED_DELAYS,
    SWARM_BANDWIDTHS,
    SWARM_DELAY,
    augmented_conditions,
    swarm_conditions,
    training_grid,
    validation_conditions,
)
from .contention import ContentionTracker, Flow, SharedIngress
from .fluid import FlowSpec, FluidSegment, FluidTracker, solve_fluid
from .link import LOOPBACK, Link
from .mesh import (MeshCluster, MeshLink, RouteInfo, line_topology,
                   partial_mesh_topology, ring_topology)
from .monitor import Measurement, NetworkMonitor
from .topology import Cluster, NetworkCondition
from .traces import TraceConfig, mobility_trace, random_walk_trace, step_trace

__all__ = [
    "ContentionTracker",
    "Flow",
    "FlowSpec",
    "FluidSegment",
    "FluidTracker",
    "SharedIngress",
    "solve_fluid",
    "Link",
    "LOOPBACK",
    "MeshCluster",
    "MeshLink",
    "RouteInfo",
    "line_topology",
    "partial_mesh_topology",
    "ring_topology",
    "Cluster",
    "NetworkCondition",
    "NetworkMonitor",
    "Measurement",
    "TraceConfig",
    "random_walk_trace",
    "step_trace",
    "mobility_trace",
    "AUGMENTED_BANDWIDTHS",
    "AUGMENTED_DELAYS",
    "SWARM_BANDWIDTHS",
    "SWARM_DELAY",
    "augmented_conditions",
    "swarm_conditions",
    "training_grid",
    "validation_conditions",
]
