"""Dynamic network-condition traces.

The paper motivates Murmuration with *dynamic* edge environments (device
mobility, contention).  These generators produce time series of
:class:`~repro.netsim.topology.NetworkCondition` that the runtime
examples and the monitoring-predictor tests replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from .topology import NetworkCondition

__all__ = ["TraceConfig", "condition_at", "random_walk_trace",
           "step_trace", "mobility_trace"]


def condition_at(trace, t: float, period_s: float):
    """The trace cell active at simulated time ``t``.

    The one place the piecewise-constant trace indexing rule lives
    (it used to be duplicated across the serving loops): cell ``i``
    covers ``[i * period_s, (i + 1) * period_s)`` and the final cell
    extends forever — the world holds its last state.  Works for any
    sequence (conditions, capacities, ...).  Returns
    ``(index, trace[index])``.
    """
    if not trace:
        raise ValueError("condition_at needs a non-empty trace")
    if period_s <= 0:
        raise ValueError(f"period_s must be positive, got {period_s}")
    if t < 0:
        raise ValueError(f"t must be non-negative, got {t}")
    idx = min(int(t / period_s), len(trace) - 1)
    return idx, trace[idx]


@dataclass(frozen=True)
class TraceConfig:
    num_remote: int = 1
    bw_range: Tuple[float, float] = (50.0, 400.0)
    delay_range: Tuple[float, float] = (5.0, 100.0)
    steps: int = 100
    seed: int = 0


def _clip(v: np.ndarray, lo: float, hi: float) -> np.ndarray:
    return np.clip(v, lo, hi)


def random_walk_trace(cfg: TraceConfig) -> List[NetworkCondition]:
    """Smooth random walk: bandwidth and delay drift step to step.

    Models gradual signal-strength change as a device moves.
    """
    rng = np.random.default_rng(cfg.seed)
    blo, bhi = cfg.bw_range
    dlo, dhi = cfg.delay_range
    bw = rng.uniform(blo, bhi, cfg.num_remote)
    delay = rng.uniform(dlo, dhi, cfg.num_remote)
    out = []
    for _ in range(cfg.steps):
        bw = _clip(bw + rng.normal(0, 0.05 * (bhi - blo), cfg.num_remote), blo, bhi)
        delay = _clip(delay + rng.normal(0, 0.05 * (dhi - dlo), cfg.num_remote),
                      dlo, dhi)
        out.append(NetworkCondition(tuple(bw), tuple(delay)))
    return out


def step_trace(cfg: TraceConfig, period: int = 20) -> List[NetworkCondition]:
    """Abrupt condition changes every ``period`` steps (handover events)."""
    rng = np.random.default_rng(cfg.seed)
    blo, bhi = cfg.bw_range
    dlo, dhi = cfg.delay_range
    out: List[NetworkCondition] = []
    current: Optional[NetworkCondition] = None
    for t in range(cfg.steps):
        if current is None or t % period == 0:
            current = NetworkCondition(
                tuple(rng.uniform(blo, bhi, cfg.num_remote)),
                tuple(rng.uniform(dlo, dhi, cfg.num_remote)))
        out.append(current)
    return out


def mobility_trace(cfg: TraceConfig) -> List[NetworkCondition]:
    """Sinusoidal approach/retreat pattern: bandwidth peaks while delay
    bottoms as the device passes close to the access point."""
    blo, bhi = cfg.bw_range
    dlo, dhi = cfg.delay_range
    rng = np.random.default_rng(cfg.seed)
    phase = rng.uniform(0, 2 * np.pi, cfg.num_remote)
    out = []
    for t in range(cfg.steps):
        s = np.sin(2 * np.pi * t / max(cfg.steps, 1) * 2 + phase) * 0.5 + 0.5
        bw = blo + (bhi - blo) * s
        delay = dhi - (dhi - dlo) * s
        noise_b = rng.normal(0, 0.02 * (bhi - blo), cfg.num_remote)
        noise_d = rng.normal(0, 0.02 * (dhi - dlo), cfg.num_remote)
        out.append(NetworkCondition(
            tuple(_clip(bw + noise_b, blo, bhi)),
            tuple(_clip(delay + noise_d, dlo, dhi))))
    return out
