"""Network-condition grids used in the paper's evaluation.

Section 6 sweeps bandwidth/delay/SLO on fixed grids:

* Fig. 13 / 16a (augmented computing): bandwidth 50-400 Mbps (8 points),
  delay 5-100 ms (5 points) => 40 settings.
* Fig. 14 / 16b (device swarm): bandwidth 5-500 Mbps (9 points), delay
  fixed at 20 ms.
* RL training (Sec. 6.1.1): 10 discrete points per metric between a
  configurable min and max.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from .topology import NetworkCondition

__all__ = [
    "AUGMENTED_BANDWIDTHS",
    "AUGMENTED_DELAYS",
    "SWARM_BANDWIDTHS",
    "SWARM_DELAY",
    "training_grid",
    "augmented_conditions",
    "swarm_conditions",
    "validation_conditions",
]

AUGMENTED_BANDWIDTHS: Tuple[float, ...] = (50, 100, 150, 200, 250, 300, 350, 400)
AUGMENTED_DELAYS: Tuple[float, ...] = (5, 25, 50, 75, 100)
SWARM_BANDWIDTHS: Tuple[float, ...] = (5, 10, 20, 50, 100, 200, 350, 450, 500)
SWARM_DELAY: float = 20.0


def training_grid(lo: float, hi: float, points: int = 10) -> np.ndarray:
    """The 10-point discretization used for each metric during training."""
    if points < 2:
        raise ValueError("need at least 2 grid points")
    return np.linspace(lo, hi, points)


def augmented_conditions() -> List[NetworkCondition]:
    """All 40 (bw, delay) settings of the augmented-computing sweep
    (single remote device)."""
    return [NetworkCondition((bw,), (d,))
            for d in AUGMENTED_DELAYS for bw in AUGMENTED_BANDWIDTHS]


def swarm_conditions(num_remote: int = 4,
                     varied_device: int = 0) -> List[NetworkCondition]:
    """Swarm sweep: one remote device's bandwidth varies over the 9-point
    grid, the others stay at 100 Mbps; delay fixed at 20 ms (Fig. 14)."""
    conditions = []
    for bw in SWARM_BANDWIDTHS:
        bws = [100.0] * num_remote
        bws[varied_device] = bw
        conditions.append(NetworkCondition(tuple(bws),
                                           (SWARM_DELAY,) * num_remote))
    return conditions


def validation_conditions(num_remote: int, bw_range: Tuple[float, float],
                          delay_range: Tuple[float, float],
                          points: int = 5,
                          rng: np.random.Generator = None) -> List[NetworkCondition]:
    """Evenly spread validation conditions over the constraint space.

    For one remote device this is the full cartesian grid; for several,
    a low-discrepancy sample (full grids explode combinatorially).
    """
    bws = training_grid(*bw_range, points)
    delays = training_grid(*delay_range, points)
    if num_remote == 1:
        return [NetworkCondition((b,), (d,)) for b in bws for d in delays]
    rng = rng or np.random.default_rng(7)
    out = []
    for _ in range(points * points):
        b = tuple(float(rng.choice(bws)) for _ in range(num_remote))
        d = tuple(float(rng.choice(delays)) for _ in range(num_remote))
        out.append(NetworkCondition(b, d))
    return out
