"""Network monitoring (Section 5's Network Monitoring module).

Combines *active* probes (ping-style RTT, iperf-style bandwidth
estimates) with *passive* observations (timing actual data transfers).
Measurements carry realistic multiplicative noise; an exponentially
weighted moving average smooths them, and the most recent smoothed
estimate forms the condition fed to the decision module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..telemetry import Telemetry
from .topology import Cluster, NetworkCondition

__all__ = ["Measurement", "NetworkMonitor"]


@dataclass(frozen=True)
class Measurement:
    """One monitoring sample for one remote device."""

    device: int
    bandwidth_mbps: float
    delay_ms: float
    timestamp: float
    source: str  # "active" | "passive"


class NetworkMonitor:
    """Samples the (simulated) true link state with measurement noise.

    Parameters
    ----------
    cluster : the cluster whose links are observed.
    noise : relative std-dev of active-probe error (passive observations
        are noisier: real transfers share the link with inference traffic).
    ewma_alpha : smoothing factor; 1.0 = trust the latest sample fully.
    """

    def __init__(self, cluster: Cluster, noise: float = 0.05,
                 ewma_alpha: float = 0.5, seed: int = 0,
                 telemetry: Optional[Telemetry] = None):
        self.cluster = cluster
        self.noise = noise
        self.ewma_alpha = ewma_alpha
        self._rng = np.random.default_rng(seed)
        self._history: List[Measurement] = []
        self._smoothed_bw: Dict[int, float] = {}
        self._smoothed_delay: Dict[int, float] = {}
        self.telemetry = telemetry
        if telemetry is not None:
            self._reg = telemetry.registry.child("monitor")
            # Pre-resolved per-source counters keep the probe hot path
            # to plain attribute increments.
            self._m_probes = {
                source: self._reg.counter("probes_total",
                                          help="monitoring samples",
                                          source=source)
                for source in ("active", "passive")}
            self._m_bw_err = self._reg.histogram(
                "bw_estimate_rel_error",
                help="|smoothed bw - true bw| / true bw after each sample")
            self._m_delay_err = self._reg.histogram(
                "delay_estimate_rel_error",
                help="|smoothed delay - true delay| / true delay")

    # -- probing -------------------------------------------------------------
    def _record(self, m: Measurement) -> Measurement:
        """Ingest one measurement and update telemetry error gauges."""
        self._ingest(m)
        if self.telemetry is not None:
            cond = self.cluster.condition
            true_bw = cond.bandwidths_mbps[m.device - 1]
            true_delay = cond.delays_ms[m.device - 1]
            self._m_probes[m.source].inc()
            if true_bw > 0:
                self._m_bw_err.observe(
                    abs(self._smoothed_bw[m.device] - true_bw) / true_bw)
            if true_delay > 0:
                self._m_delay_err.observe(
                    abs(self._smoothed_delay[m.device] - true_delay)
                    / true_delay)
        return m

    def _observe(self, device: int, now: float, relative_noise: float,
                 source: str) -> Measurement:
        cond = self.cluster.condition
        true_bw = cond.bandwidths_mbps[device - 1]
        true_delay = cond.delays_ms[device - 1]
        bw = true_bw * float(self._rng.lognormal(0.0, relative_noise))
        delay = true_delay * float(self._rng.lognormal(0.0, relative_noise))
        return self._record(Measurement(device, bw, delay, now, source))

    def active_probe(self, device: int, now: float = 0.0) -> Measurement:
        """Ping + short bandwidth probe against one remote device."""
        if not (1 <= device < self.cluster.num_devices):
            raise ValueError(f"device {device} is not a remote device")
        return self._observe(device, now, self.noise, "active")

    def passive_observe(self, device: int, nbytes: float, elapsed_s: float,
                        now: float = 0.0) -> Measurement:
        """Derive link state from a timed real transfer.

        Unlike an active probe — which samples ground truth with noise —
        a passive observation is computed from what actually happened on
        the wire: ``nbytes`` delivered in ``elapsed_s``.  The fixed
        per-message cost (propagation delay + RPC overhead) is backed
        out using the monitor's own smoothed delay estimate (link-model
        fallback before the first probe), and the remainder prices the
        payload: ``bw = nbytes * 8 / payload_time``.  The delay sample
        still comes from the ack timing (noisy, 2x active noise —
        transfers share the link with inference traffic).
        """
        if elapsed_s <= 0:
            raise ValueError("elapsed time must be positive")
        if not (1 <= device < self.cluster.num_devices):
            raise ValueError(f"device {device} is not a remote device")
        link = self.cluster.link_to(device)
        est_delay_ms = self._smoothed_delay.get(device, link.delay_ms)
        overhead_s = (est_delay_ms + link.rpc_overhead_ms) / 1e3
        # A transfer faster than the modeled fixed cost still carries
        # signal; keep a sliver of the elapsed time so bw stays finite.
        payload_s = max(elapsed_s - overhead_s, 0.01 * elapsed_s)
        bw_mbps = nbytes * 8.0 / payload_s / 1e6
        true_delay = self.cluster.condition.delays_ms[device - 1]
        delay = true_delay * float(self._rng.lognormal(0.0, self.noise * 2.0))
        return self._record(
            Measurement(device, bw_mbps, delay, now, "passive"))

    def probe_all(self, now: float = 0.0) -> List[Measurement]:
        return [self.active_probe(d, now)
                for d in range(1, self.cluster.num_devices)]

    # -- state ---------------------------------------------------------------
    def _ingest(self, m: Measurement) -> None:
        self._history.append(m)
        a = self.ewma_alpha
        if m.device in self._smoothed_bw:
            self._smoothed_bw[m.device] = (
                a * m.bandwidth_mbps + (1 - a) * self._smoothed_bw[m.device])
            self._smoothed_delay[m.device] = (
                a * m.delay_ms + (1 - a) * self._smoothed_delay[m.device])
        else:
            self._smoothed_bw[m.device] = m.bandwidth_mbps
            self._smoothed_delay[m.device] = m.delay_ms

    @property
    def history(self) -> List[Measurement]:
        return list(self._history)

    def estimate(self) -> NetworkCondition:
        """Current smoothed estimate of all links.

        Devices never probed fall back to the true condition (the monitor
        is bootstrapped with one probe round in the runtime).
        """
        n = self.cluster.num_devices - 1
        cond = self.cluster.condition
        bws, delays = [], []
        for d in range(1, n + 1):
            bws.append(self._smoothed_bw.get(d, cond.bandwidths_mbps[d - 1]))
            delays.append(self._smoothed_delay.get(d, cond.delays_ms[d - 1]))
        return NetworkCondition(tuple(bws), tuple(delays))

    def device_series(self, device: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(timestamps, bandwidths, delays) history for one device."""
        ms = [m for m in self._history if m.device == device]
        return (np.array([m.timestamp for m in ms]),
                np.array([m.bandwidth_mbps for m in ms]),
                np.array([m.delay_ms for m in ms]))
