"""Fluid-flow (max-min) bandwidth sharing: rates re-converge at events.

The snapshot model in :mod:`repro.netsim.contention` freezes every
flow's fair share at admission: the first of two overlapping transfers
keeps the full link for its whole lifetime and the second pays the
shared rate for its whole lifetime, even after the first completes.
That under-charges the first and over-charges the second relative to
how TCP-ish fair sharing actually behaves.

This module prices flows with a **fluid-flow solver**: at every *event*
(a flow arriving or completing, or a link capacity update observed at
admission) the solver reruns progressive-filling water-filling over all
active flows' edge sets — saturating bottleneck links and freezing
their flows at the bottleneck's fair level, repeating until every flow
is bottlenecked — and advances the simulation piecewise between events,
integrating each flow's (piecewise-constant) rate to find completions.
The resulting allocation is the max-min fair one at every instant:

* **byte conservation** — each flow's rate integrates to exactly its
  payload (``∫ rate dt == nbytes * 8``);
* **max-min certificate** — every flow crosses a saturated edge on
  which its rate is maximal, so no flow's rate can be increased without
  decreasing an equal-or-slower flow's;
* **bottleneck saturation** — every flow crosses at least one
  fully-utilized edge in every segment it is active;
* **order invariance** — the same event set yields the same finish
  times regardless of submission order (:func:`solve_fluid` processes
  flows in a canonical order; the online tracker's admissions arrive in
  nondecreasing simulated time, which is the same sequence);
* **lone-flow bit-identity** — a flow that shares no edge with any
  in-flight flow is priced by returning the contention-free
  ``transfer_time`` float verbatim, exactly like the snapshot tracker's
  zero-concurrency fast path.

:class:`FluidTracker` is a drop-in replacement for
:class:`~repro.netsim.contention.ContentionTracker` wherever a
``contention=`` / ``tracker=`` parameter is accepted
(:meth:`Cluster.timed_transfer`, :meth:`MeshCluster.timed_transfer`,
:class:`~repro.netsim.contention.SharedIngress`): it sets
``prices_transfers = True``, so clusters delegate the whole pricing
computation to :meth:`FluidTracker.admit_transfer` instead of running
the inline snapshot math.  ``tracker=None`` builds stay bit-identical
to the contention-free model, exactly as before.

On-line semantics
-----------------
The serving loop needs a transfer's duration *at admission*, but a flow
admitted later can slow an in-flight flow down.  The duration each
``admit_transfer`` call returns is therefore the flow's finish under
the event set known at admission (exact if no later flow arrives —
lone flows are bit-identical); the solver's internal ledger keeps
re-converging as later flows arrive, and :meth:`finish_times` exposes
the ledger's (authoritative) completion times — that is what the
property suite and the snapshot-vs-fluid bench audit.  Admissions must
arrive in nondecreasing simulated time (the serving loop's order); an
admission in the ledger's past is clamped to the current ledger time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..telemetry import Telemetry

__all__ = ["FlowSpec", "FluidSegment", "FluidTracker", "solve_fluid"]


Edge = Tuple[int, int]


def _edge(a: int, b: int) -> Edge:
    """Canonical (sorted) form of an undirected link."""
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class FlowSpec:
    """One transfer for the offline solver: a payload crossing edges."""

    edges: Tuple[Edge, ...]
    start: float
    nbytes: float
    tenant: Optional[str] = None


@dataclass(frozen=True)
class FluidSegment:
    """One piecewise-constant rate segment ``[t0, t1)``.

    ``rates`` maps flow id -> allocated rate (bits/s) during the
    segment.  Recorded only when the tracker was built with
    ``record_segments=True`` (the property suite's audit trail).
    """

    t0: float
    t1: float
    rates: Dict[int, float]

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class _Flow:
    """Mutable per-flow solver state."""

    __slots__ = ("fid", "edges", "start", "nbytes", "remaining_bits",
                 "rate", "reconvergences", "tenant")

    def __init__(self, fid: int, edges: Tuple[Edge, ...], start: float,
                 nbytes: float, tenant: Optional[str]):
        self.fid = fid
        self.edges = edges
        self.start = start
        self.nbytes = nbytes
        self.remaining_bits = nbytes * 8.0
        #: current max-min rate (bits/s); None until first allocation
        self.rate: Optional[float] = None
        #: times this flow's rate changed after its first allocation
        self.reconvergences = 0
        self.tenant = tenant

    def copy(self) -> "_Flow":
        f = _Flow.__new__(_Flow)
        f.fid = self.fid
        f.edges = self.edges
        f.start = self.start
        f.nbytes = self.nbytes
        f.remaining_bits = self.remaining_bits
        f.rate = self.rate
        f.reconvergences = self.reconvergences
        f.tenant = self.tenant
        return f


class FluidTracker:
    """Max-min fair bandwidth ledger with event-driven re-convergence.

    Drop-in behind the :class:`ContentionTracker` interface: exposes the
    same accounting surface (``flows_total`` / ``contended_total`` /
    ``peak_share`` / ``tenant_bytes()`` / ``stats()`` /
    ``concurrency()`` / ``share()``) plus the fluid-pricing entry
    points clusters delegate to when ``prices_transfers`` is True:

    * :meth:`admit_transfer` — price *and* commit a transfer;
    * :meth:`peek_transfer` — price without committing (admission
      control peeks at upload times; only admitted requests occupy the
      wire) — guaranteed to return the same float a subsequent
      ``admit_transfer`` at the same instant would, because it runs the
      identical arithmetic on a throwaway clone of the engine.
    """

    #: clusters delegate the whole pricing computation to trackers that
    #: set this (the snapshot tracker keeps the inline math)
    prices_transfers = True

    def __init__(self, telemetry: Optional[Telemetry] = None,
                 record_segments: bool = False):
        #: simulated time of the last processed event
        self._t = 0.0
        self._started = False
        self._active: Dict[int, _Flow] = {}
        self._caps: Dict[Edge, float] = {}
        self._finish: Dict[int, float] = {}
        self._spec: Dict[int, FlowSpec] = {}
        self._next = 0
        self.record_segments = record_segments
        #: piecewise-constant rate segments (``record_segments=True``)
        self.segments: List[FluidSegment] = []
        # -- ContentionTracker-parity accounting --------------------------
        #: flows ever admitted
        self.flows_total = 0
        #: flows that shared at least one edge when admitted
        self.contended_total = 0
        #: widest concurrent sharing ever seen per edge (1 = lone)
        self.peak_share: Dict[Edge, int] = {}
        #: piecewise segments advanced (one per rate-constant interval)
        self.segments_total = 0
        #: mid-flight capacity updates applied (:meth:`update_caps`)
        self.caps_updates_total = 0
        self._tenant_bytes: Dict[str, float] = {}
        #: clones used for peeks/predictions never touch accounting
        self._ghost = False
        self.telemetry = telemetry
        if telemetry is not None:
            reg = telemetry.registry.child("fluid")
            self._m_flows = reg.counter(
                "flows_total", help="transfers priced through the solver")
            self._m_contended = reg.counter(
                "contended_flows_total",
                help="transfers sharing at least one edge at admission")
            self._m_segments = reg.counter(
                "segments_total",
                help="piecewise-constant rate segments advanced")
            self._m_reconv = reg.histogram(
                "flow_reconvergences",
                help="rate re-convergences a flow saw before completing",
                lo=1.0, hi=4096.0)
            self._m_tenant: dict = {}

    # -- engine ------------------------------------------------------------
    def _clone(self) -> "FluidTracker":
        """A throwaway copy of the solver state for peeks/predictions.

        Clones are *ghosts*: they never record segments, never bump
        accounting, and never touch telemetry — running the identical
        arithmetic is their only job.
        """
        c = FluidTracker.__new__(FluidTracker)
        c._t = self._t
        c._started = self._started
        c._active = {fid: f.copy() for fid, f in self._active.items()}
        c._caps = dict(self._caps)
        c._finish = dict(self._finish)
        c._spec = dict(self._spec)
        c._next = self._next
        c.record_segments = False
        c.segments = []
        c.flows_total = 0
        c.contended_total = 0
        c.peak_share = {}
        c.segments_total = 0
        c.caps_updates_total = 0
        c._tenant_bytes = {}
        c._ghost = True
        c.telemetry = None
        return c

    def _reconverge(self) -> None:
        """Max-min allocation over the active flows (water-filling).

        Progressive filling: every unfrozen flow's rate rises together;
        the edge with the smallest fair level ``cap_left / unfrozen``
        saturates first and freezes its flows at that level; repeat on
        the residual graph until every flow is bottlenecked.  Iteration
        orders are sorted, so the result is a pure function of the flow
        set — no dict-ordering leakage.
        """
        if not self._active:
            return
        flows = [self._active[fid] for fid in sorted(self._active)]
        edges = sorted({e for f in flows for e in f.edges})
        cap_left: Dict[Edge, float] = {}
        for e in edges:
            cap = self._caps.get(e)
            if cap is None or cap <= 0.0:
                raise ValueError(f"edge {e} has no positive capacity")
            cap_left[e] = cap
        count = {e: 0 for e in edges}
        for f in flows:
            for e in f.edges:
                count[e] += 1
        unfrozen = {f.fid for f in flows}
        while unfrozen:
            level = min(cap_left[e] / count[e]
                        for e in edges if count[e] > 0)
            bottleneck = {e for e in edges
                          if count[e] > 0 and cap_left[e] / count[e] == level}
            for f in flows:
                if f.fid not in unfrozen:
                    continue
                if not any(e in bottleneck for e in f.edges):
                    continue
                old = f.rate
                f.rate = level
                if old is not None and old != level:
                    f.reconvergences += 1
                unfrozen.discard(f.fid)
                for e in f.edges:
                    cap_left[e] -= level
                    count[e] -= 1
            for e in bottleneck:
                if cap_left[e] < 0.0:
                    cap_left[e] = 0.0  # float dust on saturated edges

    def _segment(self, t1: float) -> None:
        """Record one advanced rate-constant interval ``[_t, t1)``."""
        if t1 <= self._t or self._ghost:
            return
        self.segments_total += 1
        if self.telemetry is not None:
            self._m_segments.inc()
        if self.record_segments:
            self.segments.append(FluidSegment(
                self._t, t1, {f.fid: f.rate
                              for f in self._active.values()}))

    def _complete(self, fid: int, t: float) -> None:
        flow = self._active.pop(fid)
        self._finish[fid] = t
        if self._ghost:
            return
        if self.telemetry is not None:
            self._m_reconv.observe(float(flow.reconvergences) + 1.0)

    def _advance(self, until: float) -> None:
        """Advance the piecewise simulation to ``until``, processing
        every completion event on the way."""
        if not self._started:
            self._t = until
            self._started = True
            return
        if until < self._t:
            return  # clamp: the ledger's clock never runs backwards
        while self._active:
            dts = {fid: f.remaining_bits / f.rate
                   for fid, f in self._active.items()}
            dt_min = min(dts.values())
            t_next = self._t + dt_min
            if t_next > until:
                break
            self._segment(t_next)
            for f in self._active.values():
                f.remaining_bits -= f.rate * dt_min
            done = [fid for fid in sorted(self._active)
                    if dts[fid] == dt_min
                    or self._active[fid].remaining_bits <= 0.0]
            for fid in done:
                self._complete(fid, t_next)
            self._t = t_next
            self._reconverge()
        if self._active and self._t < until:
            self._segment(until)
            dt = until - self._t
            for f in self._active.values():
                f.remaining_bits -= f.rate * dt
        if until > self._t:
            self._t = until

    def _account(self, flow: _Flow, shares: Dict[Edge, int]) -> None:
        if self._ghost:
            return
        self.flows_total += 1
        worst = max(shares.values())
        contended = worst > 1
        if contended:
            self.contended_total += 1
        for e, s in shares.items():
            if s > self.peak_share.get(e, 1):
                self.peak_share[e] = s
        if flow.tenant is not None and flow.nbytes:
            self._tenant_bytes[flow.tenant] = (
                self._tenant_bytes.get(flow.tenant, 0.0) + flow.nbytes)
        if self.telemetry is not None:
            self._m_flows.inc()
            if contended:
                self._m_contended.inc()
            if flow.tenant is not None and flow.nbytes:
                counter = self._m_tenant.get(flow.tenant)
                if counter is None:
                    counter = self.telemetry.registry.child("fluid").counter(
                        "tenant_bytes_total",
                        help="payload bytes on the wire per tenant",
                        tenant=flow.tenant)
                    self._m_tenant[flow.tenant] = counter
                counter.inc(flow.nbytes)

    # -- admission ---------------------------------------------------------
    def admit(self, edges: Sequence[Edge], caps: Mapping[Edge, float],
              now: float, nbytes: float,
              tenant: Optional[str] = None) -> int:
        """Put one flow of ``nbytes`` on ``edges`` at time ``now``.

        ``caps`` maps each of the flow's (canonical) edges to its
        capacity in bits/s; capacities observed here update the
        ledger's piecewise-constant view (existing flows on a changed
        edge re-converge).  Returns the flow id.
        """
        canon = tuple(_edge(*e) for e in edges)
        if not canon:
            raise ValueError("a flow must cross at least one edge")
        self._advance(float(now))
        start = self._t
        for e in canon:
            cap = float(caps[_edge(*e)] if _edge(*e) in caps else caps[e])
            if cap <= 0.0:
                raise ValueError(f"edge {e} capacity must be positive")
            self._caps[e] = cap
        shares = {e: 1 + sum(1 for f in self._active.values()
                             if e in f.edges) for e in canon}
        flow = _Flow(self._next, canon, start, float(nbytes), tenant)
        self._next += 1
        self._active[flow.fid] = flow
        self._spec[flow.fid] = FlowSpec(canon, start, float(nbytes), tenant)
        if flow.remaining_bits <= 0.0:
            # zero-byte flow: completes the instant it starts
            self._complete(flow.fid, start)
            self._reconverge()
        else:
            self._reconverge()
        self._account(flow, shares)
        return flow.fid

    def update_caps(self, now: float, caps: Mapping[Edge, float]) -> None:
        """Re-converge every in-flight flow under new edge capacities.

        The mid-flight entry point (the boundary-only model only
        refreshes capacities when a flow is *admitted*): advance the
        piecewise ledger to ``now`` — a completion landing exactly at
        ``now`` is processed *first*, so event ordering at a shared
        instant is deterministic — then install the new capacities and
        re-run water-filling, so every active flow's rate re-converges
        from ``now`` on.  Bytes already transferred are untouched
        (conservation holds segment by segment); capacities for edges
        with no active flow are stored for future admissions.  An
        update in the ledger's past clamps to the ledger's current time,
        the same rule out-of-order admissions follow.
        """
        updates: Dict[Edge, float] = {}
        for e, cap in caps.items():
            cap = float(cap)
            if cap <= 0.0:
                raise ValueError(
                    f"edge {e} capacity must be positive, got {cap}")
            updates[_edge(*e)] = cap
        self._advance(float(now))
        self._caps.update(updates)
        self._reconverge()
        if not self._ghost:
            self.caps_updates_total += 1

    def _transfer(self, engine: "FluidTracker", edges: Sequence[Edge],
                  caps: Mapping[Edge, float], latency_s: float,
                  nbytes: float, now: float, tenant: Optional[str],
                  base_s: Optional[float]) -> float:
        canon = tuple(_edge(*e) for e in edges)
        engine._advance(float(now))
        lone = not any(e in f.edges
                       for f in engine._active.values() for e in canon)
        fid = engine.admit(canon, caps, engine._t, nbytes, tenant)
        if lone and base_s is not None:
            # bit-identity fast path: a flow sharing no edge with any
            # in-flight flow is priced exactly like the base link model
            return base_s
        start = engine._spec[fid].start
        return latency_s + (engine.finish_time(fid) - start)

    def admit_transfer(self, edges: Sequence[Edge],
                       caps: Mapping[Edge, float], latency_s: float,
                       nbytes: float, now: float,
                       tenant: Optional[str] = None,
                       base_s: Optional[float] = None) -> float:
        """Price one transfer and put its flow on the wire.

        Returns total seconds: ``latency_s`` plus the wire time under
        max-min sharing with the flows known at admission.  ``base_s``
        (the contention-free ``transfer_time`` float) is returned
        verbatim when the flow is lone — bit-identity.
        """
        return self._transfer(self, edges, caps, latency_s, nbytes, now,
                              tenant, base_s)

    def peek_transfer(self, edges: Sequence[Edge],
                      caps: Mapping[Edge, float], latency_s: float,
                      nbytes: float, now: float,
                      tenant: Optional[str] = None,
                      base_s: Optional[float] = None) -> float:
        """Price a transfer *without* committing it (admission peek).

        Runs :meth:`admit_transfer` on a ghost clone, so the returned
        float is exactly what a commit at the same instant would yield.
        """
        return self._transfer(self._clone(), edges, caps, latency_s,
                              nbytes, now, tenant, base_s)

    # -- completion queries ------------------------------------------------
    def drain(self) -> None:
        """Run every active flow to completion (no further arrivals)."""
        while self._active:
            dt_min = min(f.remaining_bits / f.rate
                         for f in self._active.values())
            self._advance(self._t + dt_min)

    def finish_time(self, fid: int) -> float:
        """This flow's completion time: actual if already drained,
        else predicted assuming no further arrivals."""
        done = self._finish.get(fid)
        if done is not None:
            return done
        if fid not in self._active:
            raise KeyError(f"unknown flow id {fid}")
        c = self._clone()
        c.drain()
        return c._finish[fid]

    def finish_times(self) -> Dict[int, float]:
        """Completion times for every flow ever admitted (active flows
        contribute their no-further-arrivals prediction)."""
        if not self._active:
            return dict(self._finish)
        c = self._clone()
        c.drain()
        return dict(c._finish)

    def flow_spec(self, fid: int) -> FlowSpec:
        """The admitted spec (edges/start/bytes/tenant) of one flow."""
        return self._spec[fid]

    # -- ContentionTracker-parity queries ----------------------------------
    def concurrency(self, edge: Edge, now: float) -> int:
        """Flows in flight on ``edge`` at simulated time ``now``
        (non-mutating: runs the piecewise advance on a ghost clone)."""
        c = self._clone()
        c._advance(float(now))
        e = _edge(*edge)
        return sum(1 for f in c._active.values() if e in f.edges)

    def share(self, edge: Edge, now: float) -> int:
        """Fair-share divisor a new flow admitted at ``now`` would see."""
        return 1 + self.concurrency(edge, now)

    def tenant_bytes(self) -> Dict[str, float]:
        """Cumulative bytes admitted per tenant (tagged flows only)."""
        return dict(self._tenant_bytes)

    def stats(self) -> Dict[str, float]:
        return {
            "flows": self.flows_total,
            "contended": self.contended_total,
            "peak_share": max(self.peak_share.values(), default=1),
            "segments": self.segments_total,
            "active": len(self._active),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"FluidTracker({self.flows_total} flows, "
                f"{len(self._active)} active, "
                f"{self.segments_total} segments, t={self._t:g})")


def solve_fluid(flows: Sequence[FlowSpec], caps: Mapping[Edge, float],
                record_segments: bool = True,
                ) -> Tuple[List[float], FluidTracker]:
    """Offline max-min solve: finish times aligned with the input order.

    Flows are admitted in a canonical ``(start, edges, nbytes, tenant)``
    order, so the result is **submission-order invariant**: permuting
    ``flows`` permutes the returned list the same way but changes no
    float.  Returns ``(finish_times, tracker)``; the tracker carries the
    per-segment audit trail when ``record_segments`` is on.
    """
    specs = [f if isinstance(f, FlowSpec) else FlowSpec(*f) for f in flows]
    order = sorted(
        range(len(specs)),
        key=lambda i: (specs[i].start,
                       tuple(_edge(*e) for e in specs[i].edges),
                       specs[i].nbytes,
                       specs[i].tenant is not None,
                       specs[i].tenant or ""))
    tracker = FluidTracker(record_segments=record_segments)
    fids: Dict[int, int] = {}
    for i in order:
        s = specs[i]
        fids[i] = tracker.admit(s.edges, caps, s.start, s.nbytes, s.tenant)
    tracker.drain()
    return [tracker._finish[fids[i]] for i in range(len(specs))], tracker
