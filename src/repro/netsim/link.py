"""Point-to-point links.

The paper shapes a 1 Gbps wired testbed with ``tc`` into (bandwidth,
delay) pairs; a :class:`Link` models exactly those two parameters plus a
fixed per-message RPC overhead (serialization + gRPC framing).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["Link", "LOOPBACK"]


@dataclass(frozen=True)
class Link:
    """One direction of a network path between two devices.

    Attributes
    ----------
    bandwidth_mbps : usable bandwidth in megabits/second.
    delay_ms : one-way propagation delay in milliseconds.
    rpc_overhead_ms : fixed per-message cost (serialization, framing).
    """

    bandwidth_mbps: float
    delay_ms: float
    rpc_overhead_ms: float = 1.0

    def __post_init__(self):
        if self.bandwidth_mbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_mbps}")
        if self.delay_ms < 0:
            raise ValueError(f"delay must be non-negative, got {self.delay_ms}")

    @property
    def bandwidth_bps(self) -> float:
        return self.bandwidth_mbps * 1e6

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to deliver ``nbytes``: delay + serialization + wire time."""
        return ((self.delay_ms + self.rpc_overhead_ms) / 1e3
                + nbytes * 8.0 / self.bandwidth_bps)

    def with_conditions(self, bandwidth_mbps: float = None,
                        delay_ms: float = None) -> "Link":
        """Copy with updated conditions (dynamic-environment updates)."""
        kw = {}
        if bandwidth_mbps is not None:
            kw["bandwidth_mbps"] = bandwidth_mbps
        if delay_ms is not None:
            kw["delay_ms"] = delay_ms
        return replace(self, **kw)


#: Zero-cost link a device has to itself.
LOOPBACK = Link(bandwidth_mbps=1e9, delay_ms=0.0, rpc_overhead_ms=0.0)
