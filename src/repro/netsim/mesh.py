"""Arbitrary mesh topologies (extension).

The paper's deployments are stars (one switch); real edge swarms —
drones relaying for each other, multi-hop sensor fields — are not.  This
module generalizes :class:`~repro.netsim.topology.Cluster` to an
arbitrary link graph: transfers route along the minimum-latency path
(computed with networkx), paying every hop's delay and the bottleneck
hop's bandwidth.

A :class:`MeshCluster` is a drop-in replacement wherever a ``Cluster``
is consumed (the latency simulator, the executor's transport) because it
exposes the same ``devices`` / ``device()`` / ``transfer_time()``
surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..devices.profiles import DeviceProfile
from .link import Link

__all__ = ["MeshLink", "MeshCluster", "line_topology", "ring_topology"]


@dataclass(frozen=True)
class MeshLink:
    """One bidirectional edge of the mesh."""

    a: int
    b: int
    bandwidth_mbps: float
    delay_ms: float

    def __post_init__(self):
        if self.a == self.b:
            raise ValueError("self-loops are not links")
        if self.bandwidth_mbps <= 0 or self.delay_ms < 0:
            raise ValueError("invalid link parameters")


class MeshCluster:
    """Devices connected by an arbitrary set of links.

    Routing: min-delay path (Dijkstra on delay); a transfer pays the sum
    of hop delays, one RPC overhead, and wire time at the bottleneck
    bandwidth along the path (store-and-forward pipelining collapses the
    per-hop serialization to the slowest hop for large payloads).
    """

    def __init__(self, devices: Sequence[DeviceProfile],
                 links: Sequence[MeshLink], rpc_overhead_ms: float = 1.0):
        if not devices:
            raise ValueError("need at least one device")
        self.devices: List[DeviceProfile] = list(devices)
        self.rpc_overhead_ms = rpc_overhead_ms
        self._graph = nx.Graph()
        self._graph.add_nodes_from(range(len(self.devices)))
        for link in links:
            n = len(self.devices)
            if not (0 <= link.a < n and 0 <= link.b < n):
                raise ValueError(f"link {link} references unknown device")
            self._graph.add_edge(link.a, link.b,
                                 delay=link.delay_ms,
                                 bandwidth=link.bandwidth_mbps)
        self._path_cache: Dict[Tuple[int, int], Tuple[float, float]] = {}

    # -- Cluster-compatible surface ----------------------------------------
    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def local(self) -> DeviceProfile:
        return self.devices[0]

    def device(self, i: int) -> DeviceProfile:
        return self.devices[i]

    def link_to(self, i: int) -> Link:
        """Equivalent single link local<->i (for delay introspection)."""
        delay, bw = self._route(0, i)
        return Link(bandwidth_mbps=bw, delay_ms=delay,
                    rpc_overhead_ms=self.rpc_overhead_ms)

    def is_connected(self) -> bool:
        return nx.is_connected(self._graph)

    def _route(self, src: int, dst: int) -> Tuple[float, float]:
        """(total path delay ms, bottleneck bandwidth Mbps)."""
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        try:
            path = nx.shortest_path(self._graph, src, dst, weight="delay")
        except nx.NetworkXNoPath as exc:
            raise ValueError(f"no route between {src} and {dst}") from exc
        delay = 0.0
        bw = float("inf")
        for a, b in zip(path, path[1:]):
            edge = self._graph.edges[a, b]
            delay += edge["delay"]
            bw = min(bw, edge["bandwidth"])
        self._path_cache[key] = (delay, bw)
        self._path_cache[(dst, src)] = (delay, bw)
        return delay, bw

    def transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        if src == dst:
            return 0.0
        delay, bw = self._route(src, dst)
        return ((delay + self.rpc_overhead_ms) / 1e3
                + nbytes * 8.0 / (bw * 1e6))

    def hop_count(self, src: int, dst: int) -> int:
        if src == dst:
            return 0
        return len(nx.shortest_path(self._graph, src, dst,
                                    weight="delay")) - 1


def line_topology(devices: Sequence[DeviceProfile], bandwidth_mbps: float,
                  delay_ms: float) -> MeshCluster:
    """A relay chain: 0 - 1 - 2 - ... (drone daisy-chains)."""
    links = [MeshLink(i, i + 1, bandwidth_mbps, delay_ms)
             for i in range(len(devices) - 1)]
    return MeshCluster(devices, links)


def ring_topology(devices: Sequence[DeviceProfile], bandwidth_mbps: float,
                  delay_ms: float) -> MeshCluster:
    """A ring: the chain plus a closing edge (two disjoint routes)."""
    n = len(devices)
    links = [MeshLink(i, (i + 1) % n, bandwidth_mbps, delay_ms)
             for i in range(n)]
    return MeshCluster(devices, links)
