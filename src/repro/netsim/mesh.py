"""Arbitrary mesh topologies (extension).

The paper's deployments are stars (one switch); real edge swarms —
drones relaying for each other, multi-hop sensor fields — are not.  This
module generalizes :class:`~repro.netsim.topology.Cluster` to an
arbitrary link graph: transfers route along the minimum-latency path
(computed with networkx), paying every hop's delay and the bottleneck
hop's bandwidth.

A :class:`MeshCluster` is a drop-in replacement wherever a ``Cluster``
is consumed (the latency simulator, the executor's transport) because it
exposes the same ``devices`` / ``device()`` / ``transfer_time()``
surface.

Fault-aware routing
-------------------
The mesh carries a *fault overlay* on top of its base link set: links
can be **down** (removed from routing) or **degraded** (bandwidth
scaled, delay added).  Routing always runs on the overlaid graph, so
when a link dies transfers automatically fail over to the next-best
surviving path — paying that path's honest delay and bottleneck
bandwidth — and :meth:`MeshCluster.transfer_time` raises a typed
:class:`~repro.faults.resilience.NoRouteError` when no path survives.
The routing model is link-state: the local runtime's routing table
converges instantly when the overlay changes (a documented
simplification — real protocols converge in seconds, not never).

Only the :class:`~repro.faults.injector.FaultInjector` mutates the
overlay (via :meth:`MeshCluster.apply_link_faults`); the decision layer
still observes the mesh exclusively through the monitor's noisy
end-to-end view (:attr:`MeshCluster.condition`) and its own delivery
outcomes.

Every mutation of the link set — fault overlay *or* base parameters
(:meth:`MeshCluster.set_link_quality`) — bumps ``route_epoch`` and
drops the path cache, so cached routes can never go stale.

``reroute=False`` pins routing to the fault-free base paths (static
routing tables): a transfer whose base path crosses a down link fails
even when an alternative exists.  This is the ablation the mesh chaos
benchmark compares against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, \
    Sequence, Tuple

import networkx as nx

from ..devices.profiles import DeviceProfile
from ..faults.resilience import NoRouteError
from .link import Link
from .topology import NetworkCondition

__all__ = ["MeshLink", "RouteInfo", "MeshCluster", "line_topology",
           "ring_topology", "partial_mesh_topology"]


Edge = Tuple[int, int]


def _edge(a: int, b: int) -> Edge:
    """Canonical (sorted) form of an undirected link."""
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class MeshLink:
    """One bidirectional edge of the mesh."""

    a: int
    b: int
    bandwidth_mbps: float
    delay_ms: float

    def __post_init__(self):
        if self.a == self.b:
            raise ValueError("self-loops are not links")
        if self.bandwidth_mbps <= 0 or self.delay_ms < 0:
            raise ValueError("invalid link parameters")

    @property
    def edge(self) -> Edge:
        return _edge(self.a, self.b)


@dataclass(frozen=True)
class RouteInfo:
    """One resolved route under the current fault overlay."""

    #: total path propagation delay, milliseconds
    delay_ms: float
    #: bottleneck bandwidth along the path, Mbps
    bandwidth_mbps: float
    #: device sequence, endpoints included
    path: Tuple[int, ...]
    #: True when the path differs from the fault-free base path
    rerouted: bool

    @property
    def hops(self) -> int:
        return len(self.path) - 1


class MeshCluster:
    """Devices connected by an arbitrary set of links.

    Routing: min-delay path (Dijkstra on delay over the fault overlay);
    a transfer pays the sum of hop delays, one RPC overhead, and wire
    time at the bottleneck bandwidth along the path (store-and-forward
    pipelining collapses the per-hop serialization to the slowest hop
    for large payloads).
    """

    def __init__(self, devices: Sequence[DeviceProfile],
                 links: Sequence[MeshLink], rpc_overhead_ms: float = 1.0,
                 reroute: bool = True, contention=None):
        if not devices:
            raise ValueError("need at least one device")
        self.devices: List[DeviceProfile] = list(devices)
        self.rpc_overhead_ms = rpc_overhead_ms
        #: optional ContentionTracker; None keeps pricing bit-identical
        #: to the contention-free model
        self.contention = contention
        #: False pins routing to the fault-free base paths (ablation)
        self.reroute = reroute
        # Per-device compute-time multipliers (straggler injection);
        # same contract as Cluster.compute_scale.
        self.compute_scale: Dict[int, float] = {}
        self._base: Dict[Edge, MeshLink] = {}
        n = len(self.devices)
        for link in links:
            if not (0 <= link.a < n and 0 <= link.b < n):
                raise ValueError(f"link {link} references unknown device")
            self._base[link.edge] = link
        # fault overlay: links removed from / degraded in the routing graph
        self._down: FrozenSet[Edge] = frozenset()
        self._degraded: Dict[Edge, Tuple[float, float]] = {}
        #: bumped on every link-set mutation; cached routes from an older
        #: epoch are unreachable because the cache is dropped at the bump
        self.route_epoch = 0
        self._graph = nx.Graph()
        self._base_graph = nx.Graph()
        self._rebuild_graphs()
        self._path_cache: Dict[Tuple[int, int], RouteInfo] = {}
        self._base_paths: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        self._cond_cache: Optional[NetworkCondition] = None

    # -- link-set mutation -------------------------------------------------
    def _rebuild_graphs(self) -> None:
        for g, overlay in ((self._base_graph, False), (self._graph, True)):
            g.clear()
            g.add_nodes_from(range(len(self.devices)))
            for edge, link in self._base.items():
                bw, delay = link.bandwidth_mbps, link.delay_ms
                if overlay:
                    if edge in self._down:
                        continue
                    factor, extra = self._degraded.get(edge, (1.0, 0.0))
                    bw, delay = bw * factor, delay + extra
                g.add_edge(*edge, delay=delay, bandwidth=bw)

    def invalidate_routes(self) -> None:
        """Drop every cached route and advance the routing epoch.

        Called automatically by every link-set mutation; exposed for
        callers that mutate the graph through other means.
        """
        self.route_epoch += 1
        self._path_cache.clear()
        self._cond_cache = None

    def set_link_quality(self, a: int, b: int,
                         bandwidth_mbps: Optional[float] = None,
                         delay_ms: Optional[float] = None) -> None:
        """Change one base link's parameters (mobility, interference).

        Routes are invalidated: a cached path picked under the old
        parameters may no longer be the minimum-delay one.
        """
        edge = _edge(a, b)
        link = self._base.get(edge)
        if link is None:
            raise ValueError(f"no link between {a} and {b}")
        self._base[edge] = MeshLink(
            link.a, link.b,
            link.bandwidth_mbps if bandwidth_mbps is None else bandwidth_mbps,
            link.delay_ms if delay_ms is None else delay_ms)
        self._base_paths.clear()
        self._rebuild_graphs()
        self.invalidate_routes()

    def apply_link_faults(
            self, down: Iterable[Edge] = (),
            degraded: Optional[Mapping[Edge, Tuple[float, float]]] = None,
            ) -> bool:
        """Install the fault overlay: ``down`` links leave the routing
        graph, ``degraded`` maps edges to ``(bw_factor, extra_delay_ms)``.

        Edges the mesh does not have are ignored (a schedule written for
        a larger topology, mirroring the star's out-of-range tolerance).
        Returns True when the overlay actually changed (and therefore
        the path cache was invalidated).
        """
        down_set = frozenset(_edge(*e) for e in down) & set(self._base)
        deg = {_edge(*e): (float(f), float(x))
               for e, (f, x) in (degraded or {}).items()
               if _edge(*e) in self._base}
        if down_set == self._down and deg == self._degraded:
            return False
        self._down = down_set
        self._degraded = deg
        self._rebuild_graphs()
        self.invalidate_routes()
        return True

    # -- Cluster-compatible surface ----------------------------------------
    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def local(self) -> DeviceProfile:
        return self.devices[0]

    def device(self, i: int) -> DeviceProfile:
        return self.devices[i]

    @property
    def links(self) -> Tuple[MeshLink, ...]:
        """The base (fault-free) link set."""
        return tuple(self._base.values())

    @property
    def base_edges(self) -> FrozenSet[Edge]:
        return frozenset(self._base)

    @property
    def down_links(self) -> FrozenSet[Edge]:
        """Links currently removed from routing by the fault overlay."""
        return self._down

    @property
    def degraded_links(self) -> Dict[Edge, Tuple[float, float]]:
        return dict(self._degraded)

    def link_to(self, i: int) -> Link:
        """Equivalent single link local<->i (for delay introspection)."""
        info = self._route_or_base(0, i)
        return Link(bandwidth_mbps=info.bandwidth_mbps,
                    delay_ms=info.delay_ms,
                    rpc_overhead_ms=self.rpc_overhead_ms)

    def is_connected(self) -> bool:
        """Connectivity of the *current* (fault-overlaid) graph."""
        return nx.is_connected(self._graph)

    @property
    def condition(self) -> NetworkCondition:
        """Star-equivalent end-to-end view: the routed (bottleneck bw,
        total delay) from the gateway to every remote device.

        This is what the network monitor samples — the decision layer
        sees path *quality* (a rerouted path shows up as a slower link),
        never the link graph itself.  Remotes with no surviving route
        keep their fault-free base-path view: the monitor's probes to
        them would simply time out, which the transport prices
        separately.
        """
        if self._cond_cache is None:
            bws, delays = [], []
            for i in range(1, len(self.devices)):
                info = self._route_or_base(0, i)
                bws.append(info.bandwidth_mbps)
                delays.append(info.delay_ms)
            self._cond_cache = NetworkCondition(tuple(bws), tuple(delays))
        return self._cond_cache

    def set_condition(self, condition: NetworkCondition) -> None:
        raise NotImplementedError(
            "a mesh has per-link state, not a per-remote condition vector; "
            "use set_link_quality() / apply_link_faults() instead")

    def update_fluid_caps(self, now: float, tracker=None) -> bool:
        """Push the *surviving* edges' current (fault-overlaid)
        capacities into a fluid tracker so in-flight transfers
        re-converge at ``now``.

        Same contract as :meth:`Cluster.update_fluid_caps`: call after
        a link mutation (degradation event, flap transition) changed
        the overlay; snapshot trackers and ``None`` are a no-op.  Down
        edges are simply absent — their capacities stay whatever the
        ledger last saw, which only matters if a flow is still riding
        a severed edge (the transport layer, not the fluid ledger,
        decides that flow's fate).
        """
        tracker = tracker if tracker is not None else self.contention
        if not getattr(tracker, "prices_transfers", False):
            return False
        # A fault overlay may degrade a surviving edge's bandwidth all
        # the way to 0 without severing it; the fluid ledger rejects
        # non-positive caps, so such edges keep their last-seen
        # capacity (same rule as fully severed edges).
        caps = {_edge(a, b): data["bandwidth"] * 1e6
                for a, b, data in self._graph.edges(data=True)
                if data["bandwidth"] > 0.0}
        if not caps:
            return False
        tracker.update_caps(float(now), caps)
        return True

    # -- routing -----------------------------------------------------------
    def _base_path(self, src: int, dst: int) -> Tuple[int, ...]:
        key = (src, dst)
        cached = self._base_paths.get(key)
        if cached is not None:
            return cached
        try:
            path = tuple(nx.shortest_path(self._base_graph, src, dst,
                                          weight="delay"))
        except nx.NetworkXNoPath as exc:
            raise NoRouteError(src, dst) from exc
        self._base_paths[key] = path
        self._base_paths[(dst, src)] = tuple(reversed(path))
        return path

    def _price_path(self, path: Tuple[int, ...],
                    rerouted: bool) -> RouteInfo:
        delay = 0.0
        bw = float("inf")
        for a, b in zip(path, path[1:]):
            edge = self._graph.edges[a, b]
            delay += edge["delay"]
            bw = min(bw, edge["bandwidth"])
        return RouteInfo(delay, bw, path, rerouted)

    def route_info(self, src: int, dst: int) -> RouteInfo:
        """Resolve the current route ``src -> dst``.

        With rerouting enabled this is the min-delay path on the
        fault-overlaid graph (``rerouted=True`` when it differs from the
        fault-free base path); with ``reroute=False`` it is always the
        base path, priced under the overlay's degradations, and raises
        :class:`NoRouteError` if any base-path link is down.
        """
        if src == dst:
            return RouteInfo(0.0, float("inf"), (src,), False)
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        if not self.reroute:
            path = self._base_path(src, dst)
            if any(_edge(a, b) in self._down
                   for a, b in zip(path, path[1:])):
                raise NoRouteError(src, dst)
            info = self._price_path(path, False)
        else:
            try:
                path = tuple(nx.shortest_path(self._graph, src, dst,
                                              weight="delay"))
            except nx.NetworkXNoPath as exc:
                raise NoRouteError(src, dst) from exc
            # Any overlay (down *or* degraded links) can move the
            # min-delay path off the fault-free one; comparing against
            # the base path whenever an overlay is active is what makes
            # degradation-induced reroutes visible to the counters.
            rerouted = (bool(self._down or self._degraded)
                        and path != self._base_path(src, dst))
            info = self._price_path(path, rerouted)
        self._path_cache[key] = info
        self._path_cache[(dst, src)] = RouteInfo(
            info.delay_ms, info.bandwidth_mbps,
            tuple(reversed(info.path)), info.rerouted)
        return info

    def _route_or_base(self, src: int, dst: int) -> RouteInfo:
        """Current route, falling back to the fault-free base path when
        no route survives (monitor-view helper)."""
        try:
            return self.route_info(src, dst)
        except NoRouteError:
            try:
                path = self._base_path(src, dst)
            except NoRouteError:
                # never connected, even fault-free: an effectively dead
                # pair (sentinel values; nothing routes work through it)
                return RouteInfo(1e6, 1e-6, (src, dst), False)
            delay = 0.0
            bw = float("inf")
            for a, b in zip(path, path[1:]):
                edge = self._base_graph.edges[a, b]
                delay += edge["delay"]
                bw = min(bw, edge["bandwidth"])
            return RouteInfo(delay, bw, path, False)

    def has_route(self, src: int, dst: int) -> bool:
        """Does a path survive the current fault overlay?"""
        try:
            self.route_info(src, dst)
            return True
        except NoRouteError:
            return False

    def transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        if src == dst:
            return 0.0
        info = self.route_info(src, dst)
        return ((info.delay_ms + self.rpc_overhead_ms) / 1e3
                + nbytes * 8.0 / (info.bandwidth_mbps * 1e6))

    def timed_transfer(self, src: int, dst: int, nbytes: float,
                       now: float, tenant: Optional[str] = None) -> float:
        """Contention-aware routed transfer at simulated time ``now``.

        Each edge of the current route is fair-shared with the flows in
        flight on it — two routed paths that only overlap on one
        bottleneck edge contend exactly there.  With no tracker or no
        concurrent flow this delegates to :meth:`transfer_time`
        (bit-identical pricing).
        """
        if src == dst:
            return 0.0
        tracker = self.contention
        if tracker is None:
            return self.transfer_time(src, dst, nbytes)
        info = self.route_info(src, dst)
        edges = tuple(_edge(a, b) for a, b in zip(info.path, info.path[1:]))
        if getattr(tracker, "prices_transfers", False):
            # fluid solver: delegate the whole pricing computation;
            # lone flows return base_s verbatim (bit-identity)
            caps = {_edge(a, b): self._graph.edges[a, b]["bandwidth"] * 1e6
                    for a, b in zip(info.path, info.path[1:])}
            latency_s = (info.delay_ms + self.rpc_overhead_ms) / 1e3
            return tracker.admit_transfer(
                edges, caps, latency_s, nbytes, now, tenant=tenant,
                base_s=self.transfer_time(src, dst, nbytes))
        shares = {e: tracker.share(e, now) for e in edges}
        worst = max(shares.values())
        if worst == 1:
            t = self.transfer_time(src, dst, nbytes)
        else:
            # bottleneck over *effective* per-edge bandwidth: an edge
            # carrying more flows may beat the raw bottleneck to it
            eff = min(self._graph.edges[a, b]["bandwidth"] * 1e6
                      / shares[_edge(a, b)]
                      for a, b in zip(info.path, info.path[1:]))
            t = ((info.delay_ms + self.rpc_overhead_ms) / 1e3
                 + nbytes * 8.0 / eff)
        tracker.register(edges, now, now + t, nbytes=nbytes,
                         tenant=tenant, share=worst)
        return t

    def hop_count(self, src: int, dst: int) -> int:
        """Hops on the *current* route (a reroute may lengthen it)."""
        if src == dst:
            return 0
        return self.route_info(src, dst).hops

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"MeshCluster({len(self.devices)} devices, "
                f"{len(self._base)} links, {len(self._down)} down, "
                f"epoch={self.route_epoch})")


def line_topology(devices: Sequence[DeviceProfile], bandwidth_mbps: float,
                  delay_ms: float, reroute: bool = True) -> MeshCluster:
    """A relay chain: 0 - 1 - 2 - ... (drone daisy-chains)."""
    links = [MeshLink(i, i + 1, bandwidth_mbps, delay_ms)
             for i in range(len(devices) - 1)]
    return MeshCluster(devices, links, reroute=reroute)


def ring_topology(devices: Sequence[DeviceProfile], bandwidth_mbps: float,
                  delay_ms: float, reroute: bool = True) -> MeshCluster:
    """A ring: the chain plus a closing edge (two disjoint routes)."""
    n = len(devices)
    links = [MeshLink(i, (i + 1) % n, bandwidth_mbps, delay_ms)
             for i in range(n)]
    return MeshCluster(devices, links, reroute=reroute)


def partial_mesh_topology(devices: Sequence[DeviceProfile],
                          bandwidth_mbps: float, delay_ms: float,
                          chords: Sequence[Edge] = (),
                          reroute: bool = True) -> MeshCluster:
    """A ring plus chord links (partial mesh): more disjoint routes than
    a ring, fewer than a clique — the realistic edge-swarm shape."""
    n = len(devices)
    links = [MeshLink(i, (i + 1) % n, bandwidth_mbps, delay_ms)
             for i in range(n)]
    for a, b in chords:
        links.append(MeshLink(a, b, bandwidth_mbps, delay_ms))
    return MeshCluster(devices, links, reroute=reroute)
