"""Shared-link contention: fair-share bandwidth between in-flight flows.

The base link model prices every transfer as if it had the wire to
itself; on a multi-tenant edge cluster many requests cross the *same*
uplink concurrently and TCP-ish fair sharing splits its bandwidth.  A
:class:`ContentionTracker` keeps a ledger of in-flight flows per link
(star links and mesh *edges* — two routed paths sharing one bottleneck
edge contend there, not just identical endpoint pairs), and clusters
with a tracker attached price a transfer admitted at simulated time
``t`` against the flows already on the wire at ``t``:

    effective_bandwidth(edge, t) = base_bandwidth / (1 + in_flight(edge, t))

Sharing is resolved *at admission* (arrival-order snapshot): the first
of two overlapping transfers keeps the full link, the second sees half.
That under-charges the first and over-charges the second relative to a
fluid-flow solver, but it is deterministic, order-independent within a
simulated instant only up to arrival order (which the serving loop
fixes), and it preserves the two invariants the tests pin:

* a lone flow is priced **bit-identically** to the contention-free
  model (zero-concurrency calls delegate to the existing
  ``transfer_time``: no float even changes representation);
* two simultaneous flows each get at least half the link.

``tracker=None`` (the default everywhere) keeps every serving float
bit-identical to a contention-free build — the same guard discipline as
``telemetry=`` / ``control=`` / ``faults=``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..telemetry import Telemetry
from .link import Link

__all__ = ["Flow", "ContentionTracker", "SharedIngress", "INGRESS_EDGE"]


Edge = Tuple[int, int]

#: sentinel edge for the client-side ingress uplink (requests enter the
#: gateway over it; device ids are never negative, so it cannot collide)
INGRESS_EDGE: Edge = (-1, 0)


def _edge(a: int, b: int) -> Edge:
    """Canonical (sorted) form of an undirected link."""
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class Flow:
    """One in-flight transfer occupying a set of edges."""

    edges: Tuple[Edge, ...]
    start: float
    end: float
    nbytes: float
    tenant: Optional[str] = None


class ContentionTracker:
    """Ledger of in-flight flows per link edge.

    The tracker is *passive*: clusters ask :meth:`share` while pricing
    a transfer and :meth:`register` the resulting flow.  Completed
    flows are pruned lazily on registration, so memory stays bounded
    by the number of genuinely concurrent flows.
    """

    #: passive trackers leave pricing to the cluster's inline snapshot
    #: math; :class:`~repro.netsim.fluid.FluidTracker` flips this and
    #: clusters delegate the whole computation to ``admit_transfer``.
    prices_transfers = False

    def __init__(self, telemetry: Optional[Telemetry] = None):
        self._flows: Dict[Edge, List[Flow]] = {}
        #: flows ever registered
        self.flows_total = 0
        #: flows that shared at least one edge when priced
        self.contended_total = 0
        #: widest sharing ever seen per edge (1 = never contended)
        self.peak_share: Dict[Edge, int] = {}
        self._tenant_bytes: Dict[str, float] = {}
        self.telemetry = telemetry
        if telemetry is not None:
            reg = telemetry.registry.child("contention")
            self._reg = reg
            self._m_flows = reg.counter(
                "flows_total", help="transfers priced through the tracker")
            self._m_contended = reg.counter(
                "contended_flows_total",
                help="transfers that shared at least one link")
            self._m_share = reg.histogram(
                "flow_share", help="per-flow fair-share divisor at pricing",
                lo=1.0, hi=256.0)
            self._m_link: dict = {}
            self._m_tenant: dict = {}

    # -- queries -----------------------------------------------------------
    def concurrency(self, edge: Edge, now: float) -> int:
        """Flows in flight on ``edge`` at simulated time ``now``."""
        flows = self._flows.get(_edge(*edge))
        if not flows:
            return 0
        return sum(1 for f in flows if f.start <= now < f.end)

    def share(self, edge: Edge, now: float) -> int:
        """Fair-share divisor a new flow admitted at ``now`` sees."""
        return 1 + self.concurrency(edge, now)

    def tenant_bytes(self) -> Dict[str, float]:
        """Cumulative bytes registered per tenant (tagged flows only)."""
        return dict(self._tenant_bytes)

    def stats(self) -> Dict[str, float]:
        return {
            "flows": self.flows_total,
            "contended": self.contended_total,
            "peak_share": max(self.peak_share.values(), default=1),
        }

    # -- mutation ----------------------------------------------------------
    def register(self, edges, start: float, end: float,
                 nbytes: float = 0.0, tenant: Optional[str] = None,
                 share: int = 1) -> Flow:
        """Record one admitted transfer occupying ``edges`` until ``end``.

        ``share`` is the fair-share divisor the transfer was priced at
        (from :meth:`share` at admission); it only feeds accounting.
        """
        flow = Flow(edges=tuple(_edge(*e) for e in edges),
                    start=float(start), end=float(end),
                    nbytes=float(nbytes), tenant=tenant)
        for edge in flow.edges:
            bucket = self._flows.setdefault(edge, [])
            # lazy prune: drop flows that ended before this one starts
            if bucket:
                bucket[:] = [f for f in bucket if f.end > flow.start]
            bucket.append(flow)
            peak = self.peak_share.get(edge, 1)
            if share > peak:
                self.peak_share[edge] = share
        self.flows_total += 1
        contended = share > 1
        if contended:
            self.contended_total += 1
        if tenant is not None and nbytes:
            self._tenant_bytes[tenant] = (
                self._tenant_bytes.get(tenant, 0.0) + flow.nbytes)
        if self.telemetry is not None:
            self._m_flows.inc()
            self._m_share.observe(float(share))
            if contended:
                self._m_contended.inc()
                for edge in flow.edges:
                    counter = self._m_link.get(edge)
                    if counter is None:
                        counter = self._reg.counter(
                            "link_contended_total",
                            help="contended transfers per link",
                            link=f"{edge[0]}-{edge[1]}")
                        self._m_link[edge] = counter
                    counter.inc()
            if tenant is not None and nbytes:
                counter = self._m_tenant.get(tenant)
                if counter is None:
                    counter = self._reg.counter(
                        "tenant_bytes_total",
                        help="payload bytes on the wire per tenant",
                        tenant=tenant)
                    self._m_tenant[tenant] = counter
                counter.inc(flow.nbytes)
        return flow


class SharedIngress:
    """A shared last-mile uplink every tenant's request payload crosses.

    Models the one wire the paper's star abstracts away: requests from
    *all* tenants upload their input over the same client-side link
    before the gateway can start serving them.  Concurrent uploads
    fair-share it through a :class:`ContentionTracker`, which is where
    an asymmetric tenant burst physically slows the other tenants down.

    :meth:`upload_time` prices an upload without committing it (the
    admission controller peeks at it); :meth:`admit` prices *and*
    registers the flow — only admitted requests occupy the wire.
    """

    def __init__(self, link: Link, tracker: Optional[ContentionTracker],
                 payload_bytes: float = 0.0,
                 per_tenant_bytes: Optional[Dict[str, float]] = None):
        if payload_bytes < 0:
            raise ValueError(
                f"payload_bytes must be non-negative, got {payload_bytes}")
        self.link = link
        self.tracker = tracker
        self.payload_bytes = float(payload_bytes)
        self.per_tenant_bytes = dict(per_tenant_bytes or {})

    def _nbytes(self, tenant: Optional[str]) -> float:
        if tenant is not None and tenant in self.per_tenant_bytes:
            return float(self.per_tenant_bytes[tenant])
        return self.payload_bytes

    def _fluid_args(self, tenant: Optional[str]):
        nbytes = self._nbytes(tenant)
        caps = {INGRESS_EDGE: self.link.bandwidth_bps}
        latency_s = (self.link.delay_ms + self.link.rpc_overhead_ms) / 1e3
        return nbytes, caps, latency_s, self.link.transfer_time(nbytes)

    def set_capacity(self, now: float, bandwidth_mbps: float) -> None:
        """Step the uplink's true bandwidth at simulated time ``now``.

        Replaces the link (delay and RPC overhead preserved) so every
        later admission prices against the new capacity; with a fluid
        tracker attached, every *in-flight* upload re-converges at
        ``now`` too (:meth:`FluidTracker.update_caps`) — the mid-flight
        semantics the event core schedules.  A snapshot tracker has no
        re-convergence surface: its in-flight flows keep their admitted
        rates, exactly like the boundary-only model.
        """
        self.link = self.link.with_conditions(bandwidth_mbps=bandwidth_mbps)
        if getattr(self.tracker, "prices_transfers", False):
            self.tracker.update_caps(
                now, {INGRESS_EDGE: self.link.bandwidth_bps})

    def upload_time(self, arrival: float,
                    tenant: Optional[str] = None) -> float:
        """Seconds to upload one request payload arriving at ``arrival``."""
        if getattr(self.tracker, "prices_transfers", False):
            nbytes, caps, latency_s, base_s = self._fluid_args(tenant)
            return self.tracker.peek_transfer(
                (INGRESS_EDGE,), caps, latency_s, nbytes, arrival,
                tenant=tenant, base_s=base_s)
        nbytes = self._nbytes(tenant)
        share = (self.tracker.share(INGRESS_EDGE, arrival)
                 if self.tracker is not None else 1)
        if share == 1:
            # zero-concurrency fast path: bit-identical to the base link
            return self.link.transfer_time(nbytes)
        return ((self.link.delay_ms + self.link.rpc_overhead_ms) / 1e3
                + nbytes * 8.0 / (self.link.bandwidth_bps / share))

    def admit(self, arrival: float, tenant: Optional[str] = None) -> float:
        """Price the upload and put the flow on the wire."""
        if getattr(self.tracker, "prices_transfers", False):
            nbytes, caps, latency_s, base_s = self._fluid_args(tenant)
            return self.tracker.admit_transfer(
                (INGRESS_EDGE,), caps, latency_s, nbytes, arrival,
                tenant=tenant, base_s=base_s)
        upload_s = self.upload_time(arrival, tenant)
        if self.tracker is not None:
            share = self.tracker.share(INGRESS_EDGE, arrival)
            self.tracker.register((INGRESS_EDGE,), arrival,
                                  arrival + upload_s,
                                  nbytes=self._nbytes(tenant),
                                  tenant=tenant, share=share)
        return upload_s
