"""Device cluster topology.

Murmuration's deployment is a *star*: one local device (the one holding
the input and receiving the result — device id 0) plus N remote devices,
each reachable over its own (bandwidth, delay) link.  Remote-to-remote
traffic relays through the switch, modelled as the composition of the two
links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..devices.profiles import DeviceProfile
from .link import LOOPBACK, Link

__all__ = ["Cluster", "NetworkCondition"]


@dataclass(frozen=True)
class NetworkCondition:
    """Bandwidths/delays for every remote device (index 0 = remote #1).

    This is the "task" of the multi-task RL formulation: a point in the
    joint (bandwidth, delay) space of all remote links.
    """

    bandwidths_mbps: Tuple[float, ...]
    delays_ms: Tuple[float, ...]

    def __post_init__(self):
        if len(self.bandwidths_mbps) != len(self.delays_ms):
            raise ValueError("bandwidths and delays must have equal length")

    @property
    def num_remote(self) -> int:
        return len(self.bandwidths_mbps)

    @staticmethod
    def uniform(num_remote: int, bandwidth_mbps: float,
                delay_ms: float) -> "NetworkCondition":
        return NetworkCondition((bandwidth_mbps,) * num_remote,
                                (delay_ms,) * num_remote)

    def as_vector(self) -> List[float]:
        """Flat [bw..., delay...] vector for state encodings."""
        return list(self.bandwidths_mbps) + list(self.delays_ms)


class Cluster:
    """A local device + remote devices + the links between them."""

    def __init__(self, devices: Sequence[DeviceProfile],
                 condition: NetworkCondition,
                 rpc_overhead_ms: float = 1.0,
                 contention=None):
        if len(devices) < 1:
            raise ValueError("need at least the local device")
        if condition.num_remote != len(devices) - 1:
            raise ValueError(
                f"condition covers {condition.num_remote} remote devices but "
                f"cluster has {len(devices) - 1}")
        self.devices: List[DeviceProfile] = list(devices)
        self.condition = condition
        self.rpc_overhead_ms = rpc_overhead_ms
        #: optional ContentionTracker; None keeps pricing bit-identical
        #: to the contention-free model
        self.contention = contention
        # Per-device compute-time multipliers (straggler injection).
        # Empty = nominal; only the fault injector ever populates this,
        # so planners that build their own Cluster from an *observed*
        # condition never see ground-truth slowdowns.
        self.compute_scale: Dict[int, float] = {}
        self._links: Dict[int, Link] = {}
        self._rebuild_links()

    def _rebuild_links(self) -> None:
        self._links = {0: LOOPBACK}
        for i in range(1, len(self.devices)):
            self._links[i] = Link(
                bandwidth_mbps=self.condition.bandwidths_mbps[i - 1],
                delay_ms=self.condition.delays_ms[i - 1],
                rpc_overhead_ms=self.rpc_overhead_ms)

    # -- queries ---------------------------------------------------------
    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def local(self) -> DeviceProfile:
        return self.devices[0]

    def device(self, i: int) -> DeviceProfile:
        return self.devices[i]

    def link_to(self, i: int) -> Link:
        """Link between the local device and device ``i``."""
        return self._links[i]

    def transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        """Transfer time between any two devices.

        Local<->remote uses that remote's link; remote<->remote relays
        through the switch (sum of wire times, max of the two delays once
        each — the star's switch forwards as it receives).
        """
        if src == dst:
            return 0.0
        if src == 0 or dst == 0:
            other = dst if src == 0 else src
            return self._links[other].transfer_time(nbytes)
        a, b = self._links[src], self._links[dst]
        wire = nbytes * 8.0 / min(a.bandwidth_bps, b.bandwidth_bps)
        latency = (a.delay_ms + b.delay_ms + a.rpc_overhead_ms) / 1e3
        return wire + latency

    def _star_edges(self, src: int, dst: int) -> tuple:
        """Edges a star transfer occupies: one spoke, or both on a relay."""
        if src == 0 or dst == 0:
            other = dst if src == 0 else src
            return ((0, other),)
        return ((0, src), (0, dst))

    def timed_transfer(self, src: int, dst: int, nbytes: float,
                       now: float, tenant: Optional[str] = None) -> float:
        """Contention-aware transfer pricing at simulated time ``now``.

        With no tracker attached, or no concurrent flow on the wire,
        this delegates to :meth:`transfer_time` — bit-identical pricing.
        Otherwise each occupied spoke's bandwidth is divided by its
        fair-share count and the flow is registered so later transfers
        see it.
        """
        if src == dst:
            return 0.0
        tracker = self.contention
        if tracker is None:
            return self.transfer_time(src, dst, nbytes)
        edges = self._star_edges(src, dst)
        if getattr(tracker, "prices_transfers", False):
            # fluid solver: delegate the whole pricing computation;
            # lone flows return base_s verbatim (bit-identity)
            if src == 0 or dst == 0:
                link = self._links[dst if src == 0 else src]
                caps = {edges[0]: link.bandwidth_bps}
                latency_s = (link.delay_ms + link.rpc_overhead_ms) / 1e3
            else:
                a, b = self._links[src], self._links[dst]
                caps = {edges[0]: a.bandwidth_bps,
                        edges[1]: b.bandwidth_bps}
                latency_s = (a.delay_ms + b.delay_ms
                             + a.rpc_overhead_ms) / 1e3
            return tracker.admit_transfer(
                edges, caps, latency_s, nbytes, now, tenant=tenant,
                base_s=self.transfer_time(src, dst, nbytes))
        shares = {e: tracker.share(e, now) for e in edges}
        worst = max(shares.values())
        if worst == 1:
            t = self.transfer_time(src, dst, nbytes)
        elif src == 0 or dst == 0:
            other = dst if src == 0 else src
            link = self._links[other]
            t = ((link.delay_ms + link.rpc_overhead_ms) / 1e3
                 + nbytes * 8.0 / (link.bandwidth_bps / shares[edges[0]]))
        else:
            a, b = self._links[src], self._links[dst]
            eff = min(a.bandwidth_bps / shares[(0, src)],
                      b.bandwidth_bps / shares[(0, dst)])
            t = (nbytes * 8.0 / eff
                 + (a.delay_ms + b.delay_ms + a.rpc_overhead_ms) / 1e3)
        tracker.register(edges, now, now + t, nbytes=nbytes,
                         tenant=tenant, share=worst)
        return t

    # -- dynamics ----------------------------------------------------------
    def set_condition(self, condition: NetworkCondition) -> None:
        """Apply new network conditions (mobility / contention events)."""
        if condition.num_remote != self.num_devices - 1:
            raise ValueError("condition dimensionality changed")
        self.condition = condition
        self._rebuild_links()

    def update_fluid_caps(self, now: float, tracker=None) -> bool:
        """Push the cluster's *current* per-spoke capacities into a
        fluid tracker so in-flight transfers re-converge at ``now``.

        Call after :meth:`set_condition` (or a fault overlay) changed
        the links — the event core does this at each condition step.
        ``tracker`` defaults to the cluster's own; returns True when a
        re-convergence was issued.  Snapshot trackers and ``None`` are
        a no-op — their in-flight flows keep admitted rates, which is
        the boundary-only model, bit-identical to before.
        """
        tracker = tracker if tracker is not None else self.contention
        if not getattr(tracker, "prices_transfers", False):
            return False
        caps = {(0, i): self._links[i].bandwidth_bps
                for i in range(1, self.num_devices)
                if self._links[i].bandwidth_bps > 0.0}
        if not caps:
            return False
        tracker.update_caps(float(now), caps)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        names = [d.name for d in self.devices]
        return f"Cluster(devices={names}, condition={self.condition})"
