"""Layer/module abstraction on top of :mod:`repro.nn.functional`.

A deliberately small, explicit module system: every :class:`Module` owns
named :class:`Parameter` objects, caches whatever its backward pass needs
during ``forward``, and returns input gradients from ``backward``.  There
is no tape/autograd — the composition order of a CNN is static, so manual
chaining is simpler and faster to reason about.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from .init import he_normal, xavier_uniform

__all__ = [
    "Parameter",
    "Module",
    "Conv2d",
    "DepthwiseConv2d",
    "BatchNorm2d",
    "Linear",
    "ReLU",
    "HSwish",
    "HSigmoid",
    "GlobalAvgPool",
    "Flatten",
    "SqueezeExcite",
    "Sequential",
]


class Parameter:
    """A trainable array with its accumulated gradient."""

    __slots__ = ("data", "grad", "name")

    def __init__(self, data: np.ndarray, name: str = ""):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Module:
    """Base class; subclasses register parameters and submodules."""

    def __init__(self) -> None:
        self._params: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # -- registration ------------------------------------------------------
    def register_parameter(self, name: str, param: Parameter) -> Parameter:
        param.name = name
        self._params[name] = param
        return param

    def register_module(self, name: str, module: "Module") -> "Module":
        self._modules[name] = module
        return module

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_params", {})[name] = value
            value.name = name
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # -- traversal -----------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        yield from self._params.values()
        for m in self._modules.values():
            yield from m.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, p in self._params.items():
            yield prefix + name, p
        for mname, m in self._modules.items():
            yield from m.named_parameters(prefix + mname + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for m in self._modules.values():
            yield from m.modules()

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        for m in self.modules():
            m.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def num_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())

    # -- state dict ----------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        out = {}
        for name, p in self.named_parameters():
            out[name] = p.data.copy()
        return out

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for name, p in self.named_parameters():
            if name not in state:
                raise KeyError(f"missing parameter {name!r} in state dict")
            if state[name].shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: {state[name].shape} vs {p.data.shape}")
            p.data[...] = state[name]

    # -- interface -----------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Conv2d(Module):
    """Standard convolution with optional bias."""

    def __init__(self, in_ch: int, out_ch: int, kernel: int, stride: int = 1,
                 pad: Optional[int] = None, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_ch, self.out_ch = in_ch, out_ch
        self.kernel, self.stride = kernel, stride
        self.pad = pad if pad is not None else kernel // 2
        self.weight = Parameter(
            he_normal((out_ch, in_ch, kernel, kernel), fan_in=in_ch * kernel * kernel,
                      rng=rng))
        self.bias = Parameter(np.zeros(out_ch)) if bias else None
        self._cache = None

    def forward(self, x):
        b = self.bias.data if self.bias is not None else None
        out, self._cache = F.conv2d(x, self.weight.data, b, self.stride, self.pad)
        return out

    def backward(self, grad):
        gx, gw, gb = F.conv2d_backward(grad, self._cache)
        self.weight.grad += gw
        if self.bias is not None:
            self.bias.grad += gb
        return gx


class DepthwiseConv2d(Module):
    def __init__(self, channels: int, kernel: int, stride: int = 1,
                 pad: Optional[int] = None, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.channels, self.kernel, self.stride = channels, kernel, stride
        self.pad = pad if pad is not None else kernel // 2
        self.weight = Parameter(
            he_normal((channels, 1, kernel, kernel), fan_in=kernel * kernel, rng=rng))
        self.bias = Parameter(np.zeros(channels)) if bias else None
        self._cache = None

    def forward(self, x):
        b = self.bias.data if self.bias is not None else None
        out, self._cache = F.depthwise_conv2d(x, self.weight.data, b,
                                              self.stride, self.pad)
        return out

    def backward(self, grad):
        gx, gw, gb = F.depthwise_conv2d_backward(grad, self._cache)
        self.weight.grad += gw
        if self.bias is not None:
            self.bias.grad += gb
        return gx


class BatchNorm2d(Module):
    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.channels = channels
        self.momentum, self.eps = momentum, eps
        self.gamma = Parameter(np.ones(channels))
        self.beta = Parameter(np.zeros(channels))
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self._cache = None

    def forward(self, x):
        out, self._cache = F.batchnorm2d(
            x, self.gamma.data, self.beta.data, self.running_mean,
            self.running_var, self.training, self.momentum, self.eps)
        return out

    def backward(self, grad):
        gx, gg, gb = F.batchnorm2d_backward(grad, self._cache)
        self.gamma.grad += gg
        self.beta.grad += gb
        return gx


class Linear(Module):
    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features, self.out_features = in_features, out_features
        self.weight = Parameter(
            xavier_uniform((out_features, in_features), fan_in=in_features,
                           fan_out=out_features, rng=rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self._cache = None

    def forward(self, x):
        b = self.bias.data if self.bias is not None else None
        out, self._cache = F.linear(x, self.weight.data, b)
        return out

    def backward(self, grad):
        gx, gw, gb = F.linear_backward(grad, self._cache)
        self.weight.grad += gw
        if self.bias is not None:
            self.bias.grad += gb
        return gx


class ReLU(Module):
    def forward(self, x):
        out, self._mask = F.relu(x)
        return out

    def backward(self, grad):
        return F.relu_backward(grad, self._mask)


class HSwish(Module):
    def forward(self, x):
        out, self._x = F.hswish(x)
        return out

    def backward(self, grad):
        return F.hswish_backward(grad, self._x)


class HSigmoid(Module):
    def forward(self, x):
        out, self._x = F.hsigmoid(x)
        return out

    def backward(self, grad):
        return F.hsigmoid_backward(grad, self._x)


class GlobalAvgPool(Module):
    def forward(self, x):
        out, self._shape = F.global_avg_pool(x)
        return out

    def backward(self, grad):
        return F.global_avg_pool_backward(grad, self._shape)


class Flatten(Module):
    def forward(self, x):
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad):
        return grad.reshape(self._shape)


class SqueezeExcite(Module):
    """Squeeze-and-excitation gate (MobileNetV3 style, hsigmoid gating)."""

    def __init__(self, channels: int, reduction: int = 4,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        hidden = max(1, channels // reduction)
        self.channels, self.hidden = channels, hidden
        self.fc1 = Linear(channels, hidden, rng=rng)
        self.relu = ReLU()
        self.fc2 = Linear(hidden, channels, rng=rng)
        self.gate = HSigmoid()

    def forward(self, x):
        self._x = x
        s, self._pool_shape = F.global_avg_pool(x)
        s = self.fc1(s)
        s = self.relu(s)
        s = self.fc2(s)
        s = self.gate(s)
        self._scale = s
        return x * s[:, :, None, None]

    def backward(self, grad):
        grad_x_direct = grad * self._scale[:, :, None, None]
        grad_s = (grad * self._x).sum(axis=(2, 3))
        g = self.gate.backward(grad_s)
        g = self.fc2.backward(g)
        g = self.relu.backward(g)
        g = self.fc1.backward(g)
        grad_x_pool = F.global_avg_pool_backward(g, self._pool_shape)
        return grad_x_direct + grad_x_pool


class Sequential(Module):
    def __init__(self, *layers: Module):
        super().__init__()
        self.layers: List[Module] = list(layers)
        for i, layer in enumerate(self.layers):
            self.register_module(str(i), layer)

    def append(self, layer: Module) -> None:
        self.layers.append(layer)
        self.register_module(str(len(self.layers) - 1), layer)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, i: int) -> Module:
        return self.layers[i]

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad):
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad
