"""Vectorized NumPy implementations of the neural-network primitives.

Everything here is written in the "make it work, vectorize the hot loop"
style: convolutions are lowered to matrix multiplies through ``im2col`` so
that the inner loops run inside BLAS, and all backward passes reuse the
cached column matrices instead of re-deriving them.

All tensors use NCHW layout (batch, channels, height, width) and
``float64`` by default (precision matters more than speed at the scale we
train; the executor can run ``float32`` subnets for latency realism).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "im2col",
    "col2im",
    "conv2d",
    "conv2d_backward",
    "depthwise_conv2d",
    "depthwise_conv2d_backward",
    "avg_pool2d",
    "avg_pool2d_backward",
    "global_avg_pool",
    "global_avg_pool_backward",
    "relu",
    "relu_backward",
    "hswish",
    "hswish_backward",
    "hsigmoid",
    "hsigmoid_backward",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "cross_entropy_backward",
    "batchnorm2d",
    "batchnorm2d_backward",
    "linear",
    "linear_backward",
]


# ---------------------------------------------------------------------------
# im2col / col2im
# ---------------------------------------------------------------------------

def _out_size(size: int, kernel: int, stride: int, pad: int) -> int:
    return (size + 2 * pad - kernel) // stride + 1


def im2col(x: np.ndarray, kh: int, kw: int, stride: int = 1,
           pad: int = 0) -> np.ndarray:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x : (N, C, H, W) input.
    kh, kw : kernel height/width.
    stride : spatial stride.
    pad : symmetric zero padding.

    Returns
    -------
    (N * OH * OW, C * kh * kw) matrix whose rows are flattened receptive
    fields, ordered so that ``cols @ W.reshape(OC, -1).T`` computes the
    convolution.
    """
    n, c, h, w = x.shape
    oh = _out_size(h, kh, stride, pad)
    ow = _out_size(w, kw, stride, pad)
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    # Strided view: (N, C, kh, kw, OH, OW) without copying.
    sn, sc, sh, sw = x.strides
    shape = (n, c, kh, kw, oh, ow)
    strides = (sn, sc, sh, sw, sh * stride, sw * stride)
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    # -> (N, OH, OW, C, kh, kw) -> rows
    cols = patches.transpose(0, 4, 5, 1, 2, 3).reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols)


def col2im(cols: np.ndarray, x_shape: Tuple[int, int, int, int], kh: int,
           kw: int, stride: int = 1, pad: int = 0) -> np.ndarray:
    """Inverse of :func:`im2col` with accumulation (adjoint operator)."""
    n, c, h, w = x_shape
    oh = _out_size(h, kh, stride, pad)
    ow = _out_size(w, kw, stride, pad)
    hp, wp = h + 2 * pad, w + 2 * pad
    xp = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    cols6 = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            xp[:, :, i:i_max:stride, j:j_max:stride] += cols6[:, :, i, j]
    if pad > 0:
        return xp[:, :, pad:-pad, pad:-pad]
    return xp


# ---------------------------------------------------------------------------
# Convolutions
# ---------------------------------------------------------------------------

def conv2d(x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray] = None,
           stride: int = 1, pad: int = 0):
    """Standard convolution via im2col.

    Returns ``(out, cache)`` where cache is reused by
    :func:`conv2d_backward`.
    """
    n, c, h, w = x.shape
    oc, ic, kh, kw = weight.shape
    if ic != c:
        raise ValueError(f"channel mismatch: input {c}, weight expects {ic}")
    oh = _out_size(h, kh, stride, pad)
    ow = _out_size(w, kw, stride, pad)
    cols = im2col(x, kh, kw, stride, pad)
    out = cols @ weight.reshape(oc, -1).T
    if bias is not None:
        out += bias
    out = out.reshape(n, oh, ow, oc).transpose(0, 3, 1, 2)
    cache = (x.shape, cols, weight, stride, pad)
    return out, cache


def conv2d_backward(grad_out: np.ndarray, cache):
    """Backward pass of :func:`conv2d`.

    Returns ``(grad_x, grad_w, grad_b)``.
    """
    x_shape, cols, weight, stride, pad = cache
    oc, ic, kh, kw = weight.shape
    n, co, oh, ow = grad_out.shape
    g = grad_out.transpose(0, 2, 3, 1).reshape(-1, oc)
    grad_w = (g.T @ cols).reshape(weight.shape)
    grad_b = g.sum(axis=0)
    grad_cols = g @ weight.reshape(oc, -1)
    grad_x = col2im(grad_cols, x_shape, kh, kw, stride, pad)
    return grad_x, grad_w, grad_b


def depthwise_conv2d(x: np.ndarray, weight: np.ndarray,
                     bias: Optional[np.ndarray] = None, stride: int = 1,
                     pad: int = 0):
    """Depthwise convolution: one filter per input channel.

    ``weight`` has shape (C, 1, kh, kw).
    """
    n, c, h, w = x.shape
    wc, one, kh, kw = weight.shape
    if wc != c or one != 1:
        raise ValueError(f"depthwise weight shape {weight.shape} mismatches C={c}")
    oh = _out_size(h, kh, stride, pad)
    ow = _out_size(w, kw, stride, pad)
    cols = im2col(x, kh, kw, stride, pad)          # (N*OH*OW, C*kh*kw)
    cols4 = cols.reshape(-1, c, kh * kw)            # (rows, C, K)
    wk = weight.reshape(c, kh * kw)                 # (C, K)
    out = np.einsum("rck,ck->rc", cols4, wk, optimize=True)
    if bias is not None:
        out += bias
    out = out.reshape(n, oh, ow, c).transpose(0, 3, 1, 2)
    cache = (x.shape, cols4, weight, stride, pad)
    return out, cache


def depthwise_conv2d_backward(grad_out: np.ndarray, cache):
    x_shape, cols4, weight, stride, pad = cache
    c, _, kh, kw = weight.shape
    g = grad_out.transpose(0, 2, 3, 1).reshape(-1, c)          # (rows, C)
    grad_w = np.einsum("rc,rck->ck", g, cols4, optimize=True).reshape(weight.shape)
    grad_b = g.sum(axis=0)
    wk = weight.reshape(c, kh * kw)
    grad_cols = np.einsum("rc,ck->rck", g, wk, optimize=True).reshape(
        g.shape[0], c * kh * kw)
    grad_x = col2im(grad_cols, x_shape, kh, kw, stride, pad)
    return grad_x, grad_w, grad_b


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------

def avg_pool2d(x: np.ndarray, kernel: int, stride: Optional[int] = None):
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = _out_size(h, kernel, stride, 0)
    ow = _out_size(w, kernel, stride, 0)
    sn, sc, sh, sw = x.strides
    shape = (n, c, oh, ow, kernel, kernel)
    strides = (sn, sc, sh * stride, sw * stride, sh, sw)
    windows = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    out = windows.mean(axis=(4, 5))
    return out, (x.shape, kernel, stride)


def avg_pool2d_backward(grad_out: np.ndarray, cache):
    x_shape, kernel, stride = cache
    n, c, h, w = x_shape
    grad_x = np.zeros(x_shape, dtype=grad_out.dtype)
    scale = 1.0 / (kernel * kernel)
    oh, ow = grad_out.shape[2], grad_out.shape[3]
    for i in range(kernel):
        for j in range(kernel):
            grad_x[:, :, i:i + stride * oh:stride, j:j + stride * ow:stride] += (
                grad_out * scale)
    return grad_x


def global_avg_pool(x: np.ndarray):
    out = x.mean(axis=(2, 3))
    return out, x.shape


def global_avg_pool_backward(grad_out: np.ndarray, x_shape) -> np.ndarray:
    n, c, h, w = x_shape
    return np.broadcast_to(
        grad_out[:, :, None, None] / (h * w), x_shape).copy()


# ---------------------------------------------------------------------------
# Activations
# ---------------------------------------------------------------------------

def relu(x: np.ndarray):
    out = np.maximum(x, 0.0)
    return out, (x > 0)


def relu_backward(grad_out: np.ndarray, mask: np.ndarray) -> np.ndarray:
    return grad_out * mask


def hsigmoid(x: np.ndarray):
    """Hard sigmoid: clip(x + 3, 0, 6) / 6 (MobileNetV3 variant)."""
    out = np.clip(x + 3.0, 0.0, 6.0) / 6.0
    return out, x


def hsigmoid_backward(grad_out: np.ndarray, x: np.ndarray) -> np.ndarray:
    mask = (x > -3.0) & (x < 3.0)
    return grad_out * mask / 6.0


def hswish(x: np.ndarray):
    """Hard swish: x * hsigmoid(x)."""
    hs = np.clip(x + 3.0, 0.0, 6.0) / 6.0
    return x * hs, x


def hswish_backward(grad_out: np.ndarray, x: np.ndarray) -> np.ndarray:
    inner = (x > -3.0) & (x < 3.0)
    d = np.where(x >= 3.0, 1.0, 0.0) + inner * (2.0 * x + 3.0) / 6.0
    return grad_out * d


def sigmoid(x: np.ndarray) -> np.ndarray:
    # Numerically stable: compute on the negative half and reflect.
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


# ---------------------------------------------------------------------------
# Softmax / losses
# ---------------------------------------------------------------------------

def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    z = x - x.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    z = x - x.max(axis=axis, keepdims=True)
    return z - np.log(np.exp(z).sum(axis=axis, keepdims=True))


def cross_entropy(logits: np.ndarray, targets: np.ndarray,
                  soft_targets: Optional[np.ndarray] = None):
    """Mean cross-entropy.

    ``targets`` are integer class labels; if ``soft_targets`` is given
    (N, K) it is used instead (knowledge distillation).
    Returns ``(loss, cache)``.
    """
    logp = log_softmax(logits, axis=-1)
    n = logits.shape[0]
    if soft_targets is not None:
        loss = -(soft_targets * logp).sum() / n
        cache = (logp, None, soft_targets)
    else:
        loss = -logp[np.arange(n), targets].mean()
        cache = (logp, targets, None)
    return float(loss), cache


def cross_entropy_backward(cache) -> np.ndarray:
    logp, targets, soft = cache
    n, k = logp.shape
    p = np.exp(logp)
    if soft is not None:
        grad = (p * soft.sum(axis=-1, keepdims=True) - soft) / n
    else:
        grad = p.copy()
        grad[np.arange(n), targets] -= 1.0
        grad /= n
    return grad


# ---------------------------------------------------------------------------
# Batch normalization
# ---------------------------------------------------------------------------

def batchnorm2d(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
                running_mean: np.ndarray, running_var: np.ndarray,
                training: bool, momentum: float = 0.1, eps: float = 1e-5):
    """2-D batch norm over (N, H, W) per channel.

    ``running_mean``/``running_var`` are updated in place in training mode
    (only over the active channel slice — elastic-width supernets rely on
    this).
    """
    if training:
        mean = x.mean(axis=(0, 2, 3))
        var = x.var(axis=(0, 2, 3))
        running_mean *= (1.0 - momentum)
        running_mean += momentum * mean
        running_var *= (1.0 - momentum)
        running_var += momentum * var
    else:
        mean, var = running_mean, running_var
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
    out = gamma[None, :, None, None] * xhat + beta[None, :, None, None]
    cache = (xhat, inv_std, gamma, training)
    return out, cache


def batchnorm2d_backward(grad_out: np.ndarray, cache):
    xhat, inv_std, gamma, training = cache
    n, c, h, w = grad_out.shape
    m = n * h * w
    grad_gamma = (grad_out * xhat).sum(axis=(0, 2, 3))
    grad_beta = grad_out.sum(axis=(0, 2, 3))
    gx = grad_out * gamma[None, :, None, None]
    if training:
        # Full batch-norm backward (mean/var depend on x).
        grad_x = (inv_std[None, :, None, None] / m) * (
            m * gx
            - gx.sum(axis=(0, 2, 3))[None, :, None, None]
            - xhat * (gx * xhat).sum(axis=(0, 2, 3))[None, :, None, None]
        )
    else:
        grad_x = gx * inv_std[None, :, None, None]
    return grad_x, grad_gamma, grad_beta


# ---------------------------------------------------------------------------
# Linear
# ---------------------------------------------------------------------------

def linear(x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray] = None):
    """Affine map ``x @ W.T + b``; weight is (out, in)."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out, (x, weight)


def linear_backward(grad_out: np.ndarray, cache):
    x, weight = cache
    grad_w = grad_out.T @ x
    grad_b = grad_out.sum(axis=0)
    grad_x = grad_out @ weight
    return grad_x, grad_w, grad_b
