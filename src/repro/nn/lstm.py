"""An LSTM cell with full backpropagation-through-time.

The Murmuration policy network (paper Fig. 5) is a single-layer LSTM whose
hidden state carries model-configuration decisions across the per-layer
decision sequence.  This module implements the cell plus a helper that
unrolls it over a decision trajectory and backpropagates through all steps.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from . import functional as F
from .init import orthogonal, xavier_uniform
from .layers import Module, Parameter

__all__ = ["LSTMCell", "LSTMState"]

LSTMState = Tuple[np.ndarray, np.ndarray]  # (h, c)


class LSTMCell(Module):
    """Standard LSTM cell.

    Gate layout in the stacked weight matrices is ``[i, f, g, o]``.
    Forget-gate bias is initialized to 1.0 (standard trick to preserve
    long-range credit assignment early in training).
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        h = hidden_size
        self.w_ih = Parameter(
            xavier_uniform((4 * h, input_size), fan_in=input_size, fan_out=4 * h,
                           rng=rng))
        self.w_hh = Parameter(
            np.concatenate([orthogonal((h, h), rng=rng) for _ in range(4)], axis=0))
        bias = np.zeros(4 * h)
        bias[h:2 * h] = 1.0  # forget gate
        self.bias = Parameter(bias)
        self._tape: List[tuple] = []

    def zero_state(self, batch: int = 1) -> LSTMState:
        h = np.zeros((batch, self.hidden_size))
        return h, h.copy()

    def reset_tape(self) -> None:
        self._tape.clear()

    def forward_step(self, x: np.ndarray, state: LSTMState,
                     record: bool = True) -> Tuple[np.ndarray, LSTMState]:
        """One time step; returns (h_new, (h_new, c_new)).

        When ``record`` is True, intermediates are pushed onto the tape for
        :meth:`backward_through_time`.
        """
        h_prev, c_prev = state
        hs = self.hidden_size
        z = x @ self.w_ih.data.T + h_prev @ self.w_hh.data.T + self.bias.data
        i = F.sigmoid(z[:, 0 * hs:1 * hs])
        f = F.sigmoid(z[:, 1 * hs:2 * hs])
        g = np.tanh(z[:, 2 * hs:3 * hs])
        o = F.sigmoid(z[:, 3 * hs:4 * hs])
        c = f * c_prev + i * g
        tanh_c = np.tanh(c)
        h = o * tanh_c
        if record:
            self._tape.append((x, h_prev, c_prev, i, f, g, o, c, tanh_c))
        return h, (h, c)

    # alias so an LSTMCell can be invoked like other modules on a sequence
    def forward(self, xs: np.ndarray) -> np.ndarray:
        """Run over a (T, B, input) sequence; returns (T, B, hidden)."""
        state = self.zero_state(xs.shape[1])
        outs = []
        for t in range(xs.shape[0]):
            h, state = self.forward_step(xs[t], state)
            outs.append(h)
        return np.stack(outs, axis=0)

    def backward_through_time(self, grads_h: List[Optional[np.ndarray]],
                              ) -> List[np.ndarray]:
        """BPTT over the recorded tape.

        ``grads_h[t]`` is dLoss/dh_t coming from the heads at step t (or
        None).  Gradients for the cell parameters are accumulated in place;
        the per-step input gradients are returned (aligned with the tape).
        """
        if len(grads_h) != len(self._tape):
            raise ValueError(
                f"got {len(grads_h)} head gradients for {len(self._tape)} steps")
        hs = self.hidden_size
        grad_x_out: List[np.ndarray] = [None] * len(self._tape)  # type: ignore
        dh_next = None
        dc_next = None
        for t in range(len(self._tape) - 1, -1, -1):
            x, h_prev, c_prev, i, f, g, o, c, tanh_c = self._tape[t]
            dh = np.zeros_like(h_prev) if grads_h[t] is None else grads_h[t].copy()
            if dh_next is not None:
                dh += dh_next
            dc = dh * o * (1.0 - tanh_c ** 2)
            if dc_next is not None:
                dc += dc_next
            do = dh * tanh_c
            di = dc * g
            dg = dc * i
            df = dc * c_prev
            dz = np.concatenate([
                di * i * (1.0 - i),
                df * f * (1.0 - f),
                dg * (1.0 - g ** 2),
                do * o * (1.0 - o),
            ], axis=1)
            self.w_ih.grad += dz.T @ x
            self.w_hh.grad += dz.T @ h_prev
            self.bias.grad += dz.sum(axis=0)
            grad_x_out[t] = dz @ self.w_ih.data
            dh_next = dz @ self.w_hh.data
            dc_next = dc * f
        self.reset_tape()
        return grad_x_out
