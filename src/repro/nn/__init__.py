"""NumPy neural-network substrate.

A self-contained, dependency-free (NumPy-only) NN engine providing exactly
what the Murmuration reproduction needs: vectorized conv/depthwise-conv/
linear/batchnorm layers with manual backprop, MobileNetV3 activations, an
LSTM cell with BPTT for the RL policy, optimizers, and feature-map
quantization.
"""

from . import functional
from .layers import (
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Flatten,
    GlobalAvgPool,
    HSigmoid,
    HSwish,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    SqueezeExcite,
)
from .lstm import LSTMCell
from .optim import SGD, Adam, CosineLR, clip_grad_norm
from .quantize import (
    SUPPORTED_BITS,
    QuantizedTensor,
    dequantize,
    fake_quantize,
    quantize,
    wire_bytes,
)

__all__ = [
    "functional",
    "Module",
    "Parameter",
    "Conv2d",
    "DepthwiseConv2d",
    "BatchNorm2d",
    "Linear",
    "ReLU",
    "HSwish",
    "HSigmoid",
    "GlobalAvgPool",
    "Flatten",
    "SqueezeExcite",
    "Sequential",
    "LSTMCell",
    "SGD",
    "Adam",
    "CosineLR",
    "clip_grad_norm",
    "QuantizedTensor",
    "quantize",
    "dequantize",
    "fake_quantize",
    "wire_bytes",
    "SUPPORTED_BITS",
]
