"""Optimizers operating on :class:`repro.nn.layers.Parameter` lists."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most
    ``max_norm``; returns the pre-clip norm."""
    params = list(params)
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class Optimizer:
    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with classical momentum and decoupled weight decay."""

    def __init__(self, params, lr: float = 0.05, momentum: float = 0.9,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            v *= self.momentum
            v -= self.lr * g
            p.data += v


class Adam(Optimizer):
    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.b1, self.b2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.b1 ** self._t
        bc2 = 1.0 - self.b2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= self.b1
            m += (1.0 - self.b1) * g
            v *= self.b2
            v += (1.0 - self.b2) * g * g
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)


class CosineLR:
    """Cosine-annealed learning rate schedule with optional warmup."""

    def __init__(self, optimizer: Optimizer, total_steps: int,
                 base_lr: Optional[float] = None, min_lr: float = 0.0,
                 warmup_steps: int = 0):
        self.opt = optimizer
        self.total = max(1, total_steps)
        self.base = base_lr if base_lr is not None else optimizer.lr
        self.min = min_lr
        self.warmup = warmup_steps
        self._step = 0

    def step(self) -> float:
        self._step += 1
        if self._step <= self.warmup:
            lr = self.base * self._step / max(1, self.warmup)
        else:
            t = (self._step - self.warmup) / max(1, self.total - self.warmup)
            t = min(1.0, t)
            lr = self.min + 0.5 * (self.base - self.min) * (1 + np.cos(np.pi * t))
        self.opt.lr = lr
        return lr
