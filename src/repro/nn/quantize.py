"""Feature-map quantization.

Murmuration's search space includes per-layer *input quantization* used
when intermediate activations cross a device boundary: quantizing from
32-bit floats to 8/16-bit integers shrinks the transfer 4x/2x at a small
accuracy cost.  We implement symmetric uniform quantization with
per-tensor scale, plus helpers to compute the on-the-wire byte volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = [
    "QuantizedTensor",
    "quantize",
    "dequantize",
    "fake_quantize",
    "wire_bytes",
    "SUPPORTED_BITS",
]

SUPPORTED_BITS = (8, 16, 32)


@dataclass(frozen=True)
class QuantizedTensor:
    """Integer payload + scale, the unit actually shipped between devices."""

    data: np.ndarray
    scale: float
    bits: int
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        return wire_bytes(int(np.prod(self.shape)), self.bits)


def _check_bits(bits: int) -> None:
    if bits not in SUPPORTED_BITS:
        raise ValueError(f"unsupported bitwidth {bits}; expected one of {SUPPORTED_BITS}")


def quantize(x: np.ndarray, bits: int) -> QuantizedTensor:
    """Symmetric uniform quantization to ``bits`` (32 = passthrough)."""
    _check_bits(bits)
    if bits == 32:
        return QuantizedTensor(x.astype(np.float32), 1.0, 32, x.shape)
    qmax = float(2 ** (bits - 1) - 1)
    amax = float(np.abs(x).max())
    scale = amax / qmax if amax > 0 else 1.0
    dtype = np.int8 if bits == 8 else np.int16
    q = np.clip(np.round(x / scale), -qmax - 1, qmax).astype(dtype)
    return QuantizedTensor(q, scale, bits, x.shape)


def dequantize(qt: QuantizedTensor) -> np.ndarray:
    if qt.bits == 32:
        return qt.data.astype(np.float64)
    return qt.data.astype(np.float64) * qt.scale


def fake_quantize(x: np.ndarray, bits: int) -> np.ndarray:
    """Quantize-dequantize round trip; used during supernet training so
    submodels see the quantization noise they will incur at the wire."""
    if bits == 32:
        return x
    return dequantize(quantize(x, bits))


def wire_bytes(num_elements: int, bits: int) -> int:
    """Bytes on the wire for a tensor of ``num_elements`` at ``bits``.

    A small fixed header (shape + scale) models the framing overhead.
    """
    _check_bits(bits)
    header = 32
    return header + (num_elements * bits + 7) // 8
