"""Weight initializers.

All initializers accept an optional ``numpy.random.Generator`` so callers
control determinism; a module-level default generator keeps ad-hoc use
reproducible too.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

_DEFAULT_RNG = np.random.default_rng(0x5EED)


def _rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else _DEFAULT_RNG


def he_normal(shape: Tuple[int, ...], fan_in: int,
              rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Kaiming-He normal init for ReLU-family nonlinearities."""
    std = np.sqrt(2.0 / max(1, fan_in))
    return _rng(rng).normal(0.0, std, size=shape)


def xavier_uniform(shape: Tuple[int, ...], fan_in: int, fan_out: int,
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot uniform init for linear/tanh layers."""
    limit = np.sqrt(6.0 / max(1, fan_in + fan_out))
    return _rng(rng).uniform(-limit, limit, size=shape)


def orthogonal(shape: Tuple[int, int], gain: float = 1.0,
               rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Orthogonal init (recommended for recurrent weights)."""
    rows, cols = shape
    a = _rng(rng).normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(a)
    q *= np.sign(np.diag(r))  # make deterministic up to the RNG draw
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols]
