#!/usr/bin/env python
"""Device-swarm scenario: five Raspberry-Pi-class devices cooperating
on inference (search-and-rescue drones, field sensors, ...).

Part 1 — *real* distributed execution: trains the tiny executable
supernet and runs an actual FDSP-partitioned inference across simulated
Pis through the distributed executor, showing that the partitioned
logits match the monolithic ones and what the partition costs in time.

Part 2 — paper-scale scaling sweep (Fig. 17 flavour): how much latency
an accuracy-constrained deployment saves as the swarm grows.

Run:  python examples/device_swarm.py        (~2 min)
"""

import numpy as np

from repro.core import SLO
from repro.devices import rpi4
from repro.eval import MurmurationOracle
from repro.nas import (Supernet, SupernetTrainer, SyntheticImageDataset,
                       TrainConfig, build_graph, max_arch, tiny_space)
from repro.netsim import Cluster, NetworkCondition
from repro.partition import Grid, spatial_front_plan
from repro.runtime import DistributedExecutor
from repro.nas import MBV3_SPACE


def real_partitioned_execution() -> None:
    print("=== Part 1: real FDSP execution on the tiny supernet ===")
    space = tiny_space()
    net = Supernet(space, seed=0)
    ds = SyntheticImageDataset(resolution=32, train_size=256, val_size=64,
                               seed=0, noise=0.45)
    print("training tiny supernet (progressive shrinking)...")
    result = SupernetTrainer(net, ds, TrainConfig(
        warmup_steps=80, steps_per_phase=30, batch_size=16)).train()
    print(f"  val accuracy: max-net {result.val_accuracy['max']:.1f}%, "
          f"min-net {result.val_accuracy['min']:.1f}%")

    cluster = Cluster([rpi4() for _ in range(5)],
                      NetworkCondition((200.0,) * 4, (5.0,) * 4))
    from repro.nas import recalibrate_bn
    arch = max_arch(space)
    recalibrate_bn(net, ds, arch)
    net.eval()
    graph = build_graph(arch, space)
    x, y = ds.val_batch(limit=32)

    executor = DistributedExecutor(net, cluster)
    mono = net.forward_arch(x, arch)
    plan = spatial_front_plan(graph, Grid(2, 2), [1, 2, 3, 4], min_hw=8)
    res = executor.execute(x, arch, plan)

    agree = float((res.logits.argmax(1) == mono.argmax(1)).mean())
    acc = float((res.logits.argmax(1) == y).mean())
    print(f"  2x2 FDSP across 4 remote Pis: latency {res.latency_ms:.1f} ms, "
          f"{res.comm_bytes / 1e3:.0f} kB moved in {res.num_messages} messages")
    print(f"  prediction agreement with monolithic run: {agree:.0%} "
          f"(accuracy {acc:.0%})\n")


def scaling_sweep() -> None:
    print("=== Part 2: swarm scaling at an accuracy SLO (Fig. 17) ===")
    slo = SLO.accuracy(75.0)
    condition_of = lambda n: NetworkCondition((1000.0,) * (n - 1),
                                              (2.0,) * (n - 1))
    base = None
    print(f"{'devices':>8s} {'latency':>10s} {'speedup':>8s} {'accuracy':>9s}")
    for n in (1, 2, 3, 5, 7, 9):
        oracle = MurmurationOracle(MBV3_SPACE, [rpi4() for _ in range(n)])
        s = oracle.decide(slo, condition_of(n))
        lat = s.expected_latency_s * 1e3
        base = base or lat
        print(f"{n:8d} {lat:8.1f}ms {base / lat:7.2f}x "
              f"{s.expected_accuracy:8.1f}%")


def main() -> None:
    real_partitioned_execution()
    scaling_sweep()


if __name__ == "__main__":
    main()
