#!/usr/bin/env python
"""Serving under load: SLO compliance with queueing (extension).

Wraps the Murmuration facade in the Poisson-arrival serving loop and
compares two operating points on the same hardware and network trace:

* a *tight* 120 ms latency SLO — faster submodels, headroom for queueing;
* a *loose* 400 ms latency SLO — more accurate submodels, but at high
  arrival rates the queue eats the headroom.

The punchline: the SLO knob is also a throughput knob.

Then a telemetry-instrumented run: the same loop with a `Telemetry` hub
threaded through, printing where one request's time actually went.

Run:  python examples/serving.py        (~1 min)
"""

from repro.core import SLO, Murmuration, SearchDecisionEngine
from repro.devices import desktop_gtx1080, rpi4
from repro.nas import MBV3_SPACE
from repro.netsim import NetworkCondition, TraceConfig, random_walk_trace
from repro.runtime import InferenceServer
from repro.telemetry import Telemetry, console_report


def build_system(slo_ms: float, telemetry=None):
    devices = [rpi4(), desktop_gtx1080()]
    return Murmuration(
        MBV3_SPACE, devices, NetworkCondition((80.0,), (30.0,)),
        SearchDecisionEngine(MBV3_SPACE, devices, n_random_archs=6),
        slo=SLO.latency_ms(slo_ms), use_predictor=False,
        monitor_noise=0.02, seed=0, telemetry=telemetry)


def telemetry_quickstart(trace) -> None:
    """One instrumented serving run; report + per-request breakdown."""
    tel = Telemetry()
    system = build_system(200.0, telemetry=tel)
    server = InferenceServer(system, arrival_rate_hz=4.0, seed=2,
                             telemetry=tel)
    server.run(num_requests=20, condition_trace=trace, trace_period_s=0.5)

    print(console_report(tel.registry, tel.timelines, max_timelines=1))
    tl = tel.timelines[-1]
    print(f"\nlast request: {tl.total_s * 1e3:.1f} ms end-to-end, of which "
          f"queue {tl.duration_of('queue') * 1e3:.1f} ms, "
          f"decision {tl.duration_of('decision') * 1e3:.1f} ms, "
          f"execute {tl.duration_of('execute') * 1e3:.1f} ms")


def main() -> None:
    trace = random_walk_trace(TraceConfig(
        num_remote=1, bw_range=(25.0, 120.0), delay_range=(15.0, 70.0),
        steps=30, seed=1))

    print(f"{'SLO':>8s} {'rate':>6s} {'p50':>8s} {'p95':>8s} "
          f"{'queue':>8s} {'acc':>6s} {'compl.':>7s}")
    for slo_ms in (120.0, 400.0):
        for rate in (1.0, 3.0, 6.0):
            system = build_system(slo_ms)
            server = InferenceServer(system, arrival_rate_hz=rate, seed=2)
            stats = server.run(num_requests=40, condition_trace=trace,
                               trace_period_s=0.5)
            acc = (sum(r.strategy.expected_accuracy
                       for r in system.records) / len(system.records))
            print(f"{slo_ms:6.0f}ms {rate:5.0f}/s "
                  f"{stats.percentile_ms(50):7.1f}ms "
                  f"{stats.percentile_ms(95):7.1f}ms "
                  f"{stats.mean_queue_wait_ms:7.1f}ms "
                  f"{acc:5.1f}% {stats.slo_compliance:6.0%}")
        print()

    telemetry_quickstart(trace)


if __name__ == "__main__":
    main()
