#!/usr/bin/env python
"""Augmented-computing scenario (paper Sec. 6): an AR/VR-class headset
(Raspberry Pi stand-in) paired with a GPU desktop.

Trains a SUPREME policy (small budget), then replays a mobility trace —
the user walks away from the access point and back — while serving
inference under a 140 ms latency SLO.  Compares the adaptive RL-driven
system against the best *fixed* model+split baseline chosen for the
initial conditions.

Run:  python examples/augmented_computing.py        (~2 min)
"""

import numpy as np

from repro.baselines import make_baseline
from repro.core import SLO, Murmuration, RLDecisionEngine
from repro.devices import desktop_gtx1080, rpi4
from repro.nas import MBV3_SPACE
from repro.netsim import (Cluster, NetworkCondition, TraceConfig,
                          mobility_trace)
from repro.rl import EnvConfig, MurmurationEnv, SupremeConfig, SupremeTrainer

SLO_MS = 140.0
TRAIN_STEPS = 600


def train_policy(devices):
    print(f"training SUPREME policy ({TRAIN_STEPS} steps)...")
    env = MurmurationEnv(MBV3_SPACE, devices,
                         EnvConfig(slo_kind="latency", slo_range=(0.05, 0.5)))
    trainer = SupremeTrainer(env, SupremeConfig(
        total_steps=TRAIN_STEPS, eval_every=10 ** 9, seed=0))
    trainer.train(eval_tasks=[], eval_mask=np.zeros(0, dtype=bool))
    return env, trainer.policy


def main() -> None:
    devices = [rpi4(), desktop_gtx1080()]
    env, policy = train_policy(devices)

    start = NetworkCondition((350.0,), (8.0,))
    system = Murmuration(MBV3_SPACE, devices, start,
                         RLDecisionEngine(env, policy),
                         slo=SLO.latency_ms(SLO_MS), seed=1)

    baseline = make_baseline("neurosurgeon", "resnet50")

    trace = mobility_trace(TraceConfig(
        num_remote=1, bw_range=(30.0, 400.0), delay_range=(5.0, 90.0),
        steps=24, seed=2))

    print(f"\n{'t':>3s} {'bw':>6s} {'delay':>6s} | "
          f"{'murmuration':>22s} | {'neurosurgeon+resnet50':>22s}")
    ours_ok = base_ok = 0
    for t, cond in enumerate(trace):
        system.update_condition(cond)
        for _ in range(3):
            system.observed_condition()
        try:
            rec = system.infer()
            ours = f"{rec.latency_ms:6.1f}ms @{rec.accuracy:4.1f}%"
            ours_ok += rec.satisfied
        except RuntimeError:
            ours = "     -- no strategy --"
        out = baseline.evaluate(Cluster(devices, cond), SLO.latency_ms(SLO_MS))
        base = (f"{out.latency_s * 1e3:6.1f}ms @{out.accuracy:4.1f}%"
                if out.satisfied else "     -- misses SLO --")
        base_ok += out.satisfied
        print(f"{t:3d} {cond.bandwidths_mbps[0]:6.0f} "
              f"{cond.delays_ms[0]:6.0f} | {ours:>22s} | {base:>22s}")

    n = len(trace)
    print(f"\nSLO compliance: Murmuration {ours_ok}/{n} "
          f"({100 * ours_ok / n:.0f}%), fixed baseline {base_ok}/{n} "
          f"({100 * base_ok / n:.0f}%)")
    print(f"strategy cache hit rate: {system.cache.hit_rate:.0%}")


if __name__ == "__main__":
    main()
