#!/usr/bin/env python
"""Stage 1 walkthrough: partition-ready one-shot NAS training.

Trains the tiny executable supernet with the full recipe — warmup,
progressive shrinking (kernel -> depth -> expand), in-place distillation
and partition/quantization-aware steps — then demonstrates what the
trained weight-sharing gives you:

* many submodels, one parameter set, with an accuracy/compute trade-off;
* feature-map quantization at the wire with minimal accuracy loss;
* FDSP spatial partitioning with near-identical predictions;
* a fitted accuracy predictor (what Stage-2 RL training consumes).

Run:  python examples/train_supernet.py        (~2-3 min)
"""

import numpy as np

from repro.nas import (ArchConfig, Supernet, SupernetTrainer,
                       SyntheticImageDataset, TrainConfig, build_graph,
                       evaluate_arch, fit_predictor, max_arch, min_arch,
                       partition_aware_forward, tiny_space)
from repro.nn import fake_quantize
from repro.partition import Grid


def main() -> None:
    space = tiny_space()
    net = Supernet(space, seed=1)
    ds = SyntheticImageDataset(resolution=32, train_size=256, val_size=96,
                               seed=1, noise=0.45)
    print(f"supernet: {net.num_parameters():,} shared parameters, "
          f"{space.num_submodels():,} submodels")

    trainer = SupernetTrainer(net, ds, TrainConfig(
        warmup_steps=80, steps_per_phase=40, batch_size=16,
        partition_prob=0.3, quantize_prob=0.3))
    result = trainer.train()
    print(f"training done ({len(result.losses)} steps); "
          f"final loss {np.mean(result.losses[-10:]):.3f}\n")

    # 1. the accuracy/compute trade-off across submodels
    print("submodel ladder (shared weights):")
    mx, mn = max_arch(space), min_arch(space)
    mid = ArchConfig(32, mn.depths, mx.kernels, mx.expands)
    for name, arch in [("max", mx), ("mid", mid), ("min", mn)]:
        acc = evaluate_arch(net, ds, arch)
        flops = build_graph(arch, space).total_flops
        print(f"  {name:4s} res={arch.resolution:2d} "
              f"{flops / 1e6:6.1f} MFLOPs  val acc {acc:5.1f}%")

    # 2. wire quantization robustness (recalibrate BN for the max net)
    from repro.nas import recalibrate_bn
    recalibrate_bn(net, ds, mx)
    net.eval()
    x, y = ds.val_batch(limit=64)
    base = net.forward_arch(x, mx)
    for bits in (32, 16, 8):
        out = net.forward_arch(fake_quantize(x, bits), mx)
        acc = float((out.argmax(1) == y).mean() * 100)
        print(f"  input quantized to {bits:2d} bits -> val acc {acc:5.1f}%")

    # 3. FDSP partitioned stem
    part = partition_aware_forward(net, x, mx, Grid(1, 2))
    agree = float((part.argmax(1) == base.argmax(1)).mean())
    print(f"  FDSP 1x2-partitioned stem agrees with monolithic on "
          f"{agree:.0%} of predictions")

    # 4. the accuracy predictor Stage 2 consumes
    print("\nfitting the accuracy predictor on measured submodels...")
    rng = np.random.default_rng(0)
    from repro.nas import random_arch
    oracle = lambda a: evaluate_arch(net, ds, a)
    pred, mae = fit_predictor(space, oracle=oracle, n_samples=80, epochs=120,
                              seed=0)
    print(f"  predictor MAE on held-out submodels: {mae:.2f} points "
          f"(96-image validation set; measurement noise alone is several "
          f"points)")
    a = random_arch(space, rng)
    print(f"  sample: predicted {pred.predict(a):5.1f}% vs measured "
          f"{oracle(a):5.1f}%")


if __name__ == "__main__":
    main()
