#!/usr/bin/env python
"""Quickstart: SLO-aware distributed inference in ~40 lines.

Builds the augmented-computing scenario from the paper (a Raspberry Pi
paired with a GPU desktop), sets a 140 ms latency SLO, and serves
requests while the network degrades — watch Murmuration swap submodels
and placements to keep meeting the SLO.

Run:  python examples/quickstart.py
"""

from repro import SLO, Murmuration
from repro.core import SearchDecisionEngine
from repro.devices import desktop_gtx1080, rpi4
from repro.nas import MBV3_SPACE
from repro.netsim import NetworkCondition


def main() -> None:
    devices = [rpi4(), desktop_gtx1080()]
    system = Murmuration(
        space=MBV3_SPACE,
        devices=devices,
        condition=NetworkCondition((300.0,), (10.0,)),  # 300 Mbps, 10 ms
        decision_engine=SearchDecisionEngine(MBV3_SPACE, devices),
        slo=SLO.latency_ms(140),
        seed=0,
    )

    print("SLO: latency <= 140 ms\n")
    scenarios = [
        ("good network (300 Mbps, 10 ms)", NetworkCondition((300.0,), (10.0,))),
        ("congested     (60 Mbps, 40 ms)", NetworkCondition((60.0,), (40.0,))),
        ("barely there   (20 Mbps, 90 ms)", NetworkCondition((20.0,), (90.0,))),
    ]
    for label, condition in scenarios:
        system.update_condition(condition)
        for _ in range(5):          # let the monitor's EWMA catch up
            system.observed_condition()
        record = system.infer()
        print(f"[{label}]")
        print(f"  strategy : {record.strategy.summary()}")
        print(f"  latency  : {record.latency_ms:6.1f} ms "
              f"({'meets SLO' if record.satisfied else 'MISSES SLO'})")
        print(f"  accuracy : {record.accuracy:5.1f} %")
        print(f"  decision : {record.decision_time_s * 1e3:.2f} ms "
              f"(cache {'hit' if record.cache_hit else 'miss'})\n")

    print(f"compliance over the session: {system.compliance_rate():.0%}")


if __name__ == "__main__":
    main()
