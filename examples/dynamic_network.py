#!/usr/bin/env python
"""Fast model adaptation under a *dynamic* network (paper Sec. 5.1).

Replays an abrupt step-change trace (handover events every few seconds)
against the full runtime stack — network monitor, linear-regression
monitoring predictor, strategy cache with predictor-driven precompute,
and in-memory supernet reconfiguration — and reports how much decision
latency the fast-adaptation machinery removes.

Run:  python examples/dynamic_network.py        (~1 min)
"""

import numpy as np

from repro.core import SLO, Murmuration, SearchDecisionEngine, StrategyCache
from repro.devices import desktop_gtx1080, rpi4
from repro.nas import MBV3_SPACE
from repro.netsim import NetworkCondition, TraceConfig, step_trace


def build_system(use_cache: bool, use_predictor: bool, seed: int = 0):
    devices = [rpi4(), desktop_gtx1080()]
    cache = (StrategyCache(capacity=256) if use_cache
             else StrategyCache(capacity=1, bw_step=1e-9, delay_step=1e-9))
    return Murmuration(
        MBV3_SPACE, devices, NetworkCondition((250.0,), (15.0,)),
        SearchDecisionEngine(MBV3_SPACE, devices, n_random_archs=10),
        slo=SLO.latency_ms(150), cache=cache, use_predictor=use_predictor,
        monitor_noise=0.02, seed=seed)


def replay(system, trace, precompute: bool):
    decision_ms, switches, hits = [], 0, 0
    prev_arch = None
    for cond in trace:
        system.update_condition(cond)
        if precompute:
            forecast = system.observed_condition()  # monitor + predictor
            system.precompute([forecast])
        rec = system.infer()
        decision_ms.append(rec.decision_time_s * 1e3)
        hits += rec.cache_hit
        if prev_arch is not None and rec.strategy.arch != prev_arch:
            switches += 1
        prev_arch = rec.strategy.arch
    return decision_ms, switches, hits


def main() -> None:
    trace = step_trace(TraceConfig(
        num_remote=1, bw_range=(40.0, 400.0), delay_range=(5.0, 80.0),
        steps=60, seed=7), period=12)

    print("60 requests over a step-change trace (handover every 12):\n")
    configs = [
        ("no cache, no predictor", False, False, False),
        ("cache only", True, False, False),
        ("cache + predictor precompute", True, True, True),
    ]
    for label, use_cache, use_pred, precompute in configs:
        system = build_system(use_cache, use_pred)
        times, switches, hits = replay(system, trace, precompute)
        print(f"[{label}]")
        print(f"  mean decision latency : {np.mean(times):7.2f} ms")
        print(f"  p95 decision latency  : {np.percentile(times, 95):7.2f} ms")
        print(f"  cache hits            : {hits}/60")
        print(f"  submodel switches     : {switches} "
              f"(in-memory reconfig ~9 ms each on the Pi)")
        print(f"  SLO compliance        : {system.compliance_rate():.0%}\n")


if __name__ == "__main__":
    main()
