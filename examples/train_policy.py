#!/usr/bin/env python
"""Stage 2 walkthrough: SUPREME vs the RL baselines.

Trains all four methods from the paper's Fig. 11 on the augmented-
computing scenario at a small budget and prints the reward/compliance
curves, plus a look inside SUPREME's bucketed replay buffer (how many
critical constraint points survive pruning — Eq. 4's discrete cover).

Run:  python examples/train_policy.py        (~3 min)
"""

import numpy as np

from repro.devices import desktop_gtx1080, rpi4
from repro.nas import MBV3_SPACE
from repro.rl import (EnvConfig, GCSLConfig, GCSLTrainer, MurmurationEnv,
                      PPOConfig, PPOTrainer, SupremeConfig, SupremeTrainer,
                      satisfiable_mask)

STEPS = 800
EVAL_EVERY = 200


def main() -> None:
    env = MurmurationEnv(MBV3_SPACE, [rpi4(), desktop_gtx1080()],
                         EnvConfig(slo_kind="latency", slo_range=(0.05, 0.5)))
    tasks = env.validation_tasks(points=3)
    mask = satisfiable_mask(env, tasks)
    print(f"validation tasks: {len(tasks)} ({int(mask.sum())} satisfiable)\n")

    runs = {}
    sup = SupremeTrainer(env, SupremeConfig(total_steps=STEPS,
                                            eval_every=EVAL_EVERY, seed=0))
    runs["SUPREME"] = sup.train(tasks, mask)
    runs["GCSL"] = GCSLTrainer(env, GCSLConfig(
        total_steps=STEPS, eval_every=EVAL_EVERY, seed=0)).train(tasks, mask)
    runs["PPO"] = PPOTrainer(env, PPOConfig(
        total_steps=STEPS, eval_every=EVAL_EVERY, seed=0)).train(tasks, mask)

    steps = runs["SUPREME"].steps
    print(f"{'step':>6s}" + "".join(f"{m:>12s}" for m in runs))
    for i, s in enumerate(steps):
        row = "".join(f"{runs[m].avg_reward[i]:12.3f}" for m in runs)
        print(f"{s:6d}" + row)
    print("\nfinal compliance: " + ", ".join(
        f"{m}={runs[m].compliance[-1]:.0%}" for m in runs))

    buf = sup.buffer
    print(f"\nSUPREME buffer after training: {buf.num_buckets} critical "
          f"buckets holding {buf.num_entries} strategies")
    best = []
    for idx in buf.all_indices():
        entries = buf.lookup(buf.representative(idx))
        best.append((buf.representative(idx),
                     max(e.reward for e in entries)))
    best.sort(key=lambda t: -t[1])
    print("top critical constraint points (slo_s, bw_mbps, delay_ms):")
    for values, reward in best[:5]:
        print(f"  {tuple(round(float(v), 3) for v in values)}  reward={reward:.3f}")


if __name__ == "__main__":
    main()
