"""Fig. 19 — Model switch time on the Raspberry Pi 4.

Paper shape: Murmuration's in-memory supernet reconfiguration completes
in milliseconds; switching between fixed models requires reloading
weights from storage and costs seconds — 2-3 orders of magnitude more.
"""

import pytest

from repro.devices import rpi4
from repro.eval import fig19_switch_time, format_switch_time
from repro.models import MODEL_ZOO, get_model
from repro.runtime import FixedModelStore


@pytest.mark.benchmark(group="fig19")
def test_fig19_switch_time(benchmark):
    data = benchmark.pedantic(fig19_switch_time, rounds=1, iterations=1)
    print("\n=== Fig 19: model switch time (Raspberry Pi 4) ===")
    print(format_switch_time(data))

    reconf = data["Murmuration (supernet reconfig)"]
    assert reconf < 0.05  # milliseconds
    for name, t in data.items():
        if name.startswith("reload"):
            assert t / reconf > 30


@pytest.mark.benchmark(group="fig19")
def test_fig19_switch_sequence_with_eviction(benchmark):
    """A switching *sequence* under a memory budget: alternating between
    two large models forces repeated reloads, while the supernet never
    pays again — the dynamic the paper's Fig. 19 bar chart summarizes."""

    def run():
        store = FixedModelStore(
            rpi4(),
            resident_budget=get_model("resnet50").total_weight_bytes + 1)
        total = 0.0
        for _ in range(3):
            total += store.switch(get_model("resnet50")).modeled_time_s
            total += store.switch(get_model("densenet161")).modeled_time_s
        return total

    total_reload = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n6 alternating fixed-model switches: {total_reload:.1f}s")
    assert total_reload > 5.0  # seconds of reloading
