"""Adaptive control: closed-loop serving vs a static configuration.

The adaptive scenario (``repro.eval.adaptive``) pushes one seeded
request stream — a sustainable baseline rate with a hard overload burst
in the middle, over a drifting mobility trace — through the batched
pipeline twice, identical in everything but the ``control=`` parameter:

* **static** — construction-time cache granularity and batch policy,
  every request admitted;
* **controlled** — the four-controller :class:`~repro.control.ControlLoop`:
  cache-granularity retuning, batch-policy adaptation, SLO-aware
  admission (shed/degrade), drift-directed precompute.

The headline claims this benchmark pins down:

1. the controlled run achieves strictly higher *end-to-end* SLO
   compliance than the static configuration under the burst (queueing
   counted, sheds counted against);
2. the win comes from doing triage, not from refusing work: the
   controlled run both sheds and degrades, and every submitted request
   is accounted for (shed + completed + failed == submitted);
3. decision cost is pinned (``decision_time_s``), so the whole
   comparison is a pure function of its seeds — same config, same
   numbers, bit for bit.

Also runnable as a script::

    PYTHONPATH=src python benchmarks/bench_adaptive_control.py [--smoke]
"""

import argparse
import sys

import pytest

from repro.eval import AdaptiveConfig, format_adaptive, run_adaptive

_CFG = AdaptiveConfig()
_SMOKE_CFG = AdaptiveConfig(num_requests=80, trace_steps=60,
                            burst_window=(2.0, 4.0))


@pytest.fixture(scope="module")
def reports():
    return run_adaptive(_CFG)


@pytest.mark.benchmark(group="control")
def test_controlled_beats_static_on_e2e_compliance(reports):
    """The acceptance headline: strictly higher compliance under burst."""
    assert (reports["controlled"].e2e_compliance
            > reports["static"].e2e_compliance)


@pytest.mark.benchmark(group="control")
def test_controlled_tail_latency_improves(reports):
    assert (reports["controlled"].stats.percentile_ms(95)
            < reports["static"].stats.percentile_ms(95))


@pytest.mark.benchmark(group="control")
def test_control_actually_acted(reports):
    """The win must come from the loop, not from luck: ticks fired,
    admission triaged, and the static run was untouched."""
    control = reports["controlled"].control
    assert control is not None and control.ticks > 0
    assert reports["controlled"].shed > 0
    assert reports["controlled"].degraded > 0
    assert reports["static"].control is None
    assert reports["static"].shed == 0
    assert reports["static"].degraded == 0


@pytest.mark.benchmark(group="control")
def test_shed_accounting_conserves_requests(reports):
    """shed + completed + failed == submitted, for both variants."""
    for rep in reports.values():
        counts = rep.stats.outcome_counts()
        completed = sum(v for k, v in counts.items()
                        if k not in ("failed", "shed"))
        total = completed + counts["failed"] + counts.get("shed", 0)
        assert total == len(rep.stats.records) == _CFG.num_requests


@pytest.mark.benchmark(group="control")
def test_adaptive_is_reproducible():
    """Same config, same records — bit for bit, controllers included.

    Decision cost is pinned and the control loop runs on the simulated
    clock, so even the controlled variant is a pure function of seeds.
    """
    a = run_adaptive(_SMOKE_CFG)
    b = run_adaptive(_SMOKE_CFG)
    for name in a:
        ra, rb = a[name].stats.records, b[name].stats.records
        assert len(ra) == len(rb)
        assert ra == rb
    ca, cb = a["controlled"].control, b["controlled"].control
    assert ca.ticks == cb.ticks
    assert [(x.t, x.controller, x.description) for x in ca.actions] \
        == [(x.t, x.controller, x.description) for x in cb.actions]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Adaptive-control benchmark: static vs controlled "
                    "serving under an overload burst.")
    parser.add_argument("--smoke", action="store_true",
                        help="small smoke configuration (CI)")
    parser.add_argument("--requests", type=int, default=None,
                        help="override request count")
    args = parser.parse_args(argv)
    cfg = _SMOKE_CFG if args.smoke else _CFG
    if args.requests is not None:
        from dataclasses import replace
        cfg = replace(cfg, num_requests=args.requests)
    reports = run_adaptive(cfg)
    print(format_adaptive(reports))
    static, controlled = reports["static"], reports["controlled"]
    ok = controlled.e2e_compliance > static.e2e_compliance
    print(f"\ne2e compliance: static {static.e2e_compliance:.0%} -> "
          f"controlled {controlled.e2e_compliance:.0%} "
          f"(shed {controlled.shed}, degraded {controlled.degraded}) "
          f"({'PASS' if ok else 'FAIL'})")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
