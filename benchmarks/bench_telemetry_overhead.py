"""Telemetry overhead on the serving loop must stay below 5 %.

The contract the `repro.telemetry` subsystem makes with the rest of the
stack: instrumentation is *optional*, and even fully enabled (registry +
tracer + per-request timelines) it may not tax the serving hot path by
more than 5 % wall-clock.  Disabled telemetry (``telemetry=None``) must
be indistinguishable from the pre-telemetry code.

Methodology notes:

* The scenario is the CLI's default serving run — Poisson arrivals over
  a random-walk network trace with monitor noise — so decisions, cache
  lookups and monitor probes all exercise their instrumented paths at
  realistic per-request cost.
* The clock is ``time.process_time`` (CPU seconds): instrumentation
  overhead is extra *work*, and wall-clock on a shared machine mostly
  measures the co-tenants.
* GC is disabled inside each timed window (with a ``gc.collect()``
  fence before it): the enabled runs retain thousands of spans and
  timelines, and collector cycles otherwise land on whichever run
  happens to trigger them.
* Off/on measurements are interleaved in pairs with alternating order,
  each aggregating several serving runs, and the verdict is the
  *median* of per-pair ratios: pairing cancels slow machine drift, the
  median discards transient spikes.
"""

import gc
import time

import pytest

from repro.core import SLO, Murmuration, SearchDecisionEngine
from repro.devices import desktop_gtx1080, rpi4
from repro.nas import MBV3_SPACE
from repro.netsim import NetworkCondition, TraceConfig, random_walk_trace
from repro.runtime import InferenceServer
from repro.telemetry import Telemetry

REQUESTS = 120
ROUNDS = 7
REPS_PER_MEASUREMENT = 3

_TRACE = random_walk_trace(TraceConfig(
    num_remote=1, bw_range=(25.0, 120.0), delay_range=(15.0, 70.0),
    steps=60, seed=1))


def _run_once(telemetry):
    devices = [rpi4(), desktop_gtx1080()]
    system = Murmuration(
        MBV3_SPACE, devices, NetworkCondition((80.0,), (30.0,)),
        SearchDecisionEngine(MBV3_SPACE, devices, n_random_archs=4),
        slo=SLO.latency_ms(200.0), use_predictor=False,
        monitor_noise=0.02, seed=0, telemetry=telemetry)
    server = InferenceServer(system, arrival_rate_hz=5.0, seed=1,
                             telemetry=telemetry)
    t0 = time.perf_counter()
    stats = server.run(num_requests=REQUESTS, condition_trace=_TRACE,
                       trace_period_s=0.5)
    elapsed = time.perf_counter() - t0
    return elapsed, stats


def _measure(telemetry_factory):
    """CPU seconds for one GC-fenced batch of serving runs."""
    gc.collect()
    gc.disable()
    try:
        t0 = time.process_time()
        for _ in range(REPS_PER_MEASUREMENT):
            _run_once(telemetry_factory())
        return time.process_time() - t0
    finally:
        gc.enable()


def _paired_overhead():
    """Median per-pair (on/off - 1) over order-alternating rounds."""
    ratios = []
    for r in range(ROUNDS):
        if r % 2 == 0:
            t_off = _measure(lambda: None)
            t_on = _measure(Telemetry)
        else:
            t_on = _measure(Telemetry)
            t_off = _measure(lambda: None)
        ratios.append(t_on / t_off - 1.0)
    ratios.sort()
    return ratios[len(ratios) // 2], ratios


@pytest.mark.benchmark(group="telemetry")
def test_telemetry_overhead_under_5_percent():
    _run_once(None)       # warm-up: imports, allocator, caches
    _run_once(Telemetry())
    overhead, ratios = _paired_overhead()
    print("\n=== telemetry overhead on the serving loop ===")
    print(f"per-pair ratios: {['%+.1f%%' % (r * 100) for r in ratios]}")
    print(f"median overhead: {overhead:+.2%} (budget +5.00%)")
    assert overhead < 0.05


@pytest.mark.benchmark(group="telemetry")
def test_telemetry_records_everything_it_charges_for():
    """The enabled run must actually produce the full artifact set —
    otherwise the overhead comparison above is measuring nothing."""
    tel = Telemetry()
    _, stats = _run_once(tel)
    assert len(tel.timelines) == REQUESTS
    assert tel.registry.get("server_requests_total").value == REQUESTS
    e2e = tel.registry.get("server_e2e_s")
    assert e2e.count == REQUESTS
    # streaming quantiles agree with the exact records within bucket width
    exact_p50 = stats.percentile_ms(50) / 1e3
    assert e2e.quantile(0.5) == pytest.approx(exact_p50, rel=0.25)
    # every timeline tells the queue -> decision -> execute story
    phases = set(tel.timelines[0].phases())
    assert {"request", "queue", "decision", "execute"} <= phases
