"""Fig. 18 — Strategy decision time: evolutionary search vs the RL
policy, projected onto the GPU desktop and the Raspberry Pi.

Paper numbers: evolutionary 50.7 s (desktop) / 778 s (Pi); RL 0.03 s /
1.05 s — a ~1700x / ~740x gap.  We measure both implementations' host
wall-time and project through each device's control-plane speed factor;
the shape to reproduce is the orders-of-magnitude gap.
"""

import pytest

from benchmarks.conftest import full_scale
from repro.eval import fig18_search_time, format_search_time
from repro.nas.evolution import EvolutionConfig

CFG = (EvolutionConfig(population=100, generations=20) if full_scale()
       else EvolutionConfig(population=40, generations=10))


@pytest.mark.benchmark(group="fig18")
def test_fig18_search_time(benchmark):
    data = benchmark.pedantic(
        lambda: fig18_search_time(evolution_config=CFG, repeats=5),
        rounds=1, iterations=1)
    print("\n=== Fig 18: decision time ===")
    print(format_search_time(data))

    for dev in ("desktop_gtx1080", "rpi4"):
        ratio = data["evolutionary"][dev] / data["rl"][dev]
        print(f"{dev}: evolutionary/RL ratio = {ratio:.0f}x")
        assert ratio > 50
    # RL decisions are sub-second even on the Pi-class device at the
    # reduced budget, and ~tens of ms on the desktop.
    assert data["rl"]["desktop_gtx1080"] < 0.2
