"""Fig. 16 — SLO compliance-rate bars.

(a) Augmented computing, joint SLO (latency in {100,120,140} ms AND
accuracy >= 75 %), over the 40 (bw, delay) settings.
(b) Device swarm, accuracy >= 74 %, latency in {600, 1000} ms, over the
9 bandwidth settings at 20 ms delay.

Paper shape: Murmuration's bars dominate, improving compliance by up to
~52 points over the best fixed-model baseline.
"""

import pytest

from repro.eval import (fig16a_compliance_augmented, fig16b_compliance_swarm,
                        format_compliance)


@pytest.mark.benchmark(group="fig16")
def test_fig16a_augmented_compliance(benchmark):
    data = benchmark.pedantic(fig16a_compliance_augmented, rounds=1,
                              iterations=1)
    print("\n=== Fig 16a: compliance, augmented, 75% accuracy floor ===")
    print(format_compliance(data))
    ours = data["Murmuration (Ours)"]
    for slo_ms, rate in ours.items():
        for m, pts in data.items():
            assert rate >= pts[slo_ms] - 1e-9
    # compliance grows with a looser latency SLO
    assert ours[140.0] >= ours[100.0]


@pytest.mark.benchmark(group="fig16")
def test_fig16b_swarm_compliance(benchmark):
    data = benchmark.pedantic(fig16b_compliance_swarm, rounds=1, iterations=1)
    print("\n=== Fig 16b: compliance, swarm, 74% accuracy floor ===")
    print(format_compliance(data))
    ours = data["Murmuration (Ours)"]
    gains = []
    for slo_ms in ours:
        rivals = [pts[slo_ms] for m, pts in data.items()
                  if m != "Murmuration (Ours)"]
        assert ours[slo_ms] >= max(rivals) - 1e-9
        gains.append(ours[slo_ms] - min(rivals))
    print(f"max compliance improvement over weakest baseline: "
          f"{max(gains):.0f} pts")
    # The paper reports up to +52 points; the weak fixed-model baseline
    # (ADCNN + ResNet50) should trail Murmuration by a wide margin.
    assert max(gains) >= 40.0
