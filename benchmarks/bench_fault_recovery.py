"""Fault recovery: SLO compliance and recovery time under crash-and-recover.

The chaos scenario (``repro.eval.chaos``) serves one seeded Poisson
request stream through three runtimes while two remote devices crash and
recover (with an overlapping outage where only the gateway survives) and
a link collapses after recovery:

* **murmuration** — adaptive decisions + retry/failover + circuit
  breaker + graceful degradation;
* **static** — one fixed strategy with the same data-plane resilience;
* **no-failover** — the ablation: adaptive, but requests touching a
  dead device fail.

The headline claims this benchmark pins down:

1. the resilient runtime completes **every** request — some degraded to
   the smallest gateway submodel, none failed;
2. the no-failover ablation *fails* requests outright;
3. adaptation beats the static strategy on SLO compliance once the
   post-recovery link degradation bites;
4. the whole trace is reproducible from its seeds — same config, same
   numbers, bit for bit.

Also runnable as a script::

    PYTHONPATH=src python benchmarks/bench_fault_recovery.py [--quick]
"""

import argparse
import sys

import pytest

from repro.eval import ChaosConfig, format_chaos, run_chaos

_CFG = ChaosConfig()
_QUICK_CFG = ChaosConfig(num_requests=24, gpu_crash=(1.0, 3.0),
                         jetson_crash=(1.5, 3.0),
                         degrade_window=(3.5, 5.0))


@pytest.fixture(scope="module")
def reports():
    return run_chaos(_CFG)


@pytest.mark.benchmark(group="faults")
def test_resilient_runtime_completes_every_request(reports):
    rep = reports["murmuration"]
    assert rep.completion == 1.0
    assert rep.outcomes["failed"] == 0
    # the double-outage window forces gateway degradation at least once
    assert rep.outcomes["degraded"] > 0
    # failures were discovered the honest way: paid retries + failovers
    assert rep.retries > 0 and rep.failovers > 0


@pytest.mark.benchmark(group="faults")
def test_no_failover_ablation_fails_requests(reports):
    rep = reports["no-failover"]
    assert rep.outcomes["failed"] > 0
    assert rep.completion < 1.0
    assert rep.compliance < reports["murmuration"].compliance


@pytest.mark.benchmark(group="faults")
def test_adaptation_beats_static_strategy(reports):
    assert (reports["murmuration"].compliance
            > reports["static"].compliance)


@pytest.mark.benchmark(group="faults")
def test_runtime_recovers_after_faults_clear(reports):
    rep = reports["murmuration"]
    assert rep.recovery_s is not None
    # a clean, SLO-satisfied request lands within a second of recovery
    assert rep.recovery_s < 1.0


@pytest.mark.benchmark(group="faults")
def test_chaos_trace_is_reproducible():
    """Same config, same records — bit for bit.

    Decision cost is pinned by default (``ChaosConfig.decision_time_s``),
    so like the serving-load benchmark the comparison is exact down to
    absolute timestamps, not just the simulated fields.
    """
    a = run_chaos(_QUICK_CFG)["murmuration"]
    b = run_chaos(_QUICK_CFG)["murmuration"]
    assert len(a.stats.records) == len(b.stats.records)
    assert a.stats.records == b.stats.records


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Chaos benchmark: crash-and-recover serving.")
    parser.add_argument("--quick", action="store_true",
                        help="small smoke configuration (CI)")
    parser.add_argument("--requests", type=int, default=None,
                        help="override request count")
    args = parser.parse_args(argv)
    cfg = _QUICK_CFG if args.quick else _CFG
    if args.requests is not None:
        from dataclasses import replace
        cfg = replace(cfg, num_requests=args.requests)
    reports = run_chaos(cfg)
    print(format_chaos(reports))
    rep = reports["murmuration"]
    ok = rep.completion == 1.0
    print(f"\nresilient completion: {rep.completion:.0%} "
          f"({'PASS' if ok else 'FAIL'})")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
