"""Event core: boundary-only vs event-driven world application.

The event-core scenario (``repro.eval.event_core``) serves one seeded
Poisson stream whose payloads upload over a shared fluid-priced uplink
following a capacity step trace (40 Mbps with 5 Mbps dips), twice:

* **boundary** — the historical model: a capacity step is observed only
  when the *next* request touches the ingress, so in-flight uploads
  keep stale rates across the step;
* **event** — the step is a scheduled event on an
  :class:`~repro.sim.EventLoop` sharing the system clock: it fires at
  its true instant and every in-flight upload re-converges right there
  (:meth:`~repro.netsim.fluid.FluidTracker.update_caps`).

The headline claims this benchmark pins down:

1. the semantics gap is *large and real*: around a recovery edge that
   lands inside an arrival gap, the boundary model keeps draining the
   backlog at the stale low rate while the event model re-converges at
   the edge — a double-digit compliance gap and a multi-second p95 gap
   on the default seed;
2. re-convergence happens *at the step instant*, byte-auditable: a
   fluid flow's rate segments change exactly at the scheduled step
   time, and its ledger finish time matches the closed-form two-rate
   integral;
3. the whole comparison is a pure function of the config: same seed,
   same records, and a captured recording re-records byte-for-byte.

Also runnable as a script::

    PYTHONPATH=src python benchmarks/bench_event_core.py [--smoke]
"""

import argparse
import io
import sys

import pytest

from repro.eval.event_core import (EventCoreConfig, format_event_core,
                                   run_event_core)
from repro.eval.replay import rerecord
from repro.netsim.fluid import FluidTracker
from repro.telemetry.recorder import read_recordings, write_recordings

#: acceptance floors on the default seed: the event-driven variant must
#: beat boundary-only by this much (the gap IS the measured effect)
_COMPLIANCE_MARGIN = 0.25
_P95_MARGIN_MS = 1000.0

_CFG = EventCoreConfig()
_SMOKE_CFG = EventCoreConfig(num_requests=60)

_EDGE = (-1, 0)


@pytest.fixture(scope="module")
def reports():
    return run_event_core(_CFG)


@pytest.mark.benchmark(group="event_core")
def test_event_core_compliance_gap(reports):
    """Boundary-only application visibly under-serves the step trace."""
    boundary = reports["boundary"].e2e_compliance
    event = reports["event"].e2e_compliance
    assert event >= boundary + _COMPLIANCE_MARGIN, (
        f"event {event:.0%} vs boundary {boundary:.0%}: "
        f"margin < {_COMPLIANCE_MARGIN:.0%}")


@pytest.mark.benchmark(group="event_core")
def test_event_core_latency_gap(reports):
    """The p95 gap: stale-rate backlog drain vs instant re-convergence."""
    boundary = reports["boundary"].p95_ms
    event = reports["event"].p95_ms
    assert event <= boundary - _P95_MARGIN_MS, (
        f"event p95 {event:.0f}ms vs boundary {boundary:.0f}ms: "
        f"gap < {_P95_MARGIN_MS:.0f}ms")


@pytest.mark.benchmark(group="event_core")
def test_reconvergence_happened_mid_flight(reports):
    """Only the event variant applies capacities mid-flight, once per
    trace-cell change (5 changes in the default trace)."""
    assert reports["boundary"].caps_updates == 0
    assert reports["event"].caps_updates == 5
    assert reports["event"].events.fired_total == 5
    assert reports["event"].events.pending == 0


@pytest.mark.benchmark(group="event_core")
def test_flow_reconverges_at_the_step_instant():
    """A cap step lands *exactly* at its scheduled time in the ledger:
    the flow's rate segments flip at t_step and the finish time equals
    the closed-form two-rate integral."""
    tracker = FluidTracker(record_segments=True)
    nbytes = 5e6 / 8.0  # 5 Mbit
    tracker.admit((_EDGE,), {_EDGE: 10e6}, 0.0, nbytes)
    # halfway through (2.5 Mbit sent at t=0.25), capacity halves
    tracker.update_caps(0.25, {_EDGE: 5e6})
    tracker.drain()
    finish = tracker.finish_times()[0]
    assert finish == pytest.approx(0.25 + 2.5e6 / 5e6)  # = 0.75
    # the audit trail: one segment ends exactly at the step instant,
    # rates flip from 10 Mbps to 5 Mbps there
    cut = [s for s in tracker.segments if s.t1 == 0.25]
    assert cut and cut[0].rates[0] == pytest.approx(10e6)
    after = [s for s in tracker.segments if s.t0 == 0.25]
    assert after and after[0].rates[0] == pytest.approx(5e6)


@pytest.mark.benchmark(group="event_core")
def test_event_core_is_reproducible():
    """Same config, same records — bit for bit, both variants."""
    a = run_event_core(_SMOKE_CFG)
    b = run_event_core(_SMOKE_CFG)
    for name in a:
        assert a[name].stats.records == b[name].stats.records


@pytest.mark.benchmark(group="event_core")
def test_recording_rerecords_byte_identically():
    """record -> rerecord round trip is byte-stable per variant."""
    recorded = run_event_core(_SMOKE_CFG, record=True)
    first = io.StringIO()
    write_recordings(first, [rep.recorder for rep in recorded.values()])
    second = io.StringIO()
    write_recordings(second,
                     [rerecord(rec)
                      for rec in read_recordings(
                          io.StringIO(first.getvalue()))])
    assert first.getvalue() == second.getvalue()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Event-core benchmark: boundary-only vs event-driven "
                    "capacity application on a fluid-priced uplink.")
    parser.add_argument("--smoke", action="store_true",
                        help="small smoke configuration (CI)")
    parser.add_argument("--requests", type=int, default=None,
                        help="override request count")
    args = parser.parse_args(argv)
    cfg = _SMOKE_CFG if args.smoke else _CFG
    if args.requests is not None:
        from dataclasses import replace
        cfg = replace(cfg, num_requests=args.requests)
    reports = run_event_core(cfg)
    print(format_event_core(reports))
    boundary = reports["boundary"].e2e_compliance
    event = reports["event"].e2e_compliance
    ok = event >= boundary + _COMPLIANCE_MARGIN
    print(f"\ne2e compliance: boundary {boundary:.0%} -> event "
          f"{event:.0%} (margin {event - boundary:+.0%}, "
          f"{'PASS' if ok else 'FAIL'}); "
          f"{reports['event'].caps_updates} mid-flight re-convergences")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
