"""Fig. 13 — Augmented computing: accuracy vs (bandwidth, delay) at a
140 ms latency SLO.

Paper shape: Murmuration covers every network condition (falling back
to small local submodels at low bw / high delay) with the highest
accuracy everywhere; Neurosurgeon+DenseNet161/ResNeXt101 never qualify;
Neurosurgeon+MobileNetV3 qualifies widely but is capped at 75.2 %.
"""

import pytest

from benchmarks.conftest import full_scale
from repro.eval import fig13_augmented_accuracy, format_accuracy_grid
from repro.netsim import AUGMENTED_BANDWIDTHS, AUGMENTED_DELAYS

if full_scale():
    BANDWIDTHS, DELAYS = AUGMENTED_BANDWIDTHS, AUGMENTED_DELAYS
else:
    BANDWIDTHS, DELAYS = (50.0, 150.0, 250.0, 400.0), (5.0, 50.0, 100.0)


@pytest.mark.benchmark(group="fig13")
def test_fig13_accuracy_grid(benchmark):
    data = benchmark.pedantic(
        lambda: fig13_augmented_accuracy(latency_slo_ms=140.0,
                                         bandwidths=BANDWIDTHS,
                                         delays=DELAYS),
        rounds=1, iterations=1)
    print("\n=== Fig 13: accuracy @ latency SLO 140 ms ===")
    print(format_accuracy_grid(data))

    ours = data["Murmuration (Ours)"]
    assert all(p.satisfied for p in ours.values()), \
        "Murmuration must cover every condition"
    assert not any(p.satisfied
                   for p in data["Neurosurgeon + DenseNet161"].values())
    assert not any(p.satisfied
                   for p in data["Neurosurgeon + ResNext101".replace(
                       "Next", "NeXt")].values())

    # Headline: up to ~5% higher accuracy than qualifying baselines.
    best_gain = 0.0
    for cond, p in ours.items():
        rivals = [data[m][cond].accuracy for m in data
                  if m != "Murmuration (Ours)" and data[m][cond].satisfied]
        if rivals:
            best_gain = max(best_gain, p.accuracy - max(rivals))
    print(f"max accuracy gain over qualifying baselines: {best_gain:.2f} pts")
    assert best_gain >= 2.5
