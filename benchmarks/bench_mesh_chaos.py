"""Mesh chaos: resilient completion under link-level faults.

The mesh chaos scenario (``repro.eval.mesh_chaos``) serves one seeded
Poisson request stream over a multi-hop topology while the world loses
*paths*: a hard link failure on the gateway's primary edge, a
Gilbert–Elliott flap burst on the same edge, and a correlated relay
blast radius (a device plus its incident links, atomically).

The headline claims this benchmark pins down:

1. with fault-aware routing + the failover ladder, the runtime completes
   **at least 95%** of requests (in practice all of them) — transfers
   transparently fail over to surviving paths, paying honest latency;
2. the no-reroute ablation (static routing tables, no failover)
   completes **under 70%** on the identical world;
3. on the line topology — where no alternative path exists — resilience
   comes from graceful degradation instead of rerouting;
4. the whole trace is seed-reproducible and records byte-stably through
   the recorder (``record`` -> ``rerecord`` is an exact byte match).

Also runnable as a script::

    PYTHONPATH=src python benchmarks/bench_mesh_chaos.py [--quick]
"""

import argparse
import io
import sys

import pytest

from repro.eval import MeshChaosConfig, format_mesh_chaos, run_mesh_chaos
from repro.eval.replay import rerecord
from repro.telemetry.recorder import read_recordings, write_recordings

_CFG = MeshChaosConfig()
_QUICK_CFG = MeshChaosConfig(num_requests=24, link_fail_window=(1.0, 4.0),
                             flap_window=(4.5, 6.0), blast_window=(6.5, 8.0))
_LINE_CFG = MeshChaosConfig(topology="line")


@pytest.fixture(scope="module")
def reports():
    return run_mesh_chaos(_CFG)


@pytest.mark.benchmark(group="faults")
def test_rerouting_completes_95_percent(reports):
    rep = reports["murmuration"]
    assert rep.completion >= 0.95
    # the primary-edge outages forced traffic onto backup paths
    assert rep.reroutes > 0


@pytest.mark.benchmark(group="faults")
def test_no_reroute_ablation_under_70_percent(reports):
    rep = reports["no-reroute"]
    assert rep.completion < 0.70
    assert rep.outcomes["failed"] > 0
    assert rep.reroutes == 0


@pytest.mark.benchmark(group="faults")
def test_pure_routing_carries_the_ring(reports):
    """On the ring, rerouting alone (failover disabled) already completes
    everything the full ladder does — the placement never has to move."""
    assert (reports["no-failover"].completion
            == reports["murmuration"].completion)


@pytest.mark.benchmark(group="faults")
def test_line_topology_survives_via_degradation():
    """No alternative path on a line: the same outage must be absorbed
    by the failover/degradation ladder instead of the routing layer."""
    reports = run_mesh_chaos(_LINE_CFG)
    rep = reports["murmuration"]
    assert rep.completion >= 0.95
    assert rep.outcomes["degraded"] > 0
    assert reports["no-reroute"].completion < 0.70


@pytest.mark.benchmark(group="faults")
def test_mesh_chaos_trace_is_reproducible():
    """Same config, same records — bit for bit (pinned decision cost)."""
    a = run_mesh_chaos(_QUICK_CFG)["murmuration"]
    b = run_mesh_chaos(_QUICK_CFG)["murmuration"]
    assert len(a.stats.records) == len(b.stats.records)
    assert a.stats.records == b.stats.records


@pytest.mark.benchmark(group="faults")
def test_mesh_chaos_records_byte_stably():
    """record -> rerecord round-trips to the identical byte stream."""
    rep = run_mesh_chaos(_QUICK_CFG, record=True)["murmuration"]
    buf1 = io.StringIO()
    write_recordings(buf1, [rep.recorder.recording()])
    rec = read_recordings(io.StringIO(buf1.getvalue()))[0]
    fresh = rerecord(rec)
    buf2 = io.StringIO()
    write_recordings(buf2, [fresh.recording()])
    assert buf1.getvalue() == buf2.getvalue()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Mesh chaos benchmark: link-level fault serving.")
    parser.add_argument("--quick", action="store_true",
                        help="small smoke configuration (CI)")
    parser.add_argument("--topology", choices=("ring", "line", "mesh"),
                        default=None, help="override topology")
    parser.add_argument("--requests", type=int, default=None,
                        help="override request count")
    args = parser.parse_args(argv)
    cfg = _QUICK_CFG if args.quick else _CFG
    if args.topology is not None or args.requests is not None:
        from dataclasses import replace
        if args.topology is not None:
            cfg = replace(cfg, topology=args.topology)
        if args.requests is not None:
            cfg = replace(cfg, num_requests=args.requests)
    reports = run_mesh_chaos(cfg)
    print(format_mesh_chaos(reports))
    rep = reports["murmuration"]
    abl = reports["no-reroute"]
    ok = rep.completion >= 0.95 and abl.completion < 0.70
    print(f"\nresilient completion: {rep.completion:.0%} vs "
          f"no-reroute {abl.completion:.0%} ({'PASS' if ok else 'FAIL'})")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
