"""Snapshot vs fluid bandwidth sharing: what admission-time bias costs.

The snapshot tracker (``ContentionTracker``) freezes every upload's
fair share at admission: a flow admitted during the burst pays the
burst-width share for its *entire* lifetime, even after the burst
drains.  Those pessimistic upload predictions feed the admission
controller's queue-wait triage, which then sheds requests that would
actually have made their deadlines.  The fluid solver
(``FluidTracker``) re-converges rates at every flow arrival and
completion, so its predictions track what max-min sharing actually
delivers.

This benchmark pins the resulting gap on the multi-tenant scenario —
identical merged request stream, identical control plane, only the
ingress pricing model differs:

1. **worst-tenant e2e compliance differs measurably** at the pinned
   config, in the fluid solver's favor: honest (less pessimistic)
   upload predictions save requests the snapshot model sheds;
2. **the fluid run sheds fewer requests** — the snapshot model's
   over-charging of late-admitted flows shows up directly as spurious
   sheds;
3. **the microscopic contract behind the gap**: two overlapping
   equal-size flows finish asymmetrically under the snapshot model and
   simultaneously under max-min;
4. **everything is seed-reproducible** — both pricing models are pure
   functions of the config, records identical bit for bit.

Also runnable as a script::

    PYTHONPATH=src python benchmarks/bench_fluid_contention.py [--smoke]
"""

import argparse
import sys
from dataclasses import replace

import pytest

from repro.eval import MultiTenantConfig, run_multi_tenant
from repro.netsim import FluidTracker, Link, SharedIngress, solve_fluid
from repro.netsim.contention import ContentionTracker
from repro.netsim.fluid import FlowSpec

#: compliance gap the pinned config must show (points)
_MARGIN = 0.02

#: the shared uplink is sized so burst-time sharing is wide enough for
#: the two pricing models to disagree about who makes their deadline
_CFG = MultiTenantConfig(num_requests=120, ingress_bw_mbps=25.0)
_SMOKE_CFG = replace(_CFG, num_requests=80, trace_steps=60)

_VARIANT = "fair"


def _run_pair(cfg):
    snap = run_multi_tenant(replace(cfg, fluid=False),
                            variants=(_VARIANT,))[_VARIANT]
    fluid = run_multi_tenant(replace(cfg, fluid=True),
                             variants=(_VARIANT,))[_VARIANT]
    return snap, fluid


@pytest.fixture(scope="module")
def pair():
    return _run_pair(_CFG)


@pytest.mark.benchmark(group="fluid_contention")
def test_fluid_pricing_moves_worst_tenant_compliance(pair):
    """The acceptance headline: a measurable snapshot-vs-fluid gap."""
    snap, fluid = pair
    gap = fluid.worst_tenant_compliance - snap.worst_tenant_compliance
    assert gap >= _MARGIN, (
        f"fluid worst-tenant {fluid.worst_tenant_compliance:.1%} vs "
        f"snapshot {snap.worst_tenant_compliance:.1%}: gap {gap:+.1%} "
        f"below the {_MARGIN:.0%} floor")


@pytest.mark.benchmark(group="fluid_contention")
def test_snapshot_pessimism_sheds_more(pair):
    """Frozen-share predictions over-estimate queue waits -> spurious
    sheds the fluid solver does not take."""
    snap, fluid = pair
    assert fluid.shed < snap.shed, (
        f"fluid shed {fluid.shed} not below snapshot shed {snap.shed}")


@pytest.mark.benchmark(group="fluid_contention")
def test_both_models_price_real_contention(pair):
    for rep in pair:
        assert rep.tracker.flows_total > 0
        assert rep.tracker.contended_total > 0


@pytest.mark.benchmark(group="fluid_contention")
def test_overlap_contract_snapshot_asymmetric_fluid_simultaneous():
    """The microscopic bias the macro gap comes from."""
    link = Link(bandwidth_mbps=8.0 / 1e6, delay_ms=0.0,
                rpc_overhead_ms=0.0)  # 1 byte/s wire, no latency
    ingress = SharedIngress(link, ContentionTracker(), payload_bytes=8.0)
    first = ingress.admit(0.0)
    second = ingress.admit(0.0)
    assert second == 2.0 * first  # snapshot: second pays double forever
    finishes, _ = solve_fluid(
        [FlowSpec(((-1, 0),), 0.0, 8.0), FlowSpec(((-1, 0),), 0.0, 8.0)],
        {(-1, 0): link.bandwidth_bps})
    assert finishes[0] == finishes[1]  # fluid: simultaneous


@pytest.mark.benchmark(group="fluid_contention")
def test_fluid_run_is_reproducible():
    """Same config, same records — bit for bit, either pricing model."""
    cfg = replace(_SMOKE_CFG, fluid=True)
    a = run_multi_tenant(cfg, variants=(_VARIANT,))[_VARIANT]
    b = run_multi_tenant(cfg, variants=(_VARIANT,))[_VARIANT]
    assert a.stats.records == b.stats.records


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Snapshot vs fluid bandwidth sharing on the "
                    "multi-tenant scenario.")
    parser.add_argument("--smoke", action="store_true",
                        help="small smoke configuration (CI)")
    args = parser.parse_args(argv)
    cfg = _SMOKE_CFG if args.smoke else _CFG
    snap, fluid = _run_pair(cfg)
    print(f"{'model':>10s}{'worst-tenant':>14s}{'e2e':>7s}{'shed':>6s}"
          f"{'contended':>11s}")
    for label, rep in (("snapshot", snap), ("fluid", fluid)):
        print(f"{label:>10s}{rep.worst_tenant_compliance:>14.1%}"
              f"{rep.e2e_compliance:>7.0%}{rep.shed:>6d}"
              f"{rep.tracker.contended_total:>11d}")
    gap = fluid.worst_tenant_compliance - snap.worst_tenant_compliance
    # smoke runs a shorter stream where the gap's sign can flip; the
    # smoke claim is "measurably different + fewer sheds", the full
    # config claims the direction too
    ok = (abs(gap) >= _MARGIN if args.smoke else gap >= _MARGIN)
    ok = ok and fluid.shed < snap.shed
    print(f"\nworst-tenant gap {gap:+.1%}, sheds {snap.shed} -> "
          f"{fluid.shed} ({'PASS' if ok else 'FAIL'})")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
