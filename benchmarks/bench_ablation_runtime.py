"""Ablation — runtime fast-adaptation machinery (Sec. 5.1).

Measures the decision path with and without the strategy cache and the
monitoring predictor while replaying a dynamic network trace: the cache
collapses repeated decisions to microseconds, and precomputation against
predicted conditions hides the decision latency entirely.
"""

import numpy as np
import pytest

from repro.core import SLO, Murmuration, SearchDecisionEngine, StrategyCache
from repro.devices import desktop_gtx1080, rpi4
from repro.nas import MBV3_SPACE
from repro.netsim import NetworkCondition, TraceConfig, random_walk_trace


def _system(use_cache: bool, use_predictor: bool, seed: int = 0):
    devices = [rpi4(), desktop_gtx1080()]
    cache = StrategyCache(capacity=256) if use_cache else StrategyCache(
        capacity=1, bw_step=1e-6, delay_step=1e-6)  # effectively disabled
    return Murmuration(
        MBV3_SPACE, devices, NetworkCondition((200.0,), (20.0,)),
        SearchDecisionEngine(MBV3_SPACE, devices, n_random_archs=8),
        slo=SLO.latency(0.3), cache=cache, use_predictor=use_predictor,
        monitor_noise=0.02, seed=seed)


TRACE = random_walk_trace(TraceConfig(num_remote=1, bw_range=(80.0, 400.0),
                                      delay_range=(5.0, 60.0), steps=40,
                                      seed=3))


def _replay(system):
    times = []
    for cond in TRACE:
        system.update_condition(cond)
        rec = system.infer()
        times.append(rec.decision_time_s)
    return times


@pytest.mark.benchmark(group="ablation")
def test_strategy_cache_cuts_decision_time(benchmark):
    def run():
        with_cache = _replay(_system(use_cache=True, use_predictor=False))
        without = _replay(_system(use_cache=False, use_predictor=False))
        return with_cache, without

    with_cache, without = benchmark.pedantic(run, rounds=1, iterations=1)
    mean_with = float(np.mean(with_cache))
    mean_without = float(np.mean(without))
    hits = sum(1 for t in with_cache if t == 0.0)
    print(f"\nmean decision time with cache: {mean_with * 1e3:.2f} ms "
          f"({hits}/{len(with_cache)} hits); without: "
          f"{mean_without * 1e3:.2f} ms")
    assert hits > 5
    assert mean_with < mean_without


@pytest.mark.benchmark(group="ablation")
def test_precompute_hides_decision_latency(benchmark):
    def run():
        system = _system(use_cache=True, use_predictor=True, seed=1)
        # Warm the cache against the *forecast* conditions, then serve.
        system.precompute([system.observed_condition()
                           for _ in range(5)])
        return _replay(system)

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nfirst-request decision time after precompute: "
          f"{times[0] * 1e3:.3f} ms")
    assert times[0] < 0.5
