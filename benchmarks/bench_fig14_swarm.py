"""Fig. 14 — Device swarm: accuracy vs bandwidth per latency SLO
(delay fixed at 20 ms, one of four remote Pis' bandwidth swept).

Paper shape: at loose SLOs (2000 ms) Murmuration runs its largest
submodels (~78+ %); as the SLO tightens the achievable accuracy drops
but coverage persists; ADCNN+heavy models qualify only at high
bandwidth and loose SLOs.
"""

import pytest

from benchmarks.conftest import full_scale
from repro.eval import fig14_swarm_accuracy, format_accuracy_grid
from repro.netsim import SWARM_BANDWIDTHS

if full_scale():
    SLOS = (2000.0, 1000.0, 600.0, 500.0, 400.0)
    BWS = SWARM_BANDWIDTHS
else:
    SLOS = (2000.0, 600.0, 400.0)
    BWS = (5.0, 50.0, 200.0, 500.0)


@pytest.mark.benchmark(group="fig14")
def test_fig14_swarm_accuracy(benchmark):
    data = benchmark.pedantic(
        lambda: fig14_swarm_accuracy(latency_slos_ms=SLOS, bandwidths=BWS),
        rounds=1, iterations=1)
    print("\n=== Fig 14: swarm accuracy by (latency SLO, bandwidth) ===")
    print(format_accuracy_grid(data, row_label="slo_ms", col_label="bw"))

    ours = data["Murmuration (Ours)"]
    # Coverage: Murmuration qualifies everywhere at the loosest SLO.
    assert all(p.satisfied for (slo, bw), p in ours.items()
               if slo == max(SLOS))
    # Monotone: tighter SLO never yields higher accuracy at same bw.
    for bw in BWS:
        accs = [ours[(slo, bw)].accuracy for slo in sorted(SLOS)
                if ours[(slo, bw)].satisfied]
        assert accs == sorted(accs)
    # At the loose SLO Murmuration reaches its big submodels.
    assert max(p.accuracy for (slo, bw), p in ours.items()
               if slo == max(SLOS)) > 77.5
    # Murmuration beats every qualifying baseline at every point.
    for cond, p in ours.items():
        for m, pts in data.items():
            if m != "Murmuration (Ours)" and pts[cond].satisfied:
                assert p.satisfied and p.accuracy >= pts[cond].accuracy - 1e-9
