"""Extension — energy accounting (CoEdge's lens on the same system).

Quantifies the latency<->energy trade-off the paper leaves implicit:
spatial partitioning buys latency with redundant FDSP compute and radio
energy, while layer-wise GPU offload is fast *and* cheap for the Pi but
expensive at the wall socket.
"""

import pytest

from repro.devices import desktop_gtx1080, energy_of_report, rpi4
from repro.models import get_model
from repro.netsim import Cluster, NetworkCondition
from repro.partition import (Grid, layerwise_split_plan, simulate_latency,
                             single_device_plan, spatial_plan)


@pytest.mark.benchmark(group="extension")
def test_energy_latency_tradeoff(benchmark):
    g = get_model("resnet50")
    swarm = Cluster([rpi4() for _ in range(5)],
                    NetworkCondition((500.0,) * 4, (5.0,) * 4))
    augmented = Cluster([rpi4(), desktop_gtx1080()],
                        NetworkCondition((400.0,), (5.0,)))

    def run():
        rows = {}
        plans = {
            "1 Pi (local)": (swarm, single_device_plan(g)),
            "4 Pis (2x2 FDSP)": (swarm, spatial_plan(g, Grid(2, 2),
                                                     [0, 1, 2, 3])),
            "Pi -> GPU offload": (augmented, layerwise_split_plan(g, 0)),
        }
        for name, (cluster, plan) in plans.items():
            rep = simulate_latency(g, plan, cluster)
            er = energy_of_report(rep, cluster.devices)
            rows[name] = (rep.total_s, er.total_j, er.network_j)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Extension: energy vs latency (ResNet50) ===")
    print(f"{'deployment':<20s}{'latency':>10s}{'energy':>10s}{'radio':>10s}")
    for name, (lat, e, net) in rows.items():
        print(f"{name:<20s}{lat * 1e3:8.0f}ms{e:9.1f}J{net:9.3f}J")

    lat1, e1, _ = rows["1 Pi (local)"]
    lat4, e4, _ = rows["4 Pis (2x2 FDSP)"]
    latg, eg, _ = rows["Pi -> GPU offload"]
    assert lat4 < lat1 and latg < lat1          # both offloads are faster
    assert e4 > e1 * 0.8                        # swarm pays redundant work
    assert eg > e1                              # the 220 W GPU costs watts
