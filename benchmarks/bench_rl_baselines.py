"""Appendix — traditional RL baselines head-to-head, including DQN.

Sec. 4.3 argues that "traditional RL algorithms such as PPO or DQN give
suboptimal performance" because the goal-conditioned reward is zero
until exploration finds an SLO-satisfying strategy.  This bench measures
all five methods at a common budget and prints final reward/compliance.
"""

import pytest

from benchmarks.conftest import full_scale
from repro.devices import desktop_gtx1080, rpi4
from repro.eval import run_training_curves

STEPS = 6_000 if full_scale() else 480


@pytest.mark.benchmark(group="rl-baselines")
def test_all_rl_baselines(benchmark):
    histories = benchmark.pedantic(
        lambda: run_training_curves([rpi4(), desktop_gtx1080()],
                                    total_steps=STEPS, eval_every=STEPS,
                                    seed=3, include_dqn=True),
        rounds=1, iterations=1)
    print("\n=== RL baselines at a common budget ===")
    print(f"{'method':<18s}{'reward':>8s}{'compliance':>12s}")
    for name, h in histories.items():
        print(f"{name:<18s}{h.avg_reward[-1]:8.3f}{h.compliance[-1]:12.3f}")
    # the value/policy-gradient baselines trail the relabeling methods
    vb = max(histories["PPO"].avg_reward[-1],
             histories["DQN"].avg_reward[-1])
    assert histories["SUPREME (Ours)"].avg_reward[-1] >= vb
