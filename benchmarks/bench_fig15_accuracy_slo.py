"""Fig. 15 — Inference latency under an accuracy SLO (augmented
computing, one subplot per bandwidth).

Paper shape: Murmuration's latency curve rises as the accuracy
constraint tightens and sits below the fixed-model Neurosurgeon
baselines across the covered range — up to 6.7x lower at the highest
accuracies where only heavy fixed models qualify.
"""

import pytest

from benchmarks.conftest import full_scale
from repro.eval import fig15_accuracy_slo_latency, format_latency_grid
from repro.netsim import AUGMENTED_BANDWIDTHS

if full_scale():
    BWS = AUGMENTED_BANDWIDTHS
    ACCS = (72.0, 73.0, 74.0, 75.0, 76.0, 77.0, 78.0, 78.5)
else:
    BWS = (50.0, 200.0, 400.0)
    ACCS = (72.0, 74.0, 76.0, 77.0, 78.0)


@pytest.mark.benchmark(group="fig15")
def test_fig15_latency_under_accuracy_slo(benchmark):
    data = benchmark.pedantic(
        lambda: fig15_accuracy_slo_latency(accuracy_slos=ACCS,
                                           bandwidths=BWS),
        rounds=1, iterations=1)
    print("\n=== Fig 15: latency (ms) under accuracy SLOs ===")
    print(format_latency_grid(data))

    ours = data["Murmuration (Ours)"]
    # Latency rises (weakly) with the accuracy constraint at each bw.
    for bw in BWS:
        lats = [ours[(bw, a)].latency_ms for a in ACCS
                if ours[(bw, a)].satisfied]
        assert lats == sorted(lats)
    # Headline latency reduction at a tight accuracy SLO.
    tight = 77.0
    reductions = []
    for bw in BWS:
        p = ours[(bw, tight)]
        rivals = [pts[(bw, tight)].latency_ms for m, pts in data.items()
                  if m != "Murmuration (Ours)" and pts[(bw, tight)].satisfied]
        if p.satisfied and rivals:
            reductions.append(min(rivals) / p.latency_ms)
    best = max(reductions)
    print(f"max latency reduction vs qualifying baselines: {best:.1f}x")
    assert best > 2.0
