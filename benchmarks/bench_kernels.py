"""Micro-benchmarks of the NumPy NN engine's hot kernels.

Classic pytest-benchmark timing (multiple rounds) for the primitives
everything else is built on: im2col convolution, depthwise convolution,
the batched LSTM policy step, and the latency simulator itself.
"""

import numpy as np
import pytest

from repro.devices import desktop_gtx1080, rpi4
from repro.models import get_model
from repro.netsim import Cluster, NetworkCondition
from repro.nn import LSTMCell
from repro.nn import functional as F
from repro.partition import layerwise_split_plan, simulate_latency

RNG = np.random.default_rng(0)


@pytest.mark.benchmark(group="kernels")
def test_conv2d_forward(benchmark):
    x = RNG.normal(size=(8, 32, 28, 28))
    w = RNG.normal(size=(64, 32, 3, 3))
    out, _ = benchmark(F.conv2d, x, w, None, 1, 1)
    assert out.shape == (8, 64, 28, 28)


@pytest.mark.benchmark(group="kernels")
def test_conv2d_backward(benchmark):
    x = RNG.normal(size=(8, 32, 28, 28))
    w = RNG.normal(size=(64, 32, 3, 3))
    out, cache = F.conv2d(x, w, None, 1, 1)
    g = np.ones_like(out)
    gx, gw, gb = benchmark(F.conv2d_backward, g, cache)
    assert gx.shape == x.shape


@pytest.mark.benchmark(group="kernels")
def test_depthwise_conv2d(benchmark):
    x = RNG.normal(size=(8, 64, 28, 28))
    w = RNG.normal(size=(64, 1, 5, 5))
    out, _ = benchmark(F.depthwise_conv2d, x, w, None, 1, 2)
    assert out.shape == x.shape


@pytest.mark.benchmark(group="kernels")
def test_lstm_batched_step(benchmark):
    cell = LSTMCell(64, 256)
    x = RNG.normal(size=(32, 64))
    state = cell.zero_state(32)

    def step():
        return cell.forward_step(x, state, record=False)

    h, _ = benchmark(step)
    assert h.shape == (32, 256)


@pytest.mark.benchmark(group="kernels")
def test_latency_simulation_throughput(benchmark):
    """The simulator is called once per RL episode; it must be cheap."""
    g = get_model("mobilenet_v3_large")
    cluster = Cluster([rpi4(), desktop_gtx1080()],
                      NetworkCondition((200.0,), (20.0,)))
    plan = layerwise_split_plan(g, len(g) // 2)
    report = benchmark(simulate_latency, g, plan, cluster)
    assert report.total_s > 0
