"""Ablation — SUPREME components (DESIGN.md ablation index).

Disables each SUPREME mechanism in turn (sharing, pruning, mutation,
curriculum, epsilon exploration) and reports final validation reward and
compliance, quantifying what each contributes beyond plain GCSL.
"""

import numpy as np
import pytest

from benchmarks.conftest import full_scale
from repro.devices import desktop_gtx1080, rpi4
from repro.nas import MBV3_SPACE
from repro.rl import (EnvConfig, MurmurationEnv, SupremeConfig,
                      SupremeTrainer, satisfiable_mask)

STEPS = 6_000 if full_scale() else 600

VARIANTS = {
    "full": {},
    "no-share": {"share": False},
    "no-prune": {"prune": False},
    "no-mutate": {"mutate": False},
    "no-curriculum": {"curriculum": False},
    "no-epsilon": {"epsilon_start": 0.0, "epsilon_end": 0.0},
}


@pytest.mark.benchmark(group="ablation")
def test_supreme_component_ablation(benchmark):
    env = MurmurationEnv(MBV3_SPACE, [rpi4(), desktop_gtx1080()],
                         EnvConfig(slo_kind="latency"))
    tasks = env.validation_tasks(points=3)
    mask = satisfiable_mask(env, tasks)

    def run():
        results = {}
        for name, overrides in VARIANTS.items():
            cfg = SupremeConfig(total_steps=STEPS, eval_every=STEPS,
                                seed=7, **overrides)
            tr = SupremeTrainer(env, cfg)
            hist = tr.train(tasks, mask)
            results[name] = (hist.avg_reward[-1], hist.compliance[-1],
                             tr.buffer.num_entries)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== SUPREME component ablation ===")
    print(f"{'variant':<16s}{'reward':>8s}{'compl.':>8s}{'buffer':>8s}")
    for name, (r, c, n) in results.items():
        print(f"{name:<16s}{r:8.3f}{c:8.3f}{n:8d}")

    assert all(np.isfinite(r) for r, _, _ in results.values())
    # Pruning keeps the buffer no larger than the unpruned variant.
    assert results["full"][2] <= results["no-prune"][2] + 8
