"""Figs. 11 & 12 — RL policy training curves.

Reproduces the four training curves (GCSL, PPO, Murmuration = SUPREME
without pruning/mutation, full SUPREME) on both scenarios, reporting
average validation reward (Fig. 11) and normalized SLO compliance rate
(Fig. 12) over training steps.

Paper shape: SUPREME >> Murmuration-basic > GCSL >> PPO in both reward
and compliance; SUPREME reaches high compliance with relatively little
data.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import full_scale
from repro.devices import desktop_gtx1080, rpi4
from repro.eval import format_training_curves, run_training_curves

STEPS = 20_000 if full_scale() else 800
EVAL_EVERY = 2_000 if full_scale() else 200


def _run(devices, scenario: str):
    histories = run_training_curves(devices, total_steps=STEPS,
                                    eval_every=EVAL_EVERY, seed=0)
    print(f"\n=== Fig 11/12 ({scenario}) ===")
    print(format_training_curves(histories))
    return histories


@pytest.mark.benchmark(group="fig11-12")
def test_fig11a_augmented_training(benchmark):
    histories = benchmark.pedantic(
        lambda: _run([rpi4(), desktop_gtx1080()], "augmented computing"),
        rounds=1, iterations=1)
    final = {k: h.avg_reward[-1] for k, h in histories.items()}
    # Paper ordering: SUPREME on top, PPO at the bottom.
    assert final["SUPREME (Ours)"] >= final["PPO"]
    assert final["SUPREME (Ours)"] >= final["GCSL"] - 0.05


@pytest.mark.benchmark(group="fig11-12")
def test_fig11b_swarm_training(benchmark):
    histories = benchmark.pedantic(
        lambda: _run([rpi4() for _ in range(5)], "device swarm"),
        rounds=1, iterations=1)
    final = {k: h.avg_reward[-1] for k, h in histories.items()}
    assert final["SUPREME (Ours)"] >= final["PPO"]
