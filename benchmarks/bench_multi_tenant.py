"""Multi-tenant fairness: per-tenant budgets vs FIFO under contention.

The multi-tenant scenario (``repro.eval.multi_tenant``) pushes one
seeded merged request stream — a bursting tenant plus steady tenants,
all uploading over one fair-shared ingress link — through the serving
stack three times, identical in everything but the control plane:

* **fifo** — no admission control: the burst queues everyone behind it;
* **admission** — tenant-blind deadline triage
  (:class:`~repro.control.AdmissionController`);
* **fair** — :class:`~repro.control.TenantFairnessController`:
  per-tenant budgets shed the over-share tenant first.

The headline claims this benchmark pins down:

1. the fair variant beats FIFO on **worst-tenant** end-to-end SLO
   compliance by at least 15 points under the asymmetric burst —
   fairness is measured at the victim, not in aggregate;
2. contention is real and priced: concurrent uploads contend on the
   shared ingress, and a lone flow's timing is bit-identical to the
   contention-free link model;
3. the whole comparison is a pure function of the config: same seed,
   same records, and a captured recording re-records byte-for-byte.

Also runnable as a script::

    PYTHONPATH=src python benchmarks/bench_multi_tenant.py [--smoke]
"""

import argparse
import io
import sys

import pytest

from repro.eval import (MultiTenantConfig, format_multi_tenant,
                        run_multi_tenant)
from repro.eval.replay import rerecord
from repro.telemetry.recorder import read_recordings, write_recordings

#: the acceptance floor: fair must beat fifo by this many points on
#: worst-tenant e2e compliance
_MARGIN = 0.15

_CFG = MultiTenantConfig()
_SMOKE_CFG = MultiTenantConfig(num_requests=80, trace_steps=60)


@pytest.fixture(scope="module")
def reports():
    return run_multi_tenant(_CFG)


@pytest.mark.benchmark(group="multi_tenant")
def test_fair_beats_fifo_on_worst_tenant_compliance(reports):
    """The acceptance headline: +15 points at the worst-off tenant."""
    fifo = reports["fifo"].worst_tenant_compliance
    fair = reports["fair"].worst_tenant_compliance
    assert fair >= fifo + _MARGIN, (
        f"fair worst-tenant {fair:.0%} vs fifo {fifo:.0%}: "
        f"margin < {_MARGIN:.0%}")


@pytest.mark.benchmark(group="multi_tenant")
def test_fairness_is_tenant_aware_not_just_triage(reports):
    """Fair must not lose to FIFO for *any* tenant while sheds target
    the burster: the steady tenant keeps (most of) its compliance."""
    fifo = reports["fifo"].tenant_compliance()
    fair = reports["fair"].tenant_compliance()
    for tenant, base in fifo.items():
        assert fair[tenant] >= base, (
            f"tenant {tenant}: fair {fair[tenant]:.0%} < fifo {base:.0%}")
    ctrl = reports["fair"].control.controllers[0]
    sheds = dict(ctrl.shed_by_tenant)
    if sheds:
        assert max(sheds, key=sheds.get) == "burst"


@pytest.mark.benchmark(group="multi_tenant")
def test_contention_happened_and_was_priced(reports):
    """Concurrent uploads actually contended on the shared ingress."""
    for rep in reports.values():
        assert rep.tracker is not None
        assert rep.tracker.flows_total > 0
        assert rep.tracker.contended_total > 0
        assert max(rep.tracker.peak_share.values(), default=1) >= 2


@pytest.mark.benchmark(group="multi_tenant")
def test_shed_accounting_conserves_requests(reports):
    """shed + completed + failed == submitted, for every variant."""
    for rep in reports.values():
        counts = rep.stats.outcome_counts()
        completed = sum(v for k, v in counts.items()
                        if k not in ("failed", "shed"))
        total = completed + counts.get("failed", 0) + counts.get("shed", 0)
        assert total == len(rep.stats.records) == _CFG.num_requests


@pytest.mark.benchmark(group="multi_tenant")
def test_every_record_is_tenant_tagged(reports):
    """The tenant tag survives the whole pipeline, sheds included."""
    names = {t.name for t in _CFG.tenants}
    for rep in reports.values():
        assert all(r.tenant in names for r in rep.stats.records)
        assert set(rep.stats.tenants()) == names


@pytest.mark.benchmark(group="multi_tenant")
def test_multi_tenant_is_reproducible():
    """Same config, same records — bit for bit, controllers included."""
    a = run_multi_tenant(_SMOKE_CFG)
    b = run_multi_tenant(_SMOKE_CFG)
    for name in a:
        assert a[name].stats.records == b[name].stats.records


@pytest.mark.benchmark(group="multi_tenant")
def test_recording_rerecords_byte_identically():
    """record -> rerecord round trip is byte-stable per variant."""
    recorded = run_multi_tenant(_SMOKE_CFG, record=True,
                                variants=("fifo", "fair"))
    first = io.StringIO()
    write_recordings(first, [rep.recorder for rep in recorded.values()])
    second = io.StringIO()
    write_recordings(second,
                     [rerecord(rec)
                      for rec in read_recordings(
                          io.StringIO(first.getvalue()))])
    assert first.getvalue() == second.getvalue()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Multi-tenant fairness benchmark: per-tenant budgets "
                    "vs FIFO under shared-ingress contention.")
    parser.add_argument("--smoke", action="store_true",
                        help="small smoke configuration (CI)")
    parser.add_argument("--requests", type=int, default=None,
                        help="override request count")
    args = parser.parse_args(argv)
    cfg = _SMOKE_CFG if args.smoke else _CFG
    if args.requests is not None:
        from dataclasses import replace
        cfg = replace(cfg, num_requests=args.requests)
    reports = run_multi_tenant(cfg)
    print(format_multi_tenant(reports))
    fifo = reports["fifo"].worst_tenant_compliance
    fair = reports["fair"].worst_tenant_compliance
    ok = fair >= fifo + _MARGIN
    print(f"\nworst-tenant e2e compliance: fifo {fifo:.0%} -> "
          f"fair {fair:.0%} (margin {fair - fifo:+.0%}, "
          f"{'PASS' if ok else 'FAIL'})")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
