"""Batched serving: throughput and tail latency vs the FIFO loop.

The serving-load scenario (``repro.eval.serving_load``) pushes one
seeded, saturating Poisson stream through three servers over the same
drifting network trace:

* **fifo** — the per-request loop: every cache-missing request pays its
  own decision on the critical path;
* **batched** — one amortized decision per batch, overlapped with the
  previous batch's execution;
* **batched-serial** — batching without overlap (the ablation that
  splits the win between amortization and pipelining).

The headline claims this benchmark pins down:

1. the batched pipeline beats FIFO on throughput under load, with no
   worse p95 end-to-end latency and no worse SLO compliance;
2. overlap contributes on top of amortization — the overlapped variant
   is at least as fast as the serial one and actually hides decision
   time;
3. decision cost is pinned (``decision_time_s``), so the whole
   comparison is a pure function of its seeds — same config, same
   numbers, bit for bit.

Also runnable as a script::

    PYTHONPATH=src python benchmarks/bench_batch_serving.py [--smoke]
"""

import argparse
import sys

import pytest

from repro.eval import ServingLoadConfig, format_serving_load, run_serving_load

_CFG = ServingLoadConfig()
_SMOKE_CFG = ServingLoadConfig(num_requests=48, trace_steps=40)


@pytest.fixture(scope="module")
def reports():
    return run_serving_load(_CFG)


@pytest.mark.benchmark(group="serving")
def test_batched_beats_fifo_on_throughput(reports):
    assert (reports["batched"].throughput_rps
            > reports["fifo"].throughput_rps)


@pytest.mark.benchmark(group="serving")
def test_batched_tail_latency_no_worse(reports):
    assert reports["batched"].p95_ms <= reports["fifo"].p95_ms


@pytest.mark.benchmark(group="serving")
def test_batched_compliance_no_worse(reports):
    assert (reports["batched"].compliance
            >= reports["fifo"].compliance)


@pytest.mark.benchmark(group="serving")
def test_overlap_contributes_on_top_of_amortization(reports):
    batched = reports["batched"]
    serial = reports["batched-serial"]
    # same membership, same amortization — overlap is the only delta
    assert batched.stats.amortized_decisions > 0
    assert batched.stats.overlap_saved_s > 0.0
    assert serial.stats.overlap_saved_s == 0.0
    assert batched.throughput_rps >= serial.throughput_rps


@pytest.mark.benchmark(group="serving")
def test_serving_load_is_reproducible():
    """Same config, same records — bit for bit.

    Decision cost is pinned in the scenario config, so unlike the chaos
    benchmark even the absolute timestamps must agree.
    """
    a = run_serving_load(_SMOKE_CFG)
    b = run_serving_load(_SMOKE_CFG)
    for name in a:
        ra, rb = a[name].stats.records, b[name].stats.records
        assert len(ra) == len(rb)
        assert ra == rb


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Batched-serving benchmark: fifo vs batched pipeline.")
    parser.add_argument("--smoke", action="store_true",
                        help="small smoke configuration (CI)")
    parser.add_argument("--requests", type=int, default=None,
                        help="override request count")
    args = parser.parse_args(argv)
    cfg = _SMOKE_CFG if args.smoke else _CFG
    if args.requests is not None:
        from dataclasses import replace
        cfg = replace(cfg, num_requests=args.requests)
    reports = run_serving_load(cfg)
    print(format_serving_load(reports))
    fifo, batched = reports["fifo"], reports["batched"]
    speedup = batched.throughput_rps / fifo.throughput_rps
    ok = (batched.throughput_rps > fifo.throughput_rps
          and batched.p95_ms <= fifo.p95_ms
          and batched.compliance >= fifo.compliance)
    print(f"\nbatched/fifo throughput: {speedup:.2f}x, "
          f"overlap hid {batched.stats.overlap_saved_s * 1e3:.0f}ms of "
          f"decisions ({'PASS' if ok else 'FAIL'})")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
