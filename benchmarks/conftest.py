"""Benchmark configuration.

Every ``bench_figNN_*`` benchmark regenerates one figure of the paper's
evaluation section and prints the series it plots.  Benchmarks default
to reduced-but-shape-preserving budgets so the whole suite runs in
minutes; set ``REPRO_FULL=1`` for paper-scale budgets (20k RL steps,
full grids).
"""

import os

import pytest


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture(scope="session")
def full():
    return full_scale()
