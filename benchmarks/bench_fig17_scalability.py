"""Fig. 17 — Inference latency vs number of devices (1 Gbps, 2 ms,
accuracy SLO at 75 % and 76 %).

Paper shape: latency falls monotonically with swarm size (1.7x-4.5x in
the paper; this reproduction reaches ~2.2x — see EXPERIMENTS.md for the
gap discussion: our FDSP overhead model is more conservative on small
feature maps).
"""

import pytest

from repro.eval import fig17_scalability, format_scalability


@pytest.mark.benchmark(group="fig17")
def test_fig17_scalability(benchmark):
    data = benchmark.pedantic(
        lambda: fig17_scalability(accuracy_slos=(75.0, 76.0),
                                  device_counts=tuple(range(1, 10))),
        rounds=1, iterations=1)
    print("\n=== Fig 17: latency vs number of devices ===")
    print(format_scalability(data))

    for acc, pts in data.items():
        lats = [pts[n] for n in sorted(pts)]
        assert all(l is not None for l in lats)
        # weakly monotone improvement with more devices
        assert all(a >= b - 1e-9 for a, b in zip(lats, lats[1:]))
        speedup = lats[0] / lats[-1]
        print(f"accuracy SLO {acc}: speedup 1->9 devices = {speedup:.2f}x")
        assert speedup > 1.7
