"""Extension — Vision Transformer distributed inference.

Sec. 4.1 of the paper: "this spatial partitioning strategy can also be
applied to other DNN models such as Vision Transformers, where different
image patches are sent to different devices for parallel attention
computation."  This bench quantifies that claim on the swarm scenario:
patch-parallel execution of ViT-S/16 vs single-device and layer-wise
splits across the bandwidth range, with fp32 and int8 K/V exchange.
"""

import pytest

from repro.devices import rpi4
from repro.models import vit_small_16
from repro.netsim import Cluster, NetworkCondition
from repro.partition import (Grid, layerwise_split_plan, simulate_latency,
                             single_device_plan, spatial_plan)

BANDWIDTHS = (5.0, 20.0, 100.0, 500.0, 1000.0)


@pytest.mark.benchmark(group="extension")
def test_vit_patch_parallel_tradeoff(benchmark):
    v = vit_small_16()

    def run():
        rows = {}
        for bw in BANDWIDTHS:
            cl = Cluster([rpi4() for _ in range(5)],
                         NetworkCondition((bw,) * 4, (2.0,) * 4))
            single = simulate_latency(v, single_device_plan(v), cl).total_s
            split = simulate_latency(
                v, layerwise_split_plan(v, len(v) // 2), cl).total_s
            pp32 = simulate_latency(
                v, spatial_plan(v, Grid(2, 2), [0, 1, 2, 3], bits=32),
                cl).total_s
            pp8 = simulate_latency(
                v, spatial_plan(v, Grid(2, 2), [0, 1, 2, 3], bits=8),
                cl).total_s
            rows[bw] = (single, split, pp32, pp8)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Extension: ViT-S/16 on a 5-Pi swarm (latency, s) ===")
    print(f"{'bw Mbps':>8s}{'single':>9s}{'split':>9s}"
          f"{'patch-par fp32':>15s}{'patch-par int8':>15s}")
    for bw, (s, sp, p32, p8) in rows.items():
        print(f"{bw:8.0f}{s:9.2f}{sp:9.2f}{p32:15.2f}{p8:15.2f}")

    # Patch parallelism wins clearly on fast links...
    s, _, p32, _ = rows[1000.0]
    assert p32 < s / 2.5
    # ...its advantage shrinks as links slow (global K/V exchange)...
    assert rows[5.0][2] > rows[1000.0][2] * 1.5
    # ...and int8 K/V exchange recovers part of the loss.
    assert rows[5.0][3] < rows[5.0][2]
