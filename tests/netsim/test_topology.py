"""Cluster topology and NetworkCondition."""

import pytest

from repro.devices import desktop_gtx1080, rpi4
from repro.netsim import Cluster, NetworkCondition


class TestNetworkCondition:
    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            NetworkCondition((1.0, 2.0), (3.0,))

    def test_uniform(self):
        c = NetworkCondition.uniform(3, 100.0, 5.0)
        assert c.num_remote == 3
        assert c.bandwidths_mbps == (100.0,) * 3

    def test_as_vector(self):
        c = NetworkCondition((1.0, 2.0), (3.0, 4.0))
        assert c.as_vector() == [1.0, 2.0, 3.0, 4.0]


class TestCluster:
    def test_dimension_check(self):
        with pytest.raises(ValueError):
            Cluster([rpi4(), rpi4()], NetworkCondition((1.0, 2.0), (1.0, 2.0)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cluster([], NetworkCondition((), ()))

    def test_local_loopback_free(self):
        cl = Cluster([rpi4(), rpi4()], NetworkCondition((100.0,), (10.0,)))
        assert cl.transfer_time(0, 0, 10 ** 7) == 0.0

    def test_local_remote_uses_link(self):
        cl = Cluster([rpi4(), rpi4()], NetworkCondition((100.0,), (10.0,)))
        t = cl.transfer_time(0, 1, 1_000_000)
        assert t == pytest.approx(cl.link_to(1).transfer_time(1_000_000))
        # symmetric
        assert cl.transfer_time(1, 0, 1_000_000) == pytest.approx(t)

    def test_remote_remote_relays(self):
        cond = NetworkCondition((100.0, 50.0), (10.0, 20.0))
        cl = Cluster([rpi4(), rpi4(), rpi4()], cond)
        t = cl.transfer_time(1, 2, 1_000_000)
        # bottleneck bandwidth = 50 Mbps; both delays paid once
        wire = 1_000_000 * 8.0 / 50e6
        assert t == pytest.approx(0.010 + 0.020 + 0.001 + wire, rel=0.05)

    def test_set_condition_updates_links(self):
        cl = Cluster([rpi4(), rpi4()], NetworkCondition((100.0,), (10.0,)))
        t1 = cl.transfer_time(0, 1, 10 ** 6)
        cl.set_condition(NetworkCondition((200.0,), (10.0,)))
        t2 = cl.transfer_time(0, 1, 10 ** 6)
        assert t2 < t1

    def test_set_condition_dimension_guard(self):
        cl = Cluster([rpi4(), rpi4()], NetworkCondition((100.0,), (10.0,)))
        with pytest.raises(ValueError):
            cl.set_condition(NetworkCondition((1.0, 2.0), (1.0, 2.0)))

    def test_device_accessors(self):
        cl = Cluster([rpi4(), desktop_gtx1080()],
                     NetworkCondition((100.0,), (10.0,)))
        assert cl.local.name == "rpi4"
        assert cl.device(1).name == "desktop_gtx1080"
        assert cl.num_devices == 2
