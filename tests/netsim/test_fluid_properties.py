"""Property-based invariant suite for the fluid max-min solver.

Each seed builds a random scenario — a small random link graph with
random capacities and a handful of flows with random edge sets, start
times, and payloads — solves it offline with :func:`solve_fluid`, and
checks the invariants the solver's docstring promises:

* **byte conservation** — per flow, the rate integrated over the
  recorded piecewise-constant segments equals its payload;
* **max-min certificate** — in every segment, every active flow
  crosses a saturated edge on which its rate is maximal, so no flow's
  rate can increase without decreasing an equal-or-slower flow's;
* **bottleneck saturation** — a corollary checked independently: every
  active flow crosses at least one fully-utilized edge in every
  segment;
* **order invariance** — permuting the submission order permutes the
  finish-time list the same way and changes *no float* (exact ``==``);
* **lone-flow bit-identity** — a flow sharing no edge is priced by
  returning ``Link.transfer_time``'s float verbatim.

Tier-1 runs ``SMALL_N`` seeds.  The full randomized sweep is the
``slow``-marked test sized by the ``FLUID_PROPERTY_N`` environment
variable (seeds ``SMALL_N..FLUID_PROPERTY_N``); unset it no-ops, and a
dedicated CI step sets it large.
"""

import itertools
import math
import os

import numpy as np
import pytest

from repro.netsim.fluid import FlowSpec, FluidTracker, solve_fluid
from repro.netsim.link import Link

SMALL_N = 20
FULL_N = int(os.environ.get("FLUID_PROPERTY_N", "0"))

# float dust from accumulating rate*dt across segments
_REL = 1e-9
_ABS = 1e-6


def random_scenario(seed):
    """A random link graph + flow set; pure function of the seed."""
    rng = np.random.default_rng((seed, 42))
    n_nodes = int(rng.integers(2, 6))
    all_edges = list(itertools.combinations(range(n_nodes), 2))
    caps = {e: float(rng.uniform(1e5, 1e8)) for e in all_edges}
    n_flows = int(rng.integers(1, 9))
    flows = []
    for _ in range(n_flows):
        k = int(rng.integers(1, min(3, len(all_edges)) + 1))
        idx = rng.choice(len(all_edges), size=k, replace=False)
        edges = tuple(all_edges[int(i)] for i in sorted(idx))
        flows.append(FlowSpec(edges=edges,
                              start=float(rng.uniform(0.0, 2.0)),
                              nbytes=float(rng.uniform(1e3, 1e7))))
    return flows, caps, rng


def check_conservation(flows, tracker, fids_in_order):
    """∫ rate dt over the segment trail == nbytes * 8, per flow."""
    transferred = {}
    for seg in tracker.segments:
        for fid, rate in seg.rates.items():
            transferred[fid] = transferred.get(fid, 0.0) \
                + rate * seg.duration
    for i, spec in enumerate(flows):
        fid = fids_in_order[i]
        got = transferred.get(fid, 0.0)
        want = spec.nbytes * 8.0
        assert math.isclose(got, want, rel_tol=1e-7, abs_tol=_ABS), (
            f"flow {i}: transferred {got} bits, payload is {want}")


def check_max_min_certificate(tracker, caps):
    """Every active flow is rate-maximal on some saturated edge.

    That is the max-min optimality certificate: raising such a flow's
    rate would force a decrease on an equal-or-slower flow sharing its
    saturated edge.  Bottleneck saturation (every flow crosses ≥ 1
    fully-utilized edge) is the first half of the same check.
    """
    for seg in tracker.segments:
        if not seg.rates:
            continue
        load = {}
        on_edge = {}
        for fid, rate in seg.rates.items():
            for e in tracker.flow_spec(fid).edges:
                load[e] = load.get(e, 0.0) + rate
                on_edge.setdefault(e, []).append(rate)
        for fid, rate in seg.rates.items():
            certified = False
            for e in tracker.flow_spec(fid).edges:
                saturated = math.isclose(load[e], caps[e],
                                         rel_tol=_REL, abs_tol=_ABS)
                maximal = rate >= max(on_edge[e]) - _ABS
                if saturated and maximal:
                    certified = True
                    break
            assert certified, (
                f"segment [{seg.t0}, {seg.t1}): flow {fid} at rate "
                f"{rate} crosses no saturated edge it is maximal on "
                f"(loads {load})")


def check_bottleneck_saturation(tracker, caps):
    for seg in tracker.segments:
        load = {}
        for fid, rate in seg.rates.items():
            for e in tracker.flow_spec(fid).edges:
                load[e] = load.get(e, 0.0) + rate
        for fid in seg.rates:
            assert any(
                math.isclose(load[e], caps[e], rel_tol=_REL, abs_tol=_ABS)
                for e in tracker.flow_spec(fid).edges), (
                f"segment [{seg.t0}, {seg.t1}): flow {fid} crosses no "
                f"fully-utilized edge")


def check_order_invariance(flows, caps, finishes, rng):
    perm = list(rng.permutation(len(flows)))
    shuffled = [flows[i] for i in perm]
    fin2, _ = solve_fluid(shuffled, caps, record_segments=False)
    # exact: the canonical admission order makes the solver run the
    # identical float operation sequence for any submission order
    assert fin2 == [finishes[i] for i in perm]


def check_basic_sanity(flows, finishes, fids_in_order, tracker):
    for i, spec in enumerate(flows):
        assert finishes[i] > spec.start
        assert tracker.finish_time(fids_in_order[i]) == finishes[i]


def run_property_checks(seed):
    flows, caps, rng = random_scenario(seed)
    finishes, tracker = solve_fluid(flows, caps)
    # recover each input flow's id: solve_fluid admits in canonical
    # order, ids count up from 0 in admission order
    order = sorted(
        range(len(flows)),
        key=lambda i: (flows[i].start, flows[i].edges, flows[i].nbytes,
                       flows[i].tenant is not None, flows[i].tenant or ""))
    fids = {}
    for fid, i in enumerate(order):
        fids[i] = fid
    check_basic_sanity(flows, finishes, fids, tracker)
    check_conservation(flows, tracker, fids)
    check_max_min_certificate(tracker, caps)
    check_bottleneck_saturation(tracker, caps)
    check_order_invariance(flows, caps, finishes, rng)


@pytest.mark.parametrize("seed", range(SMALL_N))
def test_fluid_properties(seed):
    run_property_checks(seed)


@pytest.mark.slow
def test_fluid_properties_full_sweep():
    """The big randomized sweep; sized by ``FLUID_PROPERTY_N`` (CI)."""
    for seed in range(SMALL_N, max(SMALL_N, FULL_N)):
        run_property_checks(seed)


@pytest.mark.parametrize("seed", range(SMALL_N))
def test_lone_flow_bit_identity(seed):
    """An uncontended transfer returns ``Link.transfer_time`` verbatim."""
    rng = np.random.default_rng((seed, 43))
    link = Link(bandwidth_mbps=float(rng.uniform(1.0, 500.0)),
                delay_ms=float(rng.uniform(0.1, 80.0)),
                rpc_overhead_ms=float(rng.uniform(0.0, 5.0)))
    nbytes = float(rng.uniform(1.0, 1e7))
    base = link.transfer_time(nbytes)
    tracker = FluidTracker()
    latency_s = (link.delay_ms + link.rpc_overhead_ms) / 1e3
    got = tracker.admit_transfer(((0, 1),), {(0, 1): link.bandwidth_bps},
                                 latency_s, nbytes,
                                 float(rng.uniform(0.0, 5.0)),
                                 base_s=base)
    assert got == base  # bit-identical, not just close


def test_full_sweep_is_marked_slow():
    """The sweep must carry the marker the CI tier split keys on."""
    marks = [m.name for m in
             test_fluid_properties_full_sweep.pytestmark]
    assert "slow" in marks
