"""Network monitoring, traces, and condition grids."""

import numpy as np
import pytest

from repro.devices import rpi4
from repro.netsim import (AUGMENTED_BANDWIDTHS, AUGMENTED_DELAYS, Cluster,
                          NetworkCondition, NetworkMonitor, TraceConfig,
                          augmented_conditions, mobility_trace,
                          random_walk_trace, step_trace, swarm_conditions,
                          training_grid, validation_conditions)


@pytest.fixture
def cluster():
    return Cluster([rpi4(), rpi4(), rpi4()],
                   NetworkCondition((100.0, 200.0), (10.0, 30.0)))


class TestMonitor:
    def test_probe_tracks_truth(self, cluster):
        mon = NetworkMonitor(cluster, noise=0.02, seed=1)
        for _ in range(30):
            mon.probe_all()
        est = mon.estimate()
        np.testing.assert_allclose(est.bandwidths_mbps, (100, 200), rtol=0.15)
        np.testing.assert_allclose(est.delays_ms, (10, 30), rtol=0.15)

    def test_estimate_before_probe_falls_back(self, cluster):
        mon = NetworkMonitor(cluster)
        est = mon.estimate()
        assert est.bandwidths_mbps == (100.0, 200.0)

    def test_invalid_device(self, cluster):
        mon = NetworkMonitor(cluster)
        with pytest.raises(ValueError):
            mon.active_probe(0)
        with pytest.raises(ValueError):
            mon.active_probe(5)

    def test_passive_noisier_recorded(self, cluster):
        mon = NetworkMonitor(cluster, seed=2)
        m = mon.passive_observe(1, nbytes=1e6, elapsed_s=0.1)
        assert m.source == "passive"
        with pytest.raises(ValueError):
            mon.passive_observe(1, nbytes=1e6, elapsed_s=0.0)

    def test_passive_derives_bandwidth_from_transfer(self, cluster):
        """Regression: passive_observe ignored nbytes/elapsed_s and just
        sampled ground truth — a timed transfer must price the link."""
        mon = NetworkMonitor(cluster, seed=7)
        # 1 MB in 2 s is ~4 Mbps no matter what the true link claims
        slow = mon.passive_observe(1, nbytes=1e6, elapsed_s=2.0)
        assert slow.bandwidth_mbps < 10.0
        # the same payload in 10 ms is a fast link
        fast = mon.passive_observe(1, nbytes=1e6, elapsed_s=0.05)
        assert fast.bandwidth_mbps > slow.bandwidth_mbps * 5

    def test_slow_transfer_lowers_smoothed_estimate(self, cluster):
        mon = NetworkMonitor(cluster, noise=0.01, seed=8)
        for _ in range(10):
            mon.active_probe(1)
        before = mon.estimate().bandwidths_mbps[0]
        assert before == pytest.approx(100.0, rel=0.1)
        for _ in range(5):
            mon.passive_observe(1, nbytes=1e6, elapsed_s=2.0)
        after = mon.estimate().bandwidths_mbps[0]
        assert after < before * 0.7

    def test_history_and_series(self, cluster):
        mon = NetworkMonitor(cluster, seed=0)
        for t in range(5):
            mon.active_probe(1, now=float(t))
        ts, bws, delays = mon.device_series(1)
        assert list(ts) == [0, 1, 2, 3, 4]
        assert len(bws) == 5 and len(delays) == 5
        assert len(mon.history) == 5

    def test_monitor_follows_condition_change(self, cluster):
        mon = NetworkMonitor(cluster, noise=0.01, ewma_alpha=0.9, seed=3)
        for _ in range(5):
            mon.probe_all()
        cluster.set_condition(NetworkCondition((20.0, 20.0), (80.0, 80.0)))
        for _ in range(10):
            mon.probe_all()
        est = mon.estimate()
        assert est.bandwidths_mbps[0] < 40
        assert est.delays_ms[0] > 50


class TestTraces:
    @pytest.mark.parametrize("gen", [random_walk_trace, step_trace,
                                     mobility_trace])
    def test_length_and_bounds(self, gen):
        cfg = TraceConfig(num_remote=2, steps=50, seed=4)
        trace = gen(cfg)
        assert len(trace) == 50
        for cond in trace:
            assert cond.num_remote == 2
            for b in cond.bandwidths_mbps:
                assert cfg.bw_range[0] <= b <= cfg.bw_range[1]
            for d in cond.delays_ms:
                assert cfg.delay_range[0] <= d <= cfg.delay_range[1]

    def test_deterministic_by_seed(self):
        cfg = TraceConfig(steps=10, seed=9)
        a = random_walk_trace(cfg)
        b = random_walk_trace(cfg)
        assert a == b

    def test_step_trace_piecewise_constant(self):
        trace = step_trace(TraceConfig(steps=40, seed=1), period=10)
        assert trace[0] == trace[9]
        assert trace[0] != trace[10] or trace[10] != trace[20]

    def test_random_walk_is_smooth(self):
        cfg = TraceConfig(steps=100, seed=2)
        trace = random_walk_trace(cfg)
        deltas = [abs(a.bandwidths_mbps[0] - b.bandwidths_mbps[0])
                  for a, b in zip(trace, trace[1:])]
        span = cfg.bw_range[1] - cfg.bw_range[0]
        assert max(deltas) < span * 0.25


class TestGrids:
    def test_training_grid(self):
        g = training_grid(10, 100, 10)
        assert len(g) == 10 and g[0] == 10 and g[-1] == 100
        with pytest.raises(ValueError):
            training_grid(0, 1, 1)

    def test_augmented_conditions_40_settings(self):
        conds = augmented_conditions()
        assert len(conds) == len(AUGMENTED_BANDWIDTHS) * len(AUGMENTED_DELAYS)
        assert all(c.num_remote == 1 for c in conds)

    def test_swarm_conditions_vary_one_device(self):
        conds = swarm_conditions(num_remote=4, varied_device=2)
        assert len(conds) == 9
        for c in conds:
            assert c.bandwidths_mbps[0] == 100.0
            assert c.delays_ms == (20.0,) * 4

    def test_validation_conditions_single_remote_is_grid(self):
        conds = validation_conditions(1, (10, 100), (5, 50), points=3)
        assert len(conds) == 9

    def test_validation_conditions_multi_remote_sampled(self):
        conds = validation_conditions(4, (10, 100), (5, 50), points=3)
        assert len(conds) == 9
        assert all(c.num_remote == 4 for c in conds)
