"""Mesh topologies (extension): routing, compatibility with the
simulator, and the robust monitoring predictor."""

import numpy as np
import pytest

from repro.devices import rpi4
from repro.faults.resilience import NoRouteError, TransportError
from repro.models import get_model
from repro.netsim import (Cluster, MeshCluster, MeshLink, NetworkCondition,
                          line_topology, ring_topology)
from repro.partition import layerwise_split_plan, simulate_latency
from repro.runtime import LinearPredictor


class TestMeshLink:
    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            MeshLink(0, 0, 100.0, 5.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MeshLink(0, 1, 0.0, 5.0)


class TestMeshCluster:
    def test_line_routing_accumulates_delay(self):
        devices = [rpi4() for _ in range(4)]
        mesh = line_topology(devices, bandwidth_mbps=100.0, delay_ms=10.0)
        # 0 -> 3 crosses 3 hops
        assert mesh.hop_count(0, 3) == 3
        t = mesh.transfer_time(0, 3, 0)
        assert t == pytest.approx((3 * 10.0 + 1.0) / 1e3)

    def test_bottleneck_bandwidth(self):
        devices = [rpi4() for _ in range(3)]
        mesh = MeshCluster(devices, [MeshLink(0, 1, 1000.0, 1.0),
                                     MeshLink(1, 2, 10.0, 1.0)])
        t = mesh.transfer_time(0, 2, 1_000_000)
        wire = 8.0 / 10.0  # 1 MB at the 10 Mbps bottleneck
        assert t == pytest.approx(wire + 0.003, rel=0.05)

    def test_ring_shorter_than_line_for_far_nodes(self):
        devices = [rpi4() for _ in range(6)]
        line = line_topology(devices, 100.0, 10.0)
        ring = ring_topology(devices, 100.0, 10.0)
        assert ring.hop_count(0, 5) == 1
        assert line.hop_count(0, 5) == 5
        assert ring.transfer_time(0, 5, 0) < line.transfer_time(0, 5, 0)

    def test_disconnected_route_raises(self):
        devices = [rpi4() for _ in range(3)]
        mesh = MeshCluster(devices, [MeshLink(0, 1, 100.0, 5.0)])
        assert not mesh.is_connected()
        with pytest.raises(NoRouteError, match="no surviving route") as exc:
            mesh.transfer_time(0, 2, 100)
        assert isinstance(exc.value, TransportError)
        assert (exc.value.src, exc.value.dst) == (0, 2)

    def test_unknown_device_in_link(self):
        with pytest.raises(ValueError):
            MeshCluster([rpi4()], [MeshLink(0, 5, 100.0, 5.0)])

    def test_simulator_accepts_mesh(self):
        """A relay chain is a drop-in Cluster replacement."""
        devices = [rpi4() for _ in range(3)]
        mesh = line_topology(devices, bandwidth_mbps=200.0, delay_ms=10.0)
        g = get_model("mobilenet_v3_large")
        # run the tail on the far end of the chain (2 hops away)
        rep = simulate_latency(g, layerwise_split_plan(g, 3, remote=2), mesh)
        assert rep.total_s > 0
        # the same split to the adjacent node is cheaper (fewer hops)
        rep1 = simulate_latency(g, layerwise_split_plan(g, 3, remote=1), mesh)
        assert rep1.total_s < rep.total_s

    def test_mesh_matches_star_when_single_hop(self):
        """A 2-device mesh equals the equivalent star cluster."""
        devices = [rpi4(), rpi4()]
        mesh = MeshCluster(devices, [MeshLink(0, 1, 150.0, 12.0)])
        star = Cluster(devices, NetworkCondition((150.0,), (12.0,)))
        g = get_model("mobilenet_v3_large")
        plan = layerwise_split_plan(g, 5)
        t_mesh = simulate_latency(g, plan, mesh).total_s
        t_star = simulate_latency(g, plan, star).total_s
        assert t_mesh == pytest.approx(t_star, rel=1e-6)


class TestRobustPredictor:
    def test_theil_sen_ignores_outlier(self):
        ls = LinearPredictor(window=8, robust=False)
        ts_ = LinearPredictor(window=8, robust=True)
        for t in range(6):
            ls.observe(float(t), 10.0 + 2.0 * t)
            ts_.observe(float(t), 10.0 + 2.0 * t)
        ls.observe(6.0, 500.0)   # corrupted probe
        ts_.observe(6.0, 500.0)
        truth = 10.0 + 2.0 * 8
        assert abs(ts_.predict(8.0) - truth) < abs(ls.predict(8.0) - truth)

    def test_robust_matches_ls_on_clean_trend(self):
        ls = LinearPredictor(robust=False)
        ts_ = LinearPredictor(robust=True)
        for t in range(6):
            ls.observe(float(t), 5.0 - 0.5 * t)
            ts_.observe(float(t), 5.0 - 0.5 * t)
        assert ts_.predict(10.0) == pytest.approx(ls.predict(10.0), abs=1e-9)
