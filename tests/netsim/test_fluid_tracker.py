"""FluidTracker as a drop-in behind the ContentionTracker interface.

Covers the integration contract the fluid solver ships under: clusters
and the shared ingress delegate pricing when ``prices_transfers`` is
set, lone flows and ``tracker=None`` builds stay bit-identical to the
contention-free floats, peeks never move the ledger, and — the
behavioral contract the bench reports — the snapshot model's
documented admission-order bias (first flow under-charged, second
over-charged) disappears under the fluid solver: two overlapping
equal flows finish *simultaneously*.
"""

import pytest

from repro.devices import desktop_gtx1080, jetson_class, rpi4
from repro.netsim import (Cluster, ContentionTracker, FluidTracker, Link,
                          NetworkCondition, SharedIngress, ring_topology,
                          solve_fluid)
from repro.netsim.fluid import FlowSpec
from repro.telemetry import Telemetry

CAPS = {(0, 1): 100.0}  # 100 bits/s: 12.5 bytes drain in 1 s alone


def _devices():
    return [rpi4(), desktop_gtx1080(), jetson_class()]


def _condition():
    return NetworkCondition((100.0, 50.0), (10.0, 20.0))


class TestSnapshotBiasRegression:
    """The documented snapshot bias, pinned as a behavioral contract."""

    def test_snapshot_finishes_equal_overlapping_flows_asymmetrically(self):
        link = Link(bandwidth_mbps=8.0 / 1e6, delay_ms=0.0,
                    rpc_overhead_ms=0.0)  # 8 bits/s: 1 byte/s wire
        tracker = ContentionTracker()
        ingress = SharedIngress(link, tracker, payload_bytes=8.0)
        first = ingress.admit(0.0)
        second = ingress.admit(0.001)
        # first keeps the whole wire (its share was frozen at admission),
        # second pays the halved rate for its entire lifetime
        assert first == link.transfer_time(8.0)
        assert second == pytest.approx(2.0 * first)
        assert 0.0 + first != pytest.approx(0.001 + second)

    def test_fluid_finishes_equal_overlapping_flows_simultaneously(self):
        fin, _ = solve_fluid([FlowSpec(((0, 1),), 0.0, 12.5),
                              FlowSpec(((0, 1),), 0.0, 12.5)], CAPS)
        assert fin[0] == fin[1] == 2.0

    def test_fluid_ledger_reconverges_after_late_arrival(self):
        # A at t=0, B at t=0.5, both 100 bits on a 100 b/s edge:
        # A alone 0.5 s (50 bits), shared 1.0 s (50 bits) -> 1.5;
        # B shared 1.0 s (50 bits), alone 0.5 s -> 2.0.
        tracker = FluidTracker()
        a = tracker.admit(((0, 1),), CAPS, 0.0, 12.5)
        b = tracker.admit(((0, 1),), CAPS, 0.5, 12.5)
        times = tracker.finish_times()
        assert times[a] == 1.5
        assert times[b] == 2.0


class TestDropInBitIdentity:
    def test_star_lone_transfer_bit_identical(self):
        plain = Cluster(_devices(), _condition())
        fluid = Cluster(_devices(), _condition(),
                        contention=FluidTracker())
        for src, dst in ((0, 1), (0, 2), (1, 2)):
            want = plain.transfer_time(src, dst, 1e6)
            # fresh tracker per pair: each transfer must be lone
            fluid.contention = FluidTracker()
            assert fluid.timed_transfer(src, dst, 1e6, 0.0) == want

    def test_mesh_lone_transfer_bit_identical(self):
        devs = _devices() + [rpi4()]
        plain = ring_topology(devs, 100.0, 5.0)
        fluid = ring_topology(devs, 100.0, 5.0)
        fluid.contention = FluidTracker()
        assert (fluid.timed_transfer(0, 2, 1e6, 0.0)
                == plain.transfer_time(0, 2, 1e6))

    def test_ingress_lone_upload_bit_identical(self):
        link = Link(bandwidth_mbps=40.0, delay_ms=5.0)
        ingress = SharedIngress(link, FluidTracker(),
                                payload_bytes=256 * 1024)
        assert ingress.upload_time(0.0) == link.transfer_time(256 * 1024)
        assert ingress.admit(0.0) == link.transfer_time(256 * 1024)

    def test_contended_transfers_price_higher_than_base(self):
        fluid = Cluster(_devices(), _condition(),
                        contention=FluidTracker())
        base = fluid.transfer_time(0, 1, 1e6)
        first = fluid.timed_transfer(0, 1, 1e6, 0.0)
        second = fluid.timed_transfer(0, 1, 1e6, 1e-3)
        assert first == base  # lone at admission
        assert second > base  # shares the spoke with the first


class TestPeekNeverMoves:
    def test_peek_equals_subsequent_admit(self):
        tracker = FluidTracker()
        tracker.admit(((0, 1),), CAPS, 0.0, 12.5)
        peek = tracker.peek_transfer(((0, 1),), CAPS, 0.0, 12.5, 0.5)
        admit = tracker.admit_transfer(((0, 1),), CAPS, 0.0, 12.5, 0.5)
        assert peek == admit

    def test_peek_leaves_the_ledger_untouched(self):
        tracker = FluidTracker()
        fid = tracker.admit(((0, 1),), CAPS, 0.0, 12.5)
        before = tracker.finish_time(fid)
        tracker.peek_transfer(((0, 1),), CAPS, 0.0, 12.5, 0.1)
        assert tracker.finish_time(fid) == before
        assert tracker.flows_total == 1
        assert tracker.stats()["active"] == 1

    def test_concurrency_and_share_are_non_mutating(self):
        tracker = FluidTracker()
        tracker.admit(((0, 1),), CAPS, 0.0, 12.5)
        assert tracker.concurrency((0, 1), 0.5) == 1
        assert tracker.share((0, 1), 0.5) == 2
        assert tracker.concurrency((0, 1), 10.0) == 0  # drained by then
        # the queries advanced a clone, never the ledger
        assert tracker.stats()["active"] == 1


class TestLedgerMechanics:
    def test_out_of_order_admission_clamps_to_ledger_time(self):
        # demo drivers (links CLI) re-run executions from now=0; the
        # ledger clock must never run backwards
        tracker = FluidTracker()
        tracker.admit(((0, 1),), CAPS, 5.0, 12.5)
        fid = tracker.admit(((0, 1),), CAPS, 1.0, 12.5)
        assert tracker.flow_spec(fid).start == 5.0

    def test_zero_byte_flow_completes_instantly(self):
        tracker = FluidTracker()
        fid = tracker.admit(((0, 1),), CAPS, 1.0, 0.0)
        assert tracker.finish_time(fid) == 1.0
        assert tracker.stats()["active"] == 0

    def test_rejects_flow_with_no_edges(self):
        with pytest.raises(ValueError):
            FluidTracker().admit((), CAPS, 0.0, 1.0)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FluidTracker().admit(((0, 1),), {(0, 1): 0.0}, 0.0, 1.0)

    def test_unknown_flow_id_raises(self):
        with pytest.raises(KeyError):
            FluidTracker().finish_time(7)

    def test_edges_canonicalized_like_the_snapshot_tracker(self):
        tracker = FluidTracker()
        a = tracker.admit(((1, 0),), {(0, 1): 100.0}, 0.0, 12.5)
        b = tracker.admit(((0, 1),), {(0, 1): 100.0}, 0.0, 12.5)
        # both on the same canonical edge: they share it
        times = tracker.finish_times()
        assert times[a] == times[b] == 2.0

    def test_drain_completes_everything(self):
        tracker = FluidTracker()
        tracker.admit(((0, 1),), CAPS, 0.0, 12.5)
        tracker.admit(((0, 1),), CAPS, 0.5, 12.5)
        tracker.drain()
        assert tracker.stats()["active"] == 0
        assert sorted(tracker.finish_times().values()) == [1.5, 2.0]


class TestAccountingParity:
    """The ContentionTracker accounting surface, fluid edition."""

    def test_counts_flows_contention_and_peak_share(self):
        tracker = FluidTracker()
        tracker.admit(((0, 1),), CAPS, 0.0, 12.5)
        tracker.admit(((0, 1),), CAPS, 0.1, 12.5)
        assert tracker.flows_total == 2
        assert tracker.contended_total == 1
        assert tracker.peak_share[(0, 1)] == 2

    def test_tenant_bytes_accumulate(self):
        tracker = FluidTracker()
        tracker.admit(((0, 1),), CAPS, 0.0, 10.0, tenant="a")
        tracker.admit(((0, 1),), CAPS, 0.1, 15.0, tenant="a")
        tracker.admit(((0, 1),), CAPS, 0.2, 7.0, tenant="b")
        assert tracker.tenant_bytes() == {"a": 25.0, "b": 7.0}

    def test_telemetry_exports_fluid_metrics(self):
        tel = Telemetry()
        tracker = FluidTracker(telemetry=tel)
        tracker.admit(((0, 1),), CAPS, 0.0, 12.5, tenant="a")
        tracker.admit(((0, 1),), CAPS, 0.5, 12.5, tenant="b")
        tracker.drain()
        reg = tel.registry
        assert reg.get("fluid_flows_total").value == 2
        assert reg.get("fluid_contended_flows_total").value == 1
        assert reg.get("fluid_segments_total").value > 0
        assert reg.get("fluid_flow_reconvergences").count == 2
        assert reg.get("fluid_tenant_bytes_total", tenant="a").value == 12.5

    def test_peeks_never_touch_telemetry_or_accounting(self):
        tel = Telemetry()
        tracker = FluidTracker(telemetry=tel)
        tracker.admit(((0, 1),), CAPS, 0.0, 12.5)
        tracker.peek_transfer(((0, 1),), CAPS, 0.0, 12.5, 0.1)
        assert tracker.flows_total == 1
        assert tel.registry.get("fluid_flows_total").value == 1

    def test_segment_trail_only_when_asked(self):
        plain = FluidTracker()
        trail = FluidTracker(record_segments=True)
        for t in (plain, trail):
            t.admit(((0, 1),), CAPS, 0.0, 12.5)
            t.admit(((0, 1),), CAPS, 0.5, 12.5)
            t.drain()
        assert plain.segments == []
        assert plain.segments_total > 0  # the counter still meters
        assert [
            (s.t0, s.t1) for s in trail.segments
        ] == [(0.0, 0.5), (0.5, 1.5), (1.5, 2.0)]


class TestMeshFluidContention:
    def test_two_routed_paths_contend_on_their_shared_edge(self):
        devs = [rpi4(), desktop_gtx1080(), jetson_class(), rpi4()]
        mesh = ring_topology(devs, 100.0, 5.0)
        mesh.contention = FluidTracker()
        base = mesh.transfer_time(0, 1, 1e6)
        first = mesh.timed_transfer(0, 1, 1e6, 0.0)
        second = mesh.timed_transfer(0, 1, 1e6, 1e-4)
        assert first == base
        assert second > base
        assert mesh.contention.contended_total == 1
