"""Mid-flight re-convergence invariants for the fluid solver.

Seeded property tests over :meth:`FluidTracker.update_caps` — the event
core's entry point for applying a capacity step to in-flight flows at
its true instant:

* **byte conservation across a step** — a capacity update changes
  *rates*, never *bytes*: per flow, the rate integrated over the
  recorded segments still equals its payload exactly;
* **monotonicity on a shared bottleneck** — on a single shared link, a
  capacity *decrease* never makes any in-flight flow finish earlier,
  and an *increase* never makes one finish later (single-link only by
  design: on a multi-edge graph, slowing one flow can free a different
  edge and legitimately speed a rival up);
* **completion-instant determinism** — an update landing exactly on a
  flow's completion instant processes the completion *first* (the
  ledger's documented ordering), so the finish float is bit-identical
  with or without the update, and an admission sharing the update's
  instant prices at the *new* capacity (world changes before
  observers, the event core's priority convention).
"""

import numpy as np
import pytest

from repro.netsim.fluid import FluidTracker

SMALL_N = 20

_REL = 1e-9
_ABS = 1e-6

_E = (0, 1)


def _single_link_scenario(seed):
    """Random flows on one shared link + a mid-flight step; seed-pure."""
    rng = np.random.default_rng((seed, 99))
    cap = float(rng.uniform(1e6, 1e8))
    n = int(rng.integers(2, 8))
    admits = np.sort(rng.uniform(0.0, 2.0, n))
    sizes = rng.uniform(1e4, 1e7, n)
    return cap, [(float(t), float(s)) for t, s in zip(admits, sizes)], rng


def _admit_all(cap, flows):
    tracker = FluidTracker(record_segments=True)
    fids = [tracker.admit((_E,), {_E: cap}, t, nbytes) for t, nbytes
            in flows]
    return tracker, fids


@pytest.mark.parametrize("seed", range(SMALL_N))
def test_capacity_step_conserves_bytes(seed):
    """∫ rate dt == nbytes * 8 per flow, step or no step."""
    cap, flows, rng = _single_link_scenario(seed)
    tracker, fids = _admit_all(cap, flows)
    t_step = float(rng.uniform(flows[-1][0], flows[-1][0] + 1.0))
    factor = float(rng.uniform(0.2, 5.0))
    tracker.update_caps(t_step, {_E: cap * factor})
    tracker.drain()
    for fid, (start, nbytes) in zip(fids, flows):
        sent = sum(seg.rates[fid] * seg.duration
                   for seg in tracker.segments if fid in seg.rates)
        assert sent == pytest.approx(nbytes * 8.0,
                                     rel=_REL, abs=_ABS), (
            f"seed {seed} flow {fid}: {sent} bits integrated, "
            f"{nbytes * 8.0} admitted")


@pytest.mark.parametrize("seed", range(SMALL_N))
def test_cap_decrease_never_finishes_a_flow_earlier(seed):
    cap, flows, rng = _single_link_scenario(seed)
    base, base_fids = _admit_all(cap, flows)
    base.drain()
    baseline = base.finish_times()
    t_step = float(rng.uniform(flows[-1][0],
                               max(baseline.values())))
    stepped, fids = _admit_all(cap, flows)
    stepped.update_caps(t_step, {_E: cap * float(rng.uniform(0.1, 0.9))})
    stepped.drain()
    after = stepped.finish_times()
    for bf, sf in zip(base_fids, fids):
        if baseline[bf] <= t_step:
            # already done when the step landed: bit-identical
            assert after[sf] == baseline[bf]
        else:
            assert after[sf] >= baseline[bf] - _ABS, (
                f"seed {seed}: cap decrease moved finish "
                f"{baseline[bf]} -> {after[sf]} (earlier)")


@pytest.mark.parametrize("seed", range(SMALL_N))
def test_cap_increase_never_finishes_a_flow_later(seed):
    cap, flows, rng = _single_link_scenario(seed)
    base, base_fids = _admit_all(cap, flows)
    base.drain()
    baseline = base.finish_times()
    t_step = float(rng.uniform(flows[-1][0],
                               max(baseline.values())))
    stepped, fids = _admit_all(cap, flows)
    stepped.update_caps(t_step, {_E: cap * float(rng.uniform(1.1, 10.0))})
    stepped.drain()
    after = stepped.finish_times()
    for bf, sf in zip(base_fids, fids):
        if baseline[bf] <= t_step:
            assert after[sf] == baseline[bf]
        else:
            assert after[sf] <= baseline[bf] + _ABS, (
                f"seed {seed}: cap increase moved finish "
                f"{baseline[bf]} -> {after[sf]} (later)")


def test_update_on_completion_instant_processes_completion_first():
    """8e6 bits over an 8 Mbps link completes at exactly t=1.0; a cap
    step at 1.0 must not touch it — completions at the instant resolve
    before the update, deterministically."""
    plain = FluidTracker()
    fid = plain.admit((_E,), {_E: 8e6}, 0.0, 1e6)
    plain.drain()
    untouched = plain.finish_times()[fid]
    assert untouched == 1.0

    stepped = FluidTracker()
    fid = stepped.admit((_E,), {_E: 8e6}, 0.0, 1e6)
    stepped.update_caps(1.0, {_E: 4e6})
    stepped.drain()
    assert stepped.finish_times()[fid] == untouched  # bit-identical


def test_admission_at_the_update_instant_prices_at_the_new_cap():
    """World changes fire before observers at a shared instant: a flow
    admitted at the same time as the step sees the new capacity."""
    tracker = FluidTracker()
    tracker.update_caps(1.0, {_E: 4e6})
    fid = tracker.admit((_E,), {_E: 4e6}, 1.0, 1e6)
    assert tracker.finish_time(fid) == 1.0 + 8e6 / 4e6

    # replaying the same sequence yields the same floats
    again = FluidTracker()
    again.update_caps(1.0, {_E: 4e6})
    fid2 = again.admit((_E,), {_E: 4e6}, 1.0, 1e6)
    assert again.finish_time(fid2) == tracker.finish_time(fid)


def test_update_caps_rejects_non_positive_capacity():
    tracker = FluidTracker()
    with pytest.raises(ValueError, match="positive"):
        tracker.update_caps(0.0, {_E: 0.0})
    with pytest.raises(ValueError, match="positive"):
        tracker.update_caps(0.0, {_E: -5.0})


def test_update_in_the_ledgers_past_clamps():
    """Same rule as out-of-order admissions: the ledger's clock never
    runs backwards; the capacities still install."""
    tracker = FluidTracker()
    fid = tracker.admit((_E,), {_E: 8e6}, 0.0, 1e6)
    tracker.update_caps(0.5, {_E: 8e6})   # advances the ledger to 0.5
    tracker.update_caps(0.25, {_E: 4e6})  # in the past: clamps to 0.5
    tracker.drain()
    # 0.5 s at 8 Mbps (4e6 bits) + remaining 4e6 bits at 4 Mbps
    assert tracker.finish_times()[fid] == pytest.approx(0.5 + 1.0)
    assert tracker.caps_updates_total == 2
