"""Fault-aware mesh routing: failover, the fault overlay, and the
injector's link-level application.

Covers the mesh side of the chaos stack: down/degraded overlays feed
routing (multi-path failover with honest latency), ``reroute=False``
pins the ablation to static tables, the path cache can never serve a
stale route across a link mutation, and link-level partitions keep
mesh semantics (all incident edges sever) instead of silently
collapsing to the star's per-remote view.
"""

import pytest

from repro.devices import rpi4
from repro.faults import (CorrelatedFailure, FaultInjector, FaultSchedule,
                          LinkDegradation, LinkFailure, LinkFlap, Partition)
from repro.faults.resilience import NoRouteError, TransportError
from repro.netsim import MeshCluster, MeshLink, line_topology, \
    partial_mesh_topology, ring_topology


def _ring(n=4, bw=100.0, delay=10.0, reroute=True):
    return ring_topology([rpi4() for _ in range(n)], bw, delay,
                         reroute=reroute)


class TestFailoverRouting:
    def test_reroute_pays_honest_latency(self):
        """Killing the direct edge fails traffic over to the long way
        round the ring — 3 hops of real delay, not the dead link's 1."""
        mesh = _ring()
        direct = mesh.route_info(0, 1)
        assert direct.path == (0, 1) and not direct.rerouted

        mesh.apply_link_faults(down=[(0, 1)])
        rerouted = mesh.route_info(0, 1)
        assert rerouted.path == (0, 3, 2, 1)
        assert rerouted.rerouted
        assert rerouted.delay_ms == pytest.approx(3 * 10.0)
        assert mesh.hop_count(0, 1) == 3
        assert mesh.transfer_time(0, 1, 0) == pytest.approx(
            3 * mesh.transfer_time(0, 3, 0) - 2e-3)  # 3 hops, 1 rpc

    def test_untouched_pairs_keep_base_path(self):
        mesh = _ring()
        mesh.apply_link_faults(down=[(0, 1)])
        info = mesh.route_info(0, 3)
        assert info.path == (0, 3)
        assert not info.rerouted

    def test_recovery_restores_base_path(self):
        mesh = _ring()
        mesh.apply_link_faults(down=[(0, 1)])
        assert mesh.route_info(0, 1).rerouted
        mesh.apply_link_faults(down=[])
        info = mesh.route_info(0, 1)
        assert info.path == (0, 1)
        assert not info.rerouted

    def test_no_surviving_path_raises_typed_error(self):
        """Cutting both of a node's edges disconnects it: the transfer
        must fail with the typed NoRouteError, not a generic exception."""
        mesh = _ring()
        mesh.apply_link_faults(down=[(0, 1), (1, 2)])
        assert not mesh.has_route(0, 1)
        with pytest.raises(NoRouteError) as exc:
            mesh.transfer_time(0, 1, 1000)
        assert isinstance(exc.value, TransportError)
        assert (exc.value.src, exc.value.dst) == (0, 1)
        # the rest of the mesh still routes
        assert mesh.has_route(0, 2) and mesh.has_route(0, 3)

    def test_degraded_link_is_repriced_not_removed(self):
        mesh = _ring()
        base = mesh.transfer_time(0, 1, 1_000_000)
        mesh.apply_link_faults(degraded={(0, 1): (0.5, 20.0)})
        info = mesh.route_info(0, 1)
        assert info.path == (0, 1)          # still routable
        assert info.bandwidth_mbps == pytest.approx(50.0)
        assert info.delay_ms == pytest.approx(30.0)
        assert mesh.transfer_time(0, 1, 1_000_000) > base

    def test_routing_avoids_degraded_edge_when_cheaper(self):
        """Degradation feeds Dijkstra: a heavily delayed edge loses to
        a clean two-hop detour."""
        mesh = partial_mesh_topology([rpi4() for _ in range(4)],
                                     100.0, 10.0, chords=())
        mesh.apply_link_faults(degraded={(0, 1): (1.0, 50.0)})
        info = mesh.route_info(0, 1)
        assert info.path == (0, 3, 2, 1)
        assert info.delay_ms == pytest.approx(30.0)

    def test_degradation_induced_path_change_counts_as_reroute(self):
        """Regression: ``rerouted`` was derived from ``bool(self._down)``
        alone, so a path moved off its base route by a *degraded* (not
        down) link reported ``rerouted=False`` — reroute counters and
        the chaos benchmark's reroute accounting silently missed every
        degradation-induced failover."""
        mesh = _ring()
        mesh.apply_link_faults(degraded={(0, 1): (1.0, 50.0)})
        info = mesh.route_info(0, 1)
        assert info.path == (0, 3, 2, 1)   # Dijkstra avoided the edge
        assert info.rerouted               # ...and must say so

    def test_degraded_but_still_cheapest_path_is_not_a_reroute(self):
        """A degradation that does not move the path must not flag it."""
        mesh = _ring()
        mesh.apply_link_faults(degraded={(0, 1): (1.0, 5.0)})
        info = mesh.route_info(0, 1)
        assert info.path == (0, 1)
        assert not info.rerouted

    def test_apply_link_faults_change_detection(self):
        mesh = _ring()
        assert mesh.apply_link_faults(down=[(0, 1)]) is True
        assert mesh.apply_link_faults(down=[(1, 0)]) is False  # same edge
        assert mesh.apply_link_faults(down=[]) is True
        # unknown edges are ignored (schedule for a larger topology)
        assert mesh.apply_link_faults(down=[(7, 9)]) is False


class TestNoRerouteAblation:
    def test_static_tables_fail_on_dead_base_path(self):
        """With reroute=False the alternative path exists but is never
        taken: the base path crosses the dead link, so the pair fails."""
        mesh = _ring(reroute=False)
        mesh.apply_link_faults(down=[(0, 1)])
        with pytest.raises(NoRouteError):
            mesh.route_info(0, 1)
        # dynamic routing on the identical overlay survives
        dyn = _ring(reroute=True)
        dyn.apply_link_faults(down=[(0, 1)])
        assert dyn.has_route(0, 1)

    def test_static_tables_still_price_degradations(self):
        mesh = _ring(reroute=False)
        mesh.apply_link_faults(degraded={(0, 1): (0.25, 5.0)})
        info = mesh.route_info(0, 1)
        assert info.path == (0, 1) and not info.rerouted
        assert info.bandwidth_mbps == pytest.approx(25.0)


class TestRouteCacheInvalidation:
    def test_set_link_quality_drops_cached_route(self):
        """Regression: the path cache must not survive a base-link
        mutation.  Before the epoch/invalidate fix, the second
        ``route_info`` returned the stale pre-mutation path."""
        mesh = _ring()
        assert mesh.route_info(0, 1).path == (0, 1)  # warm the cache
        epoch = mesh.route_epoch
        mesh.set_link_quality(0, 1, delay_ms=100.0)
        assert mesh.route_epoch > epoch
        info = mesh.route_info(0, 1)
        assert info.path == (0, 3, 2, 1)  # detour is now cheaper
        assert info.delay_ms == pytest.approx(30.0)

    def test_fault_overlay_drops_cached_route(self):
        mesh = _ring()
        assert mesh.route_info(0, 1).hops == 1  # warm the cache
        mesh.apply_link_faults(down=[(0, 1)])
        assert mesh.route_info(0, 1).hops == 3

    def test_invalidate_routes_is_idempotent_on_epoch(self):
        mesh = _ring()
        e0 = mesh.route_epoch
        mesh.invalidate_routes()
        mesh.invalidate_routes()
        assert mesh.route_epoch == e0 + 2

    def test_condition_view_tracks_overlay(self):
        """The monitor's star-equivalent view reprices on reroute."""
        mesh = _ring()
        assert mesh.condition.delays_ms[0] == pytest.approx(10.0)
        mesh.apply_link_faults(down=[(0, 1)])
        cond = mesh.condition
        assert cond.delays_ms[0] == pytest.approx(30.0)  # via 0-3-2-1
        assert cond.delays_ms[2] == pytest.approx(10.0)  # 0-3 untouched
        # an unreachable remote keeps its fault-free base view
        mesh.apply_link_faults(down=[(0, 1), (1, 2)])
        assert mesh.condition.delays_ms[0] == pytest.approx(10.0)

    def test_set_condition_is_rejected(self):
        with pytest.raises(NotImplementedError):
            _ring().set_condition(None)


class TestLinkLevelPartitions:
    def test_partition_severs_every_incident_edge(self):
        """A partitioned relay loses *all* its mesh edges — the schedule
        must not collapse to the star's 'remote k is gone' semantics."""
        sched = FaultSchedule([Partition(1.0, 5.0, devices=(2,))])
        mesh = _ring()
        down = sched.down_links(2.0, edges=mesh.base_edges)
        assert down == frozenset({(1, 2), (2, 3)})
        # without the mesh's edge list there is nothing to sever
        assert sched.down_links(2.0) == frozenset()

    def test_partitioned_relay_blocks_transit(self):
        """Traffic relaying *through* the partitioned device reroutes,
        even though neither endpoint is partitioned."""
        sched = FaultSchedule([Partition(1.0, 5.0, devices=(2,))])
        mesh = _ring()
        mesh.apply_link_faults(down=sched.down_links(2.0, mesh.base_edges))
        info = mesh.route_info(1, 3)
        assert 2 not in info.path  # forced around the dead relay
        assert info.path == (1, 0, 3)

    def test_degrade_on_star_keeps_mesh_links_out(self):
        """A link-addressed degradation on a remote-remote edge has no
        star equivalent and must leave the condition untouched."""
        from repro.netsim import NetworkCondition
        cond = NetworkCondition((100.0, 100.0, 100.0), (5.0, 5.0, 5.0))
        sched = FaultSchedule([
            LinkDegradation(0.0, 10.0, link=(1, 2), bw_factor=0.1),
            LinkDegradation(0.0, 10.0, link=(0, 2), bw_factor=0.5),
        ])
        out = sched.degrade(cond, 1.0)
        assert out.bandwidths_mbps == (100.0, 50.0, 100.0)

    def test_star_addressed_degradation_hits_all_incident_edges(self):
        sched = FaultSchedule([
            LinkDegradation(0.0, 10.0, device=2, bw_factor=0.5,
                            extra_delay_ms=3.0)])
        mesh = _ring()
        deg = sched.link_degradations(1.0, mesh.base_edges)
        assert set(deg) == {(1, 2), (2, 3)}
        assert deg[(1, 2)] == (0.5, 3.0)


class TestInjectorOnMesh:
    def _schedule(self):
        return FaultSchedule([
            LinkFailure(1.0, 5.0, a=0, b=1),
            CorrelatedFailure(6.0, 8.0, devices=(2,), links=((2, 3),),
                              domain="relay"),
        ])

    def test_apply_to_installs_overlay(self):
        mesh = _ring()
        inj = FaultInjector(self._schedule())
        inj.advance(2.0)
        inj.apply_to(mesh)
        assert mesh.down_links == frozenset({(0, 1)})
        assert mesh.route_info(0, 1).rerouted
        inj.advance(5.5)
        inj.apply_to(mesh)
        assert mesh.down_links == frozenset()
        assert not mesh.route_info(0, 1).rerouted

    def test_blast_radius_is_atomic(self):
        """Device 2 and its incident links go down and come back on the
        same clock edges."""
        mesh = _ring()
        inj = FaultInjector(self._schedule())
        inj.advance(7.0)
        inj.apply_to(mesh)
        assert inj.is_down(2)
        # (2,3) explicit + (1,2) incident to the crashed device
        assert mesh.down_links == frozenset({(1, 2), (2, 3)})
        inj.advance(8.0)
        inj.apply_to(mesh)
        assert not inj.is_down(2)
        assert mesh.down_links == frozenset()

    def test_reachable_answers_path_level(self):
        """Once bound to a mesh, reachable() consults routing: a pair
        with every path severed is unreachable even though both devices
        are alive."""
        mesh = _ring()
        sched = FaultSchedule([LinkFailure(1.0, 5.0, a=0, b=1),
                               LinkFailure(1.0, 5.0, a=1, b=2)])
        inj = FaultInjector(sched)
        inj.advance(2.0)
        inj.apply_to(mesh)
        assert not inj.reachable(0, 1)
        assert inj.reachable(0, 3)

    def test_flap_transitions_reapply_within_one_window(self):
        """A LinkFlap changes the overlay *inside* one active window;
        the injector's idempotence key must track the computed overlay,
        not the active event set."""
        flap = LinkFlap(0.0, 100.0, a=0, b=1, p_fail=0.5, p_recover=0.5,
                        step_s=1.0, seed=3)
        mesh = _ring()
        inj = FaultInjector(FaultSchedule([flap]))
        seen = set()
        for t in range(40):
            inj.advance(float(t) + 0.5)
            inj.apply_to(mesh)
            seen.add(mesh.down_links)
        assert frozenset() in seen
        assert frozenset({(0, 1)}) in seen


class TestLineTopology:
    def test_no_alternative_path_means_no_route(self):
        """On a line the failover has nowhere to go: routing correctly
        reports the pair dead instead of inventing a path."""
        mesh = line_topology([rpi4() for _ in range(4)], 100.0, 10.0)
        mesh.apply_link_faults(down=[(1, 2)])
        assert mesh.has_route(0, 1)
        assert not mesh.has_route(0, 2)
        assert not mesh.has_route(0, 3)
        with pytest.raises(NoRouteError):
            mesh.transfer_time(0, 3, 10)


class TestFluidCapOverlay:
    def test_zero_bandwidth_degradation_skips_the_edge(self):
        """A fault overlay that degrades a surviving link's bandwidth
        to 0 must not crash the fluid re-convergence (the ledger
        rejects non-positive caps): the dead-but-present edge keeps its
        last-seen capacity, like a fully severed edge."""
        from repro.netsim.fluid import FluidTracker
        mesh = MeshCluster([rpi4() for _ in range(4)],
                           [MeshLink(i, (i + 1) % 4, 100.0, 10.0)
                            for i in range(4)],
                           contention=FluidTracker())
        mesh.apply_link_faults(degraded={(0, 1): (0.0, 0.0)})
        assert mesh.update_fluid_caps(1.0)
        caps = mesh.contention._caps
        assert (0, 1) not in caps
        assert caps[(1, 2)] == pytest.approx(100e6)


class TestLinkBreakers:
    def test_link_breaker_opens_and_recovers(self):
        from repro.faults.health import CircuitState, DeviceHealth
        h = DeviceHealth(num_devices=4, failure_threshold=2, cooldown_s=2.0)
        assert h.allow_link(0, 1, now=0.0)
        assert not h.record_link_failure(0, 1, now=0.1)
        assert h.record_link_failure(1, 0, now=0.2)  # unordered pair
        assert h.link_state(0, 1, 0.3) is CircuitState.OPEN
        assert not h.allow_link(0, 1, 0.3)
        assert h.drain_opened_links() == [(0, 1)]
        assert h.drain_opened_links() == []
        # cooldown -> probe -> closed
        assert h.link_state(0, 1, 2.5) is CircuitState.HALF_OPEN
        assert h.allow_link(0, 1, 2.5)
        h.record_link_success(0, 1, 2.6)
        assert h.link_state(0, 1, 2.7) is CircuitState.CLOSED
        # other links were never affected
        assert h.allow_link(0, 3, 0.3)
