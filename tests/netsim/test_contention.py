"""Shared-link contention: fair-share invariants and bit-identity.

Pins the two contracts the contention model stands on:

* a lone flow (or ``contention=None``) is priced **bit-identically** to
  the contention-free link model — the serving stack's floats cannot
  drift just because a tracker is attached;
* two simultaneous flows each get at least half the link (arrival-order
  fair share: the first keeps the full wire, the second sees half).
"""

import pytest

from repro.devices import rpi4
from repro.netsim import (Cluster, ContentionTracker, Link, MeshLink,
                          MeshCluster, NetworkCondition, SharedIngress)
from repro.netsim.contention import INGRESS_EDGE


MB = 1_000_000.0


def _cluster(tracker=None, n_remote=2, bw=100.0, delay=10.0):
    devices = [rpi4() for _ in range(n_remote + 1)]
    condition = NetworkCondition.uniform(n_remote, bw, delay)
    return Cluster(devices, condition, contention=tracker)


class TestContentionTracker:
    def test_empty_tracker_sees_no_concurrency(self):
        tracker = ContentionTracker()
        assert tracker.concurrency((0, 1), 0.0) == 0
        assert tracker.share((0, 1), 0.0) == 1

    def test_in_flight_flow_raises_share_only_while_in_flight(self):
        tracker = ContentionTracker()
        tracker.register([(0, 1)], start=1.0, end=2.0)
        assert tracker.share((0, 1), 0.5) == 1   # not started yet
        assert tracker.share((0, 1), 1.0) == 2   # start is inclusive
        assert tracker.share((0, 1), 1.5) == 2
        assert tracker.share((0, 1), 2.0) == 1   # end is exclusive

    def test_edges_are_canonicalized(self):
        tracker = ContentionTracker()
        tracker.register([(1, 0)], start=0.0, end=1.0)
        assert tracker.share((0, 1), 0.5) == 2
        assert tracker.share((1, 0), 0.5) == 2

    def test_flows_only_contend_on_shared_edges(self):
        tracker = ContentionTracker()
        tracker.register([(0, 1)], start=0.0, end=1.0)
        assert tracker.share((0, 2), 0.5) == 1

    def test_finished_flows_are_pruned_lazily(self):
        tracker = ContentionTracker()
        for k in range(50):
            tracker.register([(0, 1)], start=float(k), end=float(k) + 0.5)
        # registering at t=49 pruned everything that ended before it
        assert len(tracker._flows[(0, 1)]) == 1
        assert tracker.flows_total == 50

    def test_accounting_counts_contended_flows_and_peak(self):
        tracker = ContentionTracker()
        tracker.register([(0, 1)], 0.0, 1.0, share=1)
        tracker.register([(0, 1)], 0.5, 1.5, share=2)
        tracker.register([(0, 1)], 0.6, 1.6, share=3)
        assert tracker.flows_total == 3
        assert tracker.contended_total == 2
        assert tracker.peak_share[(0, 1)] == 3
        assert tracker.stats()["peak_share"] == 3

    def test_tenant_bytes_ledger(self):
        tracker = ContentionTracker()
        tracker.register([(0, 1)], 0.0, 1.0, nbytes=100.0, tenant="a")
        tracker.register([(0, 1)], 0.1, 1.1, nbytes=50.0, tenant="a")
        tracker.register([(0, 1)], 0.2, 1.2, nbytes=25.0, tenant="b")
        assert tracker.tenant_bytes() == {"a": 150.0, "b": 25.0}


class TestStarContention:
    def test_no_tracker_is_bit_identical(self):
        plain = _cluster()
        timed = _cluster(tracker=None)
        assert timed.timed_transfer(0, 1, MB, now=0.0) \
            == plain.transfer_time(0, 1, MB)

    def test_lone_flow_is_bit_identical(self):
        """Zero concurrency must delegate to transfer_time — not even a
        float representation change."""
        cluster = _cluster(tracker=ContentionTracker())
        expected = cluster.transfer_time(0, 1, MB)
        assert cluster.timed_transfer(0, 1, MB, now=0.0) == expected

    def test_two_simultaneous_flows_each_get_at_least_half(self):
        """Arrival-order fair share: the first keeps the full wire, the
        second is priced at half bandwidth — neither below half."""
        cluster = _cluster(tracker=ContentionTracker())
        solo = cluster.transfer_time(0, 1, MB)
        first = cluster.timed_transfer(0, 1, MB, now=0.0)
        second = cluster.timed_transfer(0, 1, MB, now=0.0)
        assert first == solo
        link = cluster.link_to(1)
        latency = (link.delay_ms + link.rpc_overhead_ms) / 1e3
        half_bw_wire = MB * 8.0 / (link.bandwidth_bps / 2)
        assert second == pytest.approx(latency + half_bw_wire)
        # wire time no worse than half the link for either flow
        assert (first - latency) <= half_bw_wire + 1e-12
        assert (second - latency) <= half_bw_wire + 1e-12

    def test_disjoint_spokes_do_not_contend(self):
        cluster = _cluster(tracker=ContentionTracker())
        cluster.timed_transfer(0, 1, MB, now=0.0)
        assert cluster.timed_transfer(0, 2, MB, now=0.0) \
            == cluster.transfer_time(0, 2, MB)

    def test_relay_transfer_contends_on_either_spoke(self):
        """A remote<->remote relay occupies both spokes: traffic already
        on the destination spoke slows it down."""
        cluster = _cluster(tracker=ContentionTracker())
        base = cluster.transfer_time(1, 2, MB)
        cluster.timed_transfer(0, 2, MB, now=0.0)   # busy spoke 0-2
        relayed = cluster.timed_transfer(1, 2, MB, now=0.0)
        assert relayed > base

    def test_flow_expiry_restores_full_bandwidth(self):
        cluster = _cluster(tracker=ContentionTracker())
        t = cluster.timed_transfer(0, 1, MB, now=0.0)
        later = t + 1.0
        assert cluster.timed_transfer(0, 1, MB, now=later) \
            == cluster.transfer_time(0, 1, MB)

    def test_same_device_transfer_is_free(self):
        cluster = _cluster(tracker=ContentionTracker())
        assert cluster.timed_transfer(1, 1, MB, now=0.0) == 0.0


class TestMeshContention:
    def _mesh(self, tracker):
        # 0 -1- 1 -1- 2 relay chain plus a slow direct 0-2 edge: both
        # routed paths 0->2 and 1->2 share the 1-2 bottleneck edge
        devices = [rpi4() for _ in range(3)]
        links = [MeshLink(0, 1, 100.0, 5.0), MeshLink(1, 2, 100.0, 5.0)]
        return MeshCluster(devices, links, contention=tracker)

    def test_lone_mesh_flow_is_bit_identical(self):
        mesh = self._mesh(ContentionTracker())
        expected = mesh.transfer_time(0, 2, MB)
        assert mesh.timed_transfer(0, 2, MB, now=0.0) == expected

    def test_paths_sharing_a_bottleneck_edge_contend_there(self):
        """0->2 routes 0-1-2 and 1->2 routes 1-2: different endpoint
        pairs, same bottleneck edge — the second flow must pay for the
        first one's occupancy of 1-2."""
        tracker = ContentionTracker()
        mesh = self._mesh(tracker)
        base = mesh.transfer_time(1, 2, MB)
        mesh.timed_transfer(0, 2, MB, now=0.0)      # occupies 0-1 and 1-2
        shared = mesh.timed_transfer(1, 2, MB, now=0.0)
        assert shared > base
        assert tracker.contended_total == 1
        assert tracker.peak_share[(1, 2)] == 2

    def test_disjoint_mesh_paths_do_not_contend(self):
        tracker = ContentionTracker()
        mesh = self._mesh(tracker)
        mesh.timed_transfer(0, 1, MB, now=0.0)      # occupies only 0-1
        assert mesh.timed_transfer(1, 2, MB, now=0.0) \
            == mesh.transfer_time(1, 2, MB)


class TestSharedIngress:
    def _ingress(self, tracker, bw=40.0, delay=5.0, payload=256 * 1024.0):
        return SharedIngress(Link(bandwidth_mbps=bw, delay_ms=delay),
                             tracker, payload_bytes=payload)

    def test_rejects_negative_payload(self):
        with pytest.raises(ValueError, match="payload_bytes"):
            self._ingress(None, payload=-1.0)

    def test_lone_upload_matches_the_link_model(self):
        ingress = self._ingress(ContentionTracker())
        assert ingress.upload_time(0.0) \
            == ingress.link.transfer_time(ingress.payload_bytes)

    def test_upload_time_does_not_commit_the_flow(self):
        """upload_time is a peek; only admit() occupies the wire."""
        tracker = ContentionTracker()
        ingress = self._ingress(tracker)
        t = ingress.upload_time(0.0)
        assert ingress.upload_time(0.0) == t      # still uncontended
        ingress.admit(0.0)
        assert ingress.upload_time(0.0) > t       # now it shares

    def test_concurrent_uploads_each_get_at_least_half(self):
        ingress = self._ingress(ContentionTracker())
        solo = ingress.admit(0.0, tenant="a")
        second = ingress.admit(0.0, tenant="b")
        link = ingress.link
        latency = (link.delay_ms + link.rpc_overhead_ms) / 1e3
        half_wire = ingress.payload_bytes * 8.0 / (link.bandwidth_bps / 2)
        assert solo < second <= latency + half_wire + 1e-12

    def test_per_tenant_payloads(self):
        ingress = SharedIngress(
            Link(bandwidth_mbps=40.0, delay_ms=5.0), None,
            payload_bytes=1024.0,
            per_tenant_bytes={"big": 4096.0})
        assert ingress.upload_time(0.0, tenant="big") \
            > ingress.upload_time(0.0, tenant="small-unknown")

    def test_ingress_edge_cannot_collide_with_devices(self):
        tracker = ContentionTracker()
        ingress = self._ingress(tracker)
        ingress.admit(0.0, tenant="a")
        assert tracker.concurrency(INGRESS_EDGE, 0.0) == 1
        assert tracker.concurrency((0, 1), 0.0) == 0
        assert INGRESS_EDGE[0] < 0
