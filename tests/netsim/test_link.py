"""Links: transfer-time arithmetic and validation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import LOOPBACK, Link


class TestLink:
    def test_transfer_time_components(self):
        link = Link(bandwidth_mbps=100, delay_ms=10, rpc_overhead_ms=1)
        # 1 MB over 100 Mbps = 80 ms wire + 11 ms fixed
        t = link.transfer_time(1_000_000)
        assert t == pytest.approx(0.011 + 0.08)

    def test_zero_bytes_still_pays_delay(self):
        link = Link(bandwidth_mbps=100, delay_ms=10)
        assert link.transfer_time(0) == pytest.approx(0.011)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            Link(bandwidth_mbps=0, delay_ms=1)

    def test_invalid_delay(self):
        with pytest.raises(ValueError):
            Link(bandwidth_mbps=10, delay_ms=-1)

    def test_with_conditions(self):
        link = Link(100, 10)
        l2 = link.with_conditions(bandwidth_mbps=50)
        assert l2.bandwidth_mbps == 50 and l2.delay_ms == 10
        l3 = link.with_conditions(delay_ms=5)
        assert l3.bandwidth_mbps == 100 and l3.delay_ms == 5

    def test_with_conditions_revalidates(self):
        """Updated conditions re-run the invariants: a fault schedule's
        ``bw_factor`` can never drive a link to zero or below."""
        link = Link(100, 10)
        with pytest.raises(ValueError):
            link.with_conditions(bandwidth_mbps=0)
        with pytest.raises(ValueError):
            link.with_conditions(bandwidth_mbps=-5)
        with pytest.raises(ValueError):
            link.with_conditions(delay_ms=-1)
        # the original is untouched by the failed update
        assert link.bandwidth_mbps == 100 and link.delay_ms == 10

    def test_loopback_free(self):
        assert LOOPBACK.transfer_time(10 ** 9) < 1e-2

    @given(st.floats(1, 1000), st.floats(0, 200), st.integers(0, 10 ** 8))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_bytes_and_bandwidth(self, bw, delay, nbytes):
        link = Link(bw, delay)
        assert link.transfer_time(nbytes + 1000) >= link.transfer_time(nbytes)
        faster = Link(bw * 2, delay)
        assert faster.transfer_time(nbytes) <= link.transfer_time(nbytes)
