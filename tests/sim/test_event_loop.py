"""EventLoop: ordering, tie-breaking, clamping, clock integration."""

import pytest

from repro.runtime.clock import SimulatedClock
from repro.sim import EventLoop


def test_events_fire_in_time_order_regardless_of_schedule_order():
    loop = EventLoop()
    fired = []
    loop.schedule(3.0, lambda t: fired.append(("c", t)))
    loop.schedule(1.0, lambda t: fired.append(("a", t)))
    loop.schedule(2.0, lambda t: fired.append(("b", t)))
    assert loop.advance_to(5.0) == 3
    assert fired == [("a", 1.0), ("b", 2.0), ("c", 3.0)]
    assert loop.now == 5.0


def test_equal_time_ties_break_by_priority_then_insertion():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, lambda t: fired.append("observer-first-scheduled"),
                  priority=10)
    loop.schedule(1.0, lambda t: fired.append("world-a"), priority=0)
    loop.schedule(1.0, lambda t: fired.append("world-b"), priority=0)
    loop.advance_to(1.0)
    # lower priority fires first; equal priorities keep insertion order
    assert fired == ["world-a", "world-b", "observer-first-scheduled"]


def test_callback_receives_scheduled_time_not_advance_target():
    loop = EventLoop()
    seen = []
    loop.schedule(3.0, seen.append)
    loop.advance_to(3.4)
    assert seen == [3.0]
    assert loop.now == 3.4


def test_advance_to_fires_events_exactly_at_the_target():
    loop = EventLoop()
    seen = []
    loop.schedule(2.0, seen.append)
    loop.advance_to(2.0)
    assert seen == [2.0]


def test_advance_to_the_past_clamps_and_fires_nothing():
    loop = EventLoop()
    loop.advance_to(5.0)
    seen = []
    loop.schedule(6.0, seen.append)
    assert loop.advance_to(3.0) == 0
    assert loop.now == 5.0
    assert seen == []
    assert loop.pending == 1


def test_scheduling_into_the_past_is_rejected():
    loop = EventLoop()
    loop.advance_to(4.0)
    with pytest.raises(ValueError, match="past"):
        loop.schedule(3.0, lambda t: None)
    # scheduling exactly at now is fine (fires on the next advance)
    ev = loop.schedule(4.0, lambda t: None)
    assert ev.time == 4.0


def test_negative_relative_advance_is_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError):
        loop.advance(-1.0)


def test_callbacks_can_schedule_into_the_current_window():
    loop = EventLoop()
    fired = []

    def cascade(t):
        fired.append(("first", t))
        loop.schedule(t + 0.5, lambda tt: fired.append(("chained", tt)))

    loop.schedule(1.0, cascade)
    loop.advance_to(2.0)
    assert fired == [("first", 1.0), ("chained", 1.5)]


def test_shared_clock_moves_with_the_loop_and_vice_versa():
    clock = SimulatedClock()
    loop = EventLoop(clock)
    times = []
    loop.schedule(2.0, times.append)
    # someone else (the serving facade) advances the shared clock past
    # the event; the event is now "due" and fires on the next advance
    clock.advance_to(1.0)
    assert loop.now == 1.0
    loop.advance_to(2.5)
    assert times == [2.0]
    assert clock.now == 2.5


def test_event_older_than_clock_fires_without_rewinding():
    """The batched overlap path resets the shared clock forward past a
    pending event; the event still fires (at its own scheduled time)
    and the clock never moves backwards."""
    clock = SimulatedClock()
    loop = EventLoop(clock)
    times = []
    loop.schedule(2.0, times.append)
    clock.reset(3.0)  # overlap path jumped over the event
    loop.advance_to(3.5)
    assert times == [2.0]
    assert clock.now == 3.5


def test_run_drains_everything_in_order():
    loop = EventLoop()
    fired = []
    for t in (3.0, 1.0, 2.0):
        loop.schedule(t, fired.append)
    assert loop.run() == 3
    assert fired == [1.0, 2.0, 3.0]
    assert loop.pending == 0
    assert len(loop) == 0
    assert loop.fired_total == 3


def test_peek_time_and_counters():
    loop = EventLoop()
    assert loop.peek_time() is None
    loop.schedule(5.0, lambda t: None)
    loop.schedule(1.0, lambda t: None)
    assert loop.peek_time() == 1.0
    assert loop.pending == 2
    loop.advance_to(1.0)
    assert loop.peek_time() == 5.0
    assert loop.fired_total == 1


def test_no_events_advance_is_plain_clock_advance():
    """The byte-identity guarantee: an empty loop only moves the clock."""
    clock = SimulatedClock()
    loop = EventLoop(clock)
    assert loop.advance_to(7.25) == 0
    assert clock.now == 7.25
    assert loop.fired_total == 0
