"""Event sources: world schedules become scheduled events."""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.schedule import DeviceCrash, FaultSchedule, Straggler
from repro.netsim.contention import INGRESS_EDGE, ContentionTracker, \
    SharedIngress
from repro.netsim.fluid import FluidTracker
from repro.netsim.link import Link
from repro.sim import (PRIORITY_OBSERVER, PRIORITY_WORLD, EventLoop,
                       schedule_condition_trace, schedule_control_ticks,
                       schedule_fault_transitions, schedule_ingress_trace,
                       schedule_monitor_caps)


class _Cluster:
    def __init__(self):
        self.caps_updates = []

    def update_fluid_caps(self, now, tracker=None):
        self.caps_updates.append(now)
        return True


class _System:
    def __init__(self, faults=None):
        self.cluster = _Cluster()
        self.conditions = []
        self.faults = faults
        self._base_condition = "base"

    def update_condition(self, condition):
        self.conditions.append(condition)


class _Recorder:
    def __init__(self):
        self.seen = []

    def on_condition(self, t, index, condition):
        self.seen.append((t, index, condition))


class _Condition:
    """Distinct, comparable trace cells (only identity matters here)."""

    def __init__(self, tag):
        self.tag = tag
        self.bandwidths_mbps = (float(tag),)
        self.delays_ms = (1.0,)

    def __eq__(self, other):
        return isinstance(other, _Condition) and other.tag == self.tag

    def __hash__(self):
        return hash(self.tag)


# -- condition trace -------------------------------------------------------
def test_condition_trace_schedules_one_event_per_cell_change():
    loop = EventLoop()
    system = _System()
    a, b = _Condition(1), _Condition(2)
    trace = [a, a, a, b, b, a]  # changes at cells 0, 3, 5
    events = schedule_condition_trace(loop, system, trace, period_s=0.5)
    assert [e.time for e in events] == [0.0, 1.5, 2.5]
    assert all(e.priority == PRIORITY_WORLD for e in events)
    loop.advance_to(10.0)
    assert system.conditions == [a, b, a]
    # every step re-converged the cluster's fluid caps at its instant
    assert system.cluster.caps_updates == [0.0, 1.5, 2.5]


def test_condition_trace_records_steps_at_their_true_instants():
    loop = EventLoop()
    system = _System()
    rec = _Recorder()
    trace = [_Condition(1), _Condition(2)]
    schedule_condition_trace(loop, system, trace, period_s=0.25,
                             recorder=rec)
    loop.advance_to(1.0)
    assert rec.seen == [(0.0, 0, trace[0]), (0.25, 1, trace[1])]


def test_condition_step_survives_float_rounded_fire_times():
    # int((3 * 0.7) / 0.7) == 2: recomputing the cell from the fire
    # time re-applied the previous cell and lost the transition.  The
    # scheduled event must carry its own index instead.
    loop = EventLoop()
    system = _System()
    rec = _Recorder()
    a, b = _Condition(1), _Condition(2)
    trace = [a, a, a, b]
    schedule_condition_trace(loop, system, trace, period_s=0.7,
                             recorder=rec)
    loop.advance_to(10.0)
    assert system.conditions == [a, b]
    assert [(i, c) for _, i, c in rec.seen] == [(0, a), (3, b)]


def test_mid_advance_step_applies_at_the_step_instant():
    loop = EventLoop()
    system = _System()
    trace = [_Condition(1), _Condition(2)]
    schedule_condition_trace(loop, system, trace, period_s=1.0)
    loop.advance_to(1.7)  # the t=1.0 step fires on the way
    assert system.cluster.caps_updates == [0.0, 1.0]


# -- fault transitions -----------------------------------------------------
def test_fault_transitions_fire_at_onsets_and_recoveries():
    schedule = FaultSchedule([
        DeviceCrash(1.0, 2.0, device=1),
        Straggler(1.5, 3.0, device=1, slowdown=2.0),
    ])
    injector = FaultInjector(schedule)
    applied = []
    system = _System(faults=injector)
    system.cluster.set_condition = lambda c: None

    # intercept apply_to: the real one needs a full Cluster
    injector.apply_to = lambda cluster, base: applied.append(injector.now)

    loop = EventLoop()
    events = schedule_fault_transitions(loop, system)
    assert [e.time for e in events] == [1.0, 1.5, 2.0, 3.0]
    loop.advance_to(10.0)
    assert applied == [1.0, 1.5, 2.0, 3.0]
    assert system.cluster.caps_updates == [1.0, 1.5, 2.0, 3.0]


def test_no_injector_schedules_nothing():
    loop = EventLoop()
    assert schedule_fault_transitions(loop, _System(faults=None)) == []
    assert loop.pending == 0


# -- control ticks ---------------------------------------------------------
class _Control:
    def __init__(self, period_s):
        self.period_s = period_s
        self.ticks = []

    def maybe_tick(self, now, **kw):
        self.ticks.append(now)
        return True


def test_control_ticks_keep_cadence_through_idle_gaps():
    loop = EventLoop()
    control = _Control(period_s=0.5)
    events = schedule_control_ticks(loop, control, horizon_s=2.0)
    assert [e.time for e in events] == [0.5, 1.0, 1.5, 2.0]
    assert all(e.priority == PRIORITY_OBSERVER for e in events)
    loop.advance_to(2.0)
    assert control.ticks == [0.5, 1.0, 1.5, 2.0]


def test_control_ticks_land_on_true_multiples_without_drift():
    # accumulating t += period_s compounds float error: with
    # period 0.1, horizon 3.0 tick 6 lands off 0.6 and the final tick
    # at 3.0 is skipped outright.  Ticks must be exact k * period_s.
    loop = EventLoop()
    control = _Control(period_s=0.1)
    events = schedule_control_ticks(loop, control, horizon_s=3.0)
    assert [e.time for e in events] == [k * 0.1 for k in range(1, 31)]
    assert events[-1].time == 3.0


def test_control_ticks_none_control_is_a_noop():
    loop = EventLoop()
    assert schedule_control_ticks(loop, None, horizon_s=2.0) == []


# -- ingress capacity trace ------------------------------------------------
def test_ingress_trace_steps_capacity_and_reconverges_fluid():
    loop = EventLoop()
    tracker = FluidTracker()
    ingress = SharedIngress(Link(bandwidth_mbps=40.0, delay_ms=5.0),
                            tracker, payload_bytes=512 * 1024.0)
    events = schedule_ingress_trace(loop, ingress, [40.0, 5.0, 40.0],
                                    period_s=1.0)
    assert [e.time for e in events] == [0.0, 1.0, 2.0]
    ingress.admit(0.5)  # an upload in flight across the t=1.0 step
    loop.advance_to(1.0)
    assert ingress.link.bandwidth_mbps == 5.0
    # the in-flight flow re-converged at the step instant
    assert tracker.caps_updates_total >= 1
    assert tracker._caps[INGRESS_EDGE] == 5e6
    loop.advance_to(2.0)
    assert ingress.link.bandwidth_mbps == 40.0


def test_ingress_step_survives_float_rounded_fire_times():
    # same rounding trap as the condition trace: the cell change at
    # idx 3, period 0.7 fires at 2.0999... which indexes back to cell 2
    # when recomputed from time — the step must carry its own index.
    loop = EventLoop()
    ingress = SharedIngress(Link(bandwidth_mbps=40.0, delay_ms=5.0),
                            ContentionTracker(), payload_bytes=1024.0)
    schedule_ingress_trace(loop, ingress, [40.0, 40.0, 40.0, 5.0],
                           period_s=0.7)
    loop.advance_to(10.0)
    assert ingress.link.bandwidth_mbps == 5.0


def test_ingress_trace_with_snapshot_tracker_only_steps_the_link():
    loop = EventLoop()
    tracker = ContentionTracker()
    ingress = SharedIngress(Link(bandwidth_mbps=40.0, delay_ms=5.0),
                            tracker, payload_bytes=1024.0)
    schedule_ingress_trace(loop, ingress, [40.0, 5.0], period_s=1.0)
    loop.advance_to(1.0)
    assert ingress.link.bandwidth_mbps == 5.0  # no re-convergence surface


# -- monitor-fed caps ------------------------------------------------------
class _Estimate:
    def __init__(self, bandwidths_mbps):
        self.bandwidths_mbps = bandwidths_mbps


class _Monitor:
    def __init__(self, bandwidths_mbps):
        self._bw = bandwidths_mbps
        self.probes = []

    def probe_all(self, now):
        self.probes.append(now)

    def estimate(self):
        return _Estimate(self._bw)


def test_monitor_caps_push_observed_bandwidths_into_the_ledger():
    loop = EventLoop()
    system = _System()
    system.monitor = _Monitor((80.0, 20.0))
    tracker = FluidTracker()
    events = schedule_monitor_caps(loop, system, tracker, period_s=0.5,
                                   horizon_s=1.5)
    assert [e.time for e in events] == [0.5, 1.0, 1.5]
    loop.advance_to(1.5)
    assert system.monitor.probes == [0.5, 1.0, 1.5]
    assert tracker.caps_updates_total == 3
    assert tracker._caps[(0, 1)] == 80e6
    assert tracker._caps[(0, 2)] == 20e6


def test_monitor_caps_reject_non_fluid_trackers_and_bad_periods():
    loop = EventLoop()
    system = _System()
    system.monitor = _Monitor((10.0,))
    with pytest.raises(ValueError, match="fluid"):
        schedule_monitor_caps(loop, system, ContentionTracker(),
                              period_s=0.5, horizon_s=1.0)
    with pytest.raises(ValueError, match="positive"):
        schedule_monitor_caps(loop, system, FluidTracker(),
                              period_s=0.0, horizon_s=1.0)
