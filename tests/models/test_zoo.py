"""Fixed-model profiles: totals calibrated against published numbers."""

import pytest

from repro.models import MODEL_ZOO, get_model


# (name, GMACs, Mparams, top-1 %) — published references the paper uses.
PUBLISHED = [
    ("mobilenet_v3_large", 0.219, 5.4, 75.2),
    ("resnet50", 4.1, 25.6, 76.1),
    ("inception_v3", 5.7, 27.2, 77.3),
    ("densenet161", 7.8, 28.7, 77.1),
    ("resnext101_32x8d", 16.4, 88.8, 79.3),
]


class TestZooCalibration:
    @pytest.mark.parametrize("name,gmacs,mparams,acc", PUBLISHED)
    def test_flops_within_10pct(self, name, gmacs, mparams, acc):
        g = get_model(name)
        measured = g.total_flops / 2e9  # our convention: flops = 2*MACs
        assert measured == pytest.approx(gmacs, rel=0.10)

    @pytest.mark.parametrize("name,gmacs,mparams,acc", PUBLISHED)
    def test_params_within_10pct(self, name, gmacs, mparams, acc):
        g = get_model(name)
        measured = g.total_weight_bytes / 4e6
        assert measured == pytest.approx(mparams, rel=0.10)

    @pytest.mark.parametrize("name,gmacs,mparams,acc", PUBLISHED)
    def test_accuracy_tag(self, name, gmacs, mparams, acc):
        assert get_model(name).accuracy == acc


class TestZooStructure:
    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model("vgg16")

    @pytest.mark.parametrize("name", list(MODEL_ZOO))
    def test_head_is_fused_tail(self, name):
        g = get_model(name)
        assert g.blocks[-1].fused and g.blocks[-2].fused
        assert not g.blocks[0].fused

    @pytest.mark.parametrize("name", list(MODEL_ZOO))
    def test_spatial_dims_monotone_nonincreasing(self, name):
        g = get_model(name)
        hs = [b.out_hw[0] for b in g.blocks if not b.fused]
        assert all(a >= b for a, b in zip(hs, hs[1:]))

    @pytest.mark.parametrize("name", list(MODEL_ZOO))
    def test_positive_flops(self, name):
        assert all(b.flops > 0 for b in get_model(name).blocks)

    def test_accuracy_ordering_matches_paper(self):
        """The paper's accuracy ladder: MBV3 < ResNet50 < DenseNet161 <
        Inception < ResNeXt101."""
        accs = {n: get_model(n).accuracy for n in MODEL_ZOO}
        assert (accs["mobilenet_v3_large"] < accs["resnet50"]
                < accs["densenet161"] < accs["inception_v3"]
                < accs["resnext101_32x8d"])

    def test_resolution_variants(self):
        from repro.models import mobilenet_v3_large
        g = mobilenet_v3_large(resolution=160)
        assert g.input_hw == (160, 160)
        assert g.total_flops < mobilenet_v3_large(224).total_flops
