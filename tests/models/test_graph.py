"""ModelGraph / ComputeBlock invariants."""

import pytest

from repro.models import ComputeBlock, ModelGraph, conv_flops, linear_flops


def _block(name="b", flops=1e6, hw=(8, 8), ch=16, **kw):
    return ComputeBlock(name, flops, hw, ch, **kw)


class TestComputeBlock:
    def test_out_elements(self):
        b = _block(hw=(7, 5), ch=3)
        assert b.out_elements == 7 * 5 * 3

    def test_scaled(self):
        b = _block(flops=100.0)
        assert b.scaled(1.5).flops == 150.0
        assert b.flops == 100.0  # original untouched

    def test_frozen(self):
        b = _block()
        with pytest.raises(Exception):
            b.flops = 0

    def test_default_halo(self):
        assert _block().halo == 1


class TestModelGraph:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ModelGraph("m", [], 75.0)

    @pytest.mark.parametrize("acc", [0.0, -1.0, 101.0])
    def test_bad_accuracy_rejected(self, acc):
        with pytest.raises(ValueError):
            ModelGraph("m", [_block()], acc)

    def test_aggregates(self):
        g = ModelGraph("m", [_block(flops=10, weight_bytes=4),
                             _block(flops=20, weight_bytes=8)], 70.0)
        assert g.total_flops == 30
        assert g.total_weight_bytes == 12
        assert len(g) == 2

    def test_input_elements(self):
        g = ModelGraph("m", [_block()], 70.0, input_hw=(10, 12), input_ch=3)
        assert g.input_elements == 360

    def test_split_points(self):
        g = ModelGraph("m", [_block(), _block(), _block()], 70.0)
        assert g.split_points() == [0, 1, 2, 3]

    def test_partitionable_indices(self):
        g = ModelGraph("m", [_block(), _block(partitionable=False),
                             _block()], 70.0)
        assert g.partitionable_indices() == [0, 2]

    def test_iteration_and_indexing(self):
        blocks = [_block(name=f"b{i}") for i in range(4)]
        g = ModelGraph("m", blocks, 70.0)
        assert [b.name for b in g] == ["b0", "b1", "b2", "b3"]
        assert g[2].name == "b2"


class TestFlopHelpers:
    def test_conv_flops_formula(self):
        # 2 * OH * OW * IC/g * OC * K^2
        assert conv_flops(8, 8, 3, 16, 3) == 2 * 8 * 8 * 3 * 16 * 9

    def test_conv_flops_stride(self):
        assert conv_flops(8, 8, 4, 4, 1, stride=2) == 2 * 4 * 4 * 4 * 4

    def test_conv_flops_groups(self):
        full = conv_flops(8, 8, 16, 16, 3, groups=1)
        dw = conv_flops(8, 8, 16, 16, 3, groups=16)
        assert full == 16 * dw

    def test_linear_flops(self):
        assert linear_flops(100, 10) == 2000
