"""ViT extension: profiles and patch-parallel (global attention)
partitioning semantics in the simulator."""

import pytest

from repro.devices import rpi4
from repro.models import vit_base_16, vit_profile, vit_small_16
from repro.netsim import Cluster, NetworkCondition
from repro.partition import (Grid, simulate_latency, single_device_plan,
                             spatial_plan)


class TestViTProfiles:
    def test_vit_base_calibration(self):
        v = vit_base_16()
        assert v.total_flops / 2e9 == pytest.approx(17.5, rel=0.1)
        assert v.total_weight_bytes / 4e6 == pytest.approx(86.0, rel=0.1)
        assert v.accuracy == 77.9

    def test_vit_small_smaller(self):
        assert vit_small_16().total_flops < vit_base_16().total_flops / 3

    def test_transformer_blocks_carry_sync(self):
        v = vit_base_16()
        trunk = [b for b in v.blocks if b.name.startswith("block")]
        assert len(trunk) == 12
        assert all(b.sync_elements > 0 for b in trunk)
        assert v.blocks[0].sync_elements == 0  # patch embed is local

    def test_custom_profile(self):
        v = vit_profile("tiny", depth=2, hidden=64, mlp_ratio=2,
                        accuracy=50.0, resolution=64, patch=16)
        assert len(v) == 4  # embed + 2 blocks + head


class TestPatchParallelSimulation:
    def _cluster(self, bw):
        return Cluster([rpi4() for _ in range(5)],
                       NetworkCondition((bw,) * 4, (2.0,) * 4))

    def test_patch_parallel_speedup_on_fast_links(self):
        v = vit_small_16()
        cl = self._cluster(1000.0)
        single = simulate_latency(v, single_device_plan(v), cl).total_s
        pp = simulate_latency(v, spatial_plan(v, Grid(2, 2), [0, 1, 2, 3]),
                              cl).total_s
        assert pp < single / 2.5

    def test_kv_exchange_priced_per_block(self):
        """Partitioned attention must move far more bytes than a conv
        model of similar activation size would."""
        v = vit_small_16()
        cl = self._cluster(100.0)
        rep = simulate_latency(v, spatial_plan(v, Grid(2, 2), [0, 1, 2, 3]),
                               cl)
        # 12 blocks x 4 tiles x 3 peers = 144 sync transfers + scatter
        assert rep.num_transfers > 100

    def test_slow_links_erode_the_win(self):
        v = vit_small_16()
        fast = simulate_latency(
            v, spatial_plan(v, Grid(2, 2), [0, 1, 2, 3]),
            self._cluster(1000.0)).total_s
        slow = simulate_latency(
            v, spatial_plan(v, Grid(2, 2), [0, 1, 2, 3]),
            self._cluster(5.0)).total_s
        assert slow > fast * 1.5

    def test_quantized_kv_exchange_helps_on_slow_links(self):
        v = vit_small_16()
        cl = self._cluster(10.0)
        fp32 = simulate_latency(
            v, spatial_plan(v, Grid(2, 2), [0, 1, 2, 3], bits=32), cl).total_s
        int8 = simulate_latency(
            v, spatial_plan(v, Grid(2, 2), [0, 1, 2, 3], bits=8), cl).total_s
        assert int8 < fp32
