"""The executable elastic supernet: weight sharing, elasticity,
alignment with the cost graph, and trainability."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nas import (SyntheticImageDataset, Supernet, build_graph,
                       max_arch, min_arch, random_arch, tiny_space)
from tests.conftest import numeric_grad


SPACE = tiny_space()


@pytest.fixture(scope="module")
def net():
    return Supernet(SPACE, seed=3)


@pytest.fixture
def batch(rng):
    return rng.normal(size=(4, 3, 32, 32))


class TestForward:
    def test_max_arch_shapes(self, net, batch):
        out = net.forward_arch(batch, max_arch(SPACE))
        assert out.shape == (4, SPACE.num_classes)

    def test_min_arch_shapes(self, net, batch):
        out = net.forward_arch(batch, min_arch(SPACE))
        assert out.shape == (4, SPACE.num_classes)

    def test_min_resolution(self, net, rng):
        a = min_arch(SPACE)
        x = rng.normal(size=(2, 3, a.resolution, a.resolution))
        assert net.forward_arch(x, a).shape == (2, SPACE.num_classes)

    def test_deterministic_in_eval(self, net, batch):
        net.eval()
        a = max_arch(SPACE)
        o1 = net.forward_arch(batch, a)
        o2 = net.forward_arch(batch, a)
        np.testing.assert_allclose(o1, o2)
        net.train()

    def test_different_archs_different_outputs(self, net, batch):
        net.eval()
        o_max = net.forward_arch(batch, max_arch(SPACE))
        # min arch at the same resolution
        mn = min_arch(SPACE)
        from repro.nas import ArchConfig
        mn32 = ArchConfig(32, mn.depths, mn.kernels, mn.expands)
        o_min = net.forward_arch(batch, mn32)
        assert not np.allclose(o_max, o_min)
        net.train()


class TestUnitAlignment:
    @pytest.mark.parametrize("which", ["max", "min", "random"])
    def test_active_units_match_graph_blocks(self, net, which, rng):
        a = {"max": max_arch(SPACE), "min": min_arch(SPACE),
             "random": random_arch(SPACE, rng)}[which]
        graph = build_graph(a, SPACE)
        units = net.active_units(a)
        assert len(units) == len(graph)

    def test_run_units_composes(self, net, rng):
        """Running unit slices sequentially == full forward."""
        net.eval()
        a = max_arch(SPACE)
        x = rng.normal(size=(1, 3, 32, 32))
        full = net.forward_arch(x, a)
        units = net.active_units(a)
        mid = len(units) // 2
        h = net.run_units(x, a, units[:mid])
        out = net.run_units(h, a, units[mid:])
        np.testing.assert_allclose(out, full, atol=1e-10)
        net.train()


class TestWeightSharing:
    def test_small_kernel_is_center_crop(self, net):
        """Perturbing the center of the 5x5 depthwise kernel changes the
        k=3 submodel; perturbing the border does not."""
        from repro.nas import ArchConfig
        net.eval()
        mx = max_arch(SPACE)
        a3 = ArchConfig(mx.resolution, mx.depths,
                        (3,) * len(mx.kernels), mx.expands)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 3, 32, 32))
        base = net.forward_arch(x, a3)
        dw = net.units[1].mbconv.dw  # first stage block's depthwise conv
        # border element (outside the 3x3 center crop of 5x5)
        dw.weight.data[0, 0, 0, 0] += 100.0
        out_border = net.forward_arch(x, a3)
        dw.weight.data[0, 0, 0, 0] -= 100.0
        np.testing.assert_allclose(out_border, base)
        # center element is shared
        dw.weight.data[0, 0, 2, 2] += 1.0
        out_center = net.forward_arch(x, a3)
        dw.weight.data[0, 0, 2, 2] -= 1.0
        assert not np.allclose(out_center, base)
        net.train()

    def test_elastic_width_prefix_shared(self, net):
        """The e=2 submodel uses the first channels of the e=3 weights."""
        from repro.nas import ArchConfig
        net.eval()
        mx = max_arch(SPACE)
        a_small = ArchConfig(mx.resolution, mx.depths, mx.kernels,
                             (2,) * len(mx.expands))
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 3, 32, 32))
        base = net.forward_arch(x, a_small)
        exp = net.units[1].mbconv.expand
        # channel beyond the active prefix (in_ch*2 ... in_ch*3)
        hi = exp.max_out - 1
        exp.weight.data[hi] += 100.0
        np.testing.assert_allclose(net.forward_arch(x, a_small), base)
        exp.weight.data[hi] -= 100.0
        net.train()


class TestBackward:
    def test_gradients_flow_to_active_params_only(self, net, rng):
        a = min_arch(SPACE)
        x = rng.normal(size=(2, 3, a.resolution, a.resolution))
        y = np.array([0, 1])
        net.zero_grad()
        logits = net.forward_arch(x, a)
        loss, cache = F.cross_entropy(logits, y)
        net.backward(F.cross_entropy_backward(cache))
        # stem always active
        stem = net.units[0]
        assert float(np.abs(stem.conv.weight.grad).sum()) > 0
        # depth slots beyond min depth are inactive -> zero grads
        inactive_unit = net.units[1 + SPACE.min_depth]  # stage0, block min_depth
        assert float(np.abs(
            inactive_unit.mbconv.expand.weight.grad).sum()) == 0.0

    def test_numeric_gradient_elastic_conv(self, rng):
        from repro.nas.supernet import ElasticConv2d
        conv = ElasticConv2d(4, 6, 3, rng=np.random.default_rng(2))
        x = rng.normal(size=(1, 2, 5, 5))

        def loss():
            return float((conv.forward_active(x, 2, 3) ** 2).sum())

        out = conv.forward_active(x, 2, 3)
        conv.zero_grad()
        conv.backward(2 * out)
        num = numeric_grad(loss, conv.weight.data)
        np.testing.assert_allclose(conv.weight.grad, num, atol=1e-5)

    def test_numeric_gradient_elastic_dw(self, rng):
        from repro.nas.supernet import ElasticDepthwiseConv2d
        dw = ElasticDepthwiseConv2d(4, 5, rng=np.random.default_rng(3))
        x = rng.normal(size=(1, 3, 6, 6))

        def loss():
            return float((dw.forward_active(x, 3, 3) ** 2).sum())

        out = dw.forward_active(x, 3, 3)
        dw.zero_grad()
        dw.backward(2 * out)
        num = numeric_grad(loss, dw.weight.data)
        np.testing.assert_allclose(dw.weight.grad, num, atol=1e-5)

    def test_training_step_reduces_loss(self, rng):
        """A few SGD steps on one batch must reduce the loss."""
        from repro.nn import SGD
        net = Supernet(SPACE, seed=11)
        ds = SyntheticImageDataset(resolution=32, train_size=32, val_size=16,
                                   seed=1)
        x, y = ds.x_train[:16], ds.y_train[:16]
        opt = SGD(net.parameters(), lr=0.05)
        a = max_arch(SPACE)
        losses = []
        for _ in range(8):
            logits = net.forward_arch(x, a)
            loss, cache = F.cross_entropy(logits, y)
            losses.append(loss)
            opt.zero_grad()
            net.backward(F.cross_entropy_backward(cache))
            opt.step()
        assert losses[-1] < losses[0]
