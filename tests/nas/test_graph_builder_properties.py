"""Cost-graph builder: structural and monotonicity properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nas import (MBV3_SPACE, ArchConfig, build_graph, max_arch,
                       min_arch, random_arch)

SPACE = MBV3_SPACE


def arch_strategy():
    slots = SPACE.num_stages * SPACE.max_depth
    return st.builds(
        ArchConfig,
        resolution=st.sampled_from(SPACE.resolution_options),
        depths=st.tuples(*[st.sampled_from(SPACE.depth_options)
                           for _ in range(SPACE.num_stages)]),
        kernels=st.tuples(*[st.sampled_from(SPACE.kernel_options)
                            for _ in range(slots)]),
        expands=st.tuples(*[st.sampled_from(SPACE.expand_options)
                            for _ in range(slots)]),
    )


class TestStructure:
    @given(arch_strategy())
    @settings(max_examples=30, deadline=None)
    def test_block_count_matches_arch(self, arch):
        g = build_graph(arch, SPACE)
        # stem + active blocks + final conv + pool + fc
        assert len(g) == 1 + arch.num_blocks() + 3

    @given(arch_strategy())
    @settings(max_examples=30, deadline=None)
    def test_stage_tags_cover_blocks(self, arch):
        g = build_graph(arch, SPACE)
        stages = [b.stage for b in g if 1 <= b.stage <= SPACE.num_stages]
        assert len(stages) == arch.num_blocks()

    @given(arch_strategy())
    @settings(max_examples=30, deadline=None)
    def test_halo_matches_kernels(self, arch):
        g = build_graph(arch, SPACE)
        active = arch.active_slots(SPACE)
        trunk = [b for b in g if 1 <= b.stage <= SPACE.num_stages]
        for block, slot in zip(trunk, active):
            assert block.halo == arch.kernels[slot] // 2

    def test_flops_bracketed_by_extremes(self):
        rng = np.random.default_rng(0)
        lo = build_graph(min_arch(SPACE), SPACE).total_flops
        hi = build_graph(max_arch(SPACE), SPACE).total_flops
        for _ in range(15):
            f = build_graph(random_arch(SPACE, rng), SPACE).total_flops
            assert lo <= f <= hi


class TestMonotonicity:
    def _flops(self, **overrides):
        base = max_arch(SPACE)
        arch = ArchConfig(
            overrides.get("resolution", base.resolution),
            overrides.get("depths", base.depths),
            overrides.get("kernels", base.kernels),
            overrides.get("expands", base.expands))
        return build_graph(arch, SPACE).total_flops

    def test_resolution_monotone(self):
        flops = [self._flops(resolution=r)
                 for r in sorted(SPACE.resolution_options)]
        assert flops == sorted(flops)

    def test_depth_monotone(self):
        flops = [self._flops(depths=(d,) * SPACE.num_stages)
                 for d in sorted(SPACE.depth_options)]
        assert flops == sorted(flops)

    def test_kernel_monotone(self):
        slots = SPACE.num_stages * SPACE.max_depth
        flops = [self._flops(kernels=(k,) * slots)
                 for k in sorted(SPACE.kernel_options)]
        assert flops == sorted(flops)

    def test_expand_monotone(self):
        slots = SPACE.num_stages * SPACE.max_depth
        flops = [self._flops(expands=(e,) * slots)
                 for e in sorted(SPACE.expand_options)]
        assert flops == sorted(flops)

    def test_accuracy_and_flops_correlate(self):
        """Across random submodels, higher accuracy should broadly cost
        more compute (the trade-off the whole system navigates)."""
        from repro.nas import arch_accuracy
        rng = np.random.default_rng(1)
        archs = [random_arch(SPACE, rng) for _ in range(40)]
        acc = np.array([arch_accuracy(a, SPACE) for a in archs])
        flops = np.array([build_graph(a, SPACE).total_flops for a in archs])
        corr = np.corrcoef(acc, flops)[0, 1]
        assert corr > 0.5
